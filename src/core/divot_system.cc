#include "core/divot_system.hh"

#include "itdr/budget.hh"
#include "signal/noise.hh"
#include "util/logging.hh"

namespace divot {

namespace {

TransmissionLine
fabricate(const DivotSystemConfig &config, Rng &rng)
{
    ManufacturingProcess fab(config.process, rng.fork(0x6001));
    auto z = fab.drawImpedanceProfile(config.lineLength,
                                      config.segmentLength);
    return TransmissionLine(std::move(z), config.segmentLength,
                            config.process.velocity,
                            config.process.nominalImpedance,
                            config.process.nominalImpedance +
                                rng.gaussian(0.0, 0.3),
                            config.process.lossNeperPerMeter,
                            config.name);
}

} // namespace

DivotSystem::DivotSystem(DivotSystemConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng),
      pristine_(fabricate(config_, rng_)), current_(pristine_)
{
    auth_ = std::make_unique<Authenticator>(
        config_.auth, config_.itdr, rng_.fork(0x6002), config_.name);
    env_ = std::make_unique<Environment>(config_.environment,
                                         rng_.fork(0x6003));
    if (config_.environment.emiAmplitude > 0.0) {
        emi_ = std::make_unique<SinusoidalInterference>(
            config_.environment.emiAmplitude,
            config_.environment.emiFrequencyHz);
    }
}

void
DivotSystem::calibrate()
{
    auth_->enroll(pristine_, config_.enrollReps);
    const MeasurementBudget budget = predictBudget(
        config_.itdr, pristine_.roundTripDelay());
    wall_ += static_cast<double>(config_.enrollReps) *
        budget.expectedDuration;
}

AuthVerdict
DivotSystem::monitorOnce()
{
    const TransmissionLine snap = env_->snapshot(current_, wall_);
    const AuthVerdict verdict = auth_->checkRound(snap, emi_.get());
    const MeasurementBudget budget = predictBudget(
        config_.itdr, pristine_.roundTripDelay());
    wall_ += budget.expectedDuration + 100e-6;
    return verdict;
}

void
DivotSystem::stageAttack(const TamperTransform &attack)
{
    current_ = attack.apply(wireTapScar_ && lastWireTap_
                                ? lastWireTap_->applyRemoved(pristine_)
                                : pristine_);
    if (const auto *tap = dynamic_cast<const WireTap *>(&attack)) {
        lastWireTap_ = *tap;
        wireTapScar_ = true;
    }
    divot_inform("staged attack on '%s': %s", config_.name.c_str(),
                 attack.describe().c_str());
}

void
DivotSystem::clearAttack()
{
    if (wireTapScar_ && lastWireTap_) {
        // Soldering damage is permanent (Section IV-E).
        current_ = lastWireTap_->applyRemoved(pristine_);
    } else {
        current_ = pristine_;
    }
}

} // namespace divot
