/**
 * @file
 * DivotSystem — the one-object quickstart API.
 *
 * Wraps fabrication, calibration, and monitoring of a single
 * protected bus behind three calls:
 *
 *     DivotSystem sys(DivotSystemConfig{}, Rng(42));
 *     sys.calibrate();
 *     AuthVerdict v = sys.monitorOnce();
 *
 * plus helpers to stage the paper's attacks against the live system.
 *
 * Since the fleet refactor this is a thin one-channel facade over
 * fleet/bus_channel.hh: the channel preserves the original fork tags
 * and draw order, so existing seeds reproduce pre-refactor results
 * bit for bit. Multi-wire buses use fleet/channel_scheduler.hh
 * directly.
 */

#ifndef DIVOT_CORE_DIVOT_SYSTEM_HH
#define DIVOT_CORE_DIVOT_SYSTEM_HH

#include "fleet/bus_channel.hh"
#include "util/rng.hh"

namespace divot {

/** Quickstart configuration — one bus channel. */
using DivotSystemConfig = BusChannelConfig;

/**
 * One protected bus with its authenticator and environment.
 */
class DivotSystem
{
  public:
    /**
     * Fabricates the line and builds the instrument (does not enroll
     * yet).
     */
    DivotSystem(DivotSystemConfig config, Rng rng)
        : channel_(std::move(config), rng)
    {
    }

    /** Calibrate: measure and store the enrollment fingerprint. */
    void calibrate() { channel_.calibrate(); }

    /**
     * One monitoring round against the line in its current physical
     * state (including any staged attack and the environment).
     */
    AuthVerdict monitorOnce() { return channel_.monitorOnce(); }

    /** Stage an attack: the line changes from the next round on. */
    void stageAttack(const TamperTransform &attack)
    {
        channel_.stageAttack(attack);
    }

    /** Remove the staged attack (wire-taps leave their scar). */
    void clearAttack() { channel_.clearAttack(); }

    /** @return the pristine fabricated line. */
    const TransmissionLine &line() const { return channel_.line(); }

    /** @return the line as it currently physically exists. */
    const TransmissionLine &currentLine() const
    {
        return channel_.currentLine();
    }

    /** @return the authenticator. */
    const Authenticator &authenticator() const
    {
        return channel_.authenticator();
    }

    /** @return measurement wall-clock accumulated so far, seconds. */
    double elapsed() const { return channel_.elapsed(); }

    /** @return the underlying fleet channel. */
    BusChannel &busChannel() { return channel_; }

    /** @return the underlying fleet channel, read-only. */
    const BusChannel &busChannel() const { return channel_; }

  private:
    BusChannel channel_;
};

} // namespace divot

#endif // DIVOT_CORE_DIVOT_SYSTEM_HH
