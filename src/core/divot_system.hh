/**
 * @file
 * DivotSystem — the one-object quickstart API.
 *
 * Wraps fabrication, calibration, and monitoring of a single
 * protected bus behind three calls:
 *
 *     DivotSystem sys(DivotSystemConfig{}, Rng(42));
 *     sys.calibrate();
 *     AuthVerdict v = sys.monitorOnce();
 *
 * plus helpers to stage the paper's attacks against the live system.
 */

#ifndef DIVOT_CORE_DIVOT_SYSTEM_HH
#define DIVOT_CORE_DIVOT_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>

#include "auth/authenticator.hh"
#include "txline/environment.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"
#include "txline/txline.hh"
#include "util/rng.hh"

namespace divot {

/** Quickstart configuration. */
struct DivotSystemConfig
{
    double lineLength = 0.25;        //!< meters (paper prototype)
    double segmentLength = 0.5e-3;   //!< spatial step
    ProcessParams process;           //!< fabrication statistics
    ItdrConfig itdr;                 //!< instrument configuration
    AuthConfig auth;                 //!< thresholds
    EnvironmentConditions environment; //!< operating conditions
    std::size_t enrollReps = 16;
    std::string name = "bus0";
};

/**
 * One protected bus with its authenticator and environment.
 */
class DivotSystem
{
  public:
    /**
     * Fabricates the line and builds the instrument (does not enroll
     * yet).
     */
    DivotSystem(DivotSystemConfig config, Rng rng);

    /** Calibrate: measure and store the enrollment fingerprint. */
    void calibrate();

    /**
     * One monitoring round against the line in its current physical
     * state (including any staged attack and the environment).
     */
    AuthVerdict monitorOnce();

    /** Stage an attack: the line changes from the next round on. */
    void stageAttack(const TamperTransform &attack);

    /** Remove the staged attack (wire-taps leave their scar). */
    void clearAttack();

    /** @return the pristine fabricated line. */
    const TransmissionLine &line() const { return pristine_; }

    /** @return the line as it currently physically exists. */
    const TransmissionLine &currentLine() const { return current_; }

    /** @return the authenticator. */
    const Authenticator &authenticator() const { return *auth_; }

    /** @return measurement wall-clock accumulated so far, seconds. */
    double elapsed() const { return wall_; }

  private:
    DivotSystemConfig config_;
    Rng rng_;
    TransmissionLine pristine_;
    TransmissionLine current_;
    std::unique_ptr<Authenticator> auth_;
    std::unique_ptr<Environment> env_;
    std::unique_ptr<NoiseSource> emi_;
    double wall_ = 0.0;
    bool wireTapScar_ = false;
    std::optional<WireTap> lastWireTap_;
};

} // namespace divot

#endif // DIVOT_CORE_DIVOT_SYSTEM_HH
