/**
 * @file
 * DIVOT expressed through the ProtectionBaseline interface, so the
 * Section V comparison bench can score it head-to-head against PAD,
 * the DC-resistance monitor, the board-impedance PUF, and the VNA
 * reader. Unlike those statistical stand-ins, this adapter runs the
 * real simulated pipeline: fabricate a line, enroll, stage the
 * attack, measure with the iTDR, and threshold E_xy / similarity.
 */

#ifndef DIVOT_CORE_DIVOT_BASELINE_HH
#define DIVOT_CORE_DIVOT_BASELINE_HH

#include "baselines/baseline.hh"
#include "core/divot_system.hh"

namespace divot {

/**
 * DIVOT as a comparable countermeasure.
 */
class DivotBaseline : public ProtectionBaseline
{
  public:
    /**
     * @param config quickstart configuration used for every episode
     */
    explicit DivotBaseline(DivotSystemConfig config = {});

    BaselineTraits traits() const override;
    double detectProbability(AttackKind kind, double severity,
                             std::size_t trials, Rng &rng) override;
    double identificationEer() const override;

  private:
    DivotSystemConfig config_;
};

} // namespace divot

#endif // DIVOT_CORE_DIVOT_BASELINE_HH
