#include "core/divot_baseline.hh"

#include <memory>

#include "txline/tamper.hh"

namespace divot {

DivotBaseline::DivotBaseline(DivotSystemConfig config)
    : config_(std::move(config))
{
}

BaselineTraits
DivotBaseline::traits() const
{
    return {"DIVOT (iTDR)",
            /*runtimeConcurrent=*/true,   // probes ride the data edges
            /*integrable=*/true,          // 71 regs / 124 LUTs
            /*locatesAttack=*/true,       // E_xy peak index
            /*busTimeOverhead=*/0.0};     // zero data-bus cycles stolen
}

double
DivotBaseline::detectProbability(AttackKind kind, double severity,
                                 std::size_t trials, Rng &rng)
{
    std::size_t hits = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        DivotSystemConfig cfg = config_;
        cfg.name = "cmp" + std::to_string(t);
        DivotSystem sys(cfg, rng.fork(0x7000 + t));
        sys.calibrate();

        std::unique_ptr<TamperTransform> attack;
        switch (kind) {
          case AttackKind::ContactProbe:
            // A touching probe loads the trace capacitively: strong
            // local impedance drop, like a light wire tap.
            attack = std::make_unique<WireTap>(0.5, 500.0, 2e-3,
                                               0.01 * severity);
            break;
          case AttackKind::EmProbe:
            attack = std::make_unique<MagneticProbe>(
                0.5, 0.08 * severity);
            break;
          case AttackKind::WireTap:
            attack = std::make_unique<WireTap>(0.5, 50.0 / severity);
            break;
          case AttackKind::ModuleSwap:
            attack = std::make_unique<LoadModification>(
                50.0 + 20.0 * severity);
            break;
        }
        sys.stageAttack(*attack);
        // DIVOT monitors continuously: the episode is observed in the
        // very next rounds. Give the sliding window a few rounds, as
        // the runtime monitor would have.
        AuthVerdict v{};
        for (int round = 0; round < 8; ++round)
            v = sys.monitorOnce();
        if (v.tamperAlarm || !v.authenticated)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(trials);
}

double
DivotBaseline::identificationEer() const
{
    // Measured on the prototype-scale experiment (Fig. 7b): the EER
    // resolution floor of 8192 comparisons. The fig7 bench reproduces
    // this number from scratch.
    return 6e-4;
}

} // namespace divot
