/**
 * @file
 * Umbrella header: include this to get the whole DIVOT library.
 *
 * Layer map (bottom-up):
 *   util        — RNG, math, stats, ROC, logging, tables
 *   signal      — waveforms, probe edges, noise, filters
 *   txline      — transmission-line physics, tampers, environment
 *   analog      — comparator, triangle PDM source, PLL, coupler
 *   itdr        — APC + PDM + ETS: the integrated reflectometer
 *   fingerprint — IIP fingerprints, similarity / error function,
 *                 genuine-impostor studies, tamper localization
 *   auth        — enrollment, authenticator, reactions, two-way
 *                 protocol
 *   fleet       — multi-wire bus channels, shared-iTDR channel
 *                 scheduler, fused fleet verdicts
 *   memsys      — cycle-level SDRAM + controller + DIVOT gate
 *   baselines   — PAD / DC-R / board-PUF / VNA comparison models
 *   core        — DivotSystem facade (this layer)
 */

#ifndef DIVOT_CORE_DIVOT_HH
#define DIVOT_CORE_DIVOT_HH

#include "analog/comparator.hh"
#include "analog/coupler.hh"
#include "analog/pll.hh"
#include "analog/triangle.hh"
#include "auth/authenticator.hh"
#include "auth/enrollment.hh"
#include "auth/protocol.hh"
#include "auth/reaction.hh"
#include "auth/soc_guard.hh"
#include "baselines/baseline.hh"
#include "baselines/board_puf.hh"
#include "baselines/dc_resistance.hh"
#include "baselines/pad.hh"
#include "baselines/vna.hh"
#include "core/divot_baseline.hh"
#include "core/divot_system.hh"
#include "fingerprint/fingerprint.hh"
#include "fingerprint/fusion.hh"
#include "fingerprint/localize.hh"
#include "fingerprint/study.hh"
#include "fleet/bus_channel.hh"
#include "fleet/channel_scheduler.hh"
#include "fleet/fleet_auth.hh"
#include "itdr/apc.hh"
#include "itdr/budget.hh"
#include "itdr/calibrate.hh"
#include "itdr/counter.hh"
#include "itdr/encoding.hh"
#include "itdr/itdr.hh"
#include "itdr/pdm.hh"
#include "itdr/resource.hh"
#include "itdr/trigger.hh"
#include "memsys/controller.hh"
#include "memsys/divot_gate.hh"
#include "memsys/sdram.hh"
#include "memsys/system.hh"
#include "memsys/workload.hh"
#include "signal/edge.hh"
#include "signal/filter.hh"
#include "signal/noise.hh"
#include "signal/waveform.hh"
#include "txline/born.hh"
#include "txline/environment.hh"
#include "txline/lattice.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"
#include "txline/txline.hh"
#include "util/logging.hh"
#include "util/math.hh"
#include "util/rng.hh"
#include "util/roc.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

#endif // DIVOT_CORE_DIVOT_HH
