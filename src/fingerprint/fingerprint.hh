/**
 * @file
 * IIP fingerprints and the paper's two comparison functions.
 *
 * Similarity (Eq. 4):  S_xy = sum_n x(n) y(n), normalized to [0, 1] —
 * computed on the *residual* fingerprint: the measured IIP minus the
 * nominal (design) response of a perfectly uniform line, mean-removed
 * and unit-normalized. Subtracting the nominal response removes what
 * every line of the same design shares (coupler leak pedestal, the
 * nominal load echo), leaving the manufacturing-specific pattern that
 * actually distinguishes lines.
 *
 * Error function (Eq. 5):  E_xy(n) = [x(n) - y(n)]^2 — computed on
 * the raw voltage traces, where a tamper shows up as a localized peak
 * whose index maps back to a physical position on the line.
 */

#ifndef DIVOT_FINGERPRINT_FINGERPRINT_HH
#define DIVOT_FINGERPRINT_FINGERPRINT_HH

#include <string>

#include "itdr/itdr.hh"
#include "signal/waveform.hh"

namespace divot {

/**
 * A processed IIP fingerprint: raw voltage trace plus the normalized
 * residual used for similarity scoring.
 */
class Fingerprint
{
  public:
    Fingerprint() = default;

    /**
     * Build a fingerprint from a measurement.
     *
     * @param measurement iTDR output
     * @param nominal     nominal (design) detector response on the
     *                    same time grid; pass an empty waveform to
     *                    skip nominal subtraction
     * @param label       provenance tag
     */
    static Fingerprint fromMeasurement(const IipMeasurement &measurement,
                                       const Waveform &nominal,
                                       std::string label = "");

    /**
     * Average several measurements into an enrollment fingerprint
     * (reduces APC noise by sqrt(count); this is what gets burned
     * into the EPROM at calibration time).
     */
    static Fingerprint enroll(const std::vector<IipMeasurement> &reps,
                              const Waveform &nominal,
                              std::string label = "");

    /**
     * Reassemble a fingerprint from stored parts (deserialization
     * path; no reprocessing is performed).
     */
    static Fingerprint fromParts(Waveform raw, Waveform residual,
                                 std::string label);

    /** @return raw voltage trace (volts vs round-trip time). */
    const Waveform &raw() const { return raw_; }

    /** @return normalized residual used for similarity. */
    const Waveform &residual() const { return residual_; }

    /** @return provenance tag. */
    const std::string &label() const { return label_; }

    /** @return true when the fingerprint holds data. */
    bool valid() const { return !raw_.empty(); }

  private:
    Waveform raw_;
    Waveform residual_;
    std::string label_;
};

/**
 * Normalized similarity S_xy in [0, 1] (Eq. 4). 1 means identical
 * residual patterns; uncorrelated patterns score ~0 (negative inner
 * products clamp to 0).
 */
double similarity(const Fingerprint &x, const Fingerprint &y);

/**
 * Per-index squared error E_xy(n) (Eq. 5) between the raw traces, in
 * volts^2 versus round-trip time.
 *
 * Physical tamper signatures span tens of ETS bins (the probe edge
 * smears every discontinuity over its rise time), while APC
 * reconstruction noise is white per bin; smoothing the difference
 * with a short moving average before squaring is the matched filter
 * that suppresses the noise floor without attenuating real
 * signatures.
 *
 * @param smooth_window odd moving-average length in bins applied to
 *                      x - y before squaring; 1 disables smoothing
 */
Waveform errorFunction(const Fingerprint &x, const Fingerprint &y,
                       std::size_t smooth_window = 5);

/** @return the maximum of E_xy over the trace. */
double peakError(const Fingerprint &x, const Fingerprint &y);

/** Simple threshold matcher for authentication decisions. */
class Matcher
{
  public:
    /**
     * @param threshold minimum similarity accepted as genuine
     */
    explicit Matcher(double threshold);

    /** @return true when candidate matches the enrolled reference. */
    bool accepts(const Fingerprint &enrolled,
                 const Fingerprint &candidate) const;

    /** @return configured similarity threshold. */
    double threshold() const { return threshold_; }

  private:
    double threshold_;
};

} // namespace divot

#endif // DIVOT_FINGERPRINT_FINGERPRINT_HH
