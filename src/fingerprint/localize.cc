#include "fingerprint/localize.hh"

#include <algorithm>

#include "util/logging.hh"

namespace divot {

TamperLocalizer::TamperLocalizer(double threshold)
    : threshold_(threshold)
{
    if (threshold <= 0.0)
        divot_fatal("tamper threshold must be positive (got %g)",
                    threshold);
}

TamperReport
TamperLocalizer::inspect(const Fingerprint &enrolled,
                         const Fingerprint &current,
                         const TransmissionLine &line) const
{
    const Waveform e = errorFunction(enrolled, current);
    TamperReport report;
    report.threshold = threshold_;
    if (e.empty())
        return report;
    const std::size_t peak = e.peakIndex();
    report.peakError = e[peak];
    report.peakTime = e.timeAt(peak);
    report.detected = report.peakError > threshold_;
    // Reflection round trip: distance = v * t / 2, capped at the line
    // end (the load echo itself sits at the full length).
    report.location = std::min(
        line.distanceAtRoundTripTime(report.peakTime), line.length());
    return report;
}

double
TamperLocalizer::calibrateThreshold(
    const Fingerprint &enrolled,
    const std::vector<Fingerprint> &benign_samples, double margin)
{
    if (benign_samples.empty())
        divot_fatal("threshold calibration needs benign samples");
    if (margin <= 1.0)
        divot_fatal("calibration margin must exceed 1 (got %g)", margin);
    double worst = 0.0;
    for (const auto &fp : benign_samples)
        worst = std::max(worst, peakError(enrolled, fp));
    return worst * margin;
}

} // namespace divot
