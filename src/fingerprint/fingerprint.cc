#include "fingerprint/fingerprint.hh"

#include <algorithm>
#include <cmath>

#include "signal/filter.hh"
#include "util/logging.hh"

namespace divot {

namespace {

Waveform
makeResidual(const Waveform &raw, const Waveform &nominal)
{
    Waveform res = raw;
    if (!nominal.empty()) {
        if (nominal.size() != raw.size())
            divot_panic("nominal response size %zu != IIP size %zu",
                        nominal.size(), raw.size());
        res -= nominal;
    }
    // The step-probe TDR trace is the *integral* of the reflection
    // profile: a random walk whose low-frequency energy would
    // dominate inner products and correlate unrelated lines.
    // Differentiating recovers the localized impedance-step features
    // (the IIP proper) and restores per-feature independence.
    res = differentiate(res);
    res.removeMean();
    res.normalizeUnitNorm();
    return res;
}

} // namespace

Fingerprint
Fingerprint::fromMeasurement(const IipMeasurement &measurement,
                             const Waveform &nominal, std::string label)
{
    if (measurement.iip.empty())
        divot_panic("fingerprint from empty measurement");
    Fingerprint fp;
    fp.raw_ = measurement.iip;
    fp.residual_ = makeResidual(fp.raw_, nominal);
    fp.label_ = std::move(label);
    return fp;
}

Fingerprint
Fingerprint::enroll(const std::vector<IipMeasurement> &reps,
                    const Waveform &nominal, std::string label)
{
    if (reps.empty())
        divot_panic("enroll with zero measurements");
    Waveform mean = reps.front().iip;
    for (std::size_t i = 1; i < reps.size(); ++i)
        mean += reps[i].iip;
    mean *= 1.0 / static_cast<double>(reps.size());

    Fingerprint fp;
    fp.raw_ = std::move(mean);
    fp.residual_ = makeResidual(fp.raw_, nominal);
    fp.label_ = std::move(label);
    return fp;
}

Fingerprint
Fingerprint::fromParts(Waveform raw, Waveform residual, std::string label)
{
    Fingerprint fp;
    fp.raw_ = std::move(raw);
    fp.residual_ = std::move(residual);
    fp.label_ = std::move(label);
    return fp;
}

double
similarity(const Fingerprint &x, const Fingerprint &y)
{
    if (!x.valid() || !y.valid())
        divot_panic("similarity of invalid fingerprint");
    const double nip = normalizedInnerProduct(x.residual(), y.residual());
    return std::max(0.0, nip);
}

Waveform
errorFunction(const Fingerprint &x, const Fingerprint &y,
              std::size_t smooth_window)
{
    if (!x.valid() || !y.valid())
        divot_panic("errorFunction of invalid fingerprint");
    if (x.raw().size() != y.raw().size())
        divot_panic("errorFunction size mismatch (%zu vs %zu)",
                    x.raw().size(), y.raw().size());
    Waveform diff = x.raw();
    diff -= y.raw();
    if (smooth_window > 1)
        diff = movingAverage(diff, smooth_window | 1u);
    for (std::size_t i = 0; i < diff.size(); ++i)
        diff[i] = diff[i] * diff[i];
    return diff;
}

double
peakError(const Fingerprint &x, const Fingerprint &y)
{
    return errorFunction(x, y).peakAbs();
}

Matcher::Matcher(double threshold)
    : threshold_(threshold)
{
    if (threshold < 0.0 || threshold > 1.0)
        divot_fatal("matcher threshold %g outside [0,1]", threshold);
}

bool
Matcher::accepts(const Fingerprint &enrolled,
                 const Fingerprint &candidate) const
{
    return similarity(enrolled, candidate) >= threshold_;
}

} // namespace divot
