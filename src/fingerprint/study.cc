#include "fingerprint/study.hh"

#include <cmath>
#include <memory>

#include "signal/noise.hh"
#include "util/logging.hh"

namespace divot {

GenuineImpostorStudy::GenuineImpostorStudy(StudyConfig config, Rng rng)
    : config_(config), rng_(rng)
{
    if (config_.lines < 2)
        divot_fatal("study needs at least 2 lines (got %zu)",
                    config_.lines);
    if (config_.wires == 0)
        divot_fatal("study needs at least 1 wire per bus");

    ManufacturingProcess fab(config_.process, rng_.fork(0x2001));
    Rng load_rng = rng_.fork(0x2002);
    lines_.reserve(config_.lines * config_.wires);
    for (std::size_t l = 0; l < config_.lines; ++l) {
        for (std::size_t w = 0; w < config_.wires; ++w) {
            auto z = fab.drawImpedanceProfile(config_.lineLength,
                                              config_.segmentLength);
            const double load = config_.process.nominalImpedance +
                load_rng.gaussian(0.0, config_.loadImpedanceSigma);
            lines_.emplace_back(std::move(z), config_.segmentLength,
                                config_.process.velocity,
                                config_.process.nominalImpedance, load,
                                config_.process.lossNeperPerMeter,
                                "line" + std::to_string(l) + "w" +
                                    std::to_string(w));
        }
    }
}

double
GenuineImpostorStudy::fuseScores(const std::vector<double> &per_wire)
{
    // Geometric mean: a single mismatched wire collapses the fused
    // score, which is why multi-wire monitoring improves accuracy
    // roughly exponentially in the wire count.
    double logsum = 0.0;
    for (double s : per_wire)
        logsum += std::log(std::max(s, 1e-12));
    return std::exp(logsum / static_cast<double>(per_wire.size()));
}

StudyResult
GenuineImpostorStudy::run()
{
    const std::size_t nl = config_.lines;
    const std::size_t nw = config_.wires;

    // One instrument per wire interface, as in hardware. Each fork
    // gets an independent noise stream.
    std::vector<std::unique_ptr<ITdr>> itdrs;
    itdrs.reserve(nl * nw);
    for (std::size_t i = 0; i < nl * nw; ++i) {
        itdrs.push_back(std::make_unique<ITdr>(
            config_.itdr, rng_.fork(0x3000 + i)));
    }

    // Nominal design response: a perfectly uniform line of the same
    // geometry, on the same bin grid.
    TransmissionLine nominal_line(
        std::vector<double>(
            static_cast<std::size_t>(std::round(config_.lineLength /
                                                config_.segmentLength)),
            config_.process.nominalImpedance),
        config_.segmentLength, config_.process.velocity,
        config_.process.nominalImpedance,
        config_.process.nominalImpedance,
        config_.process.lossNeperPerMeter, "nominal");
    nominal_ = itdrs.front()->idealIip(nominal_line);

    Environment env(config_.environment, rng_.fork(0x2003));
    std::unique_ptr<NoiseSource> emi;
    if (config_.environment.emiAmplitude > 0.0) {
        emi = std::make_unique<SinusoidalInterference>(
            config_.environment.emiAmplitude,
            config_.environment.emiFrequencyHz, 0.3);
    }

    StudyResult result;
    double wall = 0.0;
    const double gap = 100e-6;  // pause between measurements

    auto measure_wire = [&](std::size_t line_idx, std::size_t wire)
        -> IipMeasurement
    {
        const std::size_t idx = line_idx * nw + wire;
        TransmissionLine snap = env.snapshot(lines_[idx], wall);
        IipMeasurement m = itdrs[idx]->measure(snap, emi.get());
        wall += m.duration + gap;
        result.totalBusCycles += m.busCycles;
        return m;
    };

    // --- enrollment at reference conditions (calibration time) ---
    EnvironmentConditions calib;  // room temperature, quiet bench
    Environment calib_env(calib, rng_.fork(0x2004));
    std::vector<Fingerprint> enrolled(nl * nw);
    for (std::size_t l = 0; l < nl; ++l) {
        for (std::size_t w = 0; w < nw; ++w) {
            const std::size_t idx = l * nw + w;
            std::vector<IipMeasurement> reps;
            reps.reserve(config_.enrollReps);
            for (std::size_t r = 0; r < config_.enrollReps; ++r) {
                TransmissionLine snap =
                    calib_env.snapshot(lines_[idx], wall);
                IipMeasurement m = itdrs[idx]->measure(snap, nullptr);
                wall += m.duration + gap;
                result.totalBusCycles += m.busCycles;
                reps.push_back(std::move(m));
            }
            enrolled[idx] = Fingerprint::enroll(
                reps, nominal_, lines_[idx].name());
        }
    }

    // --- genuine scores: re-measure each bus under the campaign
    //     environment and compare to its own enrollment ---
    result.genuine.reserve(nl * config_.genuinePerLine);
    for (std::size_t l = 0; l < nl; ++l) {
        for (std::size_t g = 0; g < config_.genuinePerLine; ++g) {
            std::vector<double> per_wire(nw);
            for (std::size_t w = 0; w < nw; ++w) {
                const Fingerprint fp = Fingerprint::fromMeasurement(
                    measure_wire(l, w), nominal_);
                per_wire[w] = similarity(enrolled[l * nw + w], fp);
            }
            result.genuine.push_back(fuseScores(per_wire));
        }
    }

    // --- impostor scores: measurements of bus a scored against the
    //     enrollment of bus b ---
    result.impostor.reserve(nl * (nl - 1) * config_.impostorPerPair);
    for (std::size_t a = 0; a < nl; ++a) {
        for (std::size_t b = 0; b < nl; ++b) {
            if (a == b)
                continue;
            for (std::size_t i = 0; i < config_.impostorPerPair; ++i) {
                std::vector<double> per_wire(nw);
                for (std::size_t w = 0; w < nw; ++w) {
                    const Fingerprint fp = Fingerprint::fromMeasurement(
                        measure_wire(a, w), nominal_);
                    per_wire[w] = similarity(enrolled[b * nw + w], fp);
                }
                result.impostor.push_back(fuseScores(per_wire));
            }
        }
    }

    result.roc = analyzeRoc(result.genuine, result.impostor);
    result.decidability =
        decidabilityIndex(result.genuine, result.impostor);
    result.fittedEer = gaussianFitEer(result.genuine, result.impostor);
    return result;
}

} // namespace divot
