#include "fingerprint/study.hh"

#include <cmath>
#include <memory>

#include "itdr/budget.hh"
#include "signal/noise.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

namespace {

// Stable fork tags: every lane derives its streams from the master
// seed and its indices alone (Rng::forkStable is pure), so execution
// order — and therefore the thread count — cannot perturb any draw.
constexpr uint64_t kTagNominalItdr = 0x2badULL;
constexpr uint64_t kTagLaneItdr = 0x3000ULL;
constexpr uint64_t kTagLaneCalibEnv = 0x40000ULL;
constexpr uint64_t kTagLaneCampaignEnv = 0x80000ULL;

} // namespace

GenuineImpostorStudy::GenuineImpostorStudy(StudyConfig config, Rng rng)
    : config_(config), rng_(rng)
{
    if (config_.lines < 2)
        divot_fatal("study needs at least 2 lines (got %zu)",
                    config_.lines);
    if (config_.wires == 0)
        divot_fatal("study needs at least 1 wire per bus");

    ManufacturingProcess fab(config_.process, rng_.fork(0x2001));
    Rng load_rng = rng_.fork(0x2002);
    lines_.reserve(config_.lines * config_.wires);
    for (std::size_t l = 0; l < config_.lines; ++l) {
        for (std::size_t w = 0; w < config_.wires; ++w) {
            auto z = fab.drawImpedanceProfile(config_.lineLength,
                                              config_.segmentLength);
            const double load = config_.process.nominalImpedance +
                load_rng.gaussian(0.0, config_.loadImpedanceSigma);
            lines_.emplace_back(std::move(z), config_.segmentLength,
                                config_.process.velocity,
                                config_.process.nominalImpedance, load,
                                config_.process.lossNeperPerMeter,
                                "line" + std::to_string(l) + "w" +
                                    std::to_string(w));
        }
    }
}

StudyResult
GenuineImpostorStudy::run()
{
    const std::size_t nl = config_.lines;
    const std::size_t nw = config_.wires;
    const std::size_t reps_e = config_.enrollReps;
    const std::size_t reps_g = config_.genuinePerLine;
    const std::size_t reps_i = config_.impostorPerPair;
    const std::size_t lane_count = nl * nw;

    // Nominal design response: a perfectly uniform line of the same
    // geometry, on the same bin grid.
    TransmissionLine nominal_line(
        std::vector<double>(
            static_cast<std::size_t>(std::round(config_.lineLength /
                                                config_.segmentLength)),
            config_.process.nominalImpedance),
        config_.segmentLength, config_.process.velocity,
        config_.process.nominalImpedance,
        config_.process.nominalImpedance,
        config_.process.lossNeperPerMeter, "nominal");
    {
        ITdr nominal_itdr(config_.itdr, rng_.forkStable(kTagNominalItdr));
        nominal_ = nominal_itdr.idealIip(nominal_line);
    }

    // Explicit wall-clock schedule: measurement k of the canonical
    // enumeration (enrollment, then genuine, then impostor, wires
    // innermost) starts at k * slot. The schedule is fixed up front so
    // environment snapshots (vibration chirp phase, oven temperature
    // draws) cannot depend on which thread ran which lane first.
    const double gap = 100e-6;  // pause between measurements
    const MeasurementBudget budget =
        predictBudget(config_.itdr, lines_.front().roundTripDelay());
    const double slot = budget.expectedDuration + gap;
    const std::size_t enroll_total = lane_count * reps_e;
    const std::size_t genuine_total = nl * reps_g * nw;

    auto enroll_index = [=](std::size_t lane, std::size_t r) {
        return lane * reps_e + r;
    };
    auto genuine_index = [=](std::size_t l, std::size_t g,
                             std::size_t w) {
        return enroll_total + (l * reps_g + g) * nw + w;
    };
    auto impostor_index = [=](std::size_t a, std::size_t pair_rank,
                              std::size_t i, std::size_t w) {
        return enroll_total + genuine_total +
            ((a * (nl - 1) + pair_rank) * reps_i + i) * nw + w;
    };

    // One measurement lane per wire interface, as in hardware: the
    // instrument enrolls its line, then produces every genuine and
    // impostor measurement of that line, in a fixed per-lane order.
    struct Lane
    {
        std::unique_ptr<ITdr> itdr;
        std::unique_ptr<Environment> calibEnv;
        std::unique_ptr<Environment> campaignEnv;
        std::unique_ptr<NoiseSource> emi;
        Fingerprint enrolled;
        std::vector<double> genuineScores;
        std::vector<double> impostorScores;
        uint64_t busCycles = 0;
    };
    const EnvironmentConditions calib;  // room temperature, quiet bench
    std::vector<Lane> lanes(lane_count);
    for (std::size_t idx = 0; idx < lane_count; ++idx) {
        Lane &lane = lanes[idx];
        lane.itdr = std::make_unique<ITdr>(
            config_.itdr, rng_.forkStable(kTagLaneItdr + idx));
        lane.calibEnv = std::make_unique<Environment>(
            calib, rng_.forkStable(kTagLaneCalibEnv + idx));
        lane.campaignEnv = std::make_unique<Environment>(
            config_.environment,
            rng_.forkStable(kTagLaneCampaignEnv + idx));
        if (config_.environment.emiAmplitude > 0.0) {
            // Deterministic function of time: per-lane instances see
            // identical interference regardless of sharing.
            lane.emi = std::make_unique<SinusoidalInterference>(
                config_.environment.emiAmplitude,
                config_.environment.emiFrequencyHz, 0.3);
        }
        lane.genuineScores.resize(reps_g);
        lane.impostorScores.resize((nl - 1) * reps_i);
        if (config_.telemetry != nullptr) {
            lane.itdr->attachTelemetry(config_.telemetry,
                                       "itdr." + lines_[idx].name());
        }
    }

    ThreadPool pool(config_.threads);
    pool.attachTelemetry(config_.telemetry, "study.pool");

    // --- enrollment at reference conditions (calibration time) ---
    pool.parallelFor(lane_count, [&](std::size_t idx) {
        Lane &lane = lanes[idx];
        std::vector<IipMeasurement> reps;
        reps.reserve(reps_e);
        for (std::size_t r = 0; r < reps_e; ++r) {
            const double wall =
                slot * static_cast<double>(enroll_index(idx, r));
            TransmissionLine snap =
                lane.calibEnv->snapshot(lines_[idx], wall);
            IipMeasurement m = lane.itdr->measure(snap, nullptr);
            lane.busCycles += m.busCycles;
            reps.push_back(std::move(m));
        }
        lane.enrolled =
            Fingerprint::enroll(reps, nominal_, lines_[idx].name());
    });

    // --- genuine and impostor measurements, one lane per task; the
    //     barrier above guarantees every enrollment is readable ---
    pool.parallelFor(lane_count, [&](std::size_t idx) {
        Lane &lane = lanes[idx];
        const std::size_t l = idx / nw;
        const std::size_t w = idx % nw;

        auto measure_at = [&](std::size_t k) {
            const double wall = slot * static_cast<double>(k);
            TransmissionLine snap =
                lane.campaignEnv->snapshot(lines_[idx], wall);
            IipMeasurement m = lane.itdr->measure(snap, lane.emi.get());
            lane.busCycles += m.busCycles;
            return m;
        };

        // Genuine: re-measure this bus under the campaign environment
        // and compare to its own enrollment.
        for (std::size_t g = 0; g < reps_g; ++g) {
            const Fingerprint fp = Fingerprint::fromMeasurement(
                measure_at(genuine_index(l, g, w)), nominal_);
            lane.genuineScores[g] = similarity(lane.enrolled, fp);
        }

        // Impostor: measurements of this bus scored against the
        // enrollment of every other bus b.
        std::size_t pair_rank = 0;
        for (std::size_t b = 0; b < nl; ++b) {
            if (b == l)
                continue;
            for (std::size_t i = 0; i < reps_i; ++i) {
                const Fingerprint fp = Fingerprint::fromMeasurement(
                    measure_at(impostor_index(l, pair_rank, i, w)),
                    nominal_);
                lane.impostorScores[pair_rank * reps_i + i] =
                    similarity(lanes[b * nw + w].enrolled, fp);
            }
            ++pair_rank;
        }
    });

    // --- fuse per-wire scores and analyze, in canonical order ---
    StudyResult result;
    for (const Lane &lane : lanes) {
        result.totalBusCycles += lane.busCycles;
        const TraceCache &cache = lane.itdr->traceCache();
        result.cacheHits += cache.hits();
        result.cacheMisses += cache.misses();
        result.cacheEvictions += cache.evictions();
    }

    std::vector<double> per_wire(nw);
    result.genuine.reserve(nl * reps_g);
    for (std::size_t l = 0; l < nl; ++l) {
        for (std::size_t g = 0; g < reps_g; ++g) {
            for (std::size_t w = 0; w < nw; ++w)
                per_wire[w] = lanes[l * nw + w].genuineScores[g];
            result.genuine.push_back(fuseScores(config_.fusion, per_wire));
        }
    }

    result.impostor.reserve(nl * (nl - 1) * reps_i);
    for (std::size_t a = 0; a < nl; ++a) {
        std::size_t pair_rank = 0;
        for (std::size_t b = 0; b < nl; ++b) {
            if (b == a)
                continue;
            for (std::size_t i = 0; i < reps_i; ++i) {
                for (std::size_t w = 0; w < nw; ++w) {
                    per_wire[w] = lanes[a * nw + w]
                        .impostorScores[pair_rank * reps_i + i];
                }
                result.impostor.push_back(
                    fuseScores(config_.fusion, per_wire));
            }
            ++pair_rank;
        }
    }

    result.roc = analyzeRoc(result.genuine, result.impostor);
    result.decidability =
        decidabilityIndex(result.genuine, result.impostor);
    result.fittedEer = gaussianFitEer(result.genuine, result.impostor);

    // Study-level accounting, recorded serially after the barrier so
    // the values are final.
    if (config_.telemetry != nullptr && config_.telemetry->enabled()) {
        Registry &reg = config_.telemetry->registry();
        reg.counter("study.lanes").add(lane_count);
        reg.counter("study.scores.genuine").add(result.genuine.size());
        reg.counter("study.scores.impostor").add(result.impostor.size());
        reg.counter("study.bus_cycles").add(result.totalBusCycles);
        reg.counter("study.cache.hits").add(result.cacheHits);
        reg.counter("study.cache.misses").add(result.cacheMisses);
        reg.counter("study.cache.evictions").add(result.cacheEvictions);
    }
    return result;
}

} // namespace divot
