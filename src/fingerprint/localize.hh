/**
 * @file
 * Tamper detection and localization from the error function.
 *
 * Section IV-F observes that DIVOT not only detects a probe but also
 * *locates* it: the index n0 where E_xy(n) peaks maps through the
 * round-trip propagation relation to a physical position on the line.
 * The detector compares the E_xy peak against a threshold calibrated
 * from ambient (no-attack) re-measurement noise — the paper uses
 * 5e-7 V^2, chosen to clear the ambient floor yet catch the subtlest
 * (magnetic-probe) attack.
 */

#ifndef DIVOT_FINGERPRINT_LOCALIZE_HH
#define DIVOT_FINGERPRINT_LOCALIZE_HH

#include <optional>
#include <vector>

#include "fingerprint/fingerprint.hh"
#include "txline/txline.hh"

namespace divot {

/** One detected tamper event. */
struct TamperReport
{
    bool detected = false;     //!< peak error exceeded the threshold
    double peakError = 0.0;    //!< max E_xy, volts^2
    double peakTime = 0.0;     //!< round-trip time of the peak, s
    double location = 0.0;     //!< estimated distance from the
                               //!< transmitter, meters
    double threshold = 0.0;    //!< threshold used for the decision
};

/**
 * Detects and locates tampers by thresholding E_xy.
 */
class TamperLocalizer
{
  public:
    /**
     * @param threshold E_xy decision threshold in volts^2 (paper:
     *                  5e-7 clears ambient noise and still catches
     *                  magnetic probes)
     */
    explicit TamperLocalizer(double threshold = 5e-7);

    /**
     * Compare a fresh measurement against the enrolled fingerprint.
     *
     * @param enrolled enrollment-time fingerprint
     * @param current  fresh measurement fingerprint
     * @param line     line geometry (provides the velocity that maps
     *                 peak time to distance)
     */
    TamperReport inspect(const Fingerprint &enrolled,
                         const Fingerprint &current,
                         const TransmissionLine &line) const;

    /**
     * Calibrate a threshold from ambient no-attack behaviour: the
     * largest E_xy peak across benign re-measurements, scaled by a
     * safety margin.
     *
     * @param enrolled       enrollment fingerprint
     * @param benign_samples fresh fingerprints with no attack present
     * @param margin         multiplicative guard band (> 1)
     */
    static double calibrateThreshold(
        const Fingerprint &enrolled,
        const std::vector<Fingerprint> &benign_samples,
        double margin = 3.0);

    /** @return configured threshold. */
    double threshold() const { return threshold_; }

  private:
    double threshold_;
};

} // namespace divot

#endif // DIVOT_FINGERPRINT_LOCALIZE_HH
