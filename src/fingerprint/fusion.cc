#include "fingerprint/fusion.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace divot {

const char *
fusionRuleName(FusionRule rule)
{
    switch (rule) {
      case FusionRule::GeometricMean: return "geometric-mean";
      case FusionRule::LogLikelihood: return "log-likelihood";
    }
    return "?";
}

double
fuseGeometricMean(const std::vector<double> &per_wire, double floor)
{
    if (per_wire.empty())
        divot_fatal("fusion needs at least one wire score");
    // A single mismatched wire collapses the fused score, which is why
    // multi-wire monitoring improves accuracy roughly exponentially in
    // the wire count.
    double logsum = 0.0;
    for (double s : per_wire)
        logsum += std::log(std::max(s, floor));
    return std::exp(logsum / static_cast<double>(per_wire.size()));
}

double
fuseLogLikelihood(const std::vector<double> &per_wire, double floor)
{
    if (per_wire.empty())
        divot_fatal("fusion needs at least one wire score");
    double logodds = 0.0;
    for (double s : per_wire) {
        const double p = std::clamp(s, floor, 1.0 - floor);
        logodds += std::log(p / (1.0 - p));
    }
    return 1.0 / (1.0 + std::exp(-logodds));
}

double
fuseScores(const FusionConfig &config, const std::vector<double> &per_wire)
{
    switch (config.rule) {
      case FusionRule::GeometricMean:
        return fuseGeometricMean(per_wire, config.scoreFloor);
      case FusionRule::LogLikelihood:
        return fuseLogLikelihood(per_wire, config.scoreFloor);
    }
    divot_fatal("unknown fusion rule");
    return 0.0;
}

std::size_t
countWiresAbove(const std::vector<double> &per_wire, double threshold)
{
    return static_cast<std::size_t>(
        std::count_if(per_wire.begin(), per_wire.end(),
                      [=](double s) { return s >= threshold; }));
}

bool
voteMOfN(const std::vector<double> &per_wire, double threshold,
         unsigned votes)
{
    const unsigned needed = std::max(votes, 1u);
    return countWiresAbove(per_wire, threshold) >= needed;
}

} // namespace divot
