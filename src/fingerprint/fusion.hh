/**
 * @file
 * Multi-wire score fusion (paper Section IV-C / future work):
 * "Theoretical analysis suggests that monitoring multiple wires on a
 * bus can exponentially increase authentication accuracy."
 *
 * One bus is many wires; each monitored wire produces its own
 * similarity score against its own enrollment. This module owns the
 * math that collapses those per-wire scores into one bus-level
 * decision — previously copy-pasted between the study driver and the
 * MULTI bench, now the single implementation consumed by both and by
 * the fleet layer's FleetAuthenticator.
 *
 * Rules:
 *  - Geometric mean: exp(mean(log s_w)). A single mismatched wire
 *    (s ~ 0) collapses the fused score multiplicatively, which is why
 *    the impostor distribution decays roughly geometrically with wire
 *    count while genuine scores stay put.
 *  - Log-likelihood: treat each score as an independent probability-
 *    like evidence term and sum log-odds; the fused score is
 *    sigmoid(sum logit(s_w)). Reduces to the identity for one wire,
 *    and rewards many moderately confident wires more than the
 *    geometric mean does.
 *  - M-of-N voting: a hard quorum on per-wire threshold decisions,
 *    used for tamper-alarm fusion where one genuinely attacked wire
 *    must be able to trip the bus alarm regardless of its siblings.
 */

#ifndef DIVOT_FINGERPRINT_FUSION_HH
#define DIVOT_FINGERPRINT_FUSION_HH

#include <cstddef>
#include <vector>

namespace divot {

/** How per-wire similarity scores collapse into one bus score. */
enum class FusionRule
{
    GeometricMean,  //!< exp(mean log s) — multiplicative collapse
    LogLikelihood,  //!< sigmoid(sum logit s) — evidence accumulation
};

/** @return printable rule name. */
const char *fusionRuleName(FusionRule rule);

/** Fusion tuning shared by the study driver and the fleet layer. */
struct FusionConfig
{
    FusionRule rule = FusionRule::GeometricMean;
    double scoreFloor = 1e-12;  //!< clamp before logs (a hard-zero
                                //!< wire score would otherwise produce
                                //!< -inf and poison the fused value)
};

/**
 * Geometric-mean fusion: exp(mean(log(max(s, floor)))).
 * Bit-identical to the historical study-driver math.
 */
double fuseGeometricMean(const std::vector<double> &per_wire,
                         double floor = 1e-12);

/**
 * Log-likelihood fusion: sigmoid(sum(logit(clamp(s, floor,
 * 1 - floor)))). Identity for a single wire.
 */
double fuseLogLikelihood(const std::vector<double> &per_wire,
                         double floor = 1e-12);

/** Fuse per-wire scores under the configured rule. */
double fuseScores(const FusionConfig &config,
                  const std::vector<double> &per_wire);

/** @return wires whose score meets the threshold. */
std::size_t countWiresAbove(const std::vector<double> &per_wire,
                            double threshold);

/**
 * M-of-N wire voting: true when at least `votes` wires score at or
 * above the threshold. votes == 0 is treated as 1 (any wire).
 */
bool voteMOfN(const std::vector<double> &per_wire, double threshold,
              unsigned votes);

} // namespace divot

#endif // DIVOT_FINGERPRINT_FUSION_HH
