/**
 * @file
 * Genuine/impostor measurement-campaign driver — the machinery behind
 * Fig. 7 (authentication ROC), Fig. 8 (temperature), the vibration /
 * EMI results, and the multi-wire extension.
 *
 * A study owns a population of fabricated lines, one iTDR per line,
 * enrolls every line, then collects genuine scores (re-measure the
 * same line, compare to its enrollment) and impostor scores (compare
 * a measurement of line A to the enrollment of line B) under the
 * configured environment.
 */

#ifndef DIVOT_FINGERPRINT_STUDY_HH
#define DIVOT_FINGERPRINT_STUDY_HH

#include <memory>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hh"
#include "fingerprint/fusion.hh"
#include "itdr/itdr.hh"
#include "telemetry/telemetry.hh"
#include "txline/environment.hh"
#include "txline/manufacturing.hh"
#include "txline/txline.hh"
#include "util/roc.hh"
#include "util/rng.hh"

namespace divot {

/** Study configuration. */
struct StudyConfig
{
    std::size_t lines = 6;            //!< fabricated Tx-lines (paper: 6)
    double lineLength = 0.25;         //!< meters (paper: 25 cm)
    double segmentLength = 0.5e-3;    //!< spatial resolution, meters
    std::size_t enrollReps = 16;      //!< measurements averaged at
                                      //!< calibration time
    std::size_t genuinePerLine = 64;  //!< genuine scores per line
    std::size_t impostorPerPair = 8;  //!< impostor scores per ordered
                                      //!< line pair
    double loadImpedanceSigma = 0.3;  //!< per-chip load variation, ohm
    std::size_t wires = 1;            //!< wires monitored per bus;
                                      //!< scores fuse across wires
    FusionConfig fusion;              //!< multi-wire fusion rule (the
                                      //!< default geometric mean is
                                      //!< the paper's §IV-C analysis)
    EnvironmentConditions environment; //!< campaign conditions
    ProcessParams process;            //!< fabrication statistics
    ItdrConfig itdr;                  //!< instrument configuration
    unsigned threads = 0;             //!< campaign worker threads;
                                      //!< 0 => DIVOT_THREADS env var /
                                      //!< hardware concurrency, 1 =>
                                      //!< serial. Results are
                                      //!< bit-identical at any count.

    /**
     * Optional telemetry sink: every measurement lane's iTDR is
     * attached under "itdr.<line name>" and the study accounts scores
     * and bus cycles under "study.*". Lane prefixes are unique, so
     * the stable export is identical at any thread count. Not owned;
     * must outlive run().
     */
    Telemetry *telemetry = nullptr;
};

/** Outcome of one campaign. */
struct StudyResult
{
    std::vector<double> genuine;   //!< genuine similarity scores
    std::vector<double> impostor;  //!< impostor similarity scores
    RocAnalysis roc;               //!< ROC / EER analysis
    double decidability = 0.0;     //!< d-prime separation
    double fittedEer = 0.0;        //!< Gaussian-fit EER Phi(-d'/2)
    uint64_t totalBusCycles = 0;   //!< cost accounting
    uint64_t cacheHits = 0;        //!< trace-cache hits across lanes
    uint64_t cacheMisses = 0;      //!< trace-cache misses across lanes
    uint64_t cacheEvictions = 0;   //!< trace-cache LRU evictions
};

/**
 * Runs genuine/impostor campaigns.
 *
 * The campaign fans out across a util::ThreadPool with a determinism
 * contract: results are bit-identical for a fixed seed at any thread
 * count. Three mechanisms make execution order irrelevant:
 *
 *  1. Every measurement lane — one (phase, line, wire) instrument
 *     sequence — seeds its iTDR and environment from
 *     Rng::forkStable, a pure function of the master seed and the
 *     lane indices, never from shared-stream draws.
 *  2. Measurement wall-clock times (which drive the vibration chirp
 *     and temperature draws) follow a precomputed schedule: slot k of
 *     the canonical measurement enumeration starts at
 *     k * (predicted duration + gap), independent of when any thread
 *     actually executes it.
 *  3. Lanes write disjoint result slots; fusion and ROC analysis run
 *     after the pool barrier, in canonical order.
 */
class GenuineImpostorStudy
{
  public:
    /**
     * @param config campaign parameters
     * @param rng    master random stream
     */
    GenuineImpostorStudy(StudyConfig config, Rng rng);

    /** Execute the campaign and analyze the scores. */
    StudyResult run();

    /**
     * The fabricated lines (wire w of line l at index l*wires + w),
     * available after construction for inspection.
     */
    const std::vector<TransmissionLine> &lines() const { return lines_; }

  private:
    StudyConfig config_;
    Rng rng_;
    std::vector<TransmissionLine> lines_;
    Waveform nominal_;
};

} // namespace divot

#endif // DIVOT_FINGERPRINT_STUDY_HH
