/**
 * @file
 * Enrollment (calibration) storage — the paper's EPROM model.
 *
 * At manufacturing or installation time the iTDR on each side of a
 * bus collects the bus fingerprint and burns it into a local EPROM
 * (Section III, "Calibration"). The paper notes the ROM's secrecy is
 * *not* security-critical: an IIP is useless off its exact physical
 * line, so a leaked fingerprint cannot be replayed. The store
 * therefore offers plain binary persistence with integrity checking
 * (a corrupted calibration must fail loudly, not authenticate junk).
 *
 * Persistence is dual-bank (bootloader style): the image carries two
 * complete copies of the record set — bank A framed from the front of
 * the file, bank B framed from the end — each with its own length,
 * checksum, and per-record CRCs. Any single-byte corruption lands in
 * exactly one bank; loading falls back to the surviving bank and
 * scrubs (rewrites) the image. Version-1 single-copy files remain
 * readable.
 */

#ifndef DIVOT_AUTH_ENROLLMENT_HH
#define DIVOT_AUTH_ENROLLMENT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "fingerprint/fingerprint.hh"
#include "store/io.hh"

namespace divot {

/** Outcome of a dual-bank EPROM load. */
struct EpromLoadReport
{
    bool ok = false;        //!< a complete copy was loaded
    int bankUsed = -1;      //!< 0 = bank A, 1 = bank B, -1 = none
                            //!< (or legacy v1 single copy)
    bool fellBack = false;  //!< bank A was damaged; bank B served
    bool scrubbed = false;  //!< image was rewritten after fallback
    uint64_t records = 0;   //!< records loaded
    std::string detail;     //!< human-readable failure/fallback cause;
                            //!< on bank fallback includes which bank-A
                            //!< record frame failed (index, payload
                            //!< byte offset, and channel id when the
                            //!< record body was still parseable)
    int64_t failedRecordIndex = -1;  //!< bank A record that broke the
                                     //!< strict read (-1 = header/
                                     //!< whole-bank damage)
    int64_t failedRecordOffset = -1; //!< payload byte offset of that
                                     //!< frame (-1 = unknown)
    std::string failedRecordId;      //!< its channel id when readable
};

/**
 * Write-once-per-channel fingerprint store with file persistence.
 */
class EnrollmentStore
{
  public:
    EnrollmentStore() = default;

    /**
     * Record the calibration fingerprint of a channel.
     *
     * @param channel   channel identifier (e.g. "dimm0.clk")
     * @param fp        enrollment fingerprint
     * @param overwrite allow re-calibration of an existing channel
     * @return false when the channel exists and overwrite is false
     */
    bool enroll(const std::string &channel, Fingerprint fp,
                bool overwrite = false);

    /** @return the fingerprint of a channel, if enrolled. */
    std::optional<Fingerprint> lookup(const std::string &channel) const;

    /** @return true when the channel has a calibration record. */
    bool contains(const std::string &channel) const;

    /** @return number of enrolled channels. */
    std::size_t size() const { return store_.size(); }

    /** Remove every record (factory reset). */
    void clear() { store_.clear(); }

    /**
     * Persist all records to a binary file as a dual-bank image (two
     * complete copies, each checksummed whole and per record).
     *
     * @return true on success
     */
    bool saveToFile(const std::string &path) const;

    /**
     * Load records from a binary file, replacing current contents
     * only on success (strong exception safety: any failure leaves
     * the in-memory store untouched). Tries bank A, falls back to
     * bank B when A is damaged, and scrubs the image after a
     * fallback. Fails on missing file, bad magic, or when both banks
     * are damaged.
     */
    bool loadFromFile(const std::string &path);

    /**
     * loadFromFile with full diagnostics.
     *
     * @param path             image path
     * @param scrub_on_fallback rewrite the image when bank A was
     *                          damaged but bank B recovered the data
     */
    EpromLoadReport loadWithReport(const std::string &path,
                                   bool scrub_on_fallback = true);

    /**
     * Test seam: apply a simulated storage fault to every subsequent
     * saveToFile (including the scrub rewrite inside loadWithReport).
     * Pass std::nullopt to clear. Crash-point regression tests use
     * this to cut the power mid-scrub and prove the original image
     * survives.
     */
    void setSaveFault(std::optional<store::WriteFault> fault)
    {
        saveFault_ = fault;
    }

  private:
    std::map<std::string, Fingerprint> store_;
    std::optional<store::WriteFault> saveFault_;
};

} // namespace divot

#endif // DIVOT_AUTH_ENROLLMENT_HH
