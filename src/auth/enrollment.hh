/**
 * @file
 * Enrollment (calibration) storage — the paper's EPROM model.
 *
 * At manufacturing or installation time the iTDR on each side of a
 * bus collects the bus fingerprint and burns it into a local EPROM
 * (Section III, "Calibration"). The paper notes the ROM's secrecy is
 * *not* security-critical: an IIP is useless off its exact physical
 * line, so a leaked fingerprint cannot be replayed. The store
 * therefore offers plain binary persistence with integrity checking
 * (a corrupted calibration must fail loudly, not authenticate junk).
 */

#ifndef DIVOT_AUTH_ENROLLMENT_HH
#define DIVOT_AUTH_ENROLLMENT_HH

#include <map>
#include <optional>
#include <string>

#include "fingerprint/fingerprint.hh"

namespace divot {

/**
 * Write-once-per-channel fingerprint store with file persistence.
 */
class EnrollmentStore
{
  public:
    EnrollmentStore() = default;

    /**
     * Record the calibration fingerprint of a channel.
     *
     * @param channel   channel identifier (e.g. "dimm0.clk")
     * @param fp        enrollment fingerprint
     * @param overwrite allow re-calibration of an existing channel
     * @return false when the channel exists and overwrite is false
     */
    bool enroll(const std::string &channel, Fingerprint fp,
                bool overwrite = false);

    /** @return the fingerprint of a channel, if enrolled. */
    std::optional<Fingerprint> lookup(const std::string &channel) const;

    /** @return true when the channel has a calibration record. */
    bool contains(const std::string &channel) const;

    /** @return number of enrolled channels. */
    std::size_t size() const { return store_.size(); }

    /** Remove every record (factory reset). */
    void clear() { store_.clear(); }

    /**
     * Persist all records to a binary file.
     *
     * @return true on success
     */
    bool saveToFile(const std::string &path) const;

    /**
     * Load records from a binary file, replacing current contents.
     * Fails (returns false) on missing file, bad magic, or a payload
     * checksum mismatch.
     */
    bool loadFromFile(const std::string &path);

  private:
    std::map<std::string, Fingerprint> store_;
};

} // namespace divot

#endif // DIVOT_AUTH_ENROLLMENT_HH
