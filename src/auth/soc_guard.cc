#include "auth/soc_guard.hh"

#include "itdr/budget.hh"
#include "util/logging.hh"

namespace divot {

SocGuard::SocGuard(AuthConfig auth, ItdrConfig itdr, Rng rng)
    : authConfig_(auth), itdrConfig_(itdr), rng_(rng)
{
}

bool
SocGuard::attachChannel(const std::string &name,
                        const TransmissionLine &bus, std::size_t reps)
{
    if (channels_.count(name)) {
        divot_warn("SoC channel '%s' already attached", name.c_str());
        return false;
    }
    auto auth = std::make_unique<Authenticator>(
        authConfig_, itdrConfig_,
        rng_.fork(0x8000 + channels_.size()), name);
    auth->enroll(bus, reps);
    channels_.emplace(name, Channel{std::move(auth), bus});
    names_.push_back(name);
    return true;
}

SocGuard::Channel &
SocGuard::find(const std::string &name)
{
    const auto it = channels_.find(name);
    if (it == channels_.end())
        divot_fatal("unknown SoC channel '%s'", name.c_str());
    return it->second;
}

const SocGuard::Channel &
SocGuard::find(const std::string &name) const
{
    const auto it = channels_.find(name);
    if (it == channels_.end())
        divot_fatal("unknown SoC channel '%s'", name.c_str());
    return it->second;
}

AuthVerdict
SocGuard::monitorChannel(const std::string &name,
                         const TransmissionLine &current)
{
    Channel &ch = find(name);
    ch.last = ch.auth->checkRound(current);
    ch.everChecked = true;
    return ch.last;
}

SocSecurityState
SocGuard::monitorAll(
    const std::map<std::string, TransmissionLine> &current)
{
    for (const std::string &name : names_) {
        const auto it = current.find(name);
        const TransmissionLine &bus =
            it != current.end() ? it->second : find(name).pristine;
        monitorChannel(name, bus);
    }
    return state();
}

SocSecurityState
SocGuard::state() const
{
    SocSecurityState s;
    s.channels = channels_.size();
    for (const auto &[name, ch] : channels_) {
        (void)name;
        if (!ch.everChecked) {
            ++s.healthy;  // calibrated, not yet contradicted
            continue;
        }
        if (ch.last.tamperAlarm)
            ++s.tampered;
        else if (!ch.last.authenticated)
            ++s.mismatched;
        else
            ++s.healthy;
    }
    s.chipTrusted = s.channels > 0 && s.healthy == s.channels;
    return s;
}

const Authenticator &
SocGuard::channel(const std::string &name) const
{
    return *find(name).auth;
}

ResourceEstimate
SocGuard::resourceReport() const
{
    // Bin count from the largest attached line (worst case).
    double worst_rt = 1e-9;
    for (const auto &[name, ch] : channels_) {
        (void)name;
        worst_rt = std::max(worst_rt, ch.pristine.roundTripDelay());
    }
    const MeasurementBudget b = predictBudget(itdrConfig_, worst_rt);
    return estimateResources(itdrConfig_, b.bins);
}

unsigned
SocGuard::totalRegisters() const
{
    return resourceReport().registersForBuses(
        static_cast<unsigned>(channels_.size()));
}

unsigned
SocGuard::totalLuts() const
{
    return resourceReport().lutsForBuses(
        static_cast<unsigned>(channels_.size()));
}

} // namespace divot
