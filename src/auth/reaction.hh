/**
 * @file
 * Reaction policy — what the system does when a check fails
 * (Section III, "Reaction to counter attacks").
 *
 * On the CPU side a fingerprint mismatch means the module may have
 * been swapped: memory operations stop until the fingerprint matches
 * again (avoids reading replayed data or writing secrets to a foreign
 * device). An abnormal-IIP tamper alarm triggers protective actions
 * (alarm, key zeroization hooks). On the memory side the reaction is
 * simply blocking data operations.
 */

#ifndef DIVOT_AUTH_REACTION_HH
#define DIVOT_AUTH_REACTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "auth/verdict.hh"

namespace divot {

/** Which side of the bus this policy protects. */
enum class BusRole { Cpu, Memory };

/** Action taken in response to a verdict. */
enum class ReactionAction
{
    Proceed,        //!< all checks passed; allow the operation
    StallRetry,     //!< CPU side: pause memory ops, re-measure
    BlockAccess,    //!< memory side: gate the column access off
    RaiseAlarm,     //!< notify the platform of a tamper attempt
    ZeroizeKeys,    //!< scrub volatile secrets (hook)
};

/** One logged security event. */
struct SecurityEvent
{
    uint64_t round;
    ReactionAction action;
    double similarity;
    double peakError;
    double location;
    std::string detail;
};

/**
 * Maps authentication verdicts to actions and keeps an audit log.
 */
class ReactionPolicy
{
  public:
    /**
     * @param role which side of the bus is being protected
     * @param zeroize_on_tamper arm the key-zeroization hook
     */
    explicit ReactionPolicy(BusRole role, bool zeroize_on_tamper = false);

    /**
     * Decide the action for a verdict and log it.
     */
    ReactionAction decide(const AuthVerdict &verdict);

    /** @return audit log of non-Proceed events. */
    const std::vector<SecurityEvent> &events() const { return events_; }

    /** @return count of blocked / stalled operations. */
    uint64_t deniedCount() const { return denied_; }

    /** @return count of tamper alarms raised. */
    uint64_t alarmCount() const { return alarms_; }

    /** @return candidate alarms the vote-confirmation stage voted
     *  down (observed via verdicts; these log no event because the
     *  action stays Proceed). */
    uint64_t suppressedCount() const { return suppressed_; }

    /** @return protected role. */
    BusRole role() const { return role_; }

  private:
    BusRole role_;
    bool zeroizeOnTamper_;
    std::vector<SecurityEvent> events_;
    uint64_t denied_ = 0;
    uint64_t alarms_ = 0;
    uint64_t suppressed_ = 0;
};

/** @return printable action name. */
const char *reactionActionName(ReactionAction action);

} // namespace divot

#endif // DIVOT_AUTH_REACTION_HH
