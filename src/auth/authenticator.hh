/**
 * @file
 * Runtime bus authenticator + tamper monitor (Section III,
 * "Monitoring" and "Reaction to counter attacks").
 *
 * One Authenticator guards one bus interface. Each monitoring round
 * it takes a fresh IIP measurement, maintains a sliding average of
 * the last few rounds (the FIFO of IIP values the paper keeps on the
 * memory side), and evaluates two checks:
 *
 *   1. Authentication: similarity of the averaged fingerprint against
 *      the enrolled one — is this the line/module we calibrated with?
 *   2. Tamper: the E_xy error-function peak against the tamper
 *      threshold — did the line itself change (probe, tap, Trojan)?
 *
 * The verdict feeds the ReactionPolicy (block access, halt memory
 * operations, raise an alarm).
 */

#ifndef DIVOT_AUTH_AUTHENTICATOR_HH
#define DIVOT_AUTH_AUTHENTICATOR_HH

#include <deque>
#include <string>

#include "auth/verdict.hh"
#include "fingerprint/fingerprint.hh"
#include "fingerprint/localize.hh"
#include "itdr/itdr.hh"
#include "signal/noise.hh"
#include "txline/txline.hh"

namespace divot {

/** Authenticator tuning. */
struct AuthConfig
{
    double similarityThreshold = 0.35; //!< accept-as-genuine floor
    double tamperThreshold = 5e-7;     //!< E_xy peak alarm level, V^2,
                                       //!< at a full averaging window
    std::size_t averageWindow = 16;    //!< measurements in the sliding
                                       //!< FIFO average
    double warmupSlack = 8.0;          //!< the effective threshold is
                                       //!< tamperThreshold*(1+slack/n)
                                       //!< while the window holds only
                                       //!< n measurements: the noise
                                       //!< variance of the averaged
                                       //!< IIP scales as 1/n, so a
                                       //!< half-filled FIFO needs a
                                       //!< proportionally higher bar
                                       //!< to avoid false alarms

    /** @name Resilience (vote-confirm, retry, degradation ladder). */
    ///@{
    unsigned confirmWindow = 3;    //!< N: fresh re-measurements taken
                                   //!< to confirm a candidate tamper
                                   //!< alarm; 0 restores the legacy
                                   //!< alarm-on-first-trip behavior
    unsigned confirmVotes = 2;     //!< M: votes (of the N) that must
                                   //!< independently see tamper before
                                   //!< TamperAlert is entered
    double voteThresholdScale = 2.5; //!< single-measurement vote bar =
                                   //!< tamperThreshold * this scale —
                                   //!< sits between single-shot noise
                                   //!< (~1x threshold) and the
                                   //!< weakest attack signature (~5x)
    unsigned maxRetries = 2;       //!< re-measure attempts when the
                                   //!< instrument reports unhealthy
    uint64_t retryBackoffCycles = 2048; //!< extra bus cycles yielded
                                   //!< before retry attempt k (linear
                                   //!< backoff: k * this)
    unsigned degradeAfterUnhealthy = 2;   //!< consecutive unhealthy
                                   //!< rounds before Degraded
    unsigned quarantineAfterUnhealthy = 5; //!< consecutive unhealthy
                                   //!< rounds before Quarantine
    double degradedThresholdScale = 2.0; //!< tamper/vote thresholds
                                   //!< are raised by this factor while
                                   //!< Degraded (fewer false alarms
                                   //!< from a shaky instrument)
    unsigned recoveryCleanRounds = 3; //!< consecutive healthy rounds
                                   //!< required to climb one rung of
                                   //!< the ladder back up
    ///@}
};

/**
 * Guards one bus interface with one iTDR.
 */
class Authenticator
{
  public:
    /**
     * @param config  thresholds and window
     * @param itdr    instrument configuration for this interface
     * @param rng     random stream
     * @param channel label for logs ("cpu.dimm0" etc.)
     */
    Authenticator(AuthConfig config, ItdrConfig itdr, Rng rng,
                  std::string channel = "bus");

    /**
     * Calibrate against the pristine line: measures, averages, and
     * stores the enrollment fingerprint; also derives the nominal
     * design response used for residual extraction.
     *
     * @param line pristine line at installation time
     * @param reps measurements to average (>= 1)
     */
    void enroll(const TransmissionLine &line, std::size_t reps = 16);

    /** Adopt an existing enrollment (e.g. loaded from EPROM). */
    void adoptEnrollment(Fingerprint fp, Waveform nominal);

    /**
     * Rehydrate a previously released enrollment without disturbing
     * the monitoring state: unlike adoptEnrollment, the averaging
     * window, lifecycle state, and streak counters are left exactly as
     * they were, so an evict/restore cycle is invisible to every
     * subsequent verdict. The caller owes us the same fingerprint that
     * releaseEnrollment() dropped (the store's job).
     */
    void restoreEnrollment(Fingerprint fp, Waveform nominal);

    /**
     * Drop the enrollment fingerprint and nominal response from
     * memory (fleet LRU eviction). Monitoring state is untouched;
     * checkRound must not run again until restoreEnrollment.
     */
    void releaseEnrollment();

    /** @return true while the enrollment is held in memory. */
    bool enrollmentResident() const { return enrolled_.valid(); }

    /** @return resident footprint of the enrollment data, bytes. */
    std::size_t enrollmentBytes() const;

    /**
     * Demote the channel to PendingReenroll: its durable enrollment
     * record is damaged beyond repair, so no verdict can be served
     * until an operator re-enrolls. Clears the window and the resident
     * enrollment, and returns the synthetic round verdict the fleet
     * layer feeds into fusion (unauthenticated, no evidence).
     */
    AuthVerdict markPendingReenroll();

    /**
     * One monitoring round against the line as it currently exists.
     *
     * @param current_line  line snapshot (possibly tampered/swapped)
     * @param extra_noise   optional EMI at the comparator input
     */
    AuthVerdict checkRound(const TransmissionLine &current_line,
                           NoiseSource *extra_noise = nullptr);

    /** @return current lifecycle state. */
    AuthState state() const { return state_; }

    /** @return enrollment fingerprint (valid after enroll). */
    const Fingerprint &enrolled() const { return enrolled_; }

    /** @return nominal response used for residual extraction. */
    const Waveform &nominal() const { return nominal_; }

    /** @return channel label. */
    const std::string &channel() const { return channel_; }

    /** @return monitoring rounds performed. */
    uint64_t rounds() const { return round_; }

    /** @return total bus cycles consumed by monitoring so far. */
    uint64_t busCyclesConsumed() const { return busCycles_; }

    /** @return the instrument (for budget inspection). */
    const ITdr &instrument() const { return itdr_; }

    /**
     * Attach a fault injector to the underlying instrument (campaign
     * hook; nullptr detaches). Not owned; must outlive this object.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        itdr_.attachFaultInjector(injector);
    }

    /**
     * Point the underlying instrument's SoA strobe sweep at an
     * external scratch arena (fleet batched-scheduling hook; nullptr
     * restores the owned arena). Not owned; must outlive the
     * attachment. See ITdr::attachKernelArena.
     */
    void attachKernelArena(StrobeSoA *arena)
    {
        itdr_.attachKernelArena(arena);
    }

    /** @return consecutive unhealthy rounds on the current streak. */
    unsigned unhealthyStreak() const { return consecutiveUnhealthy_; }

    /** @return candidate alarms voted down since enrollment. */
    uint64_t suppressedAlarms() const { return suppressedAlarms_; }

    /** @return window entries expunged as stale transient spikes. */
    uint64_t expungedVotes() const { return expungedVotes_; }

    /**
     * Attach a telemetry sink: rounds, verdicts, retries/backoff,
     * vote and suppression counts, and state-ladder transitions are
     * accounted under "auth.<channel>" (the instrument itself under
     * "itdr.<channel>"), with one event per state transition. Pass
     * nullptr (or a disabled Telemetry) to detach. Not owned; must
     * outlive this object.
     */
    void attachTelemetry(Telemetry *telemetry);

    /**
     * Stamp subsequent telemetry events with the caller's simulated
     * wall clock (the fleet scheduler's slot * tick). Defaults to 0
     * for standalone use, where the round ordinal still orders events.
     */
    void setWallClock(double seconds) { wallClock_ = seconds; }

  private:
    AuthConfig config_;
    ITdr itdr_;
    std::string channel_;
    AuthState state_ = AuthState::Unenrolled;
    Fingerprint enrolled_;
    Waveform nominal_;
    std::deque<Waveform> window_;  //!< recent raw IIPs (FIFO)
    uint64_t round_ = 0;
    uint64_t busCycles_ = 0;
    unsigned consecutiveUnhealthy_ = 0;
    unsigned cleanStreak_ = 0;     //!< healthy rounds toward recovery
    uint64_t suppressedAlarms_ = 0;
    uint64_t expungedVotes_ = 0;

    /** @name Telemetry plumbing (inert until attachTelemetry). */
    ///@{
    Telemetry *telemetry_ = nullptr;
    std::string tmPrefix_;
    Counter tmRounds_;
    Counter tmAuthOk_;
    Counter tmAuthFail_;
    Counter tmAlarms_;
    Counter tmSuppressed_;
    Counter tmVotesCast_;
    Counter tmVotesFor_;
    Counter tmRetries_;
    Counter tmBackoffCycles_;
    Counter tmExpunged_;
    Counter tmRecalibrations_;
    Counter tmUnhealthyRounds_;
    double wallClock_ = 0.0;
    ///@}

    Fingerprint averagedFingerprint() const;

    /** Transition the lifecycle state, accounting the edge. */
    void setState(AuthState next);

    /**
     * Drop every window entry whose single-measurement fingerprint
     * still trips `vote_bar` — the shared scrub run after a vote-down
     * and on every ladder climb back to Monitoring.
     *
     * @return entries removed
     */
    unsigned expungeStaleVotes(const TransmissionLine &line,
                               double vote_bar);

    /** Measure with bounded retry + linear bus-cycle backoff. */
    IipMeasurement measureWithRetry(const TransmissionLine &line,
                                    NoiseSource *extra_noise,
                                    unsigned &retries);

    /** One confirmation vote: does a fresh single measurement
     *  independently see tamper above the vote bar? Unhealthy
     *  measurements abstain (healthy=false). */
    bool confirmationVote(const TransmissionLine &line,
                          NoiseSource *extra_noise, double vote_bar,
                          bool &healthy);

    /** Ladder descent bookkeeping for an unhealthy round. */
    void noteUnhealthyRound();
};

} // namespace divot

#endif // DIVOT_AUTH_AUTHENTICATOR_HH
