#include "auth/authenticator.hh"

#include "util/logging.hh"

namespace divot {

Authenticator::Authenticator(AuthConfig config, ItdrConfig itdr, Rng rng,
                             std::string channel)
    : config_(config), itdr_(itdr, rng), channel_(std::move(channel))
{
    if (config.tamperThreshold <= 0.0)
        divot_fatal("tamper threshold must be positive (got %g)",
                    config.tamperThreshold);
    if (config.similarityThreshold < 0.0 ||
        config.similarityThreshold > 1.0) {
        divot_fatal("similarity threshold %g outside [0,1]",
                    config.similarityThreshold);
    }
    if (config.averageWindow == 0)
        divot_fatal("average window must be >= 1");
}

void
Authenticator::enroll(const TransmissionLine &line, std::size_t reps)
{
    if (reps == 0)
        divot_fatal("enroll needs at least one measurement");
    // Nominal design response: a uniform line of the same geometry.
    TransmissionLine uniform(
        std::vector<double>(line.segments(),
                            line.sourceImpedance()),
        line.segmentLength(), line.velocity(), line.sourceImpedance(),
        line.sourceImpedance(), line.lossNeperPerMeter(),
        line.name() + ".nominal");
    nominal_ = itdr_.idealIip(uniform);

    std::vector<IipMeasurement> measurements;
    measurements.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
        IipMeasurement m = itdr_.measure(line);
        busCycles_ += m.busCycles;
        measurements.push_back(std::move(m));
    }
    enrolled_ = Fingerprint::enroll(measurements, nominal_, channel_);
    window_.clear();
    state_ = AuthState::Monitoring;
    divot_inform("channel '%s' enrolled after %zu measurements",
                 channel_.c_str(), reps);
}

void
Authenticator::adoptEnrollment(Fingerprint fp, Waveform nominal)
{
    if (!fp.valid())
        divot_fatal("adopting invalid enrollment for channel '%s'",
                    channel_.c_str());
    enrolled_ = std::move(fp);
    nominal_ = std::move(nominal);
    window_.clear();
    state_ = AuthState::Monitoring;
}

Fingerprint
Authenticator::averagedFingerprint() const
{
    Waveform mean = window_.front();
    for (std::size_t i = 1; i < window_.size(); ++i)
        mean += window_[i];
    mean *= 1.0 / static_cast<double>(window_.size());
    IipMeasurement pseudo;
    pseudo.iip = std::move(mean);
    return Fingerprint::fromMeasurement(pseudo, nominal_,
                                        channel_ + ".current");
}

AuthVerdict
Authenticator::checkRound(const TransmissionLine &current_line,
                          NoiseSource *extra_noise)
{
    if (state_ == AuthState::Unenrolled)
        divot_fatal("channel '%s' cannot monitor before enrollment",
                    channel_.c_str());

    IipMeasurement m = itdr_.measure(current_line, extra_noise);
    busCycles_ += m.busCycles;
    window_.push_back(m.iip);
    if (window_.size() > config_.averageWindow)
        window_.pop_front();

    const Fingerprint current = averagedFingerprint();

    AuthVerdict verdict;
    verdict.round = ++round_;
    verdict.similarity = similarity(enrolled_, current);
    verdict.authenticated =
        verdict.similarity >= config_.similarityThreshold;

    const double warm_threshold = config_.tamperThreshold *
        (1.0 + config_.warmupSlack /
                   static_cast<double>(window_.size()));
    const TamperLocalizer warm_localizer(warm_threshold);
    const TamperReport tr =
        warm_localizer.inspect(enrolled_, current, current_line);
    verdict.peakError = tr.peakError;
    verdict.tamperAlarm = tr.detected;
    verdict.tamperLocation = tr.location;

    if (verdict.tamperAlarm)
        state_ = AuthState::TamperAlert;
    else if (!verdict.authenticated)
        state_ = AuthState::Mismatch;
    else
        state_ = AuthState::Monitoring;
    return verdict;
}

} // namespace divot
