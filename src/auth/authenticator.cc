#include "auth/authenticator.hh"

#include "util/logging.hh"

namespace divot {

const char *
authStateName(AuthState state)
{
    switch (state) {
      case AuthState::Unenrolled: return "unenrolled";
      case AuthState::Monitoring: return "monitoring";
      case AuthState::Mismatch: return "mismatch";
      case AuthState::TamperAlert: return "tamper-alert";
      case AuthState::Degraded: return "degraded";
      case AuthState::Quarantine: return "quarantine";
      case AuthState::PendingReenroll: return "pending-reenroll";
    }
    return "unknown";
}

Authenticator::Authenticator(AuthConfig config, ItdrConfig itdr, Rng rng,
                             std::string channel)
    : config_(config), itdr_(itdr, rng), channel_(std::move(channel))
{
    if (config.tamperThreshold <= 0.0)
        divot_fatal("tamper threshold must be positive (got %g)",
                    config.tamperThreshold);
    if (config.similarityThreshold < 0.0 ||
        config.similarityThreshold > 1.0) {
        divot_fatal("similarity threshold %g outside [0,1]",
                    config.similarityThreshold);
    }
    if (config.averageWindow == 0)
        divot_fatal("average window must be >= 1");
    if (config.confirmWindow > 0 &&
        config.confirmVotes > config.confirmWindow) {
        divot_fatal("confirmVotes (%u) cannot exceed confirmWindow (%u)",
                    config.confirmVotes, config.confirmWindow);
    }
    if (config.voteThresholdScale <= 0.0)
        divot_fatal("voteThresholdScale must be positive (got %g)",
                    config.voteThresholdScale);
    if (config.degradedThresholdScale < 1.0)
        divot_fatal("degradedThresholdScale must be >= 1 (got %g)",
                    config.degradedThresholdScale);
    if (config.degradeAfterUnhealthy == 0 ||
        config.quarantineAfterUnhealthy < config.degradeAfterUnhealthy) {
        divot_fatal("degradation ladder needs 1 <= degradeAfterUnhealthy"
                    " (%u) <= quarantineAfterUnhealthy (%u)",
                    config.degradeAfterUnhealthy,
                    config.quarantineAfterUnhealthy);
    }
    if (config.recoveryCleanRounds == 0)
        divot_fatal("recoveryCleanRounds must be >= 1");
}

void
Authenticator::enroll(const TransmissionLine &line, std::size_t reps)
{
    if (reps == 0)
        divot_fatal("enroll needs at least one measurement");
    // Nominal design response: a uniform line of the same geometry.
    TransmissionLine uniform(
        std::vector<double>(line.segments(),
                            line.sourceImpedance()),
        line.segmentLength(), line.velocity(), line.sourceImpedance(),
        line.sourceImpedance(), line.lossNeperPerMeter(),
        line.name() + ".nominal");
    nominal_ = itdr_.idealIip(uniform);

    std::vector<IipMeasurement> measurements;
    measurements.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
        IipMeasurement m = itdr_.measure(line);
        busCycles_ += m.busCycles;
        measurements.push_back(std::move(m));
    }
    enrolled_ = Fingerprint::enroll(measurements, nominal_, channel_);
    window_.clear();
    setState(AuthState::Monitoring);
    divot_inform("channel '%s' enrolled after %zu measurements",
                 channel_.c_str(), reps);
}

void
Authenticator::adoptEnrollment(Fingerprint fp, Waveform nominal)
{
    if (!fp.valid())
        divot_fatal("adopting invalid enrollment for channel '%s'",
                    channel_.c_str());
    enrolled_ = std::move(fp);
    nominal_ = std::move(nominal);
    window_.clear();
    setState(AuthState::Monitoring);
}

void
Authenticator::restoreEnrollment(Fingerprint fp, Waveform nominal)
{
    if (!fp.valid())
        divot_fatal("restoring invalid enrollment for channel '%s'",
                    channel_.c_str());
    enrolled_ = std::move(fp);
    nominal_ = std::move(nominal);
    // Deliberately no window/state reset: a hydrate after eviction
    // must be invisible to the verdict stream.
}

void
Authenticator::releaseEnrollment()
{
    enrolled_ = Fingerprint();
    nominal_ = Waveform();
}

std::size_t
Authenticator::enrollmentBytes() const
{
    return enrolled_.label().size() +
           8 * (enrolled_.raw().size() + enrolled_.residual().size() +
                nominal_.size());
}

AuthVerdict
Authenticator::markPendingReenroll()
{
    if (state_ != AuthState::PendingReenroll) {
        divot_warn("channel '%s': enrollment record lost; channel "
                   "fenced until re-enrolled", channel_.c_str());
        // Whatever the window held was averaged against a calibration
        // we can no longer trust or reproduce.
        window_.clear();
    }
    releaseEnrollment();
    setState(AuthState::PendingReenroll);

    AuthVerdict verdict;
    verdict.round = ++round_;
    verdict.authenticated = false;
    verdict.instrumentHealthy = false; // no evidence, not sickness —
                                       // but fusion must not reuse the
                                       // stale pre-loss score
    verdict.stateAfter = state_;
    tmRounds_.add();
    tmAuthFail_.add();
    return verdict;
}

void
Authenticator::attachTelemetry(Telemetry *telemetry)
{
    if (telemetry == nullptr || !telemetry->enabled()) {
        telemetry_ = nullptr;
        itdr_.attachTelemetry(nullptr, "");
        return;
    }
    telemetry_ = telemetry;
    tmPrefix_ = "auth." + channel_;
    Registry &reg = telemetry->registry();
    tmRounds_ = reg.counter(tmPrefix_ + ".rounds");
    tmAuthOk_ = reg.counter(tmPrefix_ + ".verdicts.authenticated");
    tmAuthFail_ = reg.counter(tmPrefix_ + ".verdicts.rejected");
    tmAlarms_ = reg.counter(tmPrefix_ + ".alarms");
    tmSuppressed_ = reg.counter(tmPrefix_ + ".alarms.suppressed");
    tmVotesCast_ = reg.counter(tmPrefix_ + ".votes.cast");
    tmVotesFor_ = reg.counter(tmPrefix_ + ".votes.for");
    tmRetries_ = reg.counter(tmPrefix_ + ".retries");
    tmBackoffCycles_ = reg.counter(tmPrefix_ + ".backoff_cycles");
    tmExpunged_ = reg.counter(tmPrefix_ + ".expunged");
    tmRecalibrations_ = reg.counter(tmPrefix_ + ".recalibrations");
    tmUnhealthyRounds_ = reg.counter(tmPrefix_ + ".unhealthy_rounds");
    itdr_.attachTelemetry(telemetry, "itdr." + channel_);
}

void
Authenticator::setState(AuthState next)
{
    if (next == state_)
        return;
    if (telemetry_ != nullptr) {
        // Transitions are rare, so per-edge counters are registered on
        // demand instead of pre-declared for every (from, to) pair.
        telemetry_->registry()
            .counter(tmPrefix_ + ".state.to." + authStateName(next))
            .add();
        TelemetryEvent event;
        event.time = wallClock_;
        event.ordinal = round_;
        event.kind = "auth.state";
        event.tag = channel_;
        event.detail = std::string(authStateName(state_)) + "->" +
            authStateName(next);
        telemetry_->events().record(std::move(event));
    }
    state_ = next;
}

Fingerprint
Authenticator::averagedFingerprint() const
{
    Waveform mean = window_.front();
    for (std::size_t i = 1; i < window_.size(); ++i)
        mean += window_[i];
    mean *= 1.0 / static_cast<double>(window_.size());
    IipMeasurement pseudo;
    pseudo.iip = std::move(mean);
    return Fingerprint::fromMeasurement(pseudo, nominal_,
                                        channel_ + ".current");
}

IipMeasurement
Authenticator::measureWithRetry(const TransmissionLine &line,
                                NoiseSource *extra_noise,
                                unsigned &retries)
{
    IipMeasurement m = itdr_.measure(line, extra_noise);
    busCycles_ += m.busCycles;
    retries = 0;
    while (!m.health.ok && retries < config_.maxRetries) {
        ++retries;
        // Linear backoff: yield the bus before retrying so a transient
        // disturbance (EMI burst, arbitration storm) can pass.
        busCycles_ += config_.retryBackoffCycles * retries;
        tmRetries_.add();
        tmBackoffCycles_.add(config_.retryBackoffCycles * retries);
        m = itdr_.measure(line, extra_noise);
        busCycles_ += m.busCycles;
    }
    return m;
}

unsigned
Authenticator::expungeStaleVotes(const TransmissionLine &line,
                                 double vote_bar)
{
    // Scan the whole FIFO, not just the newest entry: a transient
    // spike that was voted down several rounds ago — or that slid in
    // while the ladder sat in Degraded/Quarantine — can still lurk
    // mid-window when trust is restored, poisoning every average
    // until it ages out. (TamperLocalizer::inspect is deterministic
    // and draws no randomness, so this scrub perturbs no streams.)
    const TamperLocalizer localizer(vote_bar);
    unsigned expunged = 0;
    for (std::size_t i = window_.size(); i-- > 0;) {
        IipMeasurement pseudo;
        pseudo.iip = window_[i];
        const Fingerprint single = Fingerprint::fromMeasurement(
            pseudo, nominal_, channel_ + ".expunge");
        if (localizer.inspect(enrolled_, single, line).detected) {
            window_.erase(window_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            ++expunged;
        }
    }
    if (expunged > 0) {
        expungedVotes_ += expunged;
        tmExpunged_.add(expunged);
    }
    return expunged;
}

bool
Authenticator::confirmationVote(const TransmissionLine &line,
                                NoiseSource *extra_noise,
                                double vote_bar, bool &healthy)
{
    unsigned retries = 0;
    IipMeasurement m = measureWithRetry(line, extra_noise, retries);
    healthy = m.health.ok;
    if (!healthy)
        return false;
    const Fingerprint single =
        Fingerprint::fromMeasurement(m, nominal_, channel_ + ".vote");
    const TamperLocalizer localizer(vote_bar);
    return localizer.inspect(enrolled_, single, line).detected;
}

void
Authenticator::noteUnhealthyRound()
{
    ++consecutiveUnhealthy_;
    cleanStreak_ = 0;
    tmUnhealthyRounds_.add();
    if (consecutiveUnhealthy_ >= config_.quarantineAfterUnhealthy) {
        if (state_ != AuthState::Quarantine) {
            divot_warn("channel '%s': %u consecutive unhealthy rounds; "
                       "entering quarantine", channel_.c_str(),
                       consecutiveUnhealthy_);
            // The window holds measurements taken by a sick
            // instrument: discard them rather than average them into
            // future verdicts.
            window_.clear();
        }
        setState(AuthState::Quarantine);
    } else if (consecutiveUnhealthy_ >= config_.degradeAfterUnhealthy &&
               state_ != AuthState::Quarantine) {
        setState(AuthState::Degraded);
    }
}

AuthVerdict
Authenticator::checkRound(const TransmissionLine &current_line,
                          NoiseSource *extra_noise)
{
    if (state_ == AuthState::Unenrolled)
        divot_fatal("channel '%s' cannot monitor before enrollment",
                    channel_.c_str());

    AuthVerdict verdict;
    verdict.round = ++round_;

    // Per-round telemetry accounting shared by every exit path. The
    // handles are inert when no sink is attached, so this is free in
    // the common case.
    auto account = [&](const AuthVerdict &v) {
        tmRounds_.add();
        (v.authenticated ? tmAuthOk_ : tmAuthFail_).add();
        tmVotesCast_.add(v.votesCast);
        tmVotesFor_.add(v.votesFor);
        if (v.tamperAlarm)
            tmAlarms_.add();
        if (v.alarmSuppressed)
            tmSuppressed_.add();
    };

    if (state_ == AuthState::PendingReenroll) {
        // Calibration lost: there is nothing to authenticate against,
        // and spending a measurement would be pure waste. The fleet
        // scheduler normally excludes these channels from selection;
        // this guard keeps a direct caller safe too.
        verdict.authenticated = false;
        verdict.instrumentHealthy = false;
        verdict.stateAfter = state_;
        account(verdict);
        return verdict;
    }

    if (state_ == AuthState::Quarantine) {
        // The instrument is distrusted: re-baseline it and probe for
        // health, but serve no trust decisions from its output.
        itdr_.recalibrate();
        tmRecalibrations_.add();
        IipMeasurement probe =
            measureWithRetry(current_line, extra_noise, verdict.retries);
        verdict.health = probe.health;
        verdict.instrumentHealthy = probe.health.ok;
        verdict.authenticated = false;
        if (probe.health.ok) {
            ++cleanStreak_;
            if (cleanStreak_ >= config_.recoveryCleanRounds) {
                divot_inform("channel '%s': instrument healthy for %u "
                             "rounds after recalibration; leaving "
                             "quarantine", channel_.c_str(),
                             cleanStreak_);
                setState(AuthState::Degraded);
                consecutiveUnhealthy_ = 0;
                cleanStreak_ = 0;
            }
        } else {
            cleanStreak_ = 0;
        }
        verdict.stateAfter = state_;
        account(verdict);
        return verdict;
    }

    if (!enrolled_.valid())
        divot_fatal("channel '%s': monitoring round without a resident "
                    "enrollment (hydrate before probing)",
                    channel_.c_str());

    IipMeasurement m =
        measureWithRetry(current_line, extra_noise, verdict.retries);
    verdict.health = m.health;
    verdict.instrumentHealthy = m.health.ok;

    if (!m.health.ok) {
        // Instrument sick, not tamper: never raise the alarm from a
        // measurement that failed its own health screens, and never
        // let it into the averaging window. Trust goes stale instead:
        // the previous verdict's authentication holds until the
        // ladder drops to Quarantine.
        noteUnhealthyRound();
        verdict.authenticated = state_ != AuthState::Quarantine;
        verdict.stateAfter = state_;
        account(verdict);
        return verdict;
    }
    consecutiveUnhealthy_ = 0;

    window_.push_back(m.iip);
    if (window_.size() > config_.averageWindow)
        window_.pop_front();

    const Fingerprint current = averagedFingerprint();
    verdict.similarity = similarity(enrolled_, current);
    verdict.authenticated =
        verdict.similarity >= config_.similarityThreshold;

    const double ladder_scale = state_ == AuthState::Degraded
        ? config_.degradedThresholdScale : 1.0;
    const double warm_threshold = config_.tamperThreshold *
        (1.0 + config_.warmupSlack /
                   static_cast<double>(window_.size())) *
        ladder_scale;
    verdict.thresholdUsed = warm_threshold;
    const TamperLocalizer warm_localizer(warm_threshold);
    const TamperReport tr =
        warm_localizer.inspect(enrolled_, current, current_line);
    verdict.peakError = tr.peakError;
    verdict.tamperAlarm = tr.detected;
    verdict.tamperLocation = tr.location;

    if (verdict.tamperAlarm && config_.confirmWindow > 0) {
        // M-of-N confirmation: take fresh single measurements and let
        // each vote independently against the single-shot bar. A real
        // attack is still present and trips every vote; a transient
        // glitch already averaged into the window cannot reproduce
        // itself in fresh measurements.
        const double vote_bar = config_.tamperThreshold *
            config_.voteThresholdScale * ladder_scale;
        for (unsigned v = 0; v < config_.confirmWindow; ++v) {
            const unsigned remaining = config_.confirmWindow - v;
            if (verdict.votesFor >= config_.confirmVotes ||
                verdict.votesFor + remaining < config_.confirmVotes) {
                break;  // outcome decided either way
            }
            bool healthy = false;
            const bool saw_tamper = confirmationVote(
                current_line, extra_noise, vote_bar, healthy);
            if (!healthy)
                continue;  // abstain
            ++verdict.votesCast;
            if (saw_tamper)
                ++verdict.votesFor;
        }
        if (verdict.votesFor < config_.confirmVotes) {
            verdict.tamperAlarm = false;
            verdict.alarmSuppressed = true;
            ++suppressedAlarms_;
            // Scrub every window entry still carrying the transient
            // spike so it cannot poison the next rounds' averages.
            expungeStaleVotes(current_line, vote_bar);
        }
    }

    if (verdict.tamperAlarm) {
        setState(AuthState::TamperAlert);
    } else if (!verdict.authenticated) {
        setState(AuthState::Mismatch);
    } else if (state_ == AuthState::Degraded) {
        // Climb back to full trust only after a streak of clean,
        // healthy rounds at the raised threshold.
        ++cleanStreak_;
        if (cleanStreak_ >= config_.recoveryCleanRounds) {
            // A spike voted down (or never even examined) while the
            // ladder sat below Monitoring would otherwise re-enter
            // full-trust averages: scrub against the base vote bar
            // before restoring trust.
            expungeStaleVotes(current_line,
                              config_.tamperThreshold *
                                  config_.voteThresholdScale);
            setState(AuthState::Monitoring);
            cleanStreak_ = 0;
        }
    } else {
        setState(AuthState::Monitoring);
    }
    verdict.stateAfter = state_;
    account(verdict);
    return verdict;
}

} // namespace divot
