#include "auth/reaction.hh"

#include "util/logging.hh"

namespace divot {

const char *
reactionActionName(ReactionAction action)
{
    switch (action) {
      case ReactionAction::Proceed: return "proceed";
      case ReactionAction::StallRetry: return "stall-retry";
      case ReactionAction::BlockAccess: return "block-access";
      case ReactionAction::RaiseAlarm: return "raise-alarm";
      case ReactionAction::ZeroizeKeys: return "zeroize-keys";
    }
    return "?";
}

ReactionPolicy::ReactionPolicy(BusRole role, bool zeroize_on_tamper)
    : role_(role), zeroizeOnTamper_(zeroize_on_tamper)
{
}

ReactionAction
ReactionPolicy::decide(const AuthVerdict &verdict)
{
    ReactionAction action = ReactionAction::Proceed;
    std::string detail;

    if (verdict.alarmSuppressed)
        ++suppressed_;

    if (verdict.tamperAlarm) {
        ++alarms_;
        if (zeroizeOnTamper_) {
            action = ReactionAction::ZeroizeKeys;
            detail = "tamper alarm: zeroizing volatile secrets";
        } else {
            action = ReactionAction::RaiseAlarm;
            detail = "tamper alarm: abnormal IIP";
        }
        ++denied_;
    } else if (!verdict.authenticated) {
        ++denied_;
        if (verdict.stateAfter == AuthState::Quarantine) {
            // Not a mismatch: the instrument itself is distrusted.
            // Fence access off until recalibration clears it, but do
            // not report an attack.
            action = role_ == BusRole::Cpu
                ? ReactionAction::StallRetry
                : ReactionAction::BlockAccess;
            detail = "instrument quarantined: fencing access until "
                     "recalibration succeeds";
        } else if (role_ == BusRole::Cpu) {
            action = ReactionAction::StallRetry;
            detail = "fingerprint mismatch: module may be swapped; "
                     "stalling memory operations";
        } else {
            action = ReactionAction::BlockAccess;
            detail = "fingerprint mismatch: unauthorized requester; "
                     "blocking data access";
        }
    }

    if (action != ReactionAction::Proceed) {
        events_.push_back({verdict.round, action, verdict.similarity,
                           verdict.peakError, verdict.tamperLocation,
                           detail});
        divot_warn("round %llu: %s (S=%.3f, E=%.3g)",
                   static_cast<unsigned long long>(verdict.round),
                   detail.c_str(), verdict.similarity,
                   verdict.peakError);
    }
    return action;
}

} // namespace divot
