/**
 * @file
 * Authentication verdict and lifecycle-state types, shared by the
 * single-channel Authenticator, the fleet layer's FleetAuthenticator,
 * and every verdict consumer (reactions, memsys gating).
 *
 * Hoisted out of authenticator.hh so that code which only *consumes*
 * verdicts — the reaction policy, the memory-system gate, fleet
 * fusion — does not drag in the whole instrument-owning Authenticator
 * (and, transitively, the iTDR) just for these plain structs.
 */

#ifndef DIVOT_AUTH_VERDICT_HH
#define DIVOT_AUTH_VERDICT_HH

#include <cstdint>

#include "itdr/health.hh"

namespace divot {

/**
 * Lifecycle state of an authenticator — also the rungs of the
 * degradation ladder (Monitoring -> Degraded -> Quarantine and back;
 * see DESIGN.md §9.3).
 */
enum class AuthState
{
    Unenrolled,   //!< no calibration fingerprint yet
    Monitoring,   //!< normal operation, checks passing
    Mismatch,     //!< similarity check failing (wrong line/module)
    TamperAlert,  //!< error-function check failing (physical attack)
    Degraded,     //!< instrument health shaky: thresholds raised,
                  //!< stale trust extended while it recovers
    Quarantine,   //!< instrument distrusted: access fenced off,
                  //!< recalibration in progress
    PendingReenroll, //!< enrollment record lost beyond repair (storage
                     //!< damage): the channel is fenced off and takes
                     //!< no instrument slots until an operator
                     //!< re-enrolls it — the instrument itself is fine
};

/** @return printable state name. */
const char *authStateName(AuthState state);

/** Verdict of one monitoring round. */
struct AuthVerdict
{
    bool authenticated = false;  //!< similarity above threshold
    bool tamperAlarm = false;    //!< E_xy peak above threshold
    double similarity = 0.0;     //!< measured similarity score
    double peakError = 0.0;      //!< measured E_xy peak, V^2
    double tamperLocation = 0.0; //!< estimated attack position, m
    uint64_t round = 0;          //!< monitoring round index
    bool instrumentHealthy = true; //!< measurement passed the screens
                                   //!< (after any retries)
    MeasurementHealth health;    //!< screens of the accepted (last)
                                 //!< measurement this round
    unsigned retries = 0;        //!< unhealthy re-measure attempts
    unsigned votesFor = 0;       //!< confirmation votes seeing tamper
    unsigned votesCast = 0;      //!< healthy confirmation votes taken
    bool alarmSuppressed = false; //!< candidate alarm voted down
    double thresholdUsed = 0.0;  //!< effective E_xy bar this round
                                 //!< (warmup slack + ladder scaling)
    AuthState stateAfter = AuthState::Unenrolled; //!< state on exit
};

} // namespace divot

#endif // DIVOT_AUTH_VERDICT_HH
