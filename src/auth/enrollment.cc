#include "auth/enrollment.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.hh"

namespace divot {

namespace {

constexpr uint32_t storeMagic = 0x44495654;  // "DIVT"
constexpr uint32_t storeVersion = 2;         // dual-bank image
constexpr uint32_t legacyVersion = 1;        // single-copy (read-only)
constexpr std::size_t bankHeaderSize = 24;   // magic/ver + len + crc

/** FNV-1a over a byte range — cheap integrity check for the EPROM. */
uint64_t
fnv1a(const std::vector<char> &bytes)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
putU64(std::vector<char> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::vector<char> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putString(std::vector<char> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
putWaveform(std::vector<char> &out, const Waveform &w)
{
    putF64(out, w.dt());
    putF64(out, w.startTime());
    putU64(out, w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        putF64(out, w[i]);
}

class Reader
{
  public:
    Reader(const std::vector<char> &bytes) : bytes_(bytes) {}

    bool
    u64(uint64_t &v)
    {
        if (pos_ + 8 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    bool
    str(std::string &s)
    {
        uint64_t len;
        if (!u64(len) || pos_ + len > bytes_.size())
            return false;
        s.assign(bytes_.begin() + static_cast<long>(pos_),
                 bytes_.begin() + static_cast<long>(pos_ + len));
        pos_ += len;
        return true;
    }

    bool
    waveform(Waveform &w)
    {
        double dt, t0;
        uint64_t n;
        if (!f64(dt) || !f64(t0) || !u64(n))
            return false;
        if (dt <= 0.0 || n > (1ull << 32))
            return false;
        std::vector<double> samples(n);
        for (auto &x : samples) {
            if (!f64(x))
                return false;
        }
        w = Waveform(dt, std::move(samples), t0);
        return true;
    }

    bool
    raw(std::vector<char> &out, uint64_t len)
    {
        if (pos_ + len > bytes_.size())
            return false;
        out.assign(bytes_.begin() + static_cast<long>(pos_),
                   bytes_.begin() + static_cast<long>(pos_ + len));
        pos_ += len;
        return true;
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<char> &bytes_;
    std::size_t pos_ = 0;
};

/**
 * Serialize the record set as a bank payload: record count, then per
 * record a CRC-framed body `[bodyLen][body][fnv1a(body)]`. The frame
 * localizes damage to one record, so a diagnostic pass can tell
 * "record 3 of bank A is bad" instead of just "bank A is bad".
 */
std::vector<char>
buildPayload(const std::map<std::string, Fingerprint> &store)
{
    std::vector<char> payload;
    putU64(payload, store.size());
    for (const auto &[channel, fp] : store) {
        std::vector<char> body;
        putString(body, channel);
        putString(body, fp.label());
        putWaveform(body, fp.raw());
        putWaveform(body, fp.residual());
        putU64(payload, body.size());
        payload.insert(payload.end(), body.begin(), body.end());
        putU64(payload, fnv1a(body));
    }
    return payload;
}

/** Parse a bank payload; false leaves `out` unspecified. */
bool
parsePayload(const std::vector<char> &payload,
             std::map<std::string, Fingerprint> &out)
{
    Reader pr(payload);
    uint64_t count;
    if (!pr.u64(count))
        return false;
    std::map<std::string, Fingerprint> loaded;
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t body_len, crc;
        std::vector<char> body;
        if (!pr.u64(body_len) || !pr.raw(body, body_len) ||
            !pr.u64(crc) || fnv1a(body) != crc) {
            return false;
        }
        Reader br(body);
        std::string channel, label;
        Waveform raw, residual;
        if (!br.str(channel) || !br.str(label) || !br.waveform(raw) ||
            !br.waveform(residual) || !br.done()) {
            return false;
        }
        loaded[channel] = Fingerprint::fromParts(
            std::move(raw), std::move(residual), std::move(label));
    }
    if (!pr.done())
        return false;
    out = std::move(loaded);
    return true;
}

/**
 * Extract and validate bank A: `[magicver][len][crc][payload...]`
 * framed from the front of the image.
 */
bool
readBankA(const std::vector<char> &bytes,
          std::map<std::string, Fingerprint> &out)
{
    if (bytes.size() < bankHeaderSize)
        return false;
    std::vector<char> header(bytes.begin(),
                             bytes.begin() + bankHeaderSize);
    Reader hr(header);
    uint64_t magic_ver, len, crc;
    if (!hr.u64(magic_ver) || !hr.u64(len) || !hr.u64(crc))
        return false;
    if ((magic_ver & 0xffffffffu) != storeMagic ||
        (magic_ver >> 32) != storeVersion) {
        return false;
    }
    if (len > bytes.size() - bankHeaderSize)
        return false;
    std::vector<char> payload(
        bytes.begin() + bankHeaderSize,
        bytes.begin() + static_cast<long>(bankHeaderSize + len));
    if (fnv1a(payload) != crc)
        return false;
    return parsePayload(payload, out);
}

/**
 * Extract and validate bank B: `[...payload][crc][len][magicver]`
 * framed from the END of the image — its trailer fields mirror bank
 * A's header in reverse, so the two banks never share bytes and any
 * single corrupted byte damages exactly one of them.
 */
bool
readBankB(const std::vector<char> &bytes,
          std::map<std::string, Fingerprint> &out)
{
    if (bytes.size() < bankHeaderSize)
        return false;
    std::vector<char> trailer(bytes.end() - bankHeaderSize,
                              bytes.end());
    Reader tr(trailer);
    uint64_t crc, len, magic_ver;
    if (!tr.u64(crc) || !tr.u64(len) || !tr.u64(magic_ver))
        return false;
    if ((magic_ver & 0xffffffffu) != storeMagic ||
        (magic_ver >> 32) != storeVersion) {
        return false;
    }
    if (len > bytes.size() - bankHeaderSize)
        return false;
    const std::size_t payload_end = bytes.size() - bankHeaderSize;
    std::vector<char> payload(
        bytes.begin() + static_cast<long>(payload_end - len),
        bytes.begin() + static_cast<long>(payload_end));
    if (fnv1a(payload) != crc)
        return false;
    return parsePayload(payload, out);
}

/** Legacy v1 single-copy image: `[magicver][checksum][payload]`. */
bool
readLegacyV1(const std::vector<char> &bytes,
             std::map<std::string, Fingerprint> &out)
{
    if (bytes.size() < 16)
        return false;
    std::vector<char> header(bytes.begin(), bytes.begin() + 16);
    std::vector<char> payload(bytes.begin() + 16, bytes.end());
    Reader hr(header);
    uint64_t magic_ver, checksum;
    if (!hr.u64(magic_ver) || !hr.u64(checksum))
        return false;
    if ((magic_ver & 0xffffffffu) != storeMagic ||
        (magic_ver >> 32) != legacyVersion) {
        return false;
    }
    if (fnv1a(payload) != checksum)
        return false;

    // v1 records carry no per-record framing.
    Reader pr(payload);
    uint64_t count;
    if (!pr.u64(count))
        return false;
    std::map<std::string, Fingerprint> loaded;
    for (uint64_t i = 0; i < count; ++i) {
        std::string channel, label;
        Waveform raw, residual;
        if (!pr.str(channel) || !pr.str(label) || !pr.waveform(raw) ||
            !pr.waveform(residual)) {
            return false;
        }
        loaded[channel] = Fingerprint::fromParts(
            std::move(raw), std::move(residual), std::move(label));
    }
    if (!pr.done())
        return false;
    out = std::move(loaded);
    return true;
}

/**
 * Lenient bank-A walk run only after the strict read failed: locate
 * the first record frame that no longer verifies so the operator
 * learns *which* calibration burned, not just "bank A damaged".
 * Offsets are payload-relative (frame start); the id is best-effort —
 * it leads the record body and usually survives a corruption that
 * landed elsewhere in the frame.
 */
void
diagnoseBankA(const std::vector<char> &bytes, EpromLoadReport &report)
{
    if (bytes.size() < bankHeaderSize)
        return;
    std::vector<char> header(bytes.begin(),
                             bytes.begin() + bankHeaderSize);
    Reader hr(header);
    uint64_t magic_ver, len, crc;
    if (!hr.u64(magic_ver) || !hr.u64(len) || !hr.u64(crc))
        return;
    if ((magic_ver & 0xffffffffu) != storeMagic ||
        (magic_ver >> 32) != storeVersion ||
        len > bytes.size() - bankHeaderSize) {
        report.detail += " (bank A header/framing damaged)";
        return;
    }
    std::vector<char> payload(
        bytes.begin() + bankHeaderSize,
        bytes.begin() + static_cast<long>(bankHeaderSize + len));
    Reader pr(payload);
    uint64_t count;
    if (!pr.u64(count))
        return;
    std::size_t offset = 8;
    for (uint64_t index = 0; index < count; ++index) {
        uint64_t body_len = 0, body_crc = 0;
        std::vector<char> body;
        const bool framed = pr.u64(body_len) &&
                            pr.raw(body, body_len) && pr.u64(body_crc);
        if (framed && fnv1a(body) == body_crc) {
            offset += 16 + body_len;
            continue;
        }
        report.failedRecordIndex = static_cast<int64_t>(index);
        report.failedRecordOffset = static_cast<int64_t>(offset);
        Reader br(body);
        std::string id;
        if (br.str(id))
            report.failedRecordId = id;
        report.detail += " (bank A record " + std::to_string(index) +
                         " at offset " + std::to_string(offset);
        if (!report.failedRecordId.empty())
            report.detail += ", id '" + report.failedRecordId + "'";
        report.detail += framed ? " failed its CRC)"
                                : " lost its framing)";
        return;
    }
    report.detail += " (bank A whole-bank checksum failed)";
}

} // namespace

bool
EnrollmentStore::enroll(const std::string &channel, Fingerprint fp,
                        bool overwrite)
{
    if (!fp.valid())
        divot_fatal("enrolling invalid fingerprint for channel '%s'",
                    channel.c_str());
    if (!overwrite && store_.count(channel)) {
        divot_warn("channel '%s' already enrolled; refusing overwrite",
                   channel.c_str());
        return false;
    }
    store_[channel] = std::move(fp);
    return true;
}

std::optional<Fingerprint>
EnrollmentStore::lookup(const std::string &channel) const
{
    const auto it = store_.find(channel);
    if (it == store_.end())
        return std::nullopt;
    return it->second;
}

bool
EnrollmentStore::contains(const std::string &channel) const
{
    return store_.count(channel) != 0;
}

bool
EnrollmentStore::saveToFile(const std::string &path) const
{
    const std::vector<char> payload = buildPayload(store_);
    const uint64_t magic_ver =
        (static_cast<uint64_t>(storeVersion) << 32) | storeMagic;
    const uint64_t crc = fnv1a(payload);

    // Dual-bank image: bank A framed from the front, bank B from the
    // end (trailer fields reversed). The banks share no bytes, so any
    // single corruption leaves one complete copy intact.
    std::vector<char> image;
    putU64(image, magic_ver);
    putU64(image, payload.size());
    putU64(image, crc);
    image.insert(image.end(), payload.begin(), payload.end());
    image.insert(image.end(), payload.begin(), payload.end());
    putU64(image, crc);
    putU64(image, payload.size());
    putU64(image, magic_ver);

    // Atomic replace (temp sibling + flush + rename): a power cut
    // mid-save — including mid-*scrub*, where the file being replaced
    // is the only copy of the fleet's calibrations — leaves either the
    // previous image or the new one, never a torn hybrid.
    const store::WriteFault *fault =
        saveFault_.has_value() ? &*saveFault_ : nullptr;
    return store::atomicWriteFile(path, image, fault);
}

bool
EnrollmentStore::loadFromFile(const std::string &path)
{
    return loadWithReport(path).ok;
}

EpromLoadReport
EnrollmentStore::loadWithReport(const std::string &path,
                                bool scrub_on_fallback)
{
    EpromLoadReport report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.detail = "file not readable";
        return report;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    if (bytes.size() < 16) {
        report.detail = "file too short";
        return report;
    }

    // Build into a local map and swap only on success, so a damaged
    // image never disturbs the in-memory store.
    std::map<std::string, Fingerprint> loaded;

    if (readLegacyV1(bytes, loaded)) {
        report.ok = true;
        report.records = loaded.size();
        report.detail = "legacy v1 single-copy image";
        store_ = std::move(loaded);
        return report;
    }

    if (readBankA(bytes, loaded)) {
        report.ok = true;
        report.bankUsed = 0;
        report.records = loaded.size();
        store_ = std::move(loaded);
        return report;
    }

    if (readBankB(bytes, loaded)) {
        report.ok = true;
        report.bankUsed = 1;
        report.fellBack = true;
        report.records = loaded.size();
        report.detail = "bank A damaged; recovered from bank B";
        diagnoseBankA(bytes, report);
        divot_warn("enrollment file '%s': %s", path.c_str(),
                   report.detail.c_str());
        store_ = std::move(loaded);
        if (scrub_on_fallback) {
            // Scrub: rewrite a pristine dual-bank image so the next
            // corruption again has a healthy sibling to fall back on.
            report.scrubbed = saveToFile(path);
            if (!report.scrubbed) {
                divot_warn("enrollment file '%s': scrub rewrite "
                           "failed", path.c_str());
            }
        }
        return report;
    }

    report.detail = "both banks damaged (or bad magic/version)";
    diagnoseBankA(bytes, report);
    divot_warn("enrollment file '%s' failed integrity check in both "
               "banks", path.c_str());
    return report;
}

} // namespace divot
