#include "auth/enrollment.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.hh"

namespace divot {

namespace {

constexpr uint32_t storeMagic = 0x44495654;  // "DIVT"
constexpr uint32_t storeVersion = 1;

/** FNV-1a over a byte range — cheap integrity check for the EPROM. */
uint64_t
fnv1a(const std::vector<char> &bytes)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
putU64(std::vector<char> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::vector<char> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putString(std::vector<char> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
putWaveform(std::vector<char> &out, const Waveform &w)
{
    putF64(out, w.dt());
    putF64(out, w.startTime());
    putU64(out, w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        putF64(out, w[i]);
}

class Reader
{
  public:
    Reader(const std::vector<char> &bytes) : bytes_(bytes) {}

    bool
    u64(uint64_t &v)
    {
        if (pos_ + 8 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    bool
    str(std::string &s)
    {
        uint64_t len;
        if (!u64(len) || pos_ + len > bytes_.size())
            return false;
        s.assign(bytes_.begin() + static_cast<long>(pos_),
                 bytes_.begin() + static_cast<long>(pos_ + len));
        pos_ += len;
        return true;
    }

    bool
    waveform(Waveform &w)
    {
        double dt, t0;
        uint64_t n;
        if (!f64(dt) || !f64(t0) || !u64(n))
            return false;
        if (dt <= 0.0 || n > (1ull << 32))
            return false;
        std::vector<double> samples(n);
        for (auto &x : samples) {
            if (!f64(x))
                return false;
        }
        w = Waveform(dt, std::move(samples), t0);
        return true;
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<char> &bytes_;
    std::size_t pos_ = 0;
};

} // namespace

bool
EnrollmentStore::enroll(const std::string &channel, Fingerprint fp,
                        bool overwrite)
{
    if (!fp.valid())
        divot_fatal("enrolling invalid fingerprint for channel '%s'",
                    channel.c_str());
    if (!overwrite && store_.count(channel)) {
        divot_warn("channel '%s' already enrolled; refusing overwrite",
                   channel.c_str());
        return false;
    }
    store_[channel] = std::move(fp);
    return true;
}

std::optional<Fingerprint>
EnrollmentStore::lookup(const std::string &channel) const
{
    const auto it = store_.find(channel);
    if (it == store_.end())
        return std::nullopt;
    return it->second;
}

bool
EnrollmentStore::contains(const std::string &channel) const
{
    return store_.count(channel) != 0;
}

bool
EnrollmentStore::saveToFile(const std::string &path) const
{
    std::vector<char> payload;
    putU64(payload, store_.size());
    for (const auto &[channel, fp] : store_) {
        putString(payload, channel);
        putString(payload, fp.label());
        putWaveform(payload, fp.raw());
        putWaveform(payload, fp.residual());
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    std::vector<char> header;
    putU64(header, (static_cast<uint64_t>(storeVersion) << 32) |
                       storeMagic);
    putU64(header, fnv1a(payload));
    out.write(header.data(), static_cast<long>(header.size()));
    out.write(payload.data(), static_cast<long>(payload.size()));
    return static_cast<bool>(out);
}

bool
EnrollmentStore::loadFromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    if (bytes.size() < 16)
        return false;

    std::vector<char> header(bytes.begin(), bytes.begin() + 16);
    std::vector<char> payload(bytes.begin() + 16, bytes.end());
    Reader hr(header);
    uint64_t magic_ver, checksum;
    if (!hr.u64(magic_ver) || !hr.u64(checksum))
        return false;
    if ((magic_ver & 0xffffffffu) != storeMagic) {
        divot_warn("enrollment file '%s' has bad magic", path.c_str());
        return false;
    }
    if ((magic_ver >> 32) != storeVersion) {
        divot_warn("enrollment file '%s' has unsupported version %llu",
                   path.c_str(),
                   static_cast<unsigned long long>(magic_ver >> 32));
        return false;
    }
    if (fnv1a(payload) != checksum) {
        divot_warn("enrollment file '%s' failed integrity check",
                   path.c_str());
        return false;
    }

    Reader pr(payload);
    uint64_t count;
    if (!pr.u64(count))
        return false;
    std::map<std::string, Fingerprint> loaded;
    for (uint64_t i = 0; i < count; ++i) {
        std::string channel, label;
        Waveform raw, residual;
        if (!pr.str(channel) || !pr.str(label) || !pr.waveform(raw) ||
            !pr.waveform(residual)) {
            return false;
        }
        loaded[channel] = Fingerprint::fromParts(
            std::move(raw), std::move(residual), std::move(label));
    }
    if (!pr.done())
        return false;
    store_ = std::move(loaded);
    return true;
}

} // namespace divot
