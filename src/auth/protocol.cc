#include "auth/protocol.hh"

#include "util/logging.hh"

namespace divot {

TwoWayAuthProtocol::TwoWayAuthProtocol(AuthConfig auth, ItdrConfig itdr,
                                       Rng rng, std::string name,
                                       bool zeroize_on_tamper)
    : cpu_(auth, itdr, rng.fork(0x4001), name + ".cpu"),
      memory_(auth, itdr, rng.fork(0x4002), name + ".mem"),
      cpuPolicy_(BusRole::Cpu, zeroize_on_tamper),
      memoryPolicy_(BusRole::Memory, false)
{
}

void
TwoWayAuthProtocol::calibrate(const TransmissionLine &bus,
                              std::size_t reps)
{
    cpu_.enroll(bus, reps);
    const TransmissionLine memory_view = reversedView(bus);
    memory_.enroll(memory_view, reps);
    trusted_ = true;
}

void
TwoWayAuthProtocol::attachFaultInjector(BusRole side,
                                        FaultInjector *injector)
{
    if (side == BusRole::Cpu)
        cpu_.attachFaultInjector(injector);
    else
        memory_.attachFaultInjector(injector);
}

TwoWayOutcome
TwoWayAuthProtocol::monitorRound(const TransmissionLine &current_bus,
                                 NoiseSource *emi)
{
    TwoWayOutcome out;
    out.cpu = cpu_.checkRound(current_bus, emi);
    const TransmissionLine memory_view = reversedView(current_bus);
    out.memory = memory_.checkRound(memory_view, emi);
    out.cpuAction = cpuPolicy_.decide(out.cpu);
    out.memoryAction = memoryPolicy_.decide(out.memory);
    out.busTrusted = out.cpuAction == ReactionAction::Proceed &&
        out.memoryAction == ReactionAction::Proceed;
    trusted_ = out.busTrusted;
    return out;
}

} // namespace divot
