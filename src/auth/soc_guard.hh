/**
 * @file
 * SoC-scale DIVOT deployment: one guard object protecting many buses.
 *
 * The paper's scalability story (Sections I/IV-A and the conclusion):
 * over 90 % of a DIVOT detector's hardware — the phase-stepping PLL,
 * the PDM triangle generator, the reconstruction datapath — is shared
 * by every iTDR on a chip, so protecting a complex SoC's memory bus,
 * I/O links, and storage interfaces costs one full instance plus a
 * small per-lane slice. SocGuard models that deployment: a fleet of
 * named channels with per-channel authenticators, aggregate security
 * state, round-robin monitoring driven by one shared schedule, and
 * the shared-resource cost report.
 */

#ifndef DIVOT_AUTH_SOC_GUARD_HH
#define DIVOT_AUTH_SOC_GUARD_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/authenticator.hh"
#include "auth/reaction.hh"
#include "itdr/resource.hh"
#include "txline/txline.hh"

namespace divot {

/** Aggregate security posture of the whole chip. */
struct SocSecurityState
{
    std::size_t channels = 0;       //!< protected buses
    std::size_t healthy = 0;        //!< channels passing both checks
    std::size_t mismatched = 0;     //!< failing authentication
    std::size_t tampered = 0;       //!< raising tamper alarms
    bool chipTrusted = false;       //!< all channels healthy
};

/**
 * Guards a fleet of buses with shared-iTDR economics.
 */
class SocGuard
{
  public:
    /**
     * @param auth per-channel authenticator tuning
     * @param itdr instrument configuration (shared blocks counted
     *             once in the resource report)
     * @param rng  master random stream; each channel forks it
     */
    SocGuard(AuthConfig auth, ItdrConfig itdr, Rng rng);

    /**
     * Attach and calibrate a bus.
     *
     * @param name channel label (must be unique)
     * @param bus  pristine line at installation time
     * @param reps enrollment measurements
     * @return false when the name is already taken
     */
    bool attachChannel(const std::string &name,
                       const TransmissionLine &bus,
                       std::size_t reps = 16);

    /**
     * One monitoring round of a single channel against its current
     * physical state (channels are typically polled round-robin by
     * the shared schedule; monitorAll sweeps every one).
     */
    AuthVerdict monitorChannel(const std::string &name,
                               const TransmissionLine &current);

    /**
     * Sweep every channel once.
     *
     * @param current per-channel current bus states; channels missing
     *                from the map are measured against their enrolled
     *                pristine line
     */
    SocSecurityState monitorAll(
        const std::map<std::string, TransmissionLine> &current);

    /** @return aggregate state from the most recent verdicts. */
    SocSecurityState state() const;

    /** @return the authenticator guarding one channel. */
    const Authenticator &channel(const std::string &name) const;

    /** @return all channel names in attach order. */
    const std::vector<std::string> &channelNames() const
    {
        return names_;
    }

    /**
     * Hardware cost of this deployment: shared blocks once, per-lane
     * blocks per channel.
     */
    ResourceEstimate resourceReport() const;

    /** @return total registers for the current channel count. */
    unsigned totalRegisters() const;

    /** @return total LUTs for the current channel count. */
    unsigned totalLuts() const;

  private:
    struct Channel
    {
        std::unique_ptr<Authenticator> auth;
        TransmissionLine pristine;
        AuthVerdict last{};
        bool everChecked = false;
    };

    AuthConfig authConfig_;
    ItdrConfig itdrConfig_;
    Rng rng_;
    std::map<std::string, Channel> channels_;
    std::vector<std::string> names_;

    Channel &find(const std::string &name);
    const Channel &find(const std::string &name) const;
};

} // namespace divot

#endif // DIVOT_AUTH_SOC_GUARD_HH
