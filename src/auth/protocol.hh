/**
 * @file
 * Two-way bus authentication protocol (Section III).
 *
 * The CPU-side iTDR and the memory-side iTDR watch the *same*
 * physical bus from opposite ends. The CPU side authenticates "is
 * this the module and bus I was calibrated with?" before trusting
 * reads/writes; the memory side authenticates "is this request
 * really coming over the bus from my calibrated CPU?" before letting
 * the column access proceed. Each side keeps its own enrollment and
 * its own reaction policy. The bus is trusted only while *both*
 * directions pass.
 */

#ifndef DIVOT_AUTH_PROTOCOL_HH
#define DIVOT_AUTH_PROTOCOL_HH

#include <string>

#include "auth/authenticator.hh"
#include "auth/reaction.hh"
#include "txline/txline.hh"

namespace divot {

/** Combined outcome of one two-way monitoring round. */
struct TwoWayOutcome
{
    AuthVerdict cpu;              //!< CPU-side verdict
    AuthVerdict memory;           //!< memory-side verdict
    ReactionAction cpuAction;     //!< CPU-side reaction
    ReactionAction memoryAction;  //!< memory-side reaction
    bool busTrusted = false;      //!< both directions passed
};

/**
 * Pairs a CPU-side and a memory-side authenticator over one bus.
 */
class TwoWayAuthProtocol
{
  public:
    /**
     * @param auth  shared authenticator tuning
     * @param itdr  shared instrument configuration
     * @param rng   master random stream
     * @param name  bus label
     * @param zeroize_on_tamper arm key zeroization on the CPU side
     */
    TwoWayAuthProtocol(AuthConfig auth, ItdrConfig itdr, Rng rng,
                       std::string name = "membus",
                       bool zeroize_on_tamper = false);

    /**
     * Calibrate both sides against the pristine bus (installation
     * time).
     *
     * @param bus  the bus as seen from the CPU end
     * @param reps enrollment measurements per side
     */
    void calibrate(const TransmissionLine &bus, std::size_t reps = 16);

    /**
     * One two-way monitoring round against the current bus state.
     *
     * @param current_bus bus as the CPU currently sees it (tampered /
     *                    swapped copies welcome); the memory side
     *                    automatically sees the reversed view
     * @param emi         optional interference at both comparators
     */
    TwoWayOutcome monitorRound(const TransmissionLine &current_bus,
                               NoiseSource *emi = nullptr);

    /** @return CPU-side authenticator. */
    const Authenticator &cpuSide() const { return cpu_; }

    /** @return memory-side authenticator. */
    const Authenticator &memorySide() const { return memory_; }

    /** @return CPU-side reaction log. */
    const ReactionPolicy &cpuPolicy() const { return cpuPolicy_; }

    /** @return memory-side reaction log. */
    const ReactionPolicy &memoryPolicy() const { return memoryPolicy_; }

    /** @return true while the bus is mutually trusted. */
    bool busTrusted() const { return trusted_; }

    /**
     * Attach a fault injector to one side's instrument (campaign
     * hook; nullptr detaches). Not owned; must outlive the protocol.
     */
    void attachFaultInjector(BusRole side, FaultInjector *injector);

  private:
    Authenticator cpu_;
    Authenticator memory_;
    ReactionPolicy cpuPolicy_;
    ReactionPolicy memoryPolicy_;
    bool trusted_ = false;
};

} // namespace divot

#endif // DIVOT_AUTH_PROTOCOL_HH
