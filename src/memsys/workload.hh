/**
 * @file
 * Synthetic memory workload generators for the protection benches:
 * sequential streaming (row-buffer friendly), uniform random
 * (row-buffer hostile), and a hot/cold mix approximating real access
 * locality.
 */

#ifndef DIVOT_MEMSYS_WORKLOAD_HH
#define DIVOT_MEMSYS_WORKLOAD_HH

#include <cstdint>

#include "memsys/controller.hh"
#include "util/rng.hh"

namespace divot {

/** Workload shapes. */
enum class WorkloadKind { Sequential, Random, HotCold };

/**
 * Generates a stream of memory requests at a configurable intensity.
 */
class WorkloadGenerator
{
  public:
    /**
     * @param kind           access pattern
     * @param footprint      addressable range in words
     * @param requests_per_kcycle average requests injected per 1000
     *                       cycles (Poisson-ish arrival)
     * @param write_fraction fraction of writes
     * @param rng            random stream
     */
    WorkloadGenerator(WorkloadKind kind, uint64_t footprint,
                      double requests_per_kcycle, double write_fraction,
                      Rng rng);

    /**
     * Maybe produce a request this cycle.
     *
     * @param cycle current cycle
     * @param out   filled in when a request is generated
     * @return true when a request was generated
     */
    bool maybeGenerate(uint64_t cycle, MemRequest &out);

    /** @return requests generated so far. */
    uint64_t generated() const { return nextId_; }

  private:
    WorkloadKind kind_;
    uint64_t footprint_;
    double ratePerCycle_;
    double writeFraction_;
    Rng rng_;
    uint64_t nextId_ = 0;
    uint64_t seqAddr_ = 0;
};

} // namespace divot

#endif // DIVOT_MEMSYS_WORKLOAD_HH
