/**
 * @file
 * Memory controller with FR-FCFS scheduling, open-page policy, and
 * periodic refresh — the DRAM control logic of Section III's example
 * design, into which the CPU-side iTDR is integrated.
 *
 * The controller owns a request queue; each cycle it picks the oldest
 * row-hit request (FR-FCFS), falling back to the oldest request,
 * issuing PRE/ACT/RD/WR as the bank state demands. The DIVOT hooks:
 *
 *  - when the CPU-side authenticator distrusts the bus, the
 *    controller *stalls* issuing data commands (reaction: avoid
 *    reading replayed data / writing secrets to a foreign device);
 *  - when the memory-side gate blocks the device, data commands fail
 *    at the SDRAM and the controller counts the rejection.
 */

#ifndef DIVOT_MEMSYS_CONTROLLER_HH
#define DIVOT_MEMSYS_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "memsys/sdram.hh"
#include "telemetry/telemetry.hh"
#include "util/stats.hh"

namespace divot {

/** One memory request from the CPU. */
struct MemRequest
{
    uint64_t id = 0;
    bool isWrite = false;
    uint64_t address = 0;
    uint64_t data = 0;          //!< payload for writes
    uint64_t arrivalCycle = 0;
};

/** Completion record handed to the callback. */
struct MemCompletion
{
    MemRequest request;
    uint64_t completionCycle = 0;
    uint64_t data = 0;          //!< payload for reads
    bool rowHit = false;
    bool failed = false;        //!< rejected after the stall bound
                                //!< expired (no data transferred);
                                //!< the requester must re-issue once
                                //!< trust is re-established
};

/** Controller statistics. */
struct ControllerStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t refreshes = 0;
    uint64_t stalledCycles = 0;   //!< cycles spent distrusting the bus
    uint64_t gateRejections = 0;  //!< device-side blocks observed
    uint64_t failedRequests = 0;  //!< requests rejected at the stall
                                  //!< bound instead of served
    RunningStats latency;         //!< request latency in cycles

    /** @return row-hit fraction of all data commands. */
    double rowHitRate() const;
};

/**
 * The memory controller.
 */
class MemoryController
{
  public:
    using CompletionCallback = std::function<void(const MemCompletion &)>;

    /**
     * @param sdram     the attached device (caller keeps it alive)
     * @param queue_cap request queue capacity
     */
    MemoryController(Sdram &sdram, std::size_t queue_cap = 64);

    /**
     * Enqueue a request.
     *
     * @return false when the queue is full (caller retries later)
     */
    bool enqueue(MemRequest request);

    /** Advance one clock cycle: schedule and issue one command. */
    void tick(uint64_t cycle);

    /** @return true when no requests are queued or in flight. */
    bool idle() const;

    /** Register the completion callback. */
    void onCompletion(CompletionCallback cb) { callback_ = std::move(cb); }

    /**
     * CPU-side DIVOT hook: while distrusted, no new data commands are
     * issued (the paper's "stop normal memory operation until the
     * fingerprint matches again").
     */
    void setBusTrusted(bool trusted) { busTrusted_ = trusted; }

    /** @return whether the controller currently trusts the bus. */
    bool busTrusted() const { return busTrusted_; }

    /**
     * Bound the distrust stall: after `cycles` consecutive stalled
     * cycles with requests waiting, queued requests are rejected with
     * `MemCompletion::failed` instead of waiting forever. 0 (the
     * default) keeps the legacy unbounded stall. The DIVOT gate sets
     * this from the monitoring-round length so a quarantined
     * instrument degrades availability instead of deadlocking the
     * queue.
     */
    void setStallBound(uint64_t cycles) { stallBound_ = cycles; }

    /** @return the configured stall bound (0 = unbounded). */
    uint64_t stallBound() const { return stallBound_; }

    /** @return accumulated statistics. */
    const ControllerStats &stats() const { return stats_; }

    /** @return number of queued requests. */
    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * Attach a telemetry sink: every ControllerStats increment is
     * mirrored into counters under `prefix` (reads, writes, row
     * hits/misses, refreshes, stall cycles, gate rejections, failed
     * completions). Pass nullptr to detach. Not owned; must outlive
     * the controller.
     */
    void attachTelemetry(Telemetry *telemetry,
                         const std::string &prefix = "memctl");

  private:
    struct InFlight
    {
        MemRequest request;
        uint64_t doneCycle;
        bool rowHit;
    };

    /** Queued request plus whether it already needed a PRE/ACT. */
    struct QueuedRequest
    {
        MemRequest request;
        bool missedRow = false;
    };

    Sdram &sdram_;
    std::size_t queueCap_;
    std::deque<QueuedRequest> queue_;
    std::vector<InFlight> inFlight_;
    CompletionCallback callback_;
    ControllerStats stats_;
    bool busTrusted_ = true;
    uint64_t nextRefresh_;
    uint64_t stallBound_ = 0;
    uint64_t stallStreak_ = 0;

    /** @name Telemetry plumbing (inert until attachTelemetry). */
    ///@{
    Counter tmReads_;
    Counter tmWrites_;
    Counter tmRowHits_;
    Counter tmRowMisses_;
    Counter tmRefreshes_;
    Counter tmStalledCycles_;
    Counter tmGateRejections_;
    Counter tmFailedRequests_;
    ///@}

    DramAddress decode(uint64_t address) const;
    void completeFinished(uint64_t cycle);
    void failQueued(uint64_t cycle);
    bool tryIssueFor(QueuedRequest &entry, uint64_t cycle,
                     std::size_t queue_index);
};

} // namespace divot

#endif // DIVOT_MEMSYS_CONTROLLER_HH
