/**
 * @file
 * The DIVOT gate: couples bus authentication to the memory system at
 * cycle granularity (Section III's example design).
 *
 * Monitoring runs *concurrently* with data transfers — the iTDR
 * samples the clock lane's own edges — so a monitoring round costs
 * zero data-bus bandwidth; what it takes is wall-clock time: one
 * round spans `roundCycles` bus cycles (the measurement budget). A
 * verdict therefore applies from the end of the round in which the
 * physical change occurred, which is exactly what bounds DIVOT's
 * detection latency.
 *
 * The gate has two wirings:
 *
 *  - Protocol mode (legacy): a TwoWayAuthProtocol watches one bus
 *    from both ends; the gate trusts the bus while both directions
 *    pass.
 *  - Fleet mode: a ChannelScheduler multiplexes a shared iTDR pool
 *    across the N wires of the bus; the gate trusts the bus on the
 *    *fused* FleetVerdict (geometric-mean similarity across wires,
 *    M-of-N tamper vote), so a single tapped wire can cut memory off
 *    even when its siblings look healthy.
 *
 * Attack scenarios are injected by swapping the "current bus" object
 * at a scheduled cycle: a cold-boot module swap replaces the line
 * wholesale, a probe attach tamper-transforms it, removal restores
 * it. In fleet mode an event targets one wire of the bus.
 */

#ifndef DIVOT_MEMSYS_DIVOT_GATE_HH
#define DIVOT_MEMSYS_DIVOT_GATE_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/fleet_auth.hh"
#include "memsys/controller.hh"
#include "memsys/sdram.hh"
#include "telemetry/telemetry.hh"
#include "txline/txline.hh"

namespace divot {

class TwoWayAuthProtocol;
struct TwoWayOutcome;
class ChannelScheduler;

/** One scheduled change of the physical bus state. */
struct BusEvent
{
    uint64_t cycle;           //!< when the physical change happens
    TransmissionLine newBus;  //!< the bus as it exists afterwards
    std::string description;  //!< for the event log
    std::size_t wire = 0;     //!< targeted wire (fleet mode only)
};

/** Record of a detection. */
struct DetectionRecord
{
    uint64_t attackCycle = 0;    //!< when the physical change happened
    uint64_t detectedCycle = 0;  //!< when DIVOT reacted
    uint64_t latencyCycles = 0;  //!< difference
    double latencySeconds = 0.0; //!< at the bus clock
    std::string attack;          //!< description of the change
};

/**
 * Couples bus authentication to a MemoryController + Sdram pair.
 */
class DivotGate
{
  public:
    /**
     * Protocol mode.
     *
     * @param protocol     calibrated two-way authenticator pair
     * @param controller   CPU-side memory controller to stall
     * @param sdram        device whose accesses get blocked
     * @param pristine_bus the bus as calibrated
     * @param clock_hz     bus clock frequency (latency conversion)
     */
    DivotGate(TwoWayAuthProtocol &protocol, MemoryController &controller,
              Sdram &sdram, TransmissionLine pristine_bus,
              double clock_hz);

    /**
     * Fleet mode: gate on the fused verdict of a multi-wire fleet.
     *
     * @param fleet      calibrated channel scheduler (calibrateAll()
     *                   already done)
     * @param controller CPU-side memory controller to stall
     * @param sdram      device whose accesses get blocked
     * @param clock_hz   bus clock frequency (latency conversion)
     */
    DivotGate(ChannelScheduler &fleet, MemoryController &controller,
              Sdram &sdram, double clock_hz);

    ~DivotGate();

    /** Schedule a physical bus change (attack or repair). */
    void scheduleEvent(BusEvent event);

    /**
     * Advance to `cycle`: apply due bus events and, when a monitoring
     * round completes, evaluate the authentication and drive the
     * controller stall / device gate.
     */
    void tick(uint64_t cycle);

    /** @return monitoring round length in bus cycles. */
    uint64_t roundCycles() const { return roundCycles_; }

    /** @return completed monitoring rounds. */
    uint64_t roundsCompleted() const { return rounds_; }

    /** @return detections observed so far. */
    const std::vector<DetectionRecord> &detections() const
    {
        return detections_;
    }

    /** @return the bus (wire 0 in fleet mode) as it currently
     *  physically exists. */
    const TransmissionLine &currentBus() const { return currentBus_; }

    /** @return last round's two-way outcome, or nullptr before the
     *  first round / in fleet mode. */
    const TwoWayOutcome *lastOutcome() const { return lastOutcome_.get(); }

    /** @return last round's fused fleet verdict, or nullptr before
     *  the first round / in protocol mode. */
    const FleetVerdict *lastFleetVerdict() const
    {
        return haveFleetVerdict_ ? &lastFleet_ : nullptr;
    }

    /**
     * Attach a telemetry sink: monitoring rounds, applied bus events,
     * detections, and trust flips are counted under "gate.*", and bus
     * changes / detections / trust transitions land in the event log
     * timestamped at the bus clock. Also instruments the attached
     * MemoryController under "memctl". Pass nullptr to detach. Not
     * owned; must outlive the gate.
     */
    void attachTelemetry(Telemetry *telemetry);

  private:
    void applyVerdict(bool trusted, bool block_access, uint64_t cycle);

    TwoWayAuthProtocol *protocol_ = nullptr;
    ChannelScheduler *fleet_ = nullptr;
    MemoryController &controller_;
    Sdram &sdram_;
    TransmissionLine currentBus_;
    double clockHz_;
    uint64_t roundCycles_;
    uint64_t nextRoundEnd_;
    uint64_t rounds_ = 0;
    std::vector<BusEvent> pending_;
    std::vector<DetectionRecord> detections_;
    std::unique_ptr<TwoWayOutcome> lastOutcome_;
    FleetVerdict lastFleet_{};
    bool haveFleetVerdict_ = false;
    std::optional<uint64_t> outstandingAttackCycle_;
    std::string outstandingAttack_;

    /** @name Telemetry plumbing (inert until attachTelemetry). */
    ///@{
    Telemetry *telemetry_ = nullptr;
    bool lastTrusted_ = true;
    Counter tmRounds_;
    Counter tmBusEvents_;
    Counter tmDetections_;
    Counter tmTrustFlips_;
    ///@}
};

} // namespace divot

#endif // DIVOT_MEMSYS_DIVOT_GATE_HH
