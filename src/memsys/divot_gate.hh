/**
 * @file
 * The DIVOT gate: couples the two-way bus authentication protocol to
 * the memory system at cycle granularity (Section III's example
 * design).
 *
 * Monitoring runs *concurrently* with data transfers — the iTDR
 * samples the clock lane's own edges — so a monitoring round costs
 * zero data-bus bandwidth; what it takes is wall-clock time: one
 * round spans `roundCycles` bus cycles (the measurement budget). A
 * verdict therefore applies from the end of the round in which the
 * physical change occurred, which is exactly what bounds DIVOT's
 * detection latency.
 *
 * Attack scenarios are injected by swapping the "current bus" object
 * at a scheduled cycle: a cold-boot module swap replaces the line
 * wholesale, a probe attach tamper-transforms it, removal restores
 * it.
 */

#ifndef DIVOT_MEMSYS_DIVOT_GATE_HH
#define DIVOT_MEMSYS_DIVOT_GATE_HH

#include <memory>
#include <optional>
#include <vector>

#include "auth/protocol.hh"
#include "memsys/controller.hh"
#include "memsys/sdram.hh"
#include "txline/txline.hh"

namespace divot {

/** One scheduled change of the physical bus state. */
struct BusEvent
{
    uint64_t cycle;           //!< when the physical change happens
    TransmissionLine newBus;  //!< the bus as it exists afterwards
    std::string description;  //!< for the event log
};

/** Record of a detection. */
struct DetectionRecord
{
    uint64_t attackCycle = 0;    //!< when the physical change happened
    uint64_t detectedCycle = 0;  //!< when DIVOT reacted
    uint64_t latencyCycles = 0;  //!< difference
    double latencySeconds = 0.0; //!< at the bus clock
    std::string attack;          //!< description of the change
};

/**
 * Couples a TwoWayAuthProtocol to a MemoryController + Sdram pair.
 */
class DivotGate
{
  public:
    /**
     * @param protocol     calibrated two-way authenticator pair
     * @param controller   CPU-side memory controller to stall
     * @param sdram        device whose accesses get blocked
     * @param pristine_bus the bus as calibrated
     * @param clock_hz     bus clock frequency (latency conversion)
     */
    DivotGate(TwoWayAuthProtocol &protocol, MemoryController &controller,
              Sdram &sdram, TransmissionLine pristine_bus,
              double clock_hz);

    /** Schedule a physical bus change (attack or repair). */
    void scheduleEvent(BusEvent event);

    /**
     * Advance to `cycle`: apply due bus events and, when a monitoring
     * round completes, evaluate the protocol and drive the controller
     * stall / device gate.
     */
    void tick(uint64_t cycle);

    /** @return monitoring round length in bus cycles. */
    uint64_t roundCycles() const { return roundCycles_; }

    /** @return completed monitoring rounds. */
    uint64_t roundsCompleted() const { return rounds_; }

    /** @return detections observed so far. */
    const std::vector<DetectionRecord> &detections() const
    {
        return detections_;
    }

    /** @return the bus as it currently physically exists. */
    const TransmissionLine &currentBus() const { return currentBus_; }

    /** @return last round's outcome (empty before the first round). */
    const std::optional<TwoWayOutcome> &lastOutcome() const
    {
        return lastOutcome_;
    }

  private:
    TwoWayAuthProtocol &protocol_;
    MemoryController &controller_;
    Sdram &sdram_;
    TransmissionLine currentBus_;
    double clockHz_;
    uint64_t roundCycles_;
    uint64_t nextRoundEnd_;
    uint64_t rounds_ = 0;
    std::vector<BusEvent> pending_;
    std::vector<DetectionRecord> detections_;
    std::optional<TwoWayOutcome> lastOutcome_;
    std::optional<uint64_t> outstandingAttackCycle_;
    std::string outstandingAttack_;
};

} // namespace divot

#endif // DIVOT_MEMSYS_DIVOT_GATE_HH
