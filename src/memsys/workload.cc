#include "memsys/workload.hh"

#include "util/logging.hh"

namespace divot {

WorkloadGenerator::WorkloadGenerator(WorkloadKind kind, uint64_t footprint,
                                     double requests_per_kcycle,
                                     double write_fraction, Rng rng)
    : kind_(kind), footprint_(footprint),
      ratePerCycle_(requests_per_kcycle / 1000.0),
      writeFraction_(write_fraction), rng_(rng)
{
    if (footprint == 0)
        divot_fatal("workload footprint must be >= 1");
    if (requests_per_kcycle <= 0.0)
        divot_fatal("workload rate must be positive (got %g)",
                    requests_per_kcycle);
    if (write_fraction < 0.0 || write_fraction > 1.0)
        divot_fatal("write fraction %g outside [0,1]", write_fraction);
}

bool
WorkloadGenerator::maybeGenerate(uint64_t cycle, MemRequest &out)
{
    if (!rng_.bernoulli(ratePerCycle_))
        return false;

    uint64_t addr = 0;
    switch (kind_) {
      case WorkloadKind::Sequential:
        addr = seqAddr_++ % footprint_;
        break;
      case WorkloadKind::Random:
        addr = rng_.uniformInt(footprint_);
        break;
      case WorkloadKind::HotCold:
        // 90 % of accesses in the hot 10 % of the footprint.
        if (rng_.bernoulli(0.9))
            addr = rng_.uniformInt(std::max<uint64_t>(footprint_ / 10, 1));
        else
            addr = rng_.uniformInt(footprint_);
        break;
    }

    out = MemRequest{};
    out.id = ++nextId_;
    out.isWrite = rng_.bernoulli(writeFraction_);
    out.address = addr;
    out.data = out.isWrite ? rng_.next() : 0;
    out.arrivalCycle = cycle;
    return true;
}

} // namespace divot
