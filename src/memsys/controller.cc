#include "memsys/controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace divot {

double
ControllerStats::rowHitRate() const
{
    const uint64_t total = rowHits + rowMisses;
    if (total == 0)
        return 0.0;
    return static_cast<double>(rowHits) / static_cast<double>(total);
}

MemoryController::MemoryController(Sdram &sdram, std::size_t queue_cap)
    : sdram_(sdram), queueCap_(queue_cap),
      nextRefresh_(sdram.timing().tREFI)
{
    if (queue_cap == 0)
        divot_fatal("controller queue capacity must be >= 1");
}

void
MemoryController::attachTelemetry(Telemetry *telemetry,
                                  const std::string &prefix)
{
    if (telemetry == nullptr || !telemetry->enabled()) {
        tmReads_ = Counter();
        tmWrites_ = Counter();
        tmRowHits_ = Counter();
        tmRowMisses_ = Counter();
        tmRefreshes_ = Counter();
        tmStalledCycles_ = Counter();
        tmGateRejections_ = Counter();
        tmFailedRequests_ = Counter();
        return;
    }
    Registry &reg = telemetry->registry();
    tmReads_ = reg.counter(prefix + ".reads");
    tmWrites_ = reg.counter(prefix + ".writes");
    tmRowHits_ = reg.counter(prefix + ".row_hits");
    tmRowMisses_ = reg.counter(prefix + ".row_misses");
    tmRefreshes_ = reg.counter(prefix + ".refreshes");
    tmStalledCycles_ = reg.counter(prefix + ".stalled_cycles");
    tmGateRejections_ = reg.counter(prefix + ".gate_rejections");
    tmFailedRequests_ = reg.counter(prefix + ".failed_requests");
}

bool
MemoryController::enqueue(MemRequest request)
{
    if (queue_.size() >= queueCap_)
        return false;
    queue_.push_back({std::move(request), false});
    return true;
}

DramAddress
MemoryController::decode(uint64_t address) const
{
    const auto &g = sdram_.geometry();
    // Row-interleaved mapping: col bits, then bank, then row — keeps
    // sequential streams in the open row while spreading rows across
    // banks.
    DramAddress a;
    a.col = static_cast<unsigned>(address % g.colsPerRow);
    address /= g.colsPerRow;
    a.bank = static_cast<unsigned>(address % g.banks);
    address /= g.banks;
    a.row = static_cast<unsigned>(address % g.rowsPerBank);
    return a;
}

void
MemoryController::completeFinished(uint64_t cycle)
{
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
        if (it->doneCycle <= cycle) {
            MemCompletion done;
            done.request = it->request;
            done.completionCycle = it->doneCycle;
            done.rowHit = it->rowHit;
            if (it->request.isWrite) {
                sdram_.poke(it->request.address, it->request.data);
            } else {
                done.data = sdram_.peek(it->request.address);
            }
            stats_.latency.add(static_cast<double>(
                it->doneCycle - it->request.arrivalCycle));
            if (callback_)
                callback_(done);
            it = inFlight_.erase(it);
        } else {
            ++it;
        }
    }
}

void
MemoryController::failQueued(uint64_t cycle)
{
    while (!queue_.empty()) {
        MemCompletion done;
        done.request = queue_.front().request;
        done.completionCycle = cycle;
        done.failed = true;
        ++stats_.failedRequests;
        tmFailedRequests_.add();
        queue_.pop_front();
        if (callback_)
            callback_(done);
    }
}

bool
MemoryController::tryIssueFor(QueuedRequest &entry, uint64_t cycle,
                              std::size_t queue_index)
{
    const MemRequest &req = entry.request;
    const DramAddress addr = decode(req.address);
    const DramCommand data_cmd =
        req.isWrite ? DramCommand::Write : DramCommand::Read;
    const long open = sdram_.openRow(addr.bank);

    if (open == static_cast<long>(addr.row)) {
        if (sdram_.canIssue(data_cmd, addr, cycle)) {
            const uint64_t done = sdram_.issue(data_cmd, addr, cycle);
            // A request that needed its own PRE/ACT is a row miss even
            // though the row is open by the time the column command
            // issues.
            const bool hit = !entry.missedRow;
            inFlight_.push_back({req, done, hit});
            if (hit) {
                ++stats_.rowHits;
                tmRowHits_.add();
            } else {
                ++stats_.rowMisses;
                tmRowMisses_.add();
            }
            if (req.isWrite) {
                ++stats_.writes;
                tmWrites_.add();
            } else {
                ++stats_.reads;
                tmReads_.add();
            }
            queue_.erase(queue_.begin() + static_cast<long>(queue_index));
            return true;
        }
        // Row open but device not ready — possibly the DIVOT gate.
        if (sdram_.accessBlocked()) {
            sdram_.noteGateRejection();
            ++stats_.gateRejections;
            tmGateRejections_.add();
        }
        return false;
    }
    if (open == -1) {
        if (sdram_.canIssue(DramCommand::Activate, addr, cycle)) {
            sdram_.issue(DramCommand::Activate, addr, cycle);
            entry.missedRow = true;
            return true;
        }
        return false;
    }
    if (sdram_.canIssue(DramCommand::Precharge, addr, cycle)) {
        sdram_.issue(DramCommand::Precharge, addr, cycle);
        entry.missedRow = true;
        return true;
    }
    return false;
}

void
MemoryController::tick(uint64_t cycle)
{
    completeFinished(cycle);

    // Refresh has priority once due; issue when all banks are closed,
    // closing them as needed.
    if (cycle >= nextRefresh_) {
        DramAddress dummy{0, 0, 0};
        if (sdram_.canIssue(DramCommand::Refresh, dummy, cycle)) {
            sdram_.issue(DramCommand::Refresh, dummy, cycle);
            ++stats_.refreshes;
            tmRefreshes_.add();
            nextRefresh_ += sdram_.timing().tREFI;
            return;
        }
        // Close one open bank to make progress toward refresh.
        for (unsigned b = 0; b < sdram_.geometry().banks; ++b) {
            DramAddress addr{b, 0, 0};
            if (sdram_.openRow(b) != -1 &&
                sdram_.canIssue(DramCommand::Precharge, addr, cycle)) {
                sdram_.issue(DramCommand::Precharge, addr, cycle);
                return;
            }
        }
        return;
    }

    if (queue_.empty())
        return;

    if (!busTrusted_) {
        // CPU-side reaction: stall all data traffic while the bus
        // fingerprint mismatches.
        ++stats_.stalledCycles;
        tmStalledCycles_.add();
        ++stallStreak_;
        if (stallBound_ != 0 && stallStreak_ >= stallBound_) {
            // The stall bound expired (instrument degraded or
            // quarantined for good): reject the waiting requests
            // rather than deadlock the queue.
            failQueued(cycle);
        }
        return;
    }
    stallStreak_ = 0;

    // FR-FCFS: oldest row-hit first.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const DramAddress addr = decode(queue_[i].request.address);
        if (sdram_.openRow(addr.bank) == static_cast<long>(addr.row)) {
            if (tryIssueFor(queue_[i], cycle, i))
                return;
        }
    }
    // Fall back to the oldest request.
    tryIssueFor(queue_.front(), cycle, 0);
}

bool
MemoryController::idle() const
{
    return queue_.empty() && inFlight_.empty();
}

} // namespace divot
