#include "memsys/system.hh"

#include "txline/tamper.hh"
#include "util/logging.hh"

namespace divot {

TransmissionLine
ProtectedMemorySystem::fabricateBus(const MemorySystemConfig &config,
                                    Rng &rng)
{
    ManufacturingProcess fab(config.process, rng.fork(0x5001));
    auto z = fab.drawImpedanceProfile(config.busLength,
                                      config.segmentLength);
    return TransmissionLine(std::move(z), config.segmentLength,
                            config.process.velocity,
                            config.process.nominalImpedance,
                            config.process.nominalImpedance +
                                rng.gaussian(0.0, 0.3),
                            config.process.lossNeperPerMeter, "membus");
}

ProtectedMemorySystem::ProtectedMemorySystem(MemorySystemConfig config,
                                             Rng rng)
    : config_(config), rng_(rng), bus_(fabricateBus(config, rng_))
{
    sdram_ = std::make_unique<Sdram>(config_.timing, config_.geometry);
    controller_ = std::make_unique<MemoryController>(*sdram_);
    controller_->onCompletion([this](const MemCompletion &c) {
        if (c.failed)
            ++failed_;
        else
            ++completed_;
    });

    ItdrConfig itdr = config_.itdr;
    itdr.pll.clockFrequency = config_.clockHz;
    protocol_ = std::make_unique<TwoWayAuthProtocol>(
        config_.auth, itdr, rng_.fork(0x5002), "membus");
    protocol_->calibrate(bus_, config_.enrollReps);

    gate_ = std::make_unique<DivotGate>(*protocol_, *controller_,
                                        *sdram_, bus_, config_.clockHz);
    if (config_.stallBoundRounds > 0) {
        controller_->setStallBound(config_.stallBoundRounds *
                                   gate_->roundCycles());
    }
    workload_ = std::make_unique<WorkloadGenerator>(
        config_.workload, config_.footprint, config_.requestsPerKcycle,
        config_.writeFraction, rng_.fork(0x5003));
}

void
ProtectedMemorySystem::scheduleBusEvent(uint64_t cycle,
                                        TransmissionLine new_bus,
                                        std::string description)
{
    gate_->scheduleEvent({cycle, std::move(new_bus),
                          std::move(description)});
}

void
ProtectedMemorySystem::scheduleColdBootSwap(uint64_t cycle)
{
    // The attacker moves the module to a different machine (or swaps
    // in a different module): the CPU now talks over a *different*
    // physical line with a different termination.
    MemorySystemConfig foreign = config_;
    Rng foreign_rng = rng_.fork(0x5004 + cycle);
    TransmissionLine other = fabricateBus(foreign, foreign_rng);
    other.setName("foreign-bus");
    scheduleBusEvent(cycle, std::move(other),
                     "cold-boot module swap (foreign bus + module)");
}

void
ProtectedMemorySystem::scheduleProbeAttach(uint64_t cycle,
                                           double position)
{
    MagneticProbe probe(position);
    scheduleBusEvent(cycle, probe.apply(bus_),
                     "magnetic probe attached at " +
                         std::to_string(position * 100.0) + "% of bus");
}

void
ProtectedMemorySystem::run(uint64_t cycles)
{
    const uint64_t end = cycle_ + cycles;
    MemRequest req;
    while (cycle_ < end) {
        if (workload_->maybeGenerate(cycle_, req)) {
            if (controller_->enqueue(req))
                ++injected_;
        }
        gate_->tick(cycle_);
        controller_->tick(cycle_);
        ++cycle_;
    }
}

MemorySystemReport
ProtectedMemorySystem::report() const
{
    MemorySystemReport r;
    r.controller = controller_->stats();
    r.cyclesRun = cycle_;
    r.completed = completed_;
    r.failed = failed_;
    r.injected = injected_;
    r.monitoringRounds = gate_->roundsCompleted();
    r.gateRejections = sdram_->gateRejections();
    r.detections = gate_->detections();
    return r;
}

} // namespace divot
