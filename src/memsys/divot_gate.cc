#include "memsys/divot_gate.hh"

#include <algorithm>

#include "itdr/budget.hh"
#include "util/logging.hh"

namespace divot {

DivotGate::DivotGate(TwoWayAuthProtocol &protocol,
                     MemoryController &controller, Sdram &sdram,
                     TransmissionLine pristine_bus, double clock_hz)
    : protocol_(protocol), controller_(controller), sdram_(sdram),
      currentBus_(std::move(pristine_bus)), clockHz_(clock_hz)
{
    if (clock_hz <= 0.0)
        divot_fatal("bus clock must be positive (got %g)", clock_hz);
    const MeasurementBudget budget = predictBudget(
        protocol_.cpuSide().instrument().config(),
        currentBus_.roundTripDelay());
    roundCycles_ = std::max<uint64_t>(budget.expectedCycles, 1);
    nextRoundEnd_ = roundCycles_;
}

void
DivotGate::scheduleEvent(BusEvent event)
{
    pending_.push_back(std::move(event));
    std::sort(pending_.begin(), pending_.end(),
              [](const BusEvent &a, const BusEvent &b) {
                  return a.cycle < b.cycle;
              });
}

void
DivotGate::tick(uint64_t cycle)
{
    // Apply due physical changes.
    while (!pending_.empty() && pending_.front().cycle <= cycle) {
        currentBus_ = pending_.front().newBus;
        if (!outstandingAttackCycle_) {
            outstandingAttackCycle_ = pending_.front().cycle;
            outstandingAttack_ = pending_.front().description;
        }
        divot_inform("cycle %llu: bus change: %s",
                     static_cast<unsigned long long>(
                         pending_.front().cycle),
                     pending_.front().description.c_str());
        pending_.erase(pending_.begin());
    }

    if (cycle < nextRoundEnd_)
        return;

    // A monitoring round just completed: evaluate the protocol on the
    // bus as it now exists.
    nextRoundEnd_ += roundCycles_;
    ++rounds_;
    lastOutcome_ = protocol_.monitorRound(currentBus_);

    const bool trusted = lastOutcome_->busTrusted;
    controller_.setBusTrusted(trusted);
    sdram_.setAccessBlocked(
        lastOutcome_->memoryAction == ReactionAction::BlockAccess ||
        lastOutcome_->memory.tamperAlarm);

    if (!trusted && outstandingAttackCycle_) {
        DetectionRecord rec;
        rec.attackCycle = *outstandingAttackCycle_;
        rec.detectedCycle = cycle;
        rec.latencyCycles = cycle - rec.attackCycle;
        rec.latencySeconds =
            static_cast<double>(rec.latencyCycles) / clockHz_;
        rec.attack = outstandingAttack_;
        detections_.push_back(rec);
        outstandingAttackCycle_.reset();
        outstandingAttack_.clear();
    }
}

} // namespace divot
