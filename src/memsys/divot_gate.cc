#include "memsys/divot_gate.hh"

#include <algorithm>

#include "auth/protocol.hh"
#include "fleet/channel_scheduler.hh"
#include "itdr/budget.hh"
#include "util/logging.hh"

namespace divot {

DivotGate::DivotGate(TwoWayAuthProtocol &protocol,
                     MemoryController &controller, Sdram &sdram,
                     TransmissionLine pristine_bus, double clock_hz)
    : protocol_(&protocol), controller_(controller), sdram_(sdram),
      currentBus_(std::move(pristine_bus)), clockHz_(clock_hz)
{
    if (clock_hz <= 0.0)
        divot_fatal("bus clock must be positive (got %g)", clock_hz);
    const MeasurementBudget budget = predictBudget(
        protocol_->cpuSide().instrument().config(),
        currentBus_.roundTripDelay());
    roundCycles_ = std::max<uint64_t>(budget.expectedCycles, 1);
    nextRoundEnd_ = roundCycles_;
}

DivotGate::DivotGate(ChannelScheduler &fleet,
                     MemoryController &controller, Sdram &sdram,
                     double clock_hz)
    : fleet_(&fleet), controller_(controller), sdram_(sdram),
      currentBus_(fleet.channel(0).currentLine()), clockHz_(clock_hz)
{
    if (clock_hz <= 0.0)
        divot_fatal("bus clock must be positive (got %g)", clock_hz);
    // One gate round = one scheduler tick = the slowest wire's
    // measurement budget (tickDuration() is the same quantity in
    // seconds).
    uint64_t cycles = 1;
    for (std::size_t c = 0; c < fleet_->channelCount(); ++c)
        cycles = std::max(cycles, fleet_->channel(c).roundCycles());
    roundCycles_ = cycles;
    nextRoundEnd_ = roundCycles_;
}

DivotGate::~DivotGate() = default;

void
DivotGate::attachTelemetry(Telemetry *telemetry)
{
    if (telemetry == nullptr || !telemetry->enabled()) {
        telemetry_ = nullptr;
        tmRounds_ = Counter();
        tmBusEvents_ = Counter();
        tmDetections_ = Counter();
        tmTrustFlips_ = Counter();
        controller_.attachTelemetry(nullptr);
        return;
    }
    telemetry_ = telemetry;
    Registry &reg = telemetry_->registry();
    tmRounds_ = reg.counter("gate.rounds");
    tmBusEvents_ = reg.counter("gate.bus_events");
    tmDetections_ = reg.counter("gate.detections");
    tmTrustFlips_ = reg.counter("gate.trust_flips");
    controller_.attachTelemetry(telemetry_);
}

void
DivotGate::scheduleEvent(BusEvent event)
{
    if (fleet_ && event.wire >= fleet_->channelCount())
        divot_fatal("bus event targets wire %zu of a %zu-wire fleet",
                    event.wire, fleet_->channelCount());
    pending_.push_back(std::move(event));
    std::sort(pending_.begin(), pending_.end(),
              [](const BusEvent &a, const BusEvent &b) {
                  return a.cycle < b.cycle;
              });
}

void
DivotGate::applyVerdict(bool trusted, bool block_access, uint64_t cycle)
{
    controller_.setBusTrusted(trusted);
    sdram_.setAccessBlocked(block_access);

    if (!trusted && outstandingAttackCycle_) {
        DetectionRecord rec;
        rec.attackCycle = *outstandingAttackCycle_;
        rec.detectedCycle = cycle;
        rec.latencyCycles = cycle - rec.attackCycle;
        rec.latencySeconds =
            static_cast<double>(rec.latencyCycles) / clockHz_;
        rec.attack = outstandingAttack_;
        if (telemetry_ != nullptr) {
            tmDetections_.add();
            TelemetryEvent event;
            event.time = static_cast<double>(cycle) / clockHz_;
            event.ordinal = cycle;
            event.kind = "gate.detection";
            event.tag = "gate";
            event.detail = rec.attack;
            telemetry_->events().record(std::move(event));
        }
        detections_.push_back(rec);
        outstandingAttackCycle_.reset();
        outstandingAttack_.clear();
    }

    if (telemetry_ != nullptr && trusted != lastTrusted_) {
        tmTrustFlips_.add();
        TelemetryEvent event;
        event.time = static_cast<double>(cycle) / clockHz_;
        event.ordinal = cycle;
        event.kind = "gate.trust";
        event.tag = "gate";
        event.detail = trusted
            ? "untrusted->trusted" : "trusted->untrusted";
        telemetry_->events().record(std::move(event));
    }
    lastTrusted_ = trusted;
}

void
DivotGate::tick(uint64_t cycle)
{
    // Apply due physical changes.
    while (!pending_.empty() && pending_.front().cycle <= cycle) {
        BusEvent &event = pending_.front();
        if (fleet_) {
            if (event.wire == 0)
                currentBus_ = event.newBus;
            fleet_->channel(event.wire).replaceLine(
                std::move(event.newBus));
        } else {
            currentBus_ = std::move(event.newBus);
        }
        if (!outstandingAttackCycle_) {
            outstandingAttackCycle_ = event.cycle;
            outstandingAttack_ = event.description;
        }
        if (telemetry_ != nullptr) {
            tmBusEvents_.add();
            TelemetryEvent log;
            log.time = static_cast<double>(event.cycle) / clockHz_;
            log.ordinal = event.cycle;
            log.kind = "bus.event";
            log.tag = "gate";
            log.detail = event.description;
            telemetry_->events().record(std::move(log));
        }
        divot_inform("cycle %llu: bus change: %s",
                     static_cast<unsigned long long>(event.cycle),
                     event.description.c_str());
        pending_.erase(pending_.begin());
    }

    if (cycle < nextRoundEnd_)
        return;

    // A monitoring round just completed: evaluate on the bus as it
    // now exists.
    nextRoundEnd_ += roundCycles_;
    ++rounds_;
    tmRounds_.add();

    if (fleet_) {
        const FleetRound round = fleet_->tick();
        lastFleet_ = round.fused;
        haveFleetVerdict_ = true;
        applyVerdict(round.fused.busTrusted, round.fused.tamperAlarm,
                     cycle);
        return;
    }

    if (lastOutcome_)
        *lastOutcome_ = protocol_->monitorRound(currentBus_);
    else
        lastOutcome_ = std::make_unique<TwoWayOutcome>(
            protocol_->monitorRound(currentBus_));

    applyVerdict(
        lastOutcome_->busTrusted,
        lastOutcome_->memoryAction == ReactionAction::BlockAccess ||
            lastOutcome_->memory.tamperAlarm,
        cycle);
}

} // namespace divot
