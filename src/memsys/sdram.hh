/**
 * @file
 * Cycle-level SDRAM device model.
 *
 * Banks with row buffers, the classic command set (ACT / RD / WR /
 * PRE / REF) and the JEDEC-style timing constraints that matter for
 * scheduling (tRCD, CL, tRP, tRAS, tRFC, tREFI). Data contents are
 * stored so end-to-end examples can demonstrate what an attacker
 * does and does not get to read. The device also carries the
 * memory-side DIVOT gate hook: when the module's authenticator is
 * unhappy, column accesses are rejected at the device (Section III:
 * "the column address is gated by the authentication result").
 */

#ifndef DIVOT_MEMSYS_SDRAM_HH
#define DIVOT_MEMSYS_SDRAM_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace divot {

/** Timing parameters in controller clock cycles. */
struct SdramTiming
{
    unsigned tRCD = 10;   //!< ACT to RD/WR
    unsigned tCL = 10;    //!< RD to data
    unsigned tWL = 8;     //!< WR to data
    unsigned tRP = 10;    //!< PRE to ACT
    unsigned tRAS = 24;   //!< ACT to PRE
    unsigned tRFC = 74;   //!< REF to any
    unsigned tREFI = 1950; //!< average refresh interval
    unsigned burstCycles = 4; //!< data burst duration
};

/** Geometry of the device. */
struct SdramGeometry
{
    unsigned banks = 8;
    unsigned rowsPerBank = 1u << 14;
    unsigned colsPerRow = 1u << 10;
};

/** SDRAM command types. */
enum class DramCommand { Activate, Read, Write, Precharge, Refresh };

/** Decoded device address. */
struct DramAddress
{
    unsigned bank;
    unsigned row;
    unsigned col;
};

/**
 * The SDRAM device.
 */
class Sdram
{
  public:
    /**
     * @param timing   timing parameters
     * @param geometry bank/row/column organization
     */
    Sdram(SdramTiming timing, SdramGeometry geometry);

    /**
     * @return true when `cmd` to `addr` respects every timing
     * constraint at `cycle`.
     */
    bool canIssue(DramCommand cmd, const DramAddress &addr,
                  uint64_t cycle) const;

    /**
     * Issue a command (caller must have checked canIssue).
     *
     * @return for Read/Write: the cycle at which data completes;
     *         otherwise the cycle the bank becomes ready
     */
    uint64_t issue(DramCommand cmd, const DramAddress &addr,
                   uint64_t cycle);

    /** @return open row of a bank, or -1 when closed. */
    long openRow(unsigned bank) const;

    /** @return true when the device-side gate currently blocks data. */
    bool accessBlocked() const { return blocked_; }

    /**
     * Memory-side DIVOT gate: set by the module's authenticator.
     * While blocked, Read/Write commands are rejected (canIssue
     * false) — the unauthorized requester gets nothing.
     */
    void setAccessBlocked(bool blocked) { blocked_ = blocked; }

    /** Backdoor store for test/example payloads. */
    void poke(uint64_t address, uint64_t value) { data_[address] = value; }

    /** Backdoor load; returns 0 for untouched cells. */
    uint64_t peek(uint64_t address) const;

    /** @return geometry. */
    const SdramGeometry &geometry() const { return geometry_; }

    /** @return timing. */
    const SdramTiming &timing() const { return timing_; }

    /** @return count of commands rejected by the DIVOT gate. */
    uint64_t gateRejections() const { return gateRejections_; }

    /**
     * Record a gate rejection (called by the controller when a
     * data command was withheld because the device is blocked).
     */
    void noteGateRejection() { ++gateRejections_; }

  private:
    struct Bank
    {
        long openRow = -1;
        uint64_t readyCycle = 0;      //!< earliest next command
        uint64_t activateCycle = 0;   //!< when the row was opened
    };

    SdramTiming timing_;
    SdramGeometry geometry_;
    std::vector<Bank> banks_;
    uint64_t refreshReady_ = 0;  //!< earliest cycle all-bank ops allowed
    bool blocked_ = false;
    uint64_t gateRejections_ = 0;
    std::unordered_map<uint64_t, uint64_t> data_;
};

} // namespace divot

#endif // DIVOT_MEMSYS_SDRAM_HH
