/**
 * @file
 * ProtectedMemorySystem — the full Section III example design wired
 * together: a fabricated memory bus, a CPU-side memory controller
 * with its iTDR, an SDRAM module with its iTDR, the two-way
 * authentication protocol, and a workload driving traffic while
 * attacks are injected.
 */

#ifndef DIVOT_MEMSYS_SYSTEM_HH
#define DIVOT_MEMSYS_SYSTEM_HH

#include <memory>
#include <string>

#include "auth/protocol.hh"
#include "memsys/controller.hh"
#include "memsys/divot_gate.hh"
#include "memsys/sdram.hh"
#include "memsys/workload.hh"
#include "txline/manufacturing.hh"
#include "util/rng.hh"

namespace divot {

/** Top-level configuration. */
struct MemorySystemConfig
{
    SdramTiming timing;
    SdramGeometry geometry;
    AuthConfig auth;
    ItdrConfig itdr;
    ProcessParams process;
    double busLength = 0.08;        //!< CPU-to-DIMM trace, meters
    double segmentLength = 0.5e-3;  //!< spatial discretization
    double clockHz = 156.25e6;      //!< bus clock
    std::size_t enrollReps = 16;
    WorkloadKind workload = WorkloadKind::HotCold;
    uint64_t footprint = 1u << 22;  //!< words
    double requestsPerKcycle = 50.0;
    double writeFraction = 0.3;
    unsigned stallBoundRounds = 8;  //!< monitoring rounds a distrusted
                                    //!< stall may last before queued
                                    //!< requests are failed instead of
                                    //!< deadlocking; 0 = unbounded
                                    //!< (legacy behavior)
};

/** Aggregate run report. */
struct MemorySystemReport
{
    ControllerStats controller;
    uint64_t cyclesRun = 0;
    uint64_t completed = 0;     //!< requests served with data
    uint64_t failed = 0;        //!< requests rejected at the stall bound
    uint64_t injected = 0;
    uint64_t monitoringRounds = 0;
    uint64_t gateRejections = 0;
    std::vector<DetectionRecord> detections;
};

/**
 * The assembled protected memory system.
 */
class ProtectedMemorySystem
{
  public:
    /**
     * Fabricate, calibrate, and wire the system.
     *
     * @param config top-level configuration
     * @param rng    master random stream
     */
    ProtectedMemorySystem(MemorySystemConfig config, Rng rng);

    /** Schedule an attack / repair event on the bus. */
    void scheduleBusEvent(uint64_t cycle, TransmissionLine new_bus,
                          std::string description);

    /** Convenience: schedule a cold-boot module swap at `cycle`. */
    void scheduleColdBootSwap(uint64_t cycle);

    /** Convenience: attach a magnetic probe at `cycle`. */
    void scheduleProbeAttach(uint64_t cycle, double position = 0.5);

    /** Run the system for `cycles` clock cycles. */
    void run(uint64_t cycles);

    /** @return the accumulated report. */
    MemorySystemReport report() const;

    /** @return the pristine calibrated bus. */
    const TransmissionLine &bus() const { return bus_; }

    /** @return the protocol pair (for inspection). */
    const TwoWayAuthProtocol &protocol() const { return *protocol_; }

    /** @return mutable device handle (for example payloads). */
    Sdram &sdram() { return *sdram_; }

    /** Attach a fault injector to one side's instrument (campaign
     *  hook; nullptr detaches). Not owned; must outlive the system. */
    void attachFaultInjector(BusRole side, FaultInjector *injector)
    {
        protocol_->attachFaultInjector(side, injector);
    }

  private:
    MemorySystemConfig config_;
    Rng rng_;
    TransmissionLine bus_;
    std::unique_ptr<Sdram> sdram_;
    std::unique_ptr<MemoryController> controller_;
    std::unique_ptr<TwoWayAuthProtocol> protocol_;
    std::unique_ptr<DivotGate> gate_;
    std::unique_ptr<WorkloadGenerator> workload_;
    uint64_t cycle_ = 0;
    uint64_t completed_ = 0;
    uint64_t failed_ = 0;
    uint64_t injected_ = 0;

    static TransmissionLine fabricateBus(const MemorySystemConfig &config,
                                         Rng &rng);
};

} // namespace divot

#endif // DIVOT_MEMSYS_SYSTEM_HH
