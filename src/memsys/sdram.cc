#include "memsys/sdram.hh"

#include "util/logging.hh"

namespace divot {

Sdram::Sdram(SdramTiming timing, SdramGeometry geometry)
    : timing_(timing), geometry_(geometry), banks_(geometry.banks)
{
    if (geometry.banks == 0 || geometry.rowsPerBank == 0 ||
        geometry.colsPerRow == 0) {
        divot_fatal("degenerate SDRAM geometry");
    }
}

long
Sdram::openRow(unsigned bank) const
{
    if (bank >= banks_.size())
        divot_panic("bank %u out of range (%zu banks)", bank,
                    banks_.size());
    return banks_[bank].openRow;
}

bool
Sdram::canIssue(DramCommand cmd, const DramAddress &addr,
                uint64_t cycle) const
{
    if (addr.bank >= banks_.size())
        divot_panic("bank %u out of range (%zu banks)", addr.bank,
                    banks_.size());
    const Bank &bank = banks_[addr.bank];
    if (cycle < refreshReady_)
        return false;

    switch (cmd) {
      case DramCommand::Activate:
        return bank.openRow == -1 && cycle >= bank.readyCycle;
      case DramCommand::Read:
      case DramCommand::Write:
        if (blocked_)
            return false;  // DIVOT gate: no data for strangers
        return bank.openRow == static_cast<long>(addr.row) &&
            cycle >= bank.readyCycle;
      case DramCommand::Precharge:
        return bank.openRow != -1 && cycle >= bank.readyCycle &&
            cycle >= bank.activateCycle + timing_.tRAS;
      case DramCommand::Refresh:
        for (const Bank &b : banks_) {
            if (b.openRow != -1 || cycle < b.readyCycle)
                return false;
        }
        return true;
    }
    return false;
}

uint64_t
Sdram::issue(DramCommand cmd, const DramAddress &addr, uint64_t cycle)
{
    if (!canIssue(cmd, addr, cycle))
        divot_panic("issue() without canIssue (cmd=%d bank=%u cycle=%llu)",
                    static_cast<int>(cmd), addr.bank,
                    static_cast<unsigned long long>(cycle));
    Bank &bank = banks_[addr.bank];
    switch (cmd) {
      case DramCommand::Activate:
        bank.openRow = static_cast<long>(addr.row);
        bank.activateCycle = cycle;
        bank.readyCycle = cycle + timing_.tRCD;
        return bank.readyCycle;
      case DramCommand::Read:
        bank.readyCycle = cycle + timing_.burstCycles;
        return cycle + timing_.tCL + timing_.burstCycles;
      case DramCommand::Write:
        bank.readyCycle = cycle + timing_.burstCycles;
        return cycle + timing_.tWL + timing_.burstCycles;
      case DramCommand::Precharge:
        bank.openRow = -1;
        bank.readyCycle = cycle + timing_.tRP;
        return bank.readyCycle;
      case DramCommand::Refresh:
        refreshReady_ = cycle + timing_.tRFC;
        for (Bank &b : banks_)
            b.readyCycle = refreshReady_;
        return refreshReady_;
    }
    divot_panic("unreachable");
}

uint64_t
Sdram::peek(uint64_t address) const
{
    const auto it = data_.find(address);
    return it == data_.end() ? 0 : it->second;
}

} // namespace divot
