/**
 * @file
 * Probe-edge models. DIVOT uses the rising / falling edges of the
 * data or clock waveform already flowing on the bus as TDR probe
 * signals (Section II-D/E of the paper). An EdgeShape describes the
 * deterministic voltage transition produced by the transmitter's
 * output driver; because the driver circuit is fixed, the shape is
 * highly repeatable — the property ETS relies on.
 */

#ifndef DIVOT_SIGNAL_EDGE_HH
#define DIVOT_SIGNAL_EDGE_HH

#include "signal/waveform.hh"

namespace divot {

/** Direction of a signal transition. */
enum class EdgeKind { Rising, Falling };

/**
 * A band-limited step transition with finite 10-90 % rise time,
 * modelled as a raised-cosine ramp (a good fit to CMOS driver edges
 * and smooth enough to keep the lattice simulator dispersion-free).
 */
class EdgeShape
{
  public:
    /**
     * @param amplitude  swing in volts (low-to-high)
     * @param rise_time  10-90 % transition time in seconds
     * @param kind       rising or falling transition
     */
    EdgeShape(double amplitude, double rise_time,
              EdgeKind kind = EdgeKind::Rising);

    /**
     * Instantaneous voltage of the transition at time t, where the
     * transition is centered at t = 0. Rising edges go from 0 to
     * +amplitude; falling edges from +amplitude to 0.
     */
    double valueAt(double t) const;

    /**
     * Deviation from the pre-edge steady state at time t: zero before
     * the transition for both edge kinds, +amplitude (rising) or
     * -amplitude (falling) after it. TDR models probe with the
     * deviation so that an echo contributes nothing before its
     * arrival time.
     */
    double deviationAt(double t) const;

    /**
     * Time-derivative of the transition at time t (the effective TDR
     * impulse shape; back-reflection is the IIP convolved with this).
     */
    double slopeAt(double t) const;

    /** @return full transition duration in seconds (0 to 100 %). */
    double duration() const { return ramp_; }

    /** @return configured amplitude in volts. */
    double amplitude() const { return amplitude_; }

    /** @return edge direction. */
    EdgeKind kind() const { return kind_; }

    /**
     * Sample the transition into a waveform on a dt grid covering
     * [-duration, +2*duration] (enough pre/post padding for
     * convolution work).
     */
    Waveform sampled(double dt) const;

  private:
    double amplitude_;
    double ramp_;   //!< full 0-100 % ramp duration
    EdgeKind kind_;
};

} // namespace divot

#endif // DIVOT_SIGNAL_EDGE_HH
