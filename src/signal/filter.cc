#include "signal/filter.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

Waveform
convolve(const Waveform &x, const Waveform &kernel)
{
    if (std::fabs(x.dt() - kernel.dt()) > 1e-15 * x.dt())
        divot_panic("convolve: dt mismatch (%g vs %g)",
                    x.dt(), kernel.dt());
    if (x.empty() || kernel.empty())
        return Waveform(x.dt(), {}, x.startTime());

    const std::size_t n = x.size() + kernel.size() - 1;
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double xi = x[i];
        if (xi == 0.0)
            continue;
        for (std::size_t j = 0; j < kernel.size(); ++j)
            out[i + j] += xi * kernel[j];
    }
    for (auto &v : out)
        v *= x.dt();
    return Waveform(x.dt(), std::move(out),
                    x.startTime() + kernel.startTime());
}

Waveform
movingAverage(const Waveform &x, std::size_t w)
{
    if (w == 0 || w % 2 == 0)
        divot_panic("movingAverage window must be odd and > 0 (got %zu)",
                    w);
    if (x.size() < w)
        return x;
    std::vector<double> out(x.size());
    const std::size_t half = w / 2;
    double acc = 0.0;
    // Prime the window at index `half`.
    for (std::size_t i = 0; i < w; ++i)
        acc += x[i];
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (i < half || i + half >= x.size()) {
            // Edge samples: shrink the window symmetrically.
            const std::size_t lo = i >= half ? i - half : 0;
            const std::size_t hi = std::min(i + half + 1, x.size());
            double s = 0.0;
            for (std::size_t k = lo; k < hi; ++k)
                s += x[k];
            out[i] = s / static_cast<double>(hi - lo);
        } else {
            out[i] = acc / static_cast<double>(w);
            if (i + half + 1 < x.size())
                acc += x[i + half + 1] - x[i - half];
        }
    }
    return Waveform(x.dt(), std::move(out), x.startTime());
}

Waveform
rcLowpass(const Waveform &x, double tau)
{
    if (tau <= 0.0)
        divot_panic("rcLowpass tau must be positive (got %g)", tau);
    if (x.empty())
        return x;
    // Bilinear transform of H(s) = 1/(1 + s*tau).
    const double a = x.dt() / (2.0 * tau);
    const double b0 = a / (1.0 + a);
    const double a1 = (1.0 - a) / (1.0 + a);
    std::vector<double> out(x.size());
    double prevIn = x[0], prevOut = x[0];
    out[0] = x[0];
    for (std::size_t i = 1; i < x.size(); ++i) {
        out[i] = b0 * (x[i] + prevIn) + a1 * prevOut;
        prevIn = x[i];
        prevOut = out[i];
    }
    return Waveform(x.dt(), std::move(out), x.startTime());
}

Waveform
rcHighpass(const Waveform &x, double tau)
{
    if (tau <= 0.0)
        divot_panic("rcHighpass tau must be positive (got %g)", tau);
    Waveform low = rcLowpass(x, tau);
    Waveform out = x;
    out -= low;
    return out;
}

Waveform
differentiate(const Waveform &x)
{
    if (x.size() < 2)
        return Waveform(x.dt(), {}, x.startTime());
    std::vector<double> out(x.size() - 1);
    for (std::size_t i = 0; i + 1 < x.size(); ++i)
        out[i] = (x[i + 1] - x[i]) / x.dt();
    return Waveform(x.dt(), std::move(out), x.startTime());
}

} // namespace divot
