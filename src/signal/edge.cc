#include "signal/edge.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

namespace {

// The ramp is v(t) = 0.5 * (1 + sin(pi t / ramp)) on [-ramp/2,
// ramp/2]; it crosses 10 % / 90 % at t = -/+ (ramp/pi) * asin(0.8),
// so ramp = rise1090 * pi / (2 asin(0.8)).
constexpr double rise1090ToFull = 1.6939510987103987;

} // namespace

EdgeShape::EdgeShape(double amplitude, double rise_time, EdgeKind kind)
    : amplitude_(amplitude), ramp_(rise_time * rise1090ToFull),
      kind_(kind)
{
    if (rise_time <= 0.0)
        divot_panic("EdgeShape rise_time must be positive (got %g)",
                    rise_time);
}

double
EdgeShape::valueAt(double t) const
{
    // Ramp spans [-ramp_/2, +ramp_/2], centered at t = 0.
    double frac;
    if (t <= -ramp_ / 2.0)
        frac = 0.0;
    else if (t >= ramp_ / 2.0)
        frac = 1.0;
    else
        frac = 0.5 * (1.0 + std::sin(M_PI * t / ramp_));
    if (kind_ == EdgeKind::Falling)
        frac = 1.0 - frac;
    return amplitude_ * frac;
}

double
EdgeShape::deviationAt(double t) const
{
    const double initial =
        kind_ == EdgeKind::Falling ? amplitude_ : 0.0;
    return valueAt(t) - initial;
}

double
EdgeShape::slopeAt(double t) const
{
    if (t <= -ramp_ / 2.0 || t >= ramp_ / 2.0)
        return 0.0;
    double d = amplitude_ * 0.5 * (M_PI / ramp_) *
        std::cos(M_PI * t / ramp_);
    if (kind_ == EdgeKind::Falling)
        d = -d;
    return d;
}

Waveform
EdgeShape::sampled(double dt) const
{
    const double t0 = -ramp_;
    const double t1 = 2.0 * ramp_;
    const std::size_t n =
        static_cast<std::size_t>(std::ceil((t1 - t0) / dt)) + 1;
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = valueAt(t0 + static_cast<double>(i) * dt);
    return Waveform(dt, std::move(s), t0);
}

} // namespace divot
