#include "signal/waveform.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace divot {

Waveform::Waveform(double dt, std::vector<double> samples,
                   double start_time)
    : dt_(dt), startTime_(start_time), samples_(std::move(samples))
{
    if (dt <= 0.0)
        divot_panic("Waveform dt must be positive (got %g)", dt);
}

Waveform
Waveform::zeros(double dt, std::size_t n, double start_time)
{
    return Waveform(dt, std::vector<double>(n, 0.0), start_time);
}

double
Waveform::timeAt(std::size_t i) const
{
    return startTime_ + static_cast<double>(i) * dt_;
}

double
Waveform::endTime() const
{
    return startTime_ + static_cast<double>(samples_.size()) * dt_;
}

double
Waveform::valueAt(double t) const
{
    if (samples_.empty())
        return 0.0;
    const double pos = (t - startTime_) / dt_;
    if (pos <= 0.0)
        return samples_.front();
    if (pos >= static_cast<double>(samples_.size() - 1))
        return samples_.back();
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

Waveform &
Waveform::operator+=(const Waveform &other)
{
    if (other.size() != size())
        divot_panic("Waveform += size mismatch (%zu vs %zu)",
                    size(), other.size());
    for (std::size_t i = 0; i < samples_.size(); ++i)
        samples_[i] += other.samples_[i];
    return *this;
}

Waveform &
Waveform::operator-=(const Waveform &other)
{
    if (other.size() != size())
        divot_panic("Waveform -= size mismatch (%zu vs %zu)",
                    size(), other.size());
    for (std::size_t i = 0; i < samples_.size(); ++i)
        samples_[i] -= other.samples_[i];
    return *this;
}

Waveform &
Waveform::operator*=(double k)
{
    for (auto &s : samples_)
        s *= k;
    return *this;
}

double
Waveform::energy() const
{
    double e = 0.0;
    for (double s : samples_)
        e += s * s;
    return e * dt_;
}

double
Waveform::rms() const
{
    if (samples_.empty())
        return 0.0;
    double e = 0.0;
    for (double s : samples_)
        e += s * s;
    return std::sqrt(e / static_cast<double>(samples_.size()));
}

double
Waveform::peakAbs() const
{
    double peak = 0.0;
    for (double s : samples_)
        peak = std::max(peak, std::fabs(s));
    return peak;
}

std::size_t
Waveform::peakIndex() const
{
    std::size_t best = 0;
    double peak = -1.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        if (std::fabs(samples_[i]) > peak) {
            peak = std::fabs(samples_[i]);
            best = i;
        }
    }
    return best;
}

void
Waveform::removeMean()
{
    if (samples_.empty())
        return;
    double mean = 0.0;
    for (double s : samples_)
        mean += s;
    mean /= static_cast<double>(samples_.size());
    for (auto &s : samples_)
        s -= mean;
}

void
Waveform::normalizeUnitNorm()
{
    double norm = 0.0;
    for (double s : samples_)
        norm += s * s;
    norm = std::sqrt(norm);
    if (norm == 0.0)
        return;
    for (auto &s : samples_)
        s /= norm;
}

Waveform
Waveform::slice(double t_lo, double t_hi) const
{
    if (samples_.empty() || t_hi <= t_lo)
        return Waveform(dt_, {}, t_lo);
    long ilo = static_cast<long>(std::ceil((t_lo - startTime_) / dt_));
    long ihi = static_cast<long>(std::floor((t_hi - startTime_) / dt_));
    ilo = std::max(0L, ilo);
    ihi = std::min(ihi, static_cast<long>(samples_.size()));
    if (ihi <= ilo)
        return Waveform(dt_, {}, t_lo);
    std::vector<double> out(samples_.begin() + ilo,
                            samples_.begin() + ihi);
    return Waveform(dt_, std::move(out), timeAt(static_cast<std::size_t>(ilo)));
}

Waveform
Waveform::resampled(double new_dt) const
{
    if (new_dt <= 0.0)
        divot_panic("resampled: dt must be positive (got %g)", new_dt);
    if (samples_.empty())
        return Waveform(new_dt, {}, startTime_);
    const double span = static_cast<double>(samples_.size() - 1) * dt_;
    const std::size_t n =
        static_cast<std::size_t>(std::floor(span / new_dt)) + 1;
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = valueAt(startTime_ + static_cast<double>(i) * new_dt);
    return Waveform(new_dt, std::move(out), startTime_);
}

std::vector<std::pair<double, double>>
Waveform::series() const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i)
        out.emplace_back(timeAt(i), samples_[i]);
    return out;
}

Waveform
operator+(Waveform a, const Waveform &b)
{
    a += b;
    return a;
}

Waveform
operator-(Waveform a, const Waveform &b)
{
    a -= b;
    return a;
}

Waveform
operator*(Waveform a, double k)
{
    a *= k;
    return a;
}

double
normalizedInnerProduct(const Waveform &a, const Waveform &b)
{
    if (a.size() != b.size())
        divot_panic("normalizedInnerProduct size mismatch (%zu vs %zu)",
                    a.size(), b.size());
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    const double denom = std::sqrt(na * nb);
    if (denom == 0.0)
        return 0.0;
    return dot / denom;
}

} // namespace divot
