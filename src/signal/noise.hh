/**
 * @file
 * Noise and interference sources.
 *
 * The APC mechanism (Section II-B) *depends* on noise: the Gaussian
 * thermal noise referred to the comparator input is what turns the
 * 1-bit comparator into a high-resolution voltage meter. EMI from
 * nearby digital circuits (Section IV-C) is asynchronous interference
 * that synchronous equivalent-time sampling largely averages out.
 */

#ifndef DIVOT_SIGNAL_NOISE_HH
#define DIVOT_SIGNAL_NOISE_HH

#include <memory>
#include <vector>

#include "util/rng.hh"

namespace divot {

/**
 * Interface for an additive noise/interference process sampled at
 * absolute times. Implementations may be white (time-independent) or
 * colored/deterministic (time-dependent).
 */
class NoiseSource
{
  public:
    virtual ~NoiseSource() = default;

    /**
     * Draw the noise value at absolute time t. Consecutive calls with
     * increasing t advance the process.
     */
    virtual double sampleAt(double t) = 0;

    /** @return RMS amplitude of the process, for SNR bookkeeping. */
    virtual double rmsAmplitude() const = 0;
};

/**
 * White Gaussian noise — the thermal noise model of Eq. (1).
 */
class GaussianNoise : public NoiseSource
{
  public:
    /**
     * @param sigma standard deviation in volts
     * @param rng   dedicated random stream
     */
    GaussianNoise(double sigma, Rng rng);

    double sampleAt(double t) override;
    double rmsAmplitude() const override { return sigma_; }

    /** @return configured standard deviation. */
    double sigma() const { return sigma_; }

  private:
    double sigma_;
    Rng rng_;
};

/**
 * Deterministic sinusoidal interference representing EM coupling from
 * a nearby high-speed digital circuit. It is *asynchronous* to the
 * sampling clock (frequency chosen incommensurate), so synchronous
 * averaging over many APC trials suppresses it.
 */
class SinusoidalInterference : public NoiseSource
{
  public:
    /**
     * @param amplitude peak amplitude in volts
     * @param frequency interference frequency in Hz
     * @param phase     initial phase in radians
     */
    SinusoidalInterference(double amplitude, double frequency,
                           double phase = 0.0);

    double sampleAt(double t) override;
    double rmsAmplitude() const override;

  private:
    double amplitude_;
    double frequency_;
    double phase_;
};

/**
 * Sum of independent sources; rmsAmplitude combines in quadrature
 * (valid for uncorrelated processes).
 */
class CompositeNoise : public NoiseSource
{
  public:
    /** Take ownership of a component source. */
    void add(std::unique_ptr<NoiseSource> src);

    double sampleAt(double t) override;
    double rmsAmplitude() const override;

    /** @return number of component sources. */
    std::size_t components() const { return sources_.size(); }

  private:
    std::vector<std::unique_ptr<NoiseSource>> sources_;
};

} // namespace divot

#endif // DIVOT_SIGNAL_NOISE_HH
