#include "signal/noise.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

GaussianNoise::GaussianNoise(double sigma, Rng rng)
    : sigma_(sigma), rng_(rng)
{
    if (sigma < 0.0)
        divot_panic("GaussianNoise sigma must be >= 0 (got %g)", sigma);
}

double
GaussianNoise::sampleAt(double)
{
    return rng_.gaussian(0.0, sigma_);
}

SinusoidalInterference::SinusoidalInterference(double amplitude,
                                               double frequency,
                                               double phase)
    : amplitude_(amplitude), frequency_(frequency), phase_(phase)
{
}

double
SinusoidalInterference::sampleAt(double t)
{
    return amplitude_ * std::sin(2.0 * M_PI * frequency_ * t + phase_);
}

double
SinusoidalInterference::rmsAmplitude() const
{
    return amplitude_ / std::sqrt(2.0);
}

void
CompositeNoise::add(std::unique_ptr<NoiseSource> src)
{
    sources_.push_back(std::move(src));
}

double
CompositeNoise::sampleAt(double t)
{
    double sum = 0.0;
    for (auto &src : sources_)
        sum += src->sampleAt(t);
    return sum;
}

double
CompositeNoise::rmsAmplitude() const
{
    double sq = 0.0;
    for (const auto &src : sources_) {
        const double r = src->rmsAmplitude();
        sq += r * r;
    }
    return std::sqrt(sq);
}

} // namespace divot
