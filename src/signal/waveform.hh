/**
 * @file
 * Uniformly sampled analog waveform.
 *
 * A Waveform is the common currency between the transmission-line
 * simulator (which produces back-reflection voltage traces), the
 * analog front-end models (comparator, triangle wave), and the iTDR
 * reconstruction (which rebuilds an estimate of the trace from
 * comparator hit probabilities).
 */

#ifndef DIVOT_SIGNAL_WAVEFORM_HH
#define DIVOT_SIGNAL_WAVEFORM_HH

#include <cstddef>
#include <vector>

namespace divot {

/**
 * A real-valued signal sampled on a uniform time grid
 * t_i = startTime + i * dt.
 */
class Waveform
{
  public:
    /** Empty waveform (no samples, dt = 1). */
    Waveform() = default;

    /**
     * @param dt         sample interval in seconds (> 0)
     * @param samples    sample values
     * @param start_time time of sample 0 in seconds
     */
    Waveform(double dt, std::vector<double> samples,
             double start_time = 0.0);

    /** Allocate n zero samples at the given rate. */
    static Waveform zeros(double dt, std::size_t n,
                          double start_time = 0.0);

    /** @return sample interval in seconds. */
    double dt() const { return dt_; }

    /** @return time of the first sample. */
    double startTime() const { return startTime_; }

    /** @return time of sample i. */
    double timeAt(std::size_t i) const;

    /** @return time just past the last sample. */
    double endTime() const;

    /** @return number of samples. */
    std::size_t size() const { return samples_.size(); }

    /** @return true when the waveform holds no samples. */
    bool empty() const { return samples_.empty(); }

    /** Mutable access to sample i (bounds-checked in debug). */
    double &operator[](std::size_t i) { return samples_[i]; }

    /** Const access to sample i. */
    double operator[](std::size_t i) const { return samples_[i]; }

    /** @return underlying sample vector. */
    const std::vector<double> &samples() const { return samples_; }

    /** @return mutable underlying sample vector. */
    std::vector<double> &samples() { return samples_; }

    /**
     * Linearly interpolated value at absolute time t; clamps to the
     * first/last sample outside the span.
     */
    double valueAt(double t) const;

    /** Add another waveform sample-wise (sizes and dt must match). */
    Waveform &operator+=(const Waveform &other);

    /** Subtract another waveform sample-wise. */
    Waveform &operator-=(const Waveform &other);

    /** Scale every sample by k. */
    Waveform &operator*=(double k);

    /** @return sum of squared samples times dt (signal energy). */
    double energy() const;

    /** @return square root of mean squared sample value. */
    double rms() const;

    /** @return largest absolute sample value (0 when empty). */
    double peakAbs() const;

    /** @return index of the largest absolute sample (0 when empty). */
    std::size_t peakIndex() const;

    /** Remove the mean from the waveform in place. */
    void removeMean();

    /**
     * Scale so the Euclidean norm of the sample vector is 1; a zero
     * waveform is left untouched.
     */
    void normalizeUnitNorm();

    /**
     * Extract the sub-waveform covering [t_lo, t_hi); times clamp to
     * the waveform span.
     */
    Waveform slice(double t_lo, double t_hi) const;

    /**
     * Resample onto a new grid with the given dt via linear
     * interpolation, spanning the same time range.
     */
    Waveform resampled(double new_dt) const;

    /** @return (x, y) pairs for series output. */
    std::vector<std::pair<double, double>> series() const;

  private:
    double dt_ = 1.0;
    double startTime_ = 0.0;
    std::vector<double> samples_;
};

/** Sample-wise sum (sizes and rates must match). */
Waveform operator+(Waveform a, const Waveform &b);

/** Sample-wise difference. */
Waveform operator-(Waveform a, const Waveform &b);

/** Scalar multiple. */
Waveform operator*(Waveform a, double k);

/**
 * Normalized inner product of two equal-length waveforms in [-1, 1]
 * (the geometric building block of the paper's similarity S_xy).
 */
double normalizedInnerProduct(const Waveform &a, const Waveform &b);

} // namespace divot

#endif // DIVOT_SIGNAL_WAVEFORM_HH
