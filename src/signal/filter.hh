/**
 * @file
 * Small DSP helpers: direct convolution, moving average, and a single-
 * pole RC low-pass (used for the quasi-triangle PDM generator, which
 * the paper builds from a digital output plus an RC network).
 */

#ifndef DIVOT_SIGNAL_FILTER_HH
#define DIVOT_SIGNAL_FILTER_HH

#include "signal/waveform.hh"

namespace divot {

/**
 * Full linear convolution of a waveform with a kernel sampled on the
 * same dt grid; the result is scaled by dt so that convolving with a
 * discretized Dirac impulse is the identity.
 */
Waveform convolve(const Waveform &x, const Waveform &kernel);

/** Centered moving average over an odd window of w samples. */
Waveform movingAverage(const Waveform &x, std::size_t w);

/**
 * Single-pole RC low-pass filter (bilinear discretization).
 *
 * @param x   input waveform
 * @param tau RC time constant in seconds
 */
Waveform rcLowpass(const Waveform &x, double tau);

/**
 * Single-pole RC high-pass filter: the complement of rcLowpass. Used
 * to AC-couple the TDR detector path — a step-probe reflection trace
 * is the running sum of reflection coefficients and slowly wanders
 * over many millivolts; high-passing keeps the localized IIP features
 * inside the comparator's PDM dynamic range.
 *
 * @param x   input waveform
 * @param tau RC time constant in seconds
 */
Waveform rcHighpass(const Waveform &x, double tau);

/**
 * First difference scaled by 1/dt — a discrete derivative used to
 * convert step-response TDR traces into impulse-response form.
 */
Waveform differentiate(const Waveform &x);

} // namespace divot

#endif // DIVOT_SIGNAL_FILTER_HH
