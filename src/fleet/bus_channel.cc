#include "fleet/bus_channel.hh"

#include "itdr/budget.hh"
#include "signal/noise.hh"
#include "util/logging.hh"

namespace divot {

namespace {

// Fork tags unchanged from the original DivotSystem so a one-channel
// facade reproduces the pre-refactor draws bit for bit.
constexpr uint64_t kTagFabrication = 0x6001;
constexpr uint64_t kTagAuthenticator = 0x6002;
constexpr uint64_t kTagEnvironment = 0x6003;

// Pause between monitoring rounds on the standalone clock, seconds.
constexpr double kInterRoundGap = 100e-6;

TransmissionLine
fabricate(const BusChannelConfig &config, Rng &rng)
{
    ManufacturingProcess fab(config.process, rng.fork(kTagFabrication));
    auto z = fab.drawImpedanceProfile(config.lineLength,
                                      config.segmentLength);
    return TransmissionLine(std::move(z), config.segmentLength,
                            config.process.velocity,
                            config.process.nominalImpedance,
                            config.process.nominalImpedance +
                                rng.gaussian(0.0, 0.3),
                            config.process.lossNeperPerMeter,
                            config.name);
}

} // namespace

BusChannel::BusChannel(BusChannelConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng),
      pristine_(fabricate(config_, rng_)), current_(pristine_)
{
    auth_ = std::make_unique<Authenticator>(
        config_.auth, config_.itdr, rng_.fork(kTagAuthenticator),
        config_.name);
    env_ = std::make_unique<Environment>(config_.environment,
                                         rng_.fork(kTagEnvironment));
    if (config_.environment.emiAmplitude > 0.0) {
        emi_ = std::make_unique<SinusoidalInterference>(
            config_.environment.emiAmplitude,
            config_.environment.emiFrequencyHz);
    }
}

void
BusChannel::calibrate()
{
    auth_->enroll(pristine_, config_.enrollReps);
    const MeasurementBudget budget = predictBudget(
        config_.itdr, pristine_.roundTripDelay());
    wall_ += static_cast<double>(config_.enrollReps) *
        budget.expectedDuration;
}

double
BusChannel::roundDuration() const
{
    const MeasurementBudget budget = predictBudget(
        config_.itdr, pristine_.roundTripDelay());
    return budget.expectedDuration + kInterRoundGap;
}

uint64_t
BusChannel::roundCycles() const
{
    const MeasurementBudget budget = predictBudget(
        config_.itdr, pristine_.roundTripDelay());
    return budget.expectedCycles;
}

AuthVerdict
BusChannel::monitorAt(double wall_clock)
{
    // Telemetry events from this round carry the caller's schedule
    // (fleet slot * tick, or the standalone clock via monitorOnce).
    auth_->setWallClock(wall_clock);
    const TransmissionLine snap = env_->snapshot(current_, wall_clock);
    return auth_->checkRound(snap, emi_.get());
}

AuthVerdict
BusChannel::monitorOnce()
{
    const AuthVerdict verdict = monitorAt(wall_);
    wall_ += roundDuration();
    return verdict;
}

void
BusChannel::stageAttack(const TamperTransform &attack)
{
    current_ = attack.apply(wireTapScar_ && lastWireTap_
                                ? lastWireTap_->applyRemoved(pristine_)
                                : pristine_);
    if (const auto *tap = dynamic_cast<const WireTap *>(&attack)) {
        lastWireTap_ = *tap;
        wireTapScar_ = true;
    }
    divot_inform("staged attack on '%s': %s", config_.name.c_str(),
                 attack.describe().c_str());
}

void
BusChannel::clearAttack()
{
    if (wireTapScar_ && lastWireTap_) {
        // Soldering damage is permanent (Section IV-E).
        current_ = lastWireTap_->applyRemoved(pristine_);
    } else {
        current_ = pristine_;
    }
}

void
BusChannel::replaceLine(TransmissionLine line)
{
    current_ = std::move(line);
    divot_inform("channel '%s': physical line replaced",
                 config_.name.c_str());
}

} // namespace divot
