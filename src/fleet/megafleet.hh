/**
 * @file
 * MegaFleet — a bounded-memory fleet service for very large channel
 * counts (10^5+), built directly on the sharded EnrollmentDb.
 *
 * The full BusChannel stack fabricates a transmission line, an
 * environment model, and an instrument per channel — megabytes and
 * milliseconds each, fine for dozens of wires, impossible for a
 * hundred thousand. MegaFleet keeps the *persistence and fusion*
 * semantics of the fleet layer while replacing the physics with a
 * deterministic synthetic channel model:
 *
 *  - enrollment fingerprint of channel i = a waveform drawn from
 *    `rng.forkStable(kTagMegaChannel + i)` — a pure function of the
 *    fleet seed and the index, never materialized fleet-wide;
 *  - a probe of channel i at tick t = that enrollment plus noise from
 *    `forkStable(mix(i, t))`, so any probe can be recomputed from
 *    scratch without holding anything resident.
 *
 * Memory contract: the per-channel registry holds only lifecycle
 * state and the latest fused score (O(10 bytes) per channel). All
 * fingerprints live in the EnrollmentDb; each tick hydrates exactly
 * the probed batch — grouped by shard so every shard file is read at
 * most once per tick — and releases it when the tick ends. Peak
 * resident enrollment bytes are reported so benches can assert the
 * budget held.
 *
 * Determinism contract: probes of one tick write disjoint slots and
 * draw only from forkStable streams; hydration, fusion, and every
 * EnrollmentDb mutation run in serial sections in ascending channel
 * order. Fused verdicts are therefore bit-identical at any thread
 * count, with or without an active storage FaultPlan (the db's
 * IO-event sequence is thread-independent either way).
 *
 * Crash behavior: a simulated power cut (StorageCrash cell) kills the
 * db handle mid-enrollment; MegaFleet reopens the directory — which
 * replays the journal — and continues, re-putting the interrupted
 * record. Channels whose records are damaged beyond every recovery
 * path land in PendingReenroll and stop contributing evidence; they
 * never authenticate junk.
 */

#ifndef DIVOT_FLEET_MEGAFLEET_HH
#define DIVOT_FLEET_MEGAFLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fingerprint/fusion.hh"
#include "fleet/reactor.hh"
#include "store/enrollment_db.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace divot {

/** MegaFleet tuning. */
struct MegaFleetConfig
{
    std::size_t channels = 100000;  //!< fleet size
    std::size_t fingerprintBins = 32; //!< samples per synthetic IIP
    double noiseSigma = 1e-4;       //!< probe noise, relative
    double similarityThreshold = 0.35; //!< fused-score accept bar
    double tamperThreshold = 1e-6;  //!< per-wire peak-error alarm bar
    unsigned tamperWireVotes = 3;   //!< M-of-N bus alarm quorum
    FusionConfig fusion;            //!< similarity fusion rule
    unsigned threads = 0;           //!< worker threads (0 = hardware)
    std::size_t probesPerTick = 4096; //!< wires probed per tick

    /**
     * Hydration lanes: shard s belongs to lane s % K, each lane walks
     * its shards in ascending order on its own thread, and the staged
     * results merge serially in ascending shard order — so fused
     * verdicts and the digest are bit-identical for K=1 vs any K at
     * any thread count. 0 = auto: min(store shards, 8). The store's
     * decoded-image cache is re-partitioned to the same lane count.
     */
    unsigned reactorLanes = 0;
    store::EnrollmentDbConfig store;  //!< shard directory + tunables
    std::size_t residentBudgetBytes = 32u << 20; //!< hydration budget
    TelemetryConfig telemetry;      //!< observability (on by default)
    std::size_t instruments = 8;    //!< modeled iTDR pool size for the
                                    //!< instrument-schedule accounting
    ReactorMode schedule = ReactorMode::Barrier; //!< instrument-pool
                                    //!< scheduling model: Barrier
                                    //!< stretches each wave of
                                    //!< `instruments` probes to its
                                    //!< slowest member; Pipelined
                                    //!< hands a freed instrument to
                                    //!< the next probe immediately.
                                    //!< Pure accounting — probe math
                                    //!< and verdict digests are
                                    //!< identical in both modes
};

/** Summary of a MegaFleet run. */
struct MegaFleetReport
{
    uint64_t enrolled = 0;       //!< records durably enrolled
    uint64_t crashRecoveries = 0; //!< db reopen+replay cycles survived
    uint64_t ticks = 0;          //!< monitoring ticks executed
    uint64_t probes = 0;         //!< per-wire probes performed
    uint64_t hydrates = 0;       //!< records hydrated from shards
    uint64_t pendingReenroll = 0; //!< channels fenced (records lost)
    bool lastTrusted = false;    //!< busTrusted after the final tick
    double lastFusedSimilarity = 0.0; //!< fused score, final tick
    uint64_t verdictDigest = 0;  //!< FNV-1a over every fused verdict
                                 //!< (bit-identity comparisons)
    std::size_t peakResidentBytes = 0; //!< max hydrated bytes held at
                                       //!< any instant
    double instrumentUtilization = 0.0; //!< busy / capacity of the
                                        //!< modeled instrument pool
                                        //!< under `config.schedule`
};

/** One fused bus verdict from a MegaFleet tick. */
struct MegaFleetVerdict
{
    uint64_t tick = 0;
    bool busAuthenticated = false;
    bool tamperAlarm = false;
    bool busTrusted = false;
    double fusedSimilarity = 0.0;
    std::size_t contributingWires = 0;
    std::size_t tamperedWires = 0;
    std::size_t pendingReenrollWires = 0;
};

/**
 * The bounded-memory fleet service.
 */
class MegaFleet
{
  public:
    MegaFleet(MegaFleetConfig config, Rng rng);
    ~MegaFleet();

    MegaFleet(const MegaFleet &) = delete;
    MegaFleet &operator=(const MegaFleet &) = delete;

    /**
     * Enroll every channel into the EnrollmentDb (serial, ascending
     * index; survives simulated power cuts by reopening + replaying).
     * Finishes with a checkpoint so every record sits in a shard
     * image.
     *
     * @return channels durably enrolled
     */
    uint64_t enrollAll();

    /** One monitoring tick over the next probe batch. */
    MegaFleetVerdict tick();

    /** Run `ticks` monitoring ticks. */
    MegaFleetReport run(uint64_t ticks);

    /** @return the running report (valid any time). */
    const MegaFleetReport &report() const { return report_; }

    /** @return the backing database (open; may have been reopened). */
    store::EnrollmentDb &db() { return *db_; }

    /** @return the fleet-owned telemetry sink. */
    Telemetry &telemetry() { return *telemetry_; }

    /** Attach a fault injector to the db (campaign hook). */
    void attachFaultInjector(const FaultInjector *injector);

    /** @return the synthetic enrollment waveform of channel `index`
     *  (pure function of the fleet seed; test/verification hook). */
    std::vector<double> syntheticEnrollment(std::size_t index) const;

    /** @return derived id of channel `index` ("ch<index>"). */
    static std::string channelId(std::size_t index);

    /** @return modeled probe round duration of channel `index`,
     *  seconds — a pure function of the fleet seed and the index
     *  (heterogeneous, so scheduling modes actually differ). */
    double probeDuration(std::size_t index) const;

  private:
    /** Per-channel registry entry — deliberately tiny. */
    struct ChannelSlot
    {
        float lastScore = -1.0f; //!< latest similarity (< 0 = none)
        uint8_t state = 0;       //!< 0 monitoring, 1 pending-reenroll
        bool tampered = false;   //!< latest probe tripped the wire bar
    };

    void reopenDb();
    MegaFleetVerdict fuse();
    /** Fold one tick's probe batch into the instrument-pool busy /
     *  capacity account under the configured scheduling model. */
    void accountInstrumentSchedule(
        const std::vector<std::size_t> &channels);

    MegaFleetConfig config_;
    unsigned lanes_ = 1; //!< resolved reactorLanes
    Rng rng_;
    std::unique_ptr<Telemetry> telemetry_;
    std::unique_ptr<store::EnrollmentDb> db_;
    std::unique_ptr<class ThreadPool> pool_;
    const FaultInjector *injector_ = nullptr;
    std::vector<ChannelSlot> slots_;
    std::size_t cursor_ = 0; //!< round-robin probe cursor
    uint64_t tick_ = 0;
    MegaFleetReport report_;
    double busySeconds_ = 0.0;     //!< Σ probe durations scheduled
    double capacitySeconds_ = 0.0; //!< Σ instruments x wave makespan
    Counter tmTicks_;
    Counter tmProbes_;
    Counter tmHydrates_;
    Counter tmPending_;
    Counter tmCrashRecoveries_;
    Gauge tmUtilization_; //!< megafleet.instrument.utilization, ‰
};

} // namespace divot

#endif // DIVOT_FLEET_MEGAFLEET_HH
