/**
 * @file
 * MegaFleet — a bounded-memory fleet service for very large channel
 * counts (10^5+), built directly on the sharded EnrollmentDb.
 *
 * The full BusChannel stack fabricates a transmission line, an
 * environment model, and an instrument per channel — megabytes and
 * milliseconds each, fine for dozens of wires, impossible for a
 * hundred thousand. MegaFleet keeps the *persistence and fusion*
 * semantics of the fleet layer while replacing the physics with a
 * deterministic synthetic channel model:
 *
 *  - enrollment fingerprint of channel i = a waveform drawn from
 *    `rng.forkStable(kTagMegaChannel + i)` — a pure function of the
 *    fleet seed and the index, never materialized fleet-wide;
 *  - a probe of channel i at tick t = that enrollment plus noise from
 *    `forkStable(mix(i, t))`, so any probe can be recomputed from
 *    scratch without holding anything resident.
 *
 * Memory contract: the per-channel registry holds only lifecycle
 * state and the latest fused score (O(10 bytes) per channel). All
 * fingerprints live in the EnrollmentDb; each tick hydrates exactly
 * the probed batch — grouped by shard so every shard file is read at
 * most once per tick — and releases it when the tick ends. Peak
 * resident enrollment bytes are reported so benches can assert the
 * budget held.
 *
 * Determinism contract: probes of one tick write disjoint slots and
 * draw only from forkStable streams; hydration, fusion, and every
 * EnrollmentDb mutation run in serial sections in ascending channel
 * order. Fused verdicts are therefore bit-identical at any thread
 * count, with or without an active storage FaultPlan (the db's
 * IO-event sequence is thread-independent either way).
 *
 * Crash behavior: a simulated power cut (StorageCrash cell) kills the
 * db handle mid-enrollment; MegaFleet reopens the directory — which
 * replays the journal — and continues, re-putting the interrupted
 * record. Channels whose records are damaged beyond every recovery
 * path land in PendingReenroll and stop contributing evidence; they
 * never authenticate junk.
 */

#ifndef DIVOT_FLEET_MEGAFLEET_HH
#define DIVOT_FLEET_MEGAFLEET_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fingerprint/fusion.hh"
#include "fleet/channel_scheduler.hh"
#include "fleet/reactor.hh"
#include "service/request.hh"
#include "store/enrollment_db.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace divot {

/** MegaFleet tuning. */
struct MegaFleetConfig
{
    std::size_t channels = 100000;  //!< fleet size
    std::size_t fingerprintBins = 32; //!< samples per synthetic IIP
    double noiseSigma = 1e-4;       //!< probe noise, relative
    double similarityThreshold = 0.35; //!< fused-score accept bar
    double tamperThreshold = 1e-6;  //!< per-wire peak-error alarm bar
    unsigned tamperWireVotes = 3;   //!< M-of-N bus alarm quorum
    FusionConfig fusion;            //!< similarity fusion rule
    unsigned threads = 0;           //!< worker threads (0 = hardware)
    std::size_t probesPerTick = 4096; //!< wires probed per tick

    /**
     * Hydration lanes: shard s belongs to lane s % K, each lane walks
     * its shards in ascending order on its own thread, and the staged
     * results merge serially in ascending shard order — so fused
     * verdicts and the digest are bit-identical for K=1 vs any K at
     * any thread count. 0 = auto: min(store shards, 8). The store's
     * decoded-image cache is re-partitioned to the same lane count.
     */
    unsigned reactorLanes = 0;
    store::EnrollmentDbConfig store;  //!< shard directory + tunables
    std::size_t residentBudgetBytes = 32u << 20; //!< hydration budget
    TelemetryConfig telemetry;      //!< observability (on by default)
    std::size_t instruments = 8;    //!< modeled iTDR pool size for the
                                    //!< instrument-schedule accounting
    ReactorMode schedule = ReactorMode::Barrier; //!< instrument-pool
                                    //!< scheduling model: Barrier
                                    //!< stretches each wave of
                                    //!< `instruments` probes to its
                                    //!< slowest member; Pipelined
                                    //!< hands a freed instrument to
                                    //!< the next probe immediately.
                                    //!< Pure accounting — probe math
                                    //!< and verdict digests are
                                    //!< identical in both modes

    /**
     * Probe-batch selection. RiskWeighted (default) is hierarchical:
     * a deterministic hot set — channels whose last probe tripped the
     * tamper bar or scored below the similarity threshold, plus every
     * channel named by a pending service request — is probed first in
     * ascending index order, and the remaining budget backfills
     * round-robin from the cursor. O(hot + batch) per tick, so the
     * risk tier never costs an O(N log N) fleet-wide sort. RoundRobin
     * is the legacy pure-rotation schedule. With an empty hot set the
     * two are identical, batch for batch.
     */
    SchedulerPolicy policy = SchedulerPolicy::RiskWeighted;

    /** Global admission bound of the request front end (in-flight
     *  requests; beyond it submits reject Busy). */
    std::size_t requestQueueDepth = 1024;

    /** Per-channel admission bound (see FleetConfig). */
    std::size_t requestChannelDepth = 4;
};

/** Summary of a MegaFleet run. */
struct MegaFleetReport
{
    uint64_t enrolled = 0;       //!< records durably enrolled
    uint64_t crashRecoveries = 0; //!< db reopen+replay cycles survived
    uint64_t ticks = 0;          //!< monitoring ticks executed
    uint64_t probes = 0;         //!< per-wire probes performed
    uint64_t hydrates = 0;       //!< records hydrated from shards
    uint64_t pendingReenroll = 0; //!< channels fenced (records lost)
    bool lastTrusted = false;    //!< busTrusted after the final tick
    double lastFusedSimilarity = 0.0; //!< fused score, final tick
    uint64_t verdictDigest = 0;  //!< FNV-1a over every fused verdict
                                 //!< (bit-identity comparisons)
    std::size_t peakResidentBytes = 0; //!< max hydrated bytes held at
                                       //!< any instant
    double instrumentUtilization = 0.0; //!< busy / capacity of the
                                        //!< modeled instrument pool
                                        //!< under `config.schedule`
};

/** One fused bus verdict from a MegaFleet tick. */
struct MegaFleetVerdict
{
    uint64_t tick = 0;
    bool busAuthenticated = false;
    bool tamperAlarm = false;
    bool busTrusted = false;
    double fusedSimilarity = 0.0;
    std::size_t contributingWires = 0;
    std::size_t tamperedWires = 0;
    std::size_t pendingReenrollWires = 0;
};

/**
 * The bounded-memory fleet service.
 */
class MegaFleet
{
  public:
    MegaFleet(MegaFleetConfig config, Rng rng);
    ~MegaFleet();

    MegaFleet(const MegaFleet &) = delete;
    MegaFleet &operator=(const MegaFleet &) = delete;

    /**
     * Enroll every channel into the EnrollmentDb (serial, ascending
     * index; survives simulated power cuts by reopening + replaying).
     * Finishes with a checkpoint so every record sits in a shard
     * image.
     *
     * @return channels durably enrolled
     */
    uint64_t enrollAll();

    /** One monitoring tick over the next probe batch. */
    MegaFleetVerdict tick();

    /** Run `ticks` monitoring ticks. */
    MegaFleetReport run(uint64_t ticks);

    /** @return the running report (valid any time). */
    const MegaFleetReport &report() const { return report_; }

    /** @return the backing database (open; may have been reopened). */
    store::EnrollmentDb &db() { return *db_; }

    /** @return the fleet-owned telemetry sink. */
    Telemetry &telemetry() { return *telemetry_; }

    /** Attach a fault injector to the db (campaign hook). */
    void attachFaultInjector(const FaultInjector *injector);

    /** @return the synthetic enrollment waveform of channel `index`
     *  (pure function of the fleet seed; test/verification hook). */
    std::vector<double> syntheticEnrollment(std::size_t index) const;

    /** @return derived id of channel `index` ("ch<index>"). */
    static std::string channelId(std::size_t index);

    /** @return modeled probe round duration of channel `index`,
     *  seconds — a pure function of the fleet seed and the index
     *  (heterogeneous, so scheduling modes actually differ). */
    double probeDuration(std::size_t index) const;

    /** @name Request front end (the same protocol FleetService
     *  answers — service/request.hh). */
    ///@{
    /**
     * Submit one request. Bounded admission, decided synchronously:
     * Busy/Unknown rejections emit their response immediately;
     * admitted requests answer during the next tick()s — immediately
     * for QuarantineStatus/Enroll/Reenroll, at the channel's next
     * probe for Verify (the request pulls the channel into the hot
     * set, ahead of the round-robin rotation), after fusion for
     * FleetSummary.
     *
     * @return true when admitted
     */
    bool submit(const service::ServiceRequest &request);

    /** Move out responses emitted so far, in emission order. */
    std::vector<service::ServiceResponse> drainResponses();

    /** @return chained FNV digest over every emitted response frame
     *  (the request-leg bit-identity currency). */
    uint64_t responseDigest() const { return responseDigest_; }

    /** @return admission/emission totals of the front end. */
    const service::ServiceStats &serviceStats() const
    {
        return serviceStats_;
    }

    /** @return requests admitted but not yet answered. */
    std::size_t pendingRequests() const;
    ///@}

  private:
    /** Per-channel registry entry — deliberately tiny. */
    struct ChannelSlot
    {
        float lastScore = -1.0f; //!< latest similarity (< 0 = none)
        uint8_t state = 0;       //!< 0 monitoring, 1 pending-reenroll
        bool tampered = false;   //!< latest probe tripped the wire bar
    };

    /** One admitted request (channel resolved at admission). */
    struct Admitted
    {
        service::ServiceRequest request;
        std::size_t channel = kNoChannel;
    };

    /** Sentinel channel for FleetSummary / unknown names. */
    static constexpr std::size_t kNoChannel =
        static_cast<std::size_t>(-1);

    void reopenDb();
    MegaFleetVerdict fuse();
    /** Fold one tick's probe batch into the instrument-pool busy /
     *  capacity account under the configured scheduling model. */
    void accountInstrumentSchedule(
        const std::vector<std::size_t> &channels);
    /** Parse "ch<i>" into an index; kNoChannel when malformed or out
     *  of range. */
    std::size_t parseChannel(const std::string &name) const;
    /** Fold + record one emitted response. */
    void emitResponse(service::ServiceResponse response);
    /** Emit an immediate rejection at submit time. */
    void rejectRequest(const service::ServiceRequest &request,
                       service::ResponseStatus status);
    /** Answer every verify ticket parked on `channel` as Fenced. */
    void answerFenced(std::size_t channel);
    /** Drain admitted requests into the tick: immediate kinds answer
     *  now, Verify parks on its (hot-set-boosted) channel, summaries
     *  wait for fusion. */
    void processArrivals();
    /** Durable put with the bounded crash-reopen-replay loop.
     *  @return durable */
    bool putWithRecovery(const store::EnrollmentRecord &record);

    MegaFleetConfig config_;
    unsigned lanes_ = 1; //!< resolved reactorLanes
    Rng rng_;
    std::unique_ptr<Telemetry> telemetry_;
    std::unique_ptr<store::EnrollmentDb> db_;
    std::unique_ptr<class ThreadPool> pool_;
    const FaultInjector *injector_ = nullptr;
    std::vector<ChannelSlot> slots_;
    std::size_t cursor_ = 0; //!< round-robin probe cursor
    uint64_t tick_ = 0;
    MegaFleetReport report_;
    double busySeconds_ = 0.0;     //!< Σ probe durations scheduled
    double capacitySeconds_ = 0.0; //!< Σ instruments x wave makespan

    /** @name Request front end + hot-set tier. */
    ///@{
    /** Risk tier: channels probed ahead of the rotation (ascending
     *  order — std::set keeps selection deterministic). Members are
     *  re-evaluated when probed. */
    std::set<std::size_t> hot_;
    std::deque<Admitted> admitted_;  //!< not yet entered a tick
    /** channel → verify requests waiting for its next probe. */
    std::map<std::size_t, std::vector<service::ServiceRequest>>
        verifyWaiting_;
    std::vector<service::ServiceRequest> summaryWaiting_;
    std::map<std::size_t, std::size_t> channelLoad_; //!< in-flight
    std::size_t parked_ = 0; //!< verify/summary requests carried
                             //!< across ticks (admission accounting)
    std::vector<service::ServiceResponse> responses_;
    uint64_t responseDigest_ = 0;
    service::ServiceStats serviceStats_;
    ///@}

    Counter tmTicks_;
    Counter tmProbes_;
    Counter tmHydrates_;
    Counter tmPending_;
    Counter tmCrashRecoveries_;
    Counter tmRequests_;  //!< megafleet.requests
    Counter tmResponses_; //!< megafleet.responses
    Gauge tmUtilization_; //!< megafleet.instrument.utilization, ‰
};

} // namespace divot

#endif // DIVOT_FLEET_MEGAFLEET_HH
