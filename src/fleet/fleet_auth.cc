#include "fleet/fleet_auth.hh"

#include "util/logging.hh"

namespace divot {

FleetAuthenticator::FleetAuthenticator(FusionConfig fusion,
                                       double similarity_threshold,
                                       unsigned tamper_wire_votes)
    : fusion_(fusion), similarityThreshold_(similarity_threshold),
      tamperWireVotes_(tamper_wire_votes == 0 ? 1 : tamper_wire_votes)
{
    if (similarityThreshold_ <= 0.0 || similarityThreshold_ >= 1.0)
        divot_fatal("fleet similarity threshold must be in (0, 1), "
                    "got %g",
                    similarityThreshold_);
}

void
FleetAuthenticator::setChannelCount(std::size_t count)
{
    if (count > tracks_.size())
        tracks_.resize(count);
}

void
FleetAuthenticator::observe(std::size_t index, const AuthVerdict &verdict)
{
    if (index >= tracks_.size())
        tracks_.resize(index + 1);
    ChannelTrack &track = tracks_[index];
    track.observed = true;
    track.last = verdict;
    // A score from an unhealthy instrument round is measurement noise,
    // not bus evidence; keep the previous healthy score as this
    // wire's contribution until the instrument recovers.
    if (verdict.instrumentHealthy) {
        track.hasHealthyScore = true;
        track.lastScore = verdict.similarity;
    }
}

FleetVerdict
FleetAuthenticator::evaluate(uint64_t tick) const
{
    FleetVerdict out;
    out.tick = tick;
    out.similarityThreshold = similarityThreshold_;
    out.channels = tracks_.size();

    std::size_t tampered = 0;
    for (const ChannelTrack &track : tracks_) {
        if (!track.observed)
            continue;
        ++out.channelsObserved;
        const AuthState state = track.last.stateAfter;
        if (state == AuthState::Degraded)
            ++out.degradedWires;
        if (state == AuthState::Quarantine) {
            ++out.quarantinedWires;
            continue; // distrusted instrument: no score contribution
        }
        if (state == AuthState::PendingReenroll) {
            ++out.pendingReenrollWires;
            continue; // no calibration to authenticate against: the
                      // wire counts in the posture, never the fusion
        }
        if (track.last.tamperAlarm)
            ++tampered;
        if (track.last.authenticated)
            ++out.authenticatedWires;
        if (track.hasHealthyScore)
            out.wireScores.push_back(track.lastScore);
    }
    out.tamperedWires = tampered;
    out.contributingWires = out.wireScores.size();

    if (!out.wireScores.empty()) {
        out.fusedSimilarity = fuseScores(fusion_, out.wireScores);
        out.busAuthenticated = out.fusedSimilarity >= similarityThreshold_;
    }
    out.tamperAlarm = tampered >= tamperWireVotes_;
    out.busTrusted = out.busAuthenticated && !out.tamperAlarm;
    return out;
}

} // namespace divot
