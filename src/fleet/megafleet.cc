#include "fleet/megafleet.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_set>
#include <utility>

#include "fingerprint/fingerprint.hh"
#include "store/io.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

namespace {

/** Domain-separation tags for the synthetic channel model. */
constexpr uint64_t kTagMegaChannel = 0x4D454741000000ULL; // "MEGA"
constexpr uint64_t kTagMegaProbe = 0x4D4550524F4245ULL;   // "MEPROBE"
constexpr uint64_t kTagMegaDuration = 0x4D454744555200ULL; // "MEGDUR"

/** Mix (channel, tick) into one forkStable tag. Multiplicative
 *  spreading keeps distinct pairs on distinct tags for any fleet and
 *  horizon this simulator can reach. */
uint64_t
probeTag(std::size_t channel, uint64_t tick)
{
    uint64_t h = kTagMegaProbe;
    h ^= (tick + 1) * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(channel) + 1) * 0xc2b2ae3d27d4eb4fULL;
    return h;
}

/** Mean-removed, unit-L2 residual of a raw trace — the same
 *  normalization Fingerprint::fromMeasurement applies, reproduced
 *  here because synthetic channels have no iTDR measurement. */
Waveform
makeResidual(const std::vector<double> &raw)
{
    double mean = 0.0;
    for (double v : raw)
        mean += v;
    mean /= raw.empty() ? 1.0 : static_cast<double>(raw.size());
    std::vector<double> res(raw.size());
    double norm2 = 0.0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        res[i] = raw[i] - mean;
        norm2 += res[i] * res[i];
    }
    const double norm = std::sqrt(norm2);
    if (norm > 0.0)
        for (double &v : res)
            v /= norm;
    return Waveform(1.0, std::move(res));
}

Fingerprint
makeFingerprint(std::vector<double> raw, std::string label)
{
    Waveform residual = makeResidual(raw);
    return Fingerprint::fromParts(Waveform(1.0, std::move(raw)),
                                  std::move(residual),
                                  std::move(label));
}

/** Drop one unit of per-channel admission load. */
void
releaseLoad(std::map<std::size_t, std::size_t> &load, std::size_t c)
{
    const auto it = load.find(c);
    if (it == load.end())
        return;
    if (it->second > 1)
        --it->second;
    else
        load.erase(it);
}

} // namespace

std::string
MegaFleet::channelId(std::size_t index)
{
    return "ch" + std::to_string(index);
}

MegaFleet::MegaFleet(MegaFleetConfig config, Rng rng)
    : config_(std::move(config)),
      rng_(rng),
      telemetry_(new Telemetry(config_.telemetry)),
      pool_(new ThreadPool(config_.threads))
{
    if (config_.channels == 0)
        config_.channels = 1;
    if (config_.fingerprintBins == 0)
        config_.fingerprintBins = 8;
    if (config_.probesPerTick == 0)
        config_.probesPerTick = 1;
    if (config_.instruments == 0)
        config_.instruments = 1;
    slots_.resize(config_.channels);

    // Resolve the hydration-lane count from the fleet *composition*
    // only (never the thread count: the digest must not move when the
    // pool size does) and give the store's decoded-image cache the
    // same partition before the db is built.
    lanes_ = config_.reactorLanes;
    if (lanes_ == 0) {
        const unsigned shards =
            config_.store.shards == 0 ? 1 : config_.store.shards;
        lanes_ = std::min(shards, 8u);
    }
    config_.store.shardCacheLanes = lanes_;

    store::ensureDir(config_.store.directory);
    db_.reset(new store::EnrollmentDb(config_.store));
    db_->attachTelemetry(telemetry_.get());
    if (!db_->open())
        divot_fatal("megafleet: cannot open enrollment db at '%s'",
                    config_.store.directory.c_str());

    Registry &reg = telemetry_->registry();
    tmTicks_ = reg.counter("megafleet.ticks");
    tmProbes_ = reg.counter("megafleet.probes");
    tmHydrates_ = reg.counter("megafleet.hydrates");
    tmPending_ = reg.counter("megafleet.pending_reenroll");
    tmCrashRecoveries_ = reg.counter("megafleet.crash_recoveries");
    tmRequests_ = reg.counter("megafleet.requests");
    tmResponses_ = reg.counter("megafleet.responses");
    tmUtilization_ = reg.gauge("megafleet.instrument.utilization");
}

MegaFleet::~MegaFleet() = default;

void
MegaFleet::attachFaultInjector(const FaultInjector *injector)
{
    injector_ = injector;
    db_->attachFaultInjector(injector_);
}

std::vector<double>
MegaFleet::syntheticEnrollment(std::size_t index) const
{
    Rng chan = rng_.forkStable(kTagMegaChannel + index);
    std::vector<double> raw(config_.fingerprintBins);
    for (double &v : raw)
        v = chan.uniform(0.25, 1.0);
    return raw;
}

double
MegaFleet::probeDuration(std::size_t index) const
{
    // Heterogeneous rounds (6x spread) keyed only by (seed, index):
    // short wires finish early, so the Pipelined schedule has real
    // slack to reclaim where Barrier waits for the wave's slowest.
    Rng lane = rng_.forkStable(kTagMegaDuration + index);
    return lane.uniform(0.2e-3, 1.2e-3);
}

void
MegaFleet::accountInstrumentSchedule(
    const std::vector<std::size_t> &channels)
{
    if (channels.empty())
        return;
    const std::size_t k = config_.instruments;
    double busy = 0.0;
    for (const std::size_t c : channels)
        busy += probeDuration(c);
    double span = 0.0;
    if (config_.schedule == ReactorMode::Barrier) {
        // Waves of k probes; each wave lasts as long as its slowest
        // member and every instrument is held for the full wave.
        for (std::size_t i = 0; i < channels.size(); i += k) {
            double waveMax = 0.0;
            const std::size_t hi = std::min(i + k, channels.size());
            for (std::size_t j = i; j < hi; ++j)
                waveMax = std::max(waveMax, probeDuration(channels[j]));
            span += waveMax;
        }
    } else {
        // Pipelined: a freed instrument immediately takes the next
        // probe in batch order; the tick lasts until the last one
        // finishes (greedy list schedule, earliest-free instrument,
        // tie-break lower index — deterministic).
        std::vector<double> freeAt(k, 0.0);
        for (const std::size_t c : channels) {
            std::size_t arg = 0;
            for (std::size_t i = 1; i < k; ++i)
                if (freeAt[i] < freeAt[arg])
                    arg = i;
            freeAt[arg] += probeDuration(c);
        }
        for (const double f : freeAt)
            span = std::max(span, f);
    }
    busySeconds_ += busy;
    capacitySeconds_ += static_cast<double>(k) * span;
    report_.instrumentUtilization =
        capacitySeconds_ > 0.0
            ? std::min(1.0, busySeconds_ / capacitySeconds_)
            : 0.0;
    tmUtilization_.set(static_cast<int64_t>(
        std::llround(report_.instrumentUtilization * 1000.0)));
}

void
MegaFleet::reopenDb()
{
    db_.reset(new store::EnrollmentDb(config_.store));
    db_->attachTelemetry(telemetry_.get());
    db_->attachFaultInjector(injector_);
    if (!db_->open())
        divot_fatal("megafleet: recovery open failed at '%s'",
                    config_.store.directory.c_str());
    ++report_.crashRecoveries;
    tmCrashRecoveries_.add();
}

uint64_t
MegaFleet::enrollAll()
{
    // Serial, ascending index: the db's IO-event sequence — and with
    // it every injected storage fault — is a pure function of the
    // fleet composition.
    for (std::size_t i = 0; i < config_.channels; ++i) {
        store::EnrollmentRecord rec;
        rec.id = channelId(i);
        rec.fp = makeFingerprint(syntheticEnrollment(i), rec.id);
        rec.generation = 1;
        bool durable = false;
        // A simulated power cut kills the handle mid-put; reopening
        // replays the journal, after which the interrupted record is
        // simply re-put. Bounded attempts guard against a fault plan
        // that crashes the very first IO event of every recovery.
        for (int attempt = 0; attempt < 4 && !durable; ++attempt) {
            if (db_->alive() && db_->put(rec)) {
                durable = true;
                break;
            }
            if (!db_->alive())
                reopenDb();
        }
        if (durable) {
            ++report_.enrolled;
        } else {
            slots_[i].state = 1;
            ++report_.pendingReenroll;
            tmPending_.add();
        }
    }
    // Land every overlay in its shard image so monitoring ticks read
    // pure shard files (hydration never consults overlays).
    for (int attempt = 0; attempt < 4; ++attempt) {
        if (db_->alive() && db_->checkpoint())
            break;
        if (!db_->alive())
            reopenDb();
    }
    return report_.enrolled;
}

std::size_t
MegaFleet::parseChannel(const std::string &name) const
{
    if (name.size() < 3 || name[0] != 'c' || name[1] != 'h')
        return kNoChannel;
    std::size_t value = 0;
    for (std::size_t i = 2; i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return kNoChannel;
        if (value > (config_.channels / 10) + 1)
            return kNoChannel; // overflow guard: already out of range
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    // Reject non-canonical spellings ("ch007"): every valid id is
    // exactly what channelId() prints, so the name space stays 1:1.
    if (name != channelId(value))
        return kNoChannel;
    return value < config_.channels ? value : kNoChannel;
}

void
MegaFleet::emitResponse(service::ServiceResponse response)
{
    responseDigest_ =
        service::foldResponseDigest(responseDigest_, response);
    ++serviceStats_.responses;
    tmResponses_.add();
    responses_.push_back(std::move(response));
}

void
MegaFleet::rejectRequest(const service::ServiceRequest &request,
                         service::ResponseStatus status)
{
    service::ServiceResponse response;
    response.id = request.id;
    response.kind = request.kind;
    response.channel = request.channel;
    response.status = status;
    response.tick = tick_;
    emitResponse(std::move(response));
}

bool
MegaFleet::submit(const service::ServiceRequest &request)
{
    ++serviceStats_.submitted;
    tmRequests_.add();
    std::size_t channel = kNoChannel;
    if (request.kind != service::RequestKind::FleetSummary) {
        channel = parseChannel(request.channel);
        if (channel == kNoChannel) {
            ++serviceStats_.rejectedUnknown;
            rejectRequest(request, service::ResponseStatus::Unknown);
            return false;
        }
    }
    const std::size_t inflight = admitted_.size() + parked_;
    bool channelFull = false;
    if (channel != kNoChannel) {
        const auto it = channelLoad_.find(channel);
        channelFull = it != channelLoad_.end() &&
                      it->second >= config_.requestChannelDepth;
    }
    if (inflight >= config_.requestQueueDepth || channelFull) {
        ++serviceStats_.rejectedBusy;
        rejectRequest(request, service::ResponseStatus::Busy);
        return false;
    }
    if (channel != kNoChannel)
        ++channelLoad_[channel];
    admitted_.push_back(Admitted{request, channel});
    ++serviceStats_.admitted;
    return true;
}

std::vector<service::ServiceResponse>
MegaFleet::drainResponses()
{
    std::vector<service::ServiceResponse> out = std::move(responses_);
    responses_.clear();
    return out;
}

std::size_t
MegaFleet::pendingRequests() const
{
    return admitted_.size() + parked_;
}

bool
MegaFleet::putWithRecovery(const store::EnrollmentRecord &record)
{
    // Same bounded crash-reopen-replay loop as enrollAll: a simulated
    // power cut kills the handle, reopening replays the journal, and
    // the interrupted record is simply re-put.
    for (int attempt = 0; attempt < 4; ++attempt) {
        if (db_->alive() && db_->put(record))
            return true;
        if (!db_->alive())
            reopenDb();
    }
    return false;
}

void
MegaFleet::answerFenced(std::size_t channel)
{
    const auto it = verifyWaiting_.find(channel);
    if (it == verifyWaiting_.end())
        return;
    for (const service::ServiceRequest &request : it->second) {
        service::ServiceResponse response;
        response.id = request.id;
        response.kind = request.kind;
        response.channel = request.channel;
        response.status = service::ResponseStatus::Fenced;
        response.state =
            static_cast<uint64_t>(AuthState::PendingReenroll);
        response.phase = static_cast<uint64_t>(ChannelPhase::Fenced);
        response.tick = tick_;
        releaseLoad(channelLoad_, channel);
        --parked_;
        emitResponse(std::move(response));
    }
    verifyWaiting_.erase(it);
    hot_.erase(channel);
}

void
MegaFleet::processArrivals()
{
    while (!admitted_.empty()) {
        const Admitted arrival = std::move(admitted_.front());
        admitted_.pop_front();
        const service::ServiceRequest &request = arrival.request;
        const std::size_t c = arrival.channel;
        service::ServiceResponse response;
        response.id = request.id;
        response.kind = request.kind;
        response.channel = request.channel;
        response.tick = tick_;
        switch (request.kind) {
        case service::RequestKind::QuarantineStatus: {
            const ChannelSlot &slot = slots_[c];
            response.status = service::ResponseStatus::Ok;
            response.state = static_cast<uint64_t>(
                slot.state == 0 ? AuthState::Monitoring
                                : AuthState::PendingReenroll);
            response.phase = static_cast<uint64_t>(
                slot.state == 0 ? ChannelPhase::Idle
                                : ChannelPhase::Fenced);
            if (slot.tampered)
                response.flags |= service::kResponseTamper;
            if (slot.lastScore >= 0.0f)
                response.similarity =
                    static_cast<double>(slot.lastScore);
            releaseLoad(channelLoad_, c);
            emitResponse(std::move(response));
            break;
        }
        case service::RequestKind::Enroll:
        case service::RequestKind::Reenroll: {
            store::EnrollmentRecord rec;
            rec.id = channelId(c);
            rec.fp = makeFingerprint(syntheticEnrollment(c), rec.id);
            rec.generation = 1;
            if (db_->alive()) {
                store::EnrollmentRecord old;
                if (db_->get(rec.id, old) == store::DbGetStatus::Ok)
                    rec.generation = old.generation + 1;
            }
            const bool durable = putWithRecovery(rec);
            response.status = durable
                                  ? service::ResponseStatus::Ok
                                  : service::ResponseStatus::Rejected;
            response.generation = rec.generation;
            if (durable) {
                // A fresh durable enrollment lifts any fence; the
                // channel joins the hot tier so its next probe — the
                // evidence the requester is really after — lands in
                // the very next tick.
                slots_[c].state = 0;
                slots_[c].lastScore = -1.0f;
                slots_[c].tampered = false;
                if (config_.policy == SchedulerPolicy::RiskWeighted)
                    hot_.insert(c);
            }
            response.state = static_cast<uint64_t>(
                slots_[c].state == 0 ? AuthState::Monitoring
                                     : AuthState::PendingReenroll);
            releaseLoad(channelLoad_, c);
            emitResponse(std::move(response));
            break;
        }
        case service::RequestKind::Verify:
            if (slots_[c].state != 0) {
                response.status = service::ResponseStatus::Fenced;
                response.state = static_cast<uint64_t>(
                    AuthState::PendingReenroll);
                response.phase =
                    static_cast<uint64_t>(ChannelPhase::Fenced);
                releaseLoad(channelLoad_, c);
                emitResponse(std::move(response));
                break;
            }
            verifyWaiting_[c].push_back(request);
            ++parked_;
            if (config_.policy == SchedulerPolicy::RiskWeighted)
                hot_.insert(c);
            break;
        case service::RequestKind::FleetSummary:
            summaryWaiting_.push_back(request);
            ++parked_;
            break;
        }
    }
}

MegaFleetVerdict
MegaFleet::tick()
{
    // --- Requests enter the tick first: immediate kinds answer now,
    // Verify parks on its channel and pulls it into the hot tier. ----
    processArrivals();

    // --- Select: hierarchical. The hot tier (risky + requested
    // channels, ascending) is probed first; the remaining budget
    // backfills round-robin from the cursor — O(hot + batch), never a
    // fleet-wide sort. ----------------------------------------------
    std::vector<std::size_t> batch;
    batch.reserve(config_.probesPerTick);
    std::unordered_set<std::size_t> chosen;
    if (config_.policy == SchedulerPolicy::RiskWeighted) {
        for (auto it = hot_.begin();
             it != hot_.end() && batch.size() < config_.probesPerTick;) {
            const std::size_t i = *it;
            if (slots_[i].state != 0) {
                it = hot_.erase(it);
                continue;
            }
            batch.push_back(i);
            chosen.insert(i);
            ++it;
        }
    }
    for (std::size_t scanned = 0;
         scanned < config_.channels &&
         batch.size() < config_.probesPerTick;
         ++scanned) {
        const std::size_t i = cursor_;
        cursor_ = (cursor_ + 1) % config_.channels;
        if (slots_[i].state == 0 && chosen.find(i) == chosen.end())
            batch.push_back(i);
    }

    // --- Hydrate: group by shard so each shard image is decoded at
    // most once per tick (and, with the store's decoded-image cache,
    // usually zero times). Lane k walks shards s ≡ k (mod lanes) in
    // ascending order on its own pool thread — each cache lane is
    // touched by exactly one thread, so every admission and eviction
    // decision is thread-count-independent — and stages its outcomes;
    // the serial merge below applies them in ascending shard order,
    // reproducing the K=1 effect order (and therefore the fuseScores
    // operand order and the digest) exactly. ------------------------
    std::map<unsigned, std::vector<std::size_t>> byShard;
    for (std::size_t i : batch)
        byShard[db_->shardOf(channelId(i))].push_back(i);
    std::vector<std::pair<unsigned, std::vector<std::size_t>>> shardsVec(
        byShard.begin(), byShard.end());

    struct Hydrated
    {
        std::size_t channel;
        store::EnrollmentRecord rec;
    };
    struct ShardStage
    {
        std::vector<Hydrated> live;       //!< batch order within shard
        std::vector<std::size_t> fenced;  //!< channels to demote
        std::size_t transientBytes = 0;   //!< decoded bytes NOT served
                                          //!< from the resident cache
    };
    std::vector<ShardStage> stages(shardsVec.size());
    pool_->parallelFor(lanes_, [&](std::size_t lane) {
        for (std::size_t e = 0; e < shardsVec.size(); ++e) {
            const unsigned shard = shardsVec[e].first;
            if (shard % lanes_ != lane)
                continue;
            ShardStage &stage = stages[e];
            bool fromCache = false;
            const auto view = db_->shardView(shard, &fromCache);
            if (view != nullptr && !fromCache)
                stage.transientBytes = view->bytes;
            for (std::size_t i : shardsVec[e].second) {
                bool ok = false;
                if (view != nullptr) {
                    const auto it = view->records.find(channelId(i));
                    if (it != view->records.end() &&
                        (it->second.flags &
                         store::kRecordPendingReenroll) == 0) {
                        stage.live.push_back(Hydrated{i, it->second});
                        ok = true;
                    }
                }
                // Missing or damaged in every bank: fence the channel
                // instead of authenticating junk.
                if (!ok)
                    stage.fenced.push_back(i);
            }
        }
    });

    std::vector<Hydrated> live;
    live.reserve(batch.size());
    std::size_t residentBytes = 0;
    std::size_t pendingThisTick = 0;
    for (ShardStage &stage : stages) {
        for (Hydrated &h : stage.live) {
            residentBytes += h.rec.residentBytes();
            live.push_back(std::move(h));
            ++report_.hydrates;
            tmHydrates_.add();
        }
        for (std::size_t i : stage.fenced) {
            slots_[i].state = 1;
            ++report_.pendingReenroll;
            ++pendingThisTick;
            tmPending_.add();
            // Verifies parked on a channel that just lost its
            // enrollment answer Fenced — never an authenticated
            // verdict against a damaged record.
            answerFenced(i);
        }
        // Peak accounting charges only *transient* decode bytes: a
        // cache-resident view is bounded by shardCacheBytes, which is
        // budgeted separately from the hydration budget.
        report_.peakResidentBytes =
            std::max(report_.peakResidentBytes,
                     residentBytes + stage.transientBytes);
    }
    report_.peakResidentBytes =
        std::max(report_.peakResidentBytes, residentBytes);

    // --- Probe: parallel, disjoint slots, forkStable noise keyed by
    // (channel, tick) — bit-identical at any thread count. -----------
    std::vector<double> scores(live.size(), 0.0);
    std::vector<uint8_t> tampered(live.size(), 0);
    const uint64_t now = tick_;
    pool_->parallelFor(live.size(), [&](std::size_t j) {
        const Hydrated &h = live[j];
        Rng noise = rng_.forkStable(probeTag(h.channel, now));
        std::vector<double> raw(h.rec.fp.raw().samples());
        for (double &v : raw)
            v *= 1.0 + config_.noiseSigma * noise.gaussian();
        const Fingerprint probe =
            makeFingerprint(std::move(raw), channelId(h.channel));
        scores[j] = similarity(h.rec.fp, probe);
        tampered[j] =
            peakError(h.rec.fp, probe) > config_.tamperThreshold
            ? 1 : 0;
    });
    for (std::size_t j = 0; j < live.size(); ++j) {
        const std::size_t c = live[j].channel;
        slots_[c].lastScore = static_cast<float>(scores[j]);
        slots_[c].tampered = tampered[j] != 0;

        // Hot-tier maintenance: channels that look risky (tamper trip
        // or a below-threshold score) stay hot and get probed again
        // next tick; clean ones fall back to the round-robin tail.
        if (config_.policy == SchedulerPolicy::RiskWeighted) {
            const bool risky =
                tampered[j] != 0 ||
                scores[j] < config_.similarityThreshold;
            if (risky)
                hot_.insert(c);
            else
                hot_.erase(c);
        }

        // Answer every Verify parked on this channel with the fresh
        // verdict (serial, batch order — deterministic).
        const auto wit = verifyWaiting_.find(c);
        if (wit != verifyWaiting_.end()) {
            for (const service::ServiceRequest &request : wit->second) {
                service::ServiceResponse response;
                response.id = request.id;
                response.kind = request.kind;
                response.channel = request.channel;
                response.status = service::ResponseStatus::Ok;
                response.tick = tick_;
                response.state =
                    static_cast<uint64_t>(AuthState::Monitoring);
                response.phase =
                    static_cast<uint64_t>(ChannelPhase::Idle);
                response.similarity = scores[j];
                if (scores[j] >= config_.similarityThreshold)
                    response.flags |= service::kResponseAuthenticated;
                if (tampered[j] != 0)
                    response.flags |= service::kResponseTamper;
                releaseLoad(channelLoad_, c);
                --parked_;
                emitResponse(std::move(response));
            }
            verifyWaiting_.erase(wit);
        }
    }

    // --- Instrument-pool accounting (busy vs capacity under the
    // configured scheduling model; never touches the verdict). ------
    std::vector<std::size_t> probed(live.size());
    for (std::size_t j = 0; j < live.size(); ++j)
        probed[j] = live[j].channel;
    accountInstrumentSchedule(probed);

    // --- Fuse (serial). ---------------------------------------------
    MegaFleetVerdict v;
    v.tick = tick_;
    v.contributingWires = live.size();
    v.pendingReenrollWires = pendingThisTick;
    for (uint8_t t : tampered)
        v.tamperedWires += t;
    if (!live.empty()) {
        v.fusedSimilarity = fuseScores(config_.fusion, scores);
        v.busAuthenticated =
            v.fusedSimilarity >= config_.similarityThreshold;
    }
    const unsigned quorum =
        config_.tamperWireVotes == 0 ? 1 : config_.tamperWireVotes;
    v.tamperAlarm = v.tamperedWires >= quorum;
    v.busTrusted = v.busAuthenticated && !v.tamperAlarm;

    // Answer every FleetSummary parked on this epoch's fusion.
    if (!summaryWaiting_.empty()) {
        for (const service::ServiceRequest &request : summaryWaiting_) {
            service::ServiceResponse response;
            response.id = request.id;
            response.kind = request.kind;
            response.status = service::ResponseStatus::Ok;
            response.tick = tick_;
            response.similarity = v.fusedSimilarity;
            response.channels = config_.channels;
            response.fenced = report_.pendingReenroll;
            if (v.busAuthenticated)
                response.flags |= service::kResponseAuthenticated;
            if (v.tamperAlarm)
                response.flags |= service::kResponseTamper;
            if (v.busTrusted)
                response.flags |= service::kResponseTrusted;
            --parked_;
            emitResponse(std::move(response));
        }
        summaryWaiting_.clear();
    }

    // Fold the verdict into the running FNV digest — the quantity the
    // 1-vs-N-thread and fault/no-fault identity checks compare.
    std::vector<char> buf;
    store::putU64(buf, report_.verdictDigest);
    store::putU64(buf, v.tick);
    store::putU64(buf, (v.busAuthenticated ? 1u : 0u) |
                           (v.tamperAlarm ? 2u : 0u) |
                           (v.busTrusted ? 4u : 0u));
    store::putF64(buf, v.fusedSimilarity);
    store::putU64(buf, v.contributingWires);
    store::putU64(buf, v.tamperedWires);
    store::putU64(buf, v.pendingReenrollWires);
    report_.verdictDigest = store::fnv1a(buf);

    ++tick_;
    ++report_.ticks;
    report_.probes += live.size();
    report_.lastTrusted = v.busTrusted;
    report_.lastFusedSimilarity = v.fusedSimilarity;
    tmTicks_.add();
    tmProbes_.add(live.size());
    return v;
}

MegaFleetReport
MegaFleet::run(uint64_t ticks)
{
    for (uint64_t t = 0; t < ticks; ++t)
        tick();
    return report_;
}

} // namespace divot
