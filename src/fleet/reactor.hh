/**
 * @file
 * Reactor — the deterministic event core the fleet scheduler runs on.
 *
 * The old ChannelScheduler::tick was a synchronous pipeline: select,
 * serially hydrate, run every probe of the round behind one barrier,
 * fuse, scrub. The reactor inverts it: everything that happens to a
 * fleet is an *event* — a hydration request, a probe completion, an
 * epoch-boundary fusion, eviction pressure, a scrub step, an operator
 * recalibration, a fault manifestation — consumed one at a time from
 * a queue ordered purely by (virtual wall-clock, sequence number).
 *
 * Determinism contract (DESIGN.md §15): events are scheduled only
 * from the (single-threaded) consumption loop and from the public
 * tick()/reenroll entry points, so sequence numbers — and with them
 * the total event order — are a pure function of (seed, config).
 * Worker threads execute probe *computations* (via the util
 * CompletionQueue), but their results are consumed at the probe's
 * ProbeComplete event, whose position in the order was fixed at
 * dispatch. Fused verdicts, telemetry exports, and store IO-event
 * sequences (hence injected storage faults) are therefore
 * bit-identical at any thread count.
 *
 * The reactor itself is policy-free: it owns the queue, the
 * instrument free-list, virtual-time utilization accounting, and the
 * fleet.reactor.* metrics. What an event *means* lives in its owner
 * (ChannelScheduler handlers); per-channel lifecycle is tracked with
 * the ChannelPhase state machine below.
 */

#ifndef DIVOT_FLEET_REACTOR_HH
#define DIVOT_FLEET_REACTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/telemetry.hh"

namespace divot {

/** Everything that can happen to a fleet, as a queue event. */
enum class ReactorEventType : uint8_t
{
    HydrateRequest,     //!< channel wants its enrollment resident and
                        //!< an instrument dispatched
    ProbeComplete,      //!< a dispatched probe's verdict is due
    FuseEpoch,          //!< epoch boundary: fuse the latest verdicts
    EvictPressure,      //!< resident enrollment budget needs enforcing
    ScrubStep,          //!< an idle instrument slot pays for one
                        //!< background store scrub pass
    RecalibrateRequest, //!< operator re-enrolls a fenced channel
    FaultEvent,         //!< a fault manifested (unrecoverable record,
                        //!< failed persist); consumed for recovery
                        //!< accounting
    RequestArrival,     //!< an admitted service request enters the
                        //!< epoch (ticket = service request slot)
    RequestComplete     //!< a service response is due for emission
                        //!< (ticket = service request slot)
};

/** Number of ReactorEventType values (telemetry table size). */
constexpr std::size_t kReactorEventTypes = 9;

/** @return stable lower-case event-type name ("hydrate", ...). */
const char *reactorEventName(ReactorEventType type);

/**
 * Per-channel lifecycle phase — the state machine extracted from the
 * monolithic tick body. Transitions happen only while consuming
 * events:
 *
 *   Idle --HydrateRequest--> Hydrating --ok--> Probing
 *   Hydrating --unrecoverable--> Fenced          (FaultEvent emitted)
 *   Probing --ProbeComplete--> Idle
 *   Idle/Probing --ScrubStep loss--> Fenced      (FaultEvent emitted)
 *   Fenced --RecalibrateRequest--> Idle          (persist may fault)
 */
enum class ChannelPhase : uint8_t
{
    Idle,      //!< eligible for selection
    Hydrating, //!< selected; enrollment being made resident
    Probing,   //!< instrument dispatched, completion event pending
    Fenced     //!< PendingReenroll: no enrollment to probe against
};

/** @return stable phase name ("idle", "hydrating", ...). */
const char *channelPhaseName(ChannelPhase phase);

/** How the scheduler maps rounds onto the event queue. */
enum class ReactorMode : uint8_t
{
    Barrier,  //!< barrier-equivalent: all probes of a tick measure at
              //!< the tick's wall-clock and complete at its end —
              //!< bit-identical to the pre-reactor scheduler
    Pipelined //!< a completion releases its instrument to the next
              //!< ranked channel immediately; probes measure at their
              //!< dispatch time, fusion runs on epoch boundaries
};

/** @return human-readable mode name. */
const char *reactorModeName(ReactorMode mode);

/** Reactor knobs (FleetConfig::reactor). */
struct ReactorConfig
{
    ReactorMode mode = ReactorMode::Barrier;
    std::size_t epochSlots = 1; //!< Pipelined: scheduler slots per
                                //!< fusion epoch (>=1; one tick()
                                //!< spans one epoch)
    std::size_t maxQueue = 0;   //!< backstop bound on queued events
                                //!< (0 = unbounded); exceeding it is
                                //!< fatal — queue depth is a pure
                                //!< function of (seed, config), so an
                                //!< overflow is a config bug, never a
                                //!< load spike
};

/** One queued event. Meaning of `channel`/`ticket`/`epoch` depends on
 *  the type (channel index, completion ticket, epoch ordinal). */
struct ReactorEvent
{
    double vtime = 0.0;  //!< virtual wall-clock, seconds
    uint64_t seq = 0;    //!< schedule order; total-order tie-break
    ReactorEventType type = ReactorEventType::HydrateRequest;
    std::size_t channel = 0;
    uint64_t ticket = 0;
    uint64_t epoch = 0;
};

/**
 * Deterministic event queue + instrument accounting.
 */
class Reactor
{
  public:
    /**
     * @param config      queue bounds / mode knobs
     * @param instruments size of the shared iTDR pool
     */
    Reactor(ReactorConfig config, std::size_t instruments);

    /** @return configured knobs. */
    const ReactorConfig &config() const { return config_; }

    /**
     * Queue an event. `vtime` may be in the past relative to popped
     * events (same-instant follow-ups); ordering is (vtime, seq) with
     * seq assigned here, monotonically.
     *
     * @return the event's sequence number
     */
    uint64_t schedule(ReactorEventType type, double vtime,
                      std::size_t channel = 0, uint64_t ticket = 0,
                      uint64_t epoch = 0);

    /** @return whether any event is queued. */
    bool empty() const { return heap_.empty(); }

    /** @return queued event count. */
    std::size_t depth() const { return heap_.size(); }

    /** @return the next event in (vtime, seq) order (queue must be
     *  non-empty). */
    const ReactorEvent &peek() const;

    /** Remove and return the next event, recording queue-depth and
     *  per-type consumption metrics. */
    ReactorEvent pop();

    /**
     * Count an operator-initiated event (reenrollChannel) that is
     * consumed immediately instead of queued: it still gets a
     * sequence number and per-type accounting so the event order
     * stays a complete record.
     *
     * @return the event, stamped with its sequence number
     */
    ReactorEvent dispatchImmediate(ReactorEventType type, double vtime,
                                   std::size_t channel = 0);

    /** @name Instrument pool accounting. */
    ///@{
    /** @return instruments not currently dispatched. */
    std::size_t freeInstruments() const { return freeInstruments_; }

    /** Dispatch one instrument (fatal when none is free). */
    void acquireInstrument();

    /**
     * Return an instrument, crediting `busy` seconds of measurement
     * time to the utilization account.
     */
    void releaseInstrument(double busy);

    /** @return accumulated busy seconds across all instruments. */
    double busySeconds() const { return busySeconds_; }

    /**
     * @return busy / (instruments x elapsed) in [0, 1]; 0 before any
     *         virtual time has elapsed
     */
    double utilization(double elapsed_seconds) const;

    /** @return utilization scaled to per-mille (deterministic
     *  integer for the stable gauge). */
    int64_t utilizationPerMille(double elapsed_seconds) const;
    ///@}

    /** @return events consumed (popped + immediate) of `type`. */
    uint64_t consumed(ReactorEventType type) const;

    /** @return total events consumed. */
    uint64_t consumedTotal() const;

    /** @return peak queue depth reached (deterministic). */
    std::size_t queueHighWater() const { return highWater_; }

    /**
     * Fold a lane reactor's per-type consumption counts into this
     * (primary) reactor and zero the lane's, so `consumed()` totals
     * are lane-count-invariant however hydration was partitioned.
     * Telemetry counters are NOT re-added — the lane bumped the
     * shared cells once when it popped.
     */
    void absorb(Reactor &lane);

    /**
     * Grow-only heap reservation: pre-size the event arena so
     * steady-state epochs schedule without reallocating. Never
     * shrinks.
     */
    void reserve(std::size_t events);

    /**
     * Attach a telemetry sink: per-type consumption counters
     * ("fleet.reactor.events.<type>") — Stable, because the event
     * order is — plus a queue-depth histogram recorded at every pop
     * and a queue high-water gauge. The queue-shape metrics are
     * Unstable: with hydration sharded across reactor lanes each lane
     * sees only its partition's depths, so the shape depends on the
     * lane count while the event *order* does not (the lane-invariant
     * shape gauge is the scheduler's "fleet.reactor.queue.peak").
     * Pass nullptr to detach. Not owned; must outlive the reactor.
     */
    void attachTelemetry(Telemetry *telemetry);

  private:
    struct HeapEntry
    {
        double vtime;
        uint64_t seq;
        ReactorEvent event;
    };

    ReactorConfig config_;
    std::size_t instruments_;
    std::size_t freeInstruments_;
    std::vector<HeapEntry> heap_; //!< binary min-heap on (vtime, seq)
    uint64_t nextSeq_ = 0;
    std::size_t highWater_ = 0;
    double busySeconds_ = 0.0;
    uint64_t consumed_[kReactorEventTypes] = {};

    Counter tmEvents_[kReactorEventTypes];
    HistogramMetric tmQueueDepth_;
    Gauge tmQueueHighWater_;

    void countConsumed(const ReactorEvent &event);
    static bool heapAfter(const HeapEntry &a, const HeapEntry &b);
};

} // namespace divot

#endif // DIVOT_FLEET_REACTOR_HH
