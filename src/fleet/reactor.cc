#include "fleet/reactor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace divot {

const char *
reactorEventName(ReactorEventType type)
{
    switch (type) {
    case ReactorEventType::HydrateRequest:
        return "hydrate";
    case ReactorEventType::ProbeComplete:
        return "probe_complete";
    case ReactorEventType::FuseEpoch:
        return "fuse_epoch";
    case ReactorEventType::EvictPressure:
        return "evict";
    case ReactorEventType::ScrubStep:
        return "scrub";
    case ReactorEventType::RecalibrateRequest:
        return "recalibrate";
    case ReactorEventType::FaultEvent:
        return "fault";
    case ReactorEventType::RequestArrival:
        return "request_arrival";
    case ReactorEventType::RequestComplete:
        return "request_complete";
    }
    return "?";
}

const char *
channelPhaseName(ChannelPhase phase)
{
    switch (phase) {
    case ChannelPhase::Idle:
        return "idle";
    case ChannelPhase::Hydrating:
        return "hydrating";
    case ChannelPhase::Probing:
        return "probing";
    case ChannelPhase::Fenced:
        return "fenced";
    }
    return "?";
}

const char *
reactorModeName(ReactorMode mode)
{
    switch (mode) {
    case ReactorMode::Barrier:
        return "barrier";
    case ReactorMode::Pipelined:
        return "pipelined";
    }
    return "?";
}

Reactor::Reactor(ReactorConfig config, std::size_t instruments)
    : config_(config), instruments_(instruments),
      freeInstruments_(instruments)
{
    if (config_.epochSlots == 0)
        divot_fatal("reactor epochSlots must be >= 1");
}

bool
Reactor::heapAfter(const HeapEntry &a, const HeapEntry &b)
{
    // std::push_heap builds a max-heap; invert for (vtime, seq) min.
    if (a.vtime != b.vtime)
        return a.vtime > b.vtime;
    return a.seq > b.seq;
}

uint64_t
Reactor::schedule(ReactorEventType type, double vtime,
                  std::size_t channel, uint64_t ticket, uint64_t epoch)
{
    if (config_.maxQueue != 0 && heap_.size() >= config_.maxQueue) {
        divot_fatal("reactor queue overflow (%zu events, bound %zu): "
                    "queue depth is a pure function of (seed, config), "
                    "so this is a config bug, not load",
                    heap_.size(), config_.maxQueue);
    }
    const uint64_t seq = nextSeq_++;
    HeapEntry entry;
    entry.vtime = vtime;
    entry.seq = seq;
    entry.event.vtime = vtime;
    entry.event.seq = seq;
    entry.event.type = type;
    entry.event.channel = channel;
    entry.event.ticket = ticket;
    entry.event.epoch = epoch;
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), heapAfter);
    highWater_ = std::max(highWater_, heap_.size());
    return seq;
}

const ReactorEvent &
Reactor::peek() const
{
    if (heap_.empty())
        divot_fatal("reactor peek() on an empty queue");
    return heap_.front().event;
}

ReactorEvent
Reactor::pop()
{
    if (heap_.empty())
        divot_fatal("reactor pop() on an empty queue");
    tmQueueDepth_.record(heap_.size());
    std::pop_heap(heap_.begin(), heap_.end(), heapAfter);
    ReactorEvent event = heap_.back().event;
    heap_.pop_back();
    countConsumed(event);
    return event;
}

ReactorEvent
Reactor::dispatchImmediate(ReactorEventType type, double vtime,
                           std::size_t channel)
{
    ReactorEvent event;
    event.vtime = vtime;
    event.seq = nextSeq_++;
    event.type = type;
    event.channel = channel;
    countConsumed(event);
    return event;
}

void
Reactor::countConsumed(const ReactorEvent &event)
{
    const std::size_t slot = static_cast<std::size_t>(event.type);
    ++consumed_[slot];
    tmEvents_[slot].add();
    tmQueueHighWater_.max(static_cast<int64_t>(highWater_));
}

void
Reactor::acquireInstrument()
{
    if (freeInstruments_ == 0)
        divot_fatal("reactor instrument over-dispatch (pool of %zu)",
                    instruments_);
    --freeInstruments_;
}

void
Reactor::releaseInstrument(double busy)
{
    if (freeInstruments_ >= instruments_)
        divot_fatal("reactor instrument over-release (pool of %zu)",
                    instruments_);
    ++freeInstruments_;
    busySeconds_ += busy;
}

double
Reactor::utilization(double elapsed_seconds) const
{
    const double capacity =
        elapsed_seconds * static_cast<double>(instruments_);
    if (!(capacity > 0.0))
        return 0.0;
    return std::min(1.0, busySeconds_ / capacity);
}

int64_t
Reactor::utilizationPerMille(double elapsed_seconds) const
{
    return static_cast<int64_t>(
        std::llround(utilization(elapsed_seconds) * 1000.0));
}

uint64_t
Reactor::consumed(ReactorEventType type) const
{
    return consumed_[static_cast<std::size_t>(type)];
}

uint64_t
Reactor::consumedTotal() const
{
    uint64_t total = 0;
    for (std::size_t i = 0; i < kReactorEventTypes; ++i)
        total += consumed_[i];
    return total;
}

void
Reactor::absorb(Reactor &lane)
{
    for (std::size_t i = 0; i < kReactorEventTypes; ++i) {
        consumed_[i] += lane.consumed_[i];
        lane.consumed_[i] = 0;
    }
}

void
Reactor::reserve(std::size_t events)
{
    if (events > heap_.capacity())
        heap_.reserve(events);
}

void
Reactor::attachTelemetry(Telemetry *telemetry)
{
    if (telemetry == nullptr || !telemetry->enabled()) {
        for (std::size_t i = 0; i < kReactorEventTypes; ++i)
            tmEvents_[i] = Counter();
        tmQueueDepth_ = HistogramMetric();
        tmQueueHighWater_ = Gauge();
        return;
    }
    Registry &reg = telemetry->registry();
    for (std::size_t i = 0; i < kReactorEventTypes; ++i) {
        tmEvents_[i] = reg.counter(
            std::string("fleet.reactor.events.") +
            reactorEventName(static_cast<ReactorEventType>(i)));
    }
    tmQueueDepth_ = reg.histogram("fleet.reactor.queue.depth",
                                  {1, 2, 4, 8, 16, 32, 64},
                                  MetricStability::Unstable);
    tmQueueHighWater_ = reg.gauge("fleet.reactor.queue.high_water",
                                  MetricStability::Unstable);
}

} // namespace divot
