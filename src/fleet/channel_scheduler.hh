/**
 * @file
 * ChannelScheduler — multiplexes a bounded pool of iTDR instruments
 * across the N BusChannels of a fleet and feeds every probe into a
 * FleetAuthenticator for a fused bus verdict.
 *
 * The instrument pool models shared measurement hardware: with
 * `instruments = k`, at most k channels are probed per scheduler
 * tick. Which k is a deterministic function of fleet state:
 *
 *  - RoundRobin: channels in fixed rotation, oldest-probed first.
 *  - RiskWeighted: priority = staleness x risk weight of the
 *    channel's authenticator state, so quarantined / degraded /
 *    alarmed channels are re-probed more often than healthy ones
 *    (tie-break: lower channel index).
 *
 * Determinism contract (see DESIGN.md §4 and §10): probes of one tick
 * run in parallel on the shared ThreadPool but touch disjoint
 * channels and write disjoint result slots; measurement wall-clock is
 * the precomputed `slot_ * tick`, never real time; channel selection
 * uses no RNG. Fleet rounds are therefore bit-identical at any thread
 * count.
 */

#ifndef DIVOT_FLEET_CHANNEL_SCHEDULER_HH
#define DIVOT_FLEET_CHANNEL_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/bus_channel.hh"
#include "fleet/fleet_auth.hh"
#include "itdr/kernels/soa.hh"
#include "store/enrollment_db.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace divot {

/** Channel-selection policy for the shared instrument pool. */
enum class SchedulerPolicy
{
    RoundRobin,  //!< fixed rotation, staleness only
    RiskWeighted //!< staleness x authenticator-state risk weight
};

/** @return human-readable policy name. */
const char *schedulerPolicyName(SchedulerPolicy policy);

/** Fleet-wide scheduler configuration. */
struct FleetConfig
{
    std::size_t instruments = 2; //!< iTDR pool size: probes per tick
    SchedulerPolicy policy = SchedulerPolicy::RoundRobin;
    unsigned threads = 0;        //!< worker threads (0 = hardware)
    FusionConfig fusion;         //!< similarity fusion rule
    double similarityThreshold = 0.35; //!< fused-score accept bar
    unsigned tamperWireVotes = 1; //!< M-of-N bus alarm quorum
    TelemetryConfig telemetry;   //!< fleet-owned observability (on by
                                 //!< default; enabled=false for the
                                 //!< zero-overhead ablation path)
    std::size_t measureBatch = 0; //!< cross-channel kernel batching:
                                 //!< 0 or 1 probes each selected
                                 //!< channel as its own pool item;
                                 //!< N > 1 lets one worker probe N
                                 //!< consecutive selected channels
                                 //!< serially, sharing one SoA kernel
                                 //!< arena (fewer hot allocations,
                                 //!< better cache reuse when channels
                                 //!< outnumber workers). Results are
                                 //!< byte-identical either way: the
                                 //!< arena is fully overwritten per
                                 //!< measurement (see StrobeSoA)
};

/** One channel probe performed during a tick. */
struct ChannelProbe
{
    std::size_t channel = 0; //!< channel index
    AuthVerdict verdict{};   //!< that channel's round verdict
};

/** Everything that happened in one scheduler tick. */
struct FleetRound
{
    uint64_t tick = 0;                //!< tick index (0-based)
    std::vector<ChannelProbe> probes; //!< ascending channel order
    FleetVerdict fused{};             //!< bus verdict after the tick
};

/** TraceCache counters for one channel. */
struct ChannelCacheStats
{
    std::string name;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

/** TraceCache counters across the fleet. */
struct FleetCacheStats
{
    std::vector<ChannelCacheStats> perChannel;
    ChannelCacheStats totals; //!< name = "fleet"
};

/**
 * Owns the channels and the probe schedule.
 */
class ChannelScheduler
{
  public:
    ChannelScheduler(FleetConfig config, Rng rng);
    ~ChannelScheduler();

    ChannelScheduler(const ChannelScheduler &) = delete;
    ChannelScheduler &operator=(const ChannelScheduler &) = delete;
    ChannelScheduler(ChannelScheduler &&) noexcept;
    ChannelScheduler &operator=(ChannelScheduler &&) noexcept;

    /**
     * Fabricate and add a channel; its RNG lane is a stable fork of
     * the scheduler seed and the channel index, so fleet composition
     * order is the only thing that matters.
     *
     * @return the new channel's index
     */
    std::size_t addChannel(BusChannelConfig config);

    /** Enroll every channel (parallel) and freeze the tick length. */
    void calibrateAll();

    /**
     * One scheduler tick: select up to `instruments` channels, probe
     * them in parallel at the precomputed wall-clock, fold the
     * verdicts into the FleetAuthenticator, and return the round.
     */
    FleetRound tick();

    /** Run `rounds` ticks; @return the final round. */
    FleetRound run(std::size_t rounds);

    /** @return number of channels in the fleet. */
    std::size_t channelCount() const { return channels_.size(); }

    /** @return channel `index` (for staging attacks / inspection). */
    BusChannel &channel(std::size_t index);

    /** @return channel `index`, read-only. */
    const BusChannel &channel(std::size_t index) const;

    /** @return fused verdict of the most recent tick. */
    const FleetVerdict &lastVerdict() const { return lastVerdict_; }

    /** @return ticks executed so far. */
    uint64_t ticks() const { return tick_; }

    /** @return how often channel `index` has been probed. */
    uint64_t probeCount(std::size_t index) const;

    /** @return per-channel and fleet-total trace-cache counters. */
    FleetCacheStats cacheStats() const;

    /** @return scheduler configuration. */
    const FleetConfig &config() const { return config_; }

    /** @return wall-clock length of one tick, seconds (valid after
     *  calibrateAll()). */
    double tickDuration() const { return slot_; }

    /** @return the fleet-owned telemetry sink (never null; disabled
     *  when FleetConfig::telemetry.enabled is false). */
    Telemetry &telemetry() { return *telemetry_; }
    const Telemetry &telemetry() const { return *telemetry_; }

    /**
     * Back the fleet with a durable enrollment database and switch to
     * lazy hydration: enrollments are persisted to `db`, fingerprints
     * are loaded on first probe and evicted LRU whenever the resident
     * total exceeds `resident_budget_bytes` (0 = unlimited; the
     * channels selected for the current tick are always kept, so the
     * tick working set is the effective floor). Channels whose records
     * come back unrecoverable are demoted to PendingReenroll instead
     * of aborting the fleet. `db` is borrowed and must outlive the
     * scheduler (and be open()ed).
     *
     * Hydration and eviction run in the serial sections of a tick, in
     * ascending channel order, so fused verdicts stay bit-identical at
     * any thread count — with or without a store attached.
     */
    void attachStore(store::EnrollmentDb *db,
                     std::size_t resident_budget_bytes = 0);

    /** @return bytes of enrollment data currently resident. */
    std::size_t residentEnrollmentBytes() const { return resident_; }

    /**
     * Operator path out of PendingReenroll: re-calibrate the channel
     * against its current line and persist the fresh enrollment.
     *
     * @return false when no store is attached or the persist failed
     */
    bool reenrollChannel(std::size_t index);

  private:
    std::vector<std::size_t> selectChannels() const;
    bool persistChannel(std::size_t index);
    void persistAll();
    /** Hydrate `index` from the store; demotes to PendingReenroll on
     *  unrecoverable/missing records. @return probe-ready */
    bool hydrateChannel(std::size_t index, double wall);
    /** Evict LRU enrollments until the resident budget holds;
     *  channels probed at `current_tick` are pinned. */
    void enforceResidentBudget(int64_t current_tick);
    void demoteToPendingReenroll(std::size_t index, double wall);

    FleetConfig config_;
    Rng rng_;
    std::unique_ptr<Telemetry> telemetry_; //!< owned; channels and the
                                           //!< pool borrow it
    std::vector<std::unique_ptr<BusChannel>> channels_;
    std::vector<int64_t> lastProbeTick_; //!< -1 = never probed
    std::vector<uint64_t> probeCounts_;
    FleetAuthenticator fleetAuth_;
    std::unique_ptr<class ThreadPool> pool_;
    double slot_ = 0.0; //!< max channel roundDuration()
    uint64_t tick_ = 0;
    bool calibrated_ = false;
    FleetVerdict lastVerdict_{};
    bool lastTrusted_ = true; //!< previous tick's busTrusted (for
                              //!< trust-flip events)
    /** Shared SoA kernel arenas, one per probe group of a batched
     *  tick (grow-only; groups of one tick run serially on their
     *  leader's worker, so one arena per group suffices). */
    std::vector<StrobeSoA> kernelArenas_;

    /** @name Durable-store backing (lazy hydrate / LRU evict). */
    ///@{
    store::EnrollmentDb *db_ = nullptr; //!< borrowed, may be null
    std::size_t residentBudget_ = 0;    //!< bytes; 0 = unlimited
    std::size_t resident_ = 0;          //!< resident enrollment bytes
    std::vector<uint64_t> generations_; //!< persists per channel
    ///@}

    /** @name Fleet-level metric handles. */
    ///@{
    Counter tmTicks_;
    Counter tmProbes_;
    Counter tmInstrumentSlots_;
    Counter tmIdleSlots_;
    Counter tmTrusted_;
    Counter tmUntrusted_;
    Counter tmAlarms_;
    Counter tmTrustFlips_;
    Counter tmKernelBatches_;      //!< Unstable: batching is a purely
                                   //!< operational knob, so its
                                   //!< accounting must stay out of the
                                   //!< stable export the batched-vs-
                                   //!< per-channel identity compares
    Counter tmKernelBatchedProbes_; //!< Unstable (same reason)
    HistogramMetric tmStaleness_;
    HistogramMetric tmRiskWeight_;
    std::vector<Counter> tmChannelProbes_; //!< indexed like channels_
    Counter tmHydrates_;        //!< store.hydrates
    Counter tmEvictions_;       //!< store.evictions
    Counter tmPendingReenroll_; //!< store.pending_reenroll
    Counter tmScrubTicks_;      //!< store.scrub.idle_ticks
    ///@}
};

} // namespace divot

#endif // DIVOT_FLEET_CHANNEL_SCHEDULER_HH
