/**
 * @file
 * ChannelScheduler — multiplexes a bounded pool of iTDR instruments
 * across the N BusChannels of a fleet and feeds every probe into a
 * FleetAuthenticator for a fused bus verdict.
 *
 * The instrument pool models shared measurement hardware: with
 * `instruments = k`, at most k probes are in flight at once. Which
 * channels get them is a deterministic function of fleet state:
 *
 *  - RoundRobin: channels in fixed rotation, oldest-probed first.
 *  - RiskWeighted: priority = staleness x risk weight of the
 *    channel's authenticator state, so quarantined / degraded /
 *    alarmed channels are re-probed more often than healthy ones
 *    (tie-break: lower channel index).
 *
 * Since the reactor refactor (DESIGN.md §15) a tick is not a
 * monolithic pipeline but an epoch of the fleet Reactor: hydration,
 * probe completion, fusion, eviction pressure, scrub, and faults are
 * queue events consumed in (virtual wall-clock, sequence) order, and
 * each channel steps through the ChannelPhase state machine as its
 * events arrive. Two scheduling modes share the machinery
 * (FleetConfig::reactor):
 *
 *  - ReactorMode::Barrier (default): every probe of a tick measures
 *    at the tick's wall-clock and completes on its boundary —
 *    bit-identical rounds and stable telemetry to the pre-reactor
 *    scheduler.
 *  - ReactorMode::Pipelined: a completing probe releases its
 *    instrument to the next ranked channel immediately, so short
 *    rounds are not stretched to the slowest channel's; fusion runs
 *    on epoch boundaries (`epochSlots` x the barrier tick length).
 *
 * Determinism contract (see DESIGN.md §4, §10 and §15): probe
 * computations run in parallel on the shared ThreadPool but touch
 * disjoint channels and write disjoint result slots; their *effects*
 * (FleetAuthenticator observation, store IO, telemetry events) happen
 * only while the single-threaded event loop consumes the
 * corresponding event, in an order that is a pure function of
 * (seed, config). Fleet rounds are therefore bit-identical at any
 * thread count, in both modes, with and without a store or fault
 * plans attached.
 */

#ifndef DIVOT_FLEET_CHANNEL_SCHEDULER_HH
#define DIVOT_FLEET_CHANNEL_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/bus_channel.hh"
#include "fleet/fleet_auth.hh"
#include "fleet/reactor.hh"
#include "itdr/kernels/soa.hh"
#include "store/enrollment_db.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace divot {

class CompletionQueue;

/** Channel-selection policy for the shared instrument pool. */
enum class SchedulerPolicy
{
    RoundRobin,  //!< fixed rotation, staleness only
    RiskWeighted //!< staleness x authenticator-state risk weight
};

/** @return human-readable policy name. */
const char *schedulerPolicyName(SchedulerPolicy policy);

/** Fleet-wide scheduler configuration. */
struct FleetConfig
{
    std::size_t instruments = 2; //!< iTDR pool size: probes in flight
    SchedulerPolicy policy = SchedulerPolicy::RoundRobin;
    unsigned threads = 0;        //!< worker threads (0 = hardware)
    FusionConfig fusion;         //!< similarity fusion rule
    double similarityThreshold = 0.35; //!< fused-score accept bar
    unsigned tamperWireVotes = 1; //!< M-of-N bus alarm quorum
    TelemetryConfig telemetry;   //!< fleet-owned observability (on by
                                 //!< default; enabled=false for the
                                 //!< zero-overhead ablation path)
    std::size_t measureBatch = 0; //!< cross-channel kernel batching
                                 //!< (Barrier mode only; Pipelined
                                 //!< probes dispatch one at a time):
                                 //!< 0 or 1 probes each selected
                                 //!< channel as its own pool item;
                                 //!< N > 1 lets one worker probe N
                                 //!< consecutive selected channels
                                 //!< serially, sharing one SoA kernel
                                 //!< arena (fewer hot allocations,
                                 //!< better cache reuse when channels
                                 //!< outnumber workers). Results are
                                 //!< byte-identical either way: the
                                 //!< arena is fully overwritten per
                                 //!< measurement (see StrobeSoA)
    ReactorConfig reactor;       //!< event-core knobs: scheduling
                                 //!< mode, epoch length, queue bound

    /**
     * Global admission bound of the request service (FleetService):
     * requests admitted but not yet answered. A submit past the bound
     * is rejected Busy instead of growing an unbounded queue — the
     * backpressure half of the service contract (DESIGN.md §17).
     */
    std::size_t requestQueueDepth = 64;

    /** Per-channel admission bound: in-flight requests naming the
     *  same channel beyond this are rejected Busy. */
    std::size_t requestChannelDepth = 4;

    /**
     * Reactor hydration lanes (store-backed Barrier mode only): the
     * epoch's hydration requests are partitioned by store shard —
     * lane k owns channels whose shard s satisfies s % K == k — into
     * K independent (vtime, seq) event queues drained in parallel,
     * one thread per lane; the staged outcomes are merged serially in
     * the ascending-channel order the single-lane loop would have
     * consumed, so fused verdicts, stable telemetry, and event counts
     * are bit-identical for K=1 vs any K at any thread count (see
     * DESIGN.md §16). 0 = auto: min(store shards, 8). Pipelined mode
     * and storeless fleets always run one lane.
     */
    unsigned reactorLanes = 0;
};

/** One channel probe performed during a tick. */
struct ChannelProbe
{
    std::size_t channel = 0; //!< channel index
    AuthVerdict verdict{};   //!< that channel's round verdict
};

/** Everything that happened in one scheduler tick (= reactor epoch). */
struct FleetRound
{
    uint64_t tick = 0;                //!< tick index (0-based)
    std::vector<ChannelProbe> probes; //!< Barrier: ascending channel
                                      //!< order; Pipelined: probe
                                      //!< completion order
    FleetVerdict fused{};             //!< bus verdict after the tick
};

/** TraceCache counters for one channel. */
struct ChannelCacheStats
{
    std::string name;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

/** TraceCache counters across the fleet. */
struct FleetCacheStats
{
    std::vector<ChannelCacheStats> perChannel;
    ChannelCacheStats totals; //!< name = "fleet"
};

/**
 * Service-side observer of the reactor's request events. The fleet
 * service implements this; the scheduler calls it only from the
 * single-threaded event-consumption loop, so hook implementations may
 * mutate service state and schedule RequestComplete events without
 * breaking the determinism contract.
 */
struct ServiceHook
{
    virtual ~ServiceHook() = default;
    /** An admitted request's RequestArrival event is being consumed. */
    virtual void onRequestArrival(const ReactorEvent &event) = 0;
    /** A RequestComplete event is being consumed: emit the response. */
    virtual void onRequestComplete(const ReactorEvent &event) = 0;
    /**
     * A channel verdict was observed into the fused authenticator —
     * either a real probe completion or a fence demotion (verdict
     * state PendingReenroll, no instrument ran).
     */
    virtual void onProbeObserved(std::size_t channel,
                                 const AuthVerdict &verdict,
                                 double vtime) = 0;
    /** The epoch fused; `fused` is the fleet verdict. */
    virtual void onEpochFused(const FleetVerdict &fused,
                              double vtime) = 0;
};

/**
 * Owns the channels, the reactor, and the probe schedule.
 */
class ChannelScheduler
{
  public:
    ChannelScheduler(FleetConfig config, Rng rng);
    ~ChannelScheduler();

    ChannelScheduler(const ChannelScheduler &) = delete;
    ChannelScheduler &operator=(const ChannelScheduler &) = delete;
    ChannelScheduler(ChannelScheduler &&) noexcept;
    ChannelScheduler &operator=(ChannelScheduler &&) noexcept;

    /**
     * Fabricate and add a channel; its RNG lane is a stable fork of
     * the scheduler seed and the channel index, so fleet composition
     * order is the only thing that matters.
     *
     * @return the new channel's index
     */
    std::size_t addChannel(BusChannelConfig config);

    /** Enroll every channel (parallel) and freeze the tick length. */
    void calibrateAll();

    /**
     * One scheduler tick = one reactor epoch: seed the event queue
     * with probe dispatches, drain it in deterministic order, fuse on
     * the epoch boundary, and return the round.
     */
    FleetRound tick();

    /** Run `rounds` ticks; @return the final round. */
    FleetRound run(std::size_t rounds);

    /** @return number of channels in the fleet. */
    std::size_t channelCount() const { return channels_.size(); }

    /** @return channel `index` (for staging attacks / inspection). */
    BusChannel &channel(std::size_t index);

    /** @return channel `index`, read-only. */
    const BusChannel &channel(std::size_t index) const;

    /** @return fused verdict of the most recent tick. */
    const FleetVerdict &lastVerdict() const { return lastVerdict_; }

    /** @return ticks executed so far. */
    uint64_t ticks() const { return tick_; }

    /** @return how often channel `index` has been probed. */
    uint64_t probeCount(std::size_t index) const;

    /** @return per-channel and fleet-total trace-cache counters. */
    FleetCacheStats cacheStats() const;

    /** @return scheduler configuration. */
    const FleetConfig &config() const { return config_; }

    /** @return wall-clock length of one tick, seconds (valid after
     *  calibrateAll(); in Pipelined mode a tick spans
     *  `reactor.epochSlots` barrier slots). */
    double tickDuration() const;

    /** @return the fleet-owned telemetry sink (never null; disabled
     *  when FleetConfig::telemetry.enabled is false). */
    Telemetry &telemetry() { return *telemetry_; }
    const Telemetry &telemetry() const { return *telemetry_; }

    /** @return the deterministic event core (queue stats, per-type
     *  consumption counts, instrument accounting). Lane consumption
     *  counts are folded in, so totals are lane-count-invariant. */
    const Reactor &reactor() const { return *reactor_; }

    /** @return resolved reactor-lane count (1 until a store is
     *  attached; Pipelined mode always runs one lane). */
    unsigned reactorLaneCount() const { return laneCount_; }

    /** @return lane-invariant peak of total queued events across the
     *  primary reactor and every lane (the stable queue-shape
     *  metric). */
    std::size_t queuePeak() const { return queuePeak_; }

    /** @return lifecycle phase of channel `index`. */
    ChannelPhase channelPhase(std::size_t index) const;

    /** @return instrument utilization over all virtual time elapsed
     *  so far, in [0, 1]. */
    double instrumentUtilization() const;

    /**
     * Back the fleet with a durable enrollment database and switch to
     * lazy hydration: enrollments are persisted to `db`, fingerprints
     * are loaded on first probe and evicted LRU whenever the resident
     * total exceeds `resident_budget_bytes` (0 = unlimited; the
     * channels probed in the current tick are always kept, so the
     * tick working set is the effective floor). Channels whose records
     * come back unrecoverable are demoted to PendingReenroll instead
     * of aborting the fleet. `db` is borrowed and must outlive the
     * scheduler (and be open()ed).
     *
     * Hydration, eviction, and scrub are reactor events consumed from
     * the serial event loop in deterministic order, so the store's
     * IO-event sequence — and any injected storage fault — stays a
     * pure function of (seed, config) at any thread count.
     */
    void attachStore(store::EnrollmentDb *db,
                     std::size_t resident_budget_bytes = 0);

    /** @return bytes of enrollment data currently resident. */
    std::size_t residentEnrollmentBytes() const { return resident_; }

    /**
     * Operator path out of PendingReenroll: re-calibrate the channel
     * against its current line and persist the fresh enrollment.
     * Consumed as an immediate RecalibrateRequest event (a failed
     * persist additionally consumes a FaultEvent).
     *
     * @return false when no store is attached or the persist failed
     */
    bool reenrollChannel(std::size_t index);

    /** @name Request-service seam (used by service::FleetService). */
    ///@{
    /** Sentinel returned by findChannel() for unknown names. */
    static constexpr std::size_t kNoChannel =
        static_cast<std::size_t>(-1);

    /** @return index of the channel named `name` (first-added wins on
     *  duplicates), or kNoChannel. */
    std::size_t findChannel(const std::string &name) const;

    /** Attach (or detach with nullptr) the request-service hook.
     *  Borrowed; must outlive the scheduler or detach first. */
    void attachService(ServiceHook *hook) { hook_ = hook; }

    /**
     * Queue a RequestArrival event for the next epoch. Entry-point
     * scheduling (like reenrollChannel): legal between ticks, never
     * from worker threads. The event is consumed at the head of the
     * next tick, before channel ranking, in admission order.
     */
    void scheduleRequestArrival(std::size_t channel, uint64_t ticket);

    /** Queue a RequestComplete event at `vtime`. Called by the hook
     *  from within the consumption loop. */
    void scheduleRequestComplete(std::size_t channel, uint64_t ticket,
                                 double vtime);

    /**
     * Add request pressure to a channel's scheduling priority: the
     * boost dominates staleness x risk, so a requested channel is
     * probed at the next dispatch opportunity. Cleared when the
     * channel's next verdict is observed (probe or fence).
     */
    void boostChannel(std::size_t index);

    /** Persist channel `index`'s current enrollment (the service
     *  Enroll verb). @return false when storeless or the put failed */
    bool persistEnrollment(std::size_t index);

    /** @return persisted enrollment generation of channel `index`. */
    uint64_t enrollmentGeneration(std::size_t index) const;

    /** @return total virtual seconds ticked so far. */
    double elapsedSeconds() const { return elapsed_; }
    ///@}

  private:
    std::vector<std::size_t> selectChannels() const;
    bool persistChannel(std::size_t index);
    void persistAll();
    /** Hydrate `index` from the store; demotes to PendingReenroll on
     *  unrecoverable/missing records. @return probe-ready */
    bool hydrateChannel(std::size_t index, double wall);
    /** Evict LRU enrollments until the resident budget holds;
     *  channels probed at `current_tick` are pinned. */
    void enforceResidentBudget(int64_t current_tick);
    void demoteToPendingReenroll(std::size_t index, double wall);
    /** Rebuild the shard → channel-indices routing table. */
    void rebuildShardRouting();
    /** @return K for the current mode/store (see
     *  FleetConfig::reactorLanes). */
    unsigned resolveLanes() const;
    /** @return the lane owning channel `index` (shard % laneCount_). */
    unsigned laneOf(std::size_t index) const;
    /** Schedule onto `target` and fold the fleet-wide queued total
     *  into the lane-invariant queue-peak gauge. */
    void scheduleEvent(Reactor &target, ReactorEventType type,
                       double vtime, std::size_t channel = 0,
                       uint64_t ticket = 0);
    /** Barrier + lanes: drain the epoch's hydration through the lane
     *  reactors in parallel and merge the staged outcomes in
     *  ascending-channel order. */
    void hydrateLanes(const std::vector<std::size_t> &selected);

    /** @name Reactor event handlers (single-threaded event loop). */
    ///@{
    void handleEvent(const ReactorEvent &event);
    void onHydrateRequest(const ReactorEvent &event);
    void onProbeComplete(const ReactorEvent &event);
    void onFuseEpoch(const ReactorEvent &event);
    void onEvictPressure(const ReactorEvent &event);
    void onScrubStep(const ReactorEvent &event);
    /** Barrier mode: run the epoch's probe batch (one parallelFor,
     *  exactly the pre-reactor submission shape) and schedule the
     *  completion + epoch-tail events. */
    void launchBarrierProbes();
    /** Schedule FuseEpoch / EvictPressure / ScrubStep on the epoch
     *  boundary (Pipelined mode). */
    void scheduleEpochTail();
    /** Pipelined mode: dispatch the highest-priority idle channel
     *  whose round still fits in the epoch. @return dispatched */
    bool tryDispatch(double vtime);
    ///@}

    FleetConfig config_;
    Rng rng_;
    std::unique_ptr<Telemetry> telemetry_; //!< owned; channels and the
                                           //!< pool borrow it
    std::vector<std::unique_ptr<BusChannel>> channels_;
    std::vector<int64_t> lastProbeTick_; //!< -1 = never probed
    std::vector<uint64_t> probeCounts_;
    FleetAuthenticator fleetAuth_;
    std::unique_ptr<class ThreadPool> pool_;
    std::unique_ptr<CompletionQueue> cq_; //!< probe completions
                                          //!< (Pipelined mode)
    std::unique_ptr<Reactor> reactor_;
    /** Lane reactors (store-backed Barrier mode, laneCount_ > 1);
     *  lane k drains shards s ≡ k (mod laneCount_). */
    std::vector<std::unique_ptr<Reactor>> laneReactors_;
    unsigned laneCount_ = 1;
    std::size_t queuePeak_ = 0; //!< lane-invariant queued-event peak
    double slot_ = 0.0; //!< max channel roundDuration()
    uint64_t tick_ = 0;
    bool calibrated_ = false;
    FleetVerdict lastVerdict_{};
    bool lastTrusted_ = true; //!< previous tick's busTrusted (for
                              //!< trust-flip events)
    /** Shared SoA kernel arenas, one per probe group of a batched
     *  tick (grow-only; groups of one tick run serially on their
     *  leader's worker, so one arena per group suffices). */
    std::vector<StrobeSoA> kernelArenas_;

    /** @name Per-channel state machine + routing indexes. */
    ///@{
    std::vector<ChannelPhase> phase_;
    std::vector<int64_t> lastDispatchTick_; //!< double-probe guard
                                            //!< within an epoch
    /** name → channel index; first-added wins on duplicate names
     *  (mirrors the old first-match linear scan). */
    std::unordered_map<std::string, std::size_t> nameIndex_;
    /** store shard → channel indices routed to it, ascending. */
    std::unordered_map<std::size_t, std::vector<std::size_t>>
        shardChannels_;
    ///@}

    /** @name Per-epoch (per-tick) reactor state. */
    ///@{
    FleetRound round_{};          //!< round under construction
    double epochWall_ = 0.0;      //!< epoch start, virtual seconds
    double epochEnd_ = 0.0;       //!< epoch boundary, virtual seconds
    double elapsed_ = 0.0;        //!< total virtual time ticked
    bool epochFused_ = false;
    bool probesLaunched_ = false; //!< Barrier: batch already ran
    std::vector<std::size_t> epochReady_; //!< Barrier: hydrated set
    std::deque<ChannelProbe> pipeProbes_; //!< Pipelined result slots
                                          //!< (deque: stable addrs
                                          //!< for worker writes)
    std::vector<std::size_t> channelSlot_; //!< channel → pipeProbes_
                                           //!< slot of its in-flight
                                           //!< probe
    std::size_t epochSeeded_ = 0; //!< dispatch chains started at the
                                  //!< epoch seed (idle-slot metric)
    double epochBusyStart_ = 0.0; //!< reactor busySeconds() at epoch
                                  //!< start (idle-time → scrub)
    ///@}

    /** @name Durable-store backing (lazy hydrate / LRU evict). */
    ///@{
    store::EnrollmentDb *db_ = nullptr; //!< borrowed, may be null
    std::size_t residentBudget_ = 0;    //!< bytes; 0 = unlimited
    std::size_t resident_ = 0;          //!< resident enrollment bytes
    std::vector<uint64_t> generations_; //!< persists per channel
    ///@}

    /** @name Request-service state. */
    ///@{
    ServiceHook *hook_ = nullptr;        //!< borrowed, may be null
    std::vector<uint64_t> requestBoost_; //!< per-channel priority
                                         //!< boost; cleared at the
                                         //!< next observed verdict
    ///@}

    /** @name Fleet-level metric handles. */
    ///@{
    Counter tmTicks_;
    Counter tmProbes_;
    Counter tmInstrumentSlots_;
    Counter tmIdleSlots_;
    Counter tmTrusted_;
    Counter tmUntrusted_;
    Counter tmAlarms_;
    Counter tmTrustFlips_;
    Counter tmKernelBatches_;      //!< Unstable: batching is a purely
                                   //!< operational knob, so its
                                   //!< accounting must stay out of the
                                   //!< stable export the batched-vs-
                                   //!< per-channel identity compares
    Counter tmKernelBatchedProbes_; //!< Unstable (same reason)
    HistogramMetric tmStaleness_;
    HistogramMetric tmRiskWeight_;
    Gauge tmUtilization_;     //!< fleet.instrument.utilization, ‰
    Gauge tmIdleSlotPermille_; //!< fleet.reactor.idle_slot.permille
    Gauge tmQueuePeak_;       //!< fleet.reactor.queue.peak (Stable:
                              //!< fleet-wide total at schedule points,
                              //!< identical for 1 or K lanes)
    std::vector<Counter> tmChannelProbes_; //!< indexed like channels_
    Counter tmHydrates_;        //!< store.hydrates
    Counter tmEvictions_;       //!< store.evictions
    Counter tmPendingReenroll_; //!< store.pending_reenroll
    Counter tmScrubTicks_;      //!< store.scrub.idle_ticks
    ///@}
};

} // namespace divot

#endif // DIVOT_FLEET_CHANNEL_SCHEDULER_HH
