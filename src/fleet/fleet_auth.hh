/**
 * @file
 * Bus-level verdict fusion: one FleetAuthenticator watches the
 * per-channel verdict streams of a multi-wire bus and emits a single
 * fused verdict per scheduler tick (paper §IV-C: "monitoring multiple
 * wires on a bus can exponentially increase authentication
 * accuracy").
 *
 * Semantics:
 *  - Similarity fuses across the latest *healthy* score of every
 *    enrolled channel under the configured fingerprint::Fusion rule
 *    (geometric mean by default). Quarantined channels contribute no
 *    score — their instrument is distrusted — but still count toward
 *    the posture summary.
 *  - Tamper fuses by M-of-N wire voting with M = tamperWireVotes
 *    (default 1: a single genuinely attacked wire must be able to
 *    trip the bus alarm regardless of its healthy siblings).
 *  - busTrusted = fused similarity clears the threshold AND no fused
 *    tamper alarm AND at least one channel is contributing evidence.
 *
 * Only needs auth/verdict.hh (not the instrument-owning
 * Authenticator), so verdict consumers like memsys stay light.
 */

#ifndef DIVOT_FLEET_FLEET_AUTH_HH
#define DIVOT_FLEET_FLEET_AUTH_HH

#include <cstdint>
#include <vector>

#include "auth/verdict.hh"
#include "fingerprint/fusion.hh"

namespace divot {

/** Fused verdict for the whole bus after one scheduler tick. */
struct FleetVerdict
{
    bool busAuthenticated = false; //!< fused similarity >= threshold
    bool tamperAlarm = false;      //!< wire vote reached the quorum
    bool busTrusted = false;       //!< authenticated && !tamperAlarm
    double fusedSimilarity = 0.0;  //!< fused score across wires
    double similarityThreshold = 0.0; //!< bar applied to the fusion
    uint64_t tick = 0;             //!< scheduler tick of this verdict
    std::size_t channels = 0;      //!< channels in the fleet
    std::size_t channelsObserved = 0; //!< probed at least once
    std::size_t contributingWires = 0; //!< scores entering the fusion
    std::size_t authenticatedWires = 0; //!< latest verdict passing
    std::size_t tamperedWires = 0; //!< latest verdict alarming
    std::size_t degradedWires = 0; //!< channels in Degraded
    std::size_t quarantinedWires = 0; //!< channels in Quarantine
    std::size_t pendingReenrollWires = 0; //!< channels whose durable
                                          //!< enrollment was lost
                                          //!< (PendingReenroll)
    std::vector<double> wireScores; //!< scores fused, canonical
                                    //!< channel order
};

/**
 * Fuses per-channel verdict streams into bus verdicts.
 */
class FleetAuthenticator
{
  public:
    /**
     * @param fusion     similarity fusion rule
     * @param similarity_threshold fused-score accept bar
     * @param tamper_wire_votes M: alarmed wires needed to trip the
     *                   bus alarm (0 behaves as 1)
     */
    FleetAuthenticator(FusionConfig fusion, double similarity_threshold,
                       unsigned tamper_wire_votes = 1);

    /** Grow the fleet to `count` channels (observe() auto-grows). */
    void setChannelCount(std::size_t count);

    /** Record channel `index`'s verdict for this round. */
    void observe(std::size_t index, const AuthVerdict &verdict);

    /** Fuse the latest per-channel states into one bus verdict. */
    FleetVerdict evaluate(uint64_t tick) const;

    /** @return configured fusion rule. */
    const FusionConfig &fusion() const { return fusion_; }

    /** @return fused-similarity accept bar. */
    double similarityThreshold() const { return similarityThreshold_; }

    /** @return wire votes required for a bus tamper alarm. */
    unsigned tamperWireVotes() const { return tamperWireVotes_; }

  private:
    struct ChannelTrack
    {
        bool observed = false;       //!< any verdict seen yet
        bool hasHealthyScore = false; //!< lastScore is meaningful
        double lastScore = 0.0;      //!< latest healthy similarity
        AuthVerdict last{};          //!< latest verdict verbatim
    };

    FusionConfig fusion_;
    double similarityThreshold_;
    unsigned tamperWireVotes_;
    std::vector<ChannelTrack> tracks_;
};

} // namespace divot

#endif // DIVOT_FLEET_FLEET_AUTH_HH
