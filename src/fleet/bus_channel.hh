/**
 * @file
 * BusChannel — one monitored wire of a bus: the fabricated line, its
 * operating environment, its enrollment, and the per-channel
 * Authenticator resilience state (retry / vote / degradation ladder).
 *
 * Extracted from the old single-line DivotSystem so the fleet layer
 * can own N of these behind one ChannelScheduler while DivotSystem
 * remains a thin one-channel compatibility facade. A channel knows
 * nothing about its siblings: scheduling, instrument-pool
 * multiplexing, and score fusion live in fleet/channel_scheduler.hh
 * and fleet/fleet_auth.hh.
 */

#ifndef DIVOT_FLEET_BUS_CHANNEL_HH
#define DIVOT_FLEET_BUS_CHANNEL_HH

#include <memory>
#include <optional>
#include <string>

#include "auth/authenticator.hh"
#include "txline/environment.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"
#include "txline/txline.hh"
#include "util/rng.hh"

namespace divot {

/** Per-channel configuration (also the DivotSystem quickstart
 *  config — core/divot_system.hh aliases it). */
struct BusChannelConfig
{
    double lineLength = 0.25;        //!< meters (paper prototype)
    double segmentLength = 0.5e-3;   //!< spatial step
    ProcessParams process;           //!< fabrication statistics
    ItdrConfig itdr;                 //!< instrument configuration
    AuthConfig auth;                 //!< thresholds
    EnvironmentConditions environment; //!< operating conditions
    std::size_t enrollReps = 16;
    std::string name = "bus0";
};

/**
 * One protected wire with its authenticator and environment.
 */
class BusChannel
{
  public:
    /**
     * Fabricates the line and builds the instrument (does not enroll
     * yet).
     */
    BusChannel(BusChannelConfig config, Rng rng);

    /** Calibrate: measure and store the enrollment fingerprint. */
    void calibrate();

    /**
     * One monitoring round against the line in its current physical
     * state (including any staged attack and the environment),
     * advancing the channel's own wall clock — the standalone
     * (facade) path.
     */
    AuthVerdict monitorOnce();

    /**
     * One monitoring round at an externally supplied wall-clock time
     * — the scheduler path: the fleet decides when this channel gets
     * an instrument, so measurement times follow the fleet's
     * precomputed tick schedule, not the channel's own clock. Does
     * not advance elapsed().
     */
    AuthVerdict monitorAt(double wall_clock);

    /** Stage an attack: the line changes from the next round on. */
    void stageAttack(const TamperTransform &attack);

    /** Remove the staged attack (wire-taps leave their scar). */
    void clearAttack();

    /**
     * Module swap: replace the physical line wholesale (cold-boot
     * attack, or a scheduled bus event). The enrollment is untouched,
     * so the swapped line fails authentication until re-calibrated.
     */
    void replaceLine(TransmissionLine line);

    /** @return the pristine fabricated line. */
    const TransmissionLine &line() const { return pristine_; }

    /** @return the line as it currently physically exists. */
    const TransmissionLine &currentLine() const { return current_; }

    /** @return the authenticator. */
    const Authenticator &authenticator() const { return *auth_; }

    /** @return current authenticator lifecycle state. */
    AuthState state() const { return auth_->state(); }

    /** @name Enrollment hydrate/evict hooks (fleet store layer). */
    ///@{
    /** @return true while the enrollment fingerprint is in memory. */
    bool enrollmentResident() const
    {
        return auth_->enrollmentResident();
    }

    /** @return resident footprint of the enrollment data, bytes. */
    std::size_t enrollmentBytes() const
    {
        return auth_->enrollmentBytes();
    }

    /** Evict the enrollment from memory (verdict-invisible). */
    void releaseEnrollment() { auth_->releaseEnrollment(); }

    /** Rehydrate a previously evicted enrollment (verdict-invisible:
     *  no window/state reset — see Authenticator::restoreEnrollment). */
    void restoreEnrollment(Fingerprint fp, Waveform nominal)
    {
        auth_->restoreEnrollment(std::move(fp), std::move(nominal));
    }

    /** Demote to PendingReenroll after unrecoverable storage damage;
     *  @return the synthetic verdict to feed into fleet fusion. */
    AuthVerdict markPendingReenroll()
    {
        return auth_->markPendingReenroll();
    }
    ///@}

    /** @return measurement wall-clock accumulated so far, seconds. */
    double elapsed() const { return wall_; }

    /** @return channel configuration. */
    const BusChannelConfig &config() const { return config_; }

    /** @return channel label. */
    const std::string &name() const { return config_.name; }

    /** @return predicted duration of one monitoring round including
     *  the inter-round gap, seconds. */
    double roundDuration() const;

    /** @return predicted bus cycles of one monitoring round. */
    uint64_t roundCycles() const;

    /** @return this channel's reflection-trace cache (hit/miss/
     *  eviction accounting). */
    const TraceCache &traceCache() const
    {
        return auth_->instrument().traceCache();
    }

    /**
     * Attach a fault injector to this channel's instrument (campaign
     * hook; nullptr detaches). Not owned; must outlive the channel.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        auth_->attachFaultInjector(injector);
    }

    /**
     * Point this channel's instrument at an external SoA kernel
     * arena (batched scheduling; nullptr restores the owned arena).
     * Not owned; must outlive the channel or be detached first.
     */
    void attachKernelArena(StrobeSoA *arena)
    {
        auth_->attachKernelArena(arena);
    }

    /**
     * Attach a telemetry sink to this channel's authenticator and
     * instrument (metrics land under "auth.<name>" / "itdr.<name>").
     * Not owned; must outlive the channel.
     */
    void attachTelemetry(Telemetry *telemetry)
    {
        auth_->attachTelemetry(telemetry);
    }

  private:
    BusChannelConfig config_;
    Rng rng_;
    TransmissionLine pristine_;
    TransmissionLine current_;
    std::unique_ptr<Authenticator> auth_;
    std::unique_ptr<Environment> env_;
    std::unique_ptr<NoiseSource> emi_;
    double wall_ = 0.0;
    bool wireTapScar_ = false;
    std::optional<WireTap> lastWireTap_;
};

} // namespace divot

#endif // DIVOT_FLEET_BUS_CHANNEL_HH
