#include "fleet/channel_scheduler.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

namespace {

// Stable fork tag base for per-channel RNG lanes: channel i's lane is
// a pure function of the fleet seed and i, so the thread count and
// probe history cannot perturb fabrication or measurement draws.
constexpr uint64_t kTagFleetChannel = 0x7000ULL;

// Risk weight of an authenticator state: how urgently the scheduler
// should spend a shared instrument on a channel in that state.
// Suspect channels are probed more often, not less — confirming or
// clearing an alarm is worth more than re-checking a healthy wire.
uint64_t
riskWeight(AuthState state)
{
    switch (state) {
    case AuthState::Unenrolled:
    case AuthState::Monitoring:
        return 1;
    case AuthState::Mismatch:
    case AuthState::Degraded:
        return 4;
    case AuthState::TamperAlert:
    case AuthState::Quarantine:
        return 8;
    case AuthState::PendingReenroll:
        return 0; // nothing to authenticate against: never selected
    }
    return 1;
}

} // namespace

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::RoundRobin:
        return "round-robin";
    case SchedulerPolicy::RiskWeighted:
        return "risk-weighted";
    }
    return "?";
}

ChannelScheduler::ChannelScheduler(FleetConfig config, Rng rng)
    : config_(config), rng_(rng),
      telemetry_(std::make_unique<Telemetry>(config.telemetry)),
      fleetAuth_(config.fusion, config.similarityThreshold,
                 config.tamperWireVotes),
      pool_(std::make_unique<ThreadPool>(config.threads))
{
    if (config_.instruments == 0)
        divot_fatal("fleet needs at least one iTDR instrument");
    pool_->attachTelemetry(telemetry_.get(), "fleet.pool");
    Registry &reg = telemetry_->registry();
    tmTicks_ = reg.counter("fleet.ticks");
    tmProbes_ = reg.counter("fleet.probes");
    tmInstrumentSlots_ = reg.counter("fleet.slots.total");
    tmIdleSlots_ = reg.counter("fleet.slots.idle");
    tmTrusted_ = reg.counter("fleet.verdicts.trusted");
    tmUntrusted_ = reg.counter("fleet.verdicts.untrusted");
    tmAlarms_ = reg.counter("fleet.alarms");
    tmTrustFlips_ = reg.counter("fleet.trust_flips");
    tmKernelBatches_ = reg.counter("fleet.kernel.batches",
                                   MetricStability::Unstable);
    tmKernelBatchedProbes_ = reg.counter("fleet.kernel.batched_probes",
                                         MetricStability::Unstable);
    tmStaleness_ = reg.histogram("fleet.staleness",
                                 {1, 2, 4, 8, 16, 32});
    tmRiskWeight_ = reg.histogram("fleet.risk_weight", {1, 4, 8});
}

ChannelScheduler::~ChannelScheduler() = default;
ChannelScheduler::ChannelScheduler(ChannelScheduler &&) noexcept = default;
ChannelScheduler &
ChannelScheduler::operator=(ChannelScheduler &&) noexcept = default;

std::size_t
ChannelScheduler::addChannel(BusChannelConfig config)
{
    if (calibrated_)
        divot_fatal("cannot add channel '%s' after calibrateAll()",
                    config.name.c_str());
    const std::size_t index = channels_.size();
    channels_.push_back(std::make_unique<BusChannel>(
        std::move(config), rng_.forkStable(kTagFleetChannel + index)));
    channels_.back()->attachTelemetry(telemetry_.get());
    tmChannelProbes_.push_back(telemetry_->registry().counter(
        "fleet.channel." + channels_.back()->name() + ".probes"));
    lastProbeTick_.push_back(-1);
    probeCounts_.push_back(0);
    generations_.push_back(0);
    fleetAuth_.setChannelCount(channels_.size());
    return index;
}

void
ChannelScheduler::attachStore(store::EnrollmentDb *db,
                              std::size_t resident_budget_bytes)
{
    db_ = db;
    residentBudget_ = resident_budget_bytes;
    resident_ = 0;
    if (db_ == nullptr)
        return;
    Registry &reg = telemetry_->registry();
    tmHydrates_ = reg.counter("store.hydrates");
    tmEvictions_ = reg.counter("store.evictions");
    tmPendingReenroll_ = reg.counter("store.pending_reenroll");
    tmScrubTicks_ = reg.counter("store.scrub.idle_ticks");
    if (calibrated_) {
        persistAll();
        enforceResidentBudget(-1);
    }
}

bool
ChannelScheduler::persistChannel(std::size_t index)
{
    if (db_ == nullptr)
        return false;
    const BusChannel &ch = *channels_[index];
    if (!ch.enrollmentResident())
        return true; // evicted: the durable copy is already current
    store::EnrollmentRecord record;
    record.id = ch.name();
    record.fp = ch.authenticator().enrolled();
    record.nominal = ch.authenticator().nominal();
    if (ch.state() == AuthState::Quarantine)
        record.flags |= store::kRecordQuarantined;
    record.generation = generations_[index];
    if (!db_->put(record))
        return false;
    ++generations_[index];
    return true;
}

void
ChannelScheduler::persistAll()
{
    resident_ = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (!persistChannel(i))
            divot_warn("fleet: failed to persist enrollment for "
                       "channel '%s'", channels_[i]->name().c_str());
        if (channels_[i]->enrollmentResident())
            resident_ += channels_[i]->enrollmentBytes();
    }
}

void
ChannelScheduler::demoteToPendingReenroll(std::size_t index,
                                          double wall)
{
    BusChannel &ch = *channels_[index];
    const std::size_t bytes =
        ch.enrollmentResident() ? ch.enrollmentBytes() : 0;
    const AuthVerdict verdict = ch.markPendingReenroll();
    resident_ -= std::min(resident_, bytes);
    tmPendingReenroll_.add();
    // The fused verdict must stop reusing this wire's stale score the
    // moment the loss is known, so the demotion is observed like a
    // probe even though no instrument ran.
    fleetAuth_.observe(index, verdict);
    TelemetryEvent event;
    event.time = wall;
    event.ordinal = tick_;
    event.kind = "store.lost";
    event.tag = ch.name();
    event.detail = "enrollment unrecoverable; pending re-enroll";
    telemetry_->events().record(std::move(event));
}

bool
ChannelScheduler::hydrateChannel(std::size_t index, double wall)
{
    BusChannel &ch = *channels_[index];
    if (ch.state() == AuthState::PendingReenroll)
        return false;
    if (db_ == nullptr || ch.enrollmentResident())
        return true;
    store::EnrollmentRecord record;
    if (db_->get(ch.name(), record) == store::DbGetStatus::Ok) {
        ch.restoreEnrollment(std::move(record.fp),
                             std::move(record.nominal));
        resident_ += ch.enrollmentBytes();
        tmHydrates_.add();
        return true;
    }
    // Missing or damaged in every bank: for an enrolled channel both
    // mean the calibration is gone. Fence the channel, keep the fleet.
    demoteToPendingReenroll(index, wall);
    return false;
}

void
ChannelScheduler::enforceResidentBudget(int64_t current_tick)
{
    if (db_ == nullptr || residentBudget_ == 0 ||
        resident_ <= residentBudget_) {
        return;
    }
    // LRU over (last probe tick, index): deterministic, and channels
    // probed this tick are pinned — the tick working set is the floor
    // below which the budget cannot squeeze.
    struct Candidate
    {
        int64_t lastProbe;
        std::size_t index;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (!channels_[i]->enrollmentResident())
            continue;
        if (generations_[i] == 0)
            continue; // never persisted: eviction would lose it
        if (lastProbeTick_[i] == current_tick)
            continue;
        candidates.push_back({lastProbeTick_[i], i});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.lastProbe != b.lastProbe)
                      return a.lastProbe < b.lastProbe;
                  return a.index < b.index;
              });
    for (const Candidate &cand : candidates) {
        if (resident_ <= residentBudget_)
            break;
        BusChannel &ch = *channels_[cand.index];
        const std::size_t bytes = ch.enrollmentBytes();
        ch.releaseEnrollment();
        resident_ -= std::min(resident_, bytes);
        tmEvictions_.add();
    }
}

bool
ChannelScheduler::reenrollChannel(std::size_t index)
{
    BusChannel &ch = channel(index);
    const bool was_resident = ch.enrollmentResident();
    const std::size_t before = was_resident ? ch.enrollmentBytes() : 0;
    ch.calibrate();
    if (db_ != nullptr) {
        resident_ -= std::min(resident_, before);
        resident_ += ch.enrollmentBytes();
        return persistChannel(index);
    }
    return true;
}

void
ChannelScheduler::calibrateAll()
{
    if (channels_.empty())
        divot_fatal("fleet has no channels to calibrate");
    pool_->parallelFor(channels_.size(), [&](std::size_t idx) {
        channels_[idx]->calibrate();
    });
    // One tick spans the slowest channel's round so every probe of a
    // tick fits inside it regardless of which channels are selected.
    slot_ = 0.0;
    for (const auto &channel : channels_)
        slot_ = std::max(slot_, channel->roundDuration());
    calibrated_ = true;
    if (db_ != nullptr) {
        persistAll();
        enforceResidentBudget(-1);
    }
    divot_inform("fleet calibrated: %zu channels, %zu instruments, "
                 "%s policy, tick %.3g s",
                 channels_.size(), config_.instruments,
                 schedulerPolicyName(config_.policy), slot_);
}

std::vector<std::size_t>
ChannelScheduler::selectChannels() const
{
    // Priority = staleness (ticks since last probe, never-probed
    // counts from before tick 0) scaled by the state risk weight
    // under RiskWeighted. Pure function of fleet state: no RNG.
    struct Ranked
    {
        uint64_t priority;
        std::size_t index;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        // A PendingReenroll channel has no enrollment to probe
        // against; spending an instrument slot on it is pure waste
        // under either policy.
        if (channels_[i]->state() == AuthState::PendingReenroll)
            continue;
        const uint64_t staleness = static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[i]);
        uint64_t priority = staleness;
        if (config_.policy == SchedulerPolicy::RiskWeighted)
            priority *= riskWeight(channels_[i]->state());
        ranked.push_back({priority, i});
    }
    const std::size_t k =
        std::min(config_.instruments, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      [](const Ranked &a, const Ranked &b) {
                          if (a.priority != b.priority)
                              return a.priority > b.priority;
                          return a.index < b.index;
                      });
    std::vector<std::size_t> selected(k);
    for (std::size_t i = 0; i < k; ++i)
        selected[i] = ranked[i].index;
    std::sort(selected.begin(), selected.end());
    return selected;
}

FleetRound
ChannelScheduler::tick()
{
    if (!calibrated_)
        divot_fatal("fleet tick() before calibrateAll()");

    std::vector<std::size_t> selected = selectChannels();
    const double wall = slot_ * static_cast<double>(tick_);

    SpanScope span = telemetry_->tracer().open("fleet.tick", "fleet",
                                               wall, tick_);

    if (db_ != nullptr) {
        // Serial hydration phase, ascending channel order: evicted
        // enrollments are restored from the store before the parallel
        // probes, and channels whose records are gone are demoted in
        // place of probing. Serial + index-ordered keeps the store's
        // IO-event sequence (and any injected storage fault) a pure
        // function of the tick, not the thread count.
        std::vector<std::size_t> ready;
        ready.reserve(selected.size());
        for (const std::size_t c : selected) {
            if (hydrateChannel(c, wall))
                ready.push_back(c);
        }
        selected = std::move(ready);
    }

    // Scheduling metrics captured before the probes run: staleness and
    // risk weight are exactly the quantities selectChannels() ranked
    // on, and the probe updates them.
    for (const std::size_t c : selected) {
        tmStaleness_.record(static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[c]));
        tmRiskWeight_.record(riskWeight(channels_[c]->state()));
        tmChannelProbes_[c].add();
    }

    FleetRound round;
    round.tick = tick_;
    round.probes.resize(selected.size());
    // Disjoint channels, disjoint result slots: bit-identical at any
    // thread count.
    const std::size_t batch =
        config_.measureBatch > 1 ? config_.measureBatch : 1;
    if (batch > 1) {
        // Batched mode: item i is a no-op unless it leads a group of
        // `batch` consecutive selected channels, which the leader
        // probes serially against one shared SoA arena. Submitting
        // every index (leaders and no-ops) keeps the pool's stable
        // parallel_for metrics identical to per-channel mode, so the
        // two modes export the same telemetry bytes.
        const std::size_t groups =
            (selected.size() + batch - 1) / batch;
        if (kernelArenas_.size() < groups)
            kernelArenas_.resize(groups);
        pool_->parallelFor(selected.size(), [&](std::size_t i) {
            if (i % batch != 0)
                return;
            const std::size_t g = i / batch;
            const std::size_t hi =
                std::min(i + batch, selected.size());
            for (std::size_t j = i; j < hi; ++j) {
                const std::size_t c = selected[j];
                channels_[c]->attachKernelArena(&kernelArenas_[g]);
                round.probes[j].channel = c;
                round.probes[j].verdict = channels_[c]->monitorAt(wall);
                channels_[c]->attachKernelArena(nullptr);
            }
        });
        tmKernelBatches_.add(groups);
        tmKernelBatchedProbes_.add(selected.size());
    } else {
        pool_->parallelFor(selected.size(), [&](std::size_t i) {
            const std::size_t c = selected[i];
            round.probes[i].channel = c;
            round.probes[i].verdict = channels_[c]->monitorAt(wall);
        });
    }

    for (const ChannelProbe &probe : round.probes) {
        lastProbeTick_[probe.channel] = static_cast<int64_t>(tick_);
        ++probeCounts_[probe.channel];
        fleetAuth_.observe(probe.channel, probe.verdict);
    }
    round.fused = fleetAuth_.evaluate(tick_);
    lastVerdict_ = round.fused;

    if (db_ != nullptr) {
        enforceResidentBudget(static_cast<int64_t>(tick_));
        if (selected.size() < config_.instruments) {
            // Idle instrument slots pay for background maintenance:
            // one shard gets a scrub pass, repairing any single-bank
            // damage while the siblings are still healthy. Channels
            // whose records turn out damaged in both banks are fenced
            // off right here rather than at their next probe.
            const store::ScrubResult scrub = db_->scrubStep();
            tmScrubTicks_.add();
            for (const std::string &id : scrub.lostIds) {
                for (std::size_t i = 0; i < channels_.size(); ++i) {
                    if (channels_[i]->name() == id &&
                        channels_[i]->state() !=
                            AuthState::PendingReenroll) {
                        demoteToPendingReenroll(i, wall);
                        break;
                    }
                }
            }
            if (scrub.unreadable) {
                // The whole shard image yielded nothing recoverable,
                // so channels routed to it have lost their stored
                // enrollment; fence them now rather than letting each
                // discover the damage at its next probe. A record
                // still pending in the journal-backed overlay is not
                // lost, so only channels the db can no longer serve
                // are demoted.
                for (std::size_t i = 0; i < channels_.size(); ++i) {
                    const std::string &name = channels_[i]->name();
                    if (db_->shardOf(name) != scrub.shard ||
                        channels_[i]->state() ==
                            AuthState::PendingReenroll) {
                        continue;
                    }
                    store::EnrollmentRecord rec;
                    if (db_->get(name, rec) != store::DbGetStatus::Ok)
                        demoteToPendingReenroll(i, wall);
                }
            }
        }
    }

    tmTicks_.add();
    tmProbes_.add(selected.size());
    tmInstrumentSlots_.add(config_.instruments);
    tmIdleSlots_.add(config_.instruments - selected.size());
    (round.fused.busTrusted ? tmTrusted_ : tmUntrusted_).add();
    if (round.fused.tamperAlarm)
        tmAlarms_.add();
    if (round.fused.busTrusted != lastTrusted_) {
        tmTrustFlips_.add();
        TelemetryEvent event;
        event.time = wall;
        event.ordinal = tick_;
        event.kind = "fleet.trust";
        event.tag = "fleet";
        event.detail = round.fused.busTrusted
            ? "untrusted->trusted" : "trusted->untrusted";
        telemetry_->events().record(std::move(event));
    }
    lastTrusted_ = round.fused.busTrusted;
    span.close(wall + slot_, 0);

    ++tick_;
    return round;
}

FleetRound
ChannelScheduler::run(std::size_t rounds)
{
    FleetRound last;
    for (std::size_t r = 0; r < rounds; ++r)
        last = tick();
    return last;
}

BusChannel &
ChannelScheduler::channel(std::size_t index)
{
    if (index >= channels_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, channels_.size());
    return *channels_[index];
}

const BusChannel &
ChannelScheduler::channel(std::size_t index) const
{
    if (index >= channels_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, channels_.size());
    return *channels_[index];
}

uint64_t
ChannelScheduler::probeCount(std::size_t index) const
{
    if (index >= probeCounts_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, probeCounts_.size());
    return probeCounts_[index];
}

FleetCacheStats
ChannelScheduler::cacheStats() const
{
    FleetCacheStats stats;
    stats.totals.name = "fleet";
    stats.perChannel.reserve(channels_.size());
    for (const auto &channel : channels_) {
        const TraceCache &cache = channel->traceCache();
        ChannelCacheStats cs;
        cs.name = channel->name();
        cs.hits = cache.hits();
        cs.misses = cache.misses();
        cs.evictions = cache.evictions();
        stats.totals.hits += cs.hits;
        stats.totals.misses += cs.misses;
        stats.totals.evictions += cs.evictions;
        stats.perChannel.push_back(std::move(cs));
    }
    return stats;
}

} // namespace divot
