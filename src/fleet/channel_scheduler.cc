#include "fleet/channel_scheduler.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

namespace {

// Stable fork tag base for per-channel RNG lanes: channel i's lane is
// a pure function of the fleet seed and i, so the thread count and
// probe history cannot perturb fabrication or measurement draws.
constexpr uint64_t kTagFleetChannel = 0x7000ULL;

// Risk weight of an authenticator state: how urgently the scheduler
// should spend a shared instrument on a channel in that state.
// Suspect channels are probed more often, not less — confirming or
// clearing an alarm is worth more than re-checking a healthy wire.
uint64_t
riskWeight(AuthState state)
{
    switch (state) {
    case AuthState::Unenrolled:
    case AuthState::Monitoring:
        return 1;
    case AuthState::Mismatch:
    case AuthState::Degraded:
        return 4;
    case AuthState::TamperAlert:
    case AuthState::Quarantine:
        return 8;
    }
    return 1;
}

} // namespace

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::RoundRobin:
        return "round-robin";
    case SchedulerPolicy::RiskWeighted:
        return "risk-weighted";
    }
    return "?";
}

ChannelScheduler::ChannelScheduler(FleetConfig config, Rng rng)
    : config_(config), rng_(rng),
      telemetry_(std::make_unique<Telemetry>(config.telemetry)),
      fleetAuth_(config.fusion, config.similarityThreshold,
                 config.tamperWireVotes),
      pool_(std::make_unique<ThreadPool>(config.threads))
{
    if (config_.instruments == 0)
        divot_fatal("fleet needs at least one iTDR instrument");
    pool_->attachTelemetry(telemetry_.get(), "fleet.pool");
    Registry &reg = telemetry_->registry();
    tmTicks_ = reg.counter("fleet.ticks");
    tmProbes_ = reg.counter("fleet.probes");
    tmInstrumentSlots_ = reg.counter("fleet.slots.total");
    tmIdleSlots_ = reg.counter("fleet.slots.idle");
    tmTrusted_ = reg.counter("fleet.verdicts.trusted");
    tmUntrusted_ = reg.counter("fleet.verdicts.untrusted");
    tmAlarms_ = reg.counter("fleet.alarms");
    tmTrustFlips_ = reg.counter("fleet.trust_flips");
    tmKernelBatches_ = reg.counter("fleet.kernel.batches",
                                   MetricStability::Unstable);
    tmKernelBatchedProbes_ = reg.counter("fleet.kernel.batched_probes",
                                         MetricStability::Unstable);
    tmStaleness_ = reg.histogram("fleet.staleness",
                                 {1, 2, 4, 8, 16, 32});
    tmRiskWeight_ = reg.histogram("fleet.risk_weight", {1, 4, 8});
}

ChannelScheduler::~ChannelScheduler() = default;
ChannelScheduler::ChannelScheduler(ChannelScheduler &&) noexcept = default;
ChannelScheduler &
ChannelScheduler::operator=(ChannelScheduler &&) noexcept = default;

std::size_t
ChannelScheduler::addChannel(BusChannelConfig config)
{
    if (calibrated_)
        divot_fatal("cannot add channel '%s' after calibrateAll()",
                    config.name.c_str());
    const std::size_t index = channels_.size();
    channels_.push_back(std::make_unique<BusChannel>(
        std::move(config), rng_.forkStable(kTagFleetChannel + index)));
    channels_.back()->attachTelemetry(telemetry_.get());
    tmChannelProbes_.push_back(telemetry_->registry().counter(
        "fleet.channel." + channels_.back()->name() + ".probes"));
    lastProbeTick_.push_back(-1);
    probeCounts_.push_back(0);
    fleetAuth_.setChannelCount(channels_.size());
    return index;
}

void
ChannelScheduler::calibrateAll()
{
    if (channels_.empty())
        divot_fatal("fleet has no channels to calibrate");
    pool_->parallelFor(channels_.size(), [&](std::size_t idx) {
        channels_[idx]->calibrate();
    });
    // One tick spans the slowest channel's round so every probe of a
    // tick fits inside it regardless of which channels are selected.
    slot_ = 0.0;
    for (const auto &channel : channels_)
        slot_ = std::max(slot_, channel->roundDuration());
    calibrated_ = true;
    divot_inform("fleet calibrated: %zu channels, %zu instruments, "
                 "%s policy, tick %.3g s",
                 channels_.size(), config_.instruments,
                 schedulerPolicyName(config_.policy), slot_);
}

std::vector<std::size_t>
ChannelScheduler::selectChannels() const
{
    // Priority = staleness (ticks since last probe, never-probed
    // counts from before tick 0) scaled by the state risk weight
    // under RiskWeighted. Pure function of fleet state: no RNG.
    struct Ranked
    {
        uint64_t priority;
        std::size_t index;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        const uint64_t staleness = static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[i]);
        uint64_t priority = staleness;
        if (config_.policy == SchedulerPolicy::RiskWeighted)
            priority *= riskWeight(channels_[i]->state());
        ranked.push_back({priority, i});
    }
    const std::size_t k =
        std::min(config_.instruments, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      [](const Ranked &a, const Ranked &b) {
                          if (a.priority != b.priority)
                              return a.priority > b.priority;
                          return a.index < b.index;
                      });
    std::vector<std::size_t> selected(k);
    for (std::size_t i = 0; i < k; ++i)
        selected[i] = ranked[i].index;
    std::sort(selected.begin(), selected.end());
    return selected;
}

FleetRound
ChannelScheduler::tick()
{
    if (!calibrated_)
        divot_fatal("fleet tick() before calibrateAll()");

    const std::vector<std::size_t> selected = selectChannels();
    const double wall = slot_ * static_cast<double>(tick_);

    // Scheduling metrics captured before the probes run: staleness and
    // risk weight are exactly the quantities selectChannels() ranked
    // on, and the probe updates them.
    SpanScope span = telemetry_->tracer().open("fleet.tick", "fleet",
                                               wall, tick_);
    for (const std::size_t c : selected) {
        tmStaleness_.record(static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[c]));
        tmRiskWeight_.record(riskWeight(channels_[c]->state()));
        tmChannelProbes_[c].add();
    }

    FleetRound round;
    round.tick = tick_;
    round.probes.resize(selected.size());
    // Disjoint channels, disjoint result slots: bit-identical at any
    // thread count.
    const std::size_t batch =
        config_.measureBatch > 1 ? config_.measureBatch : 1;
    if (batch > 1) {
        // Batched mode: item i is a no-op unless it leads a group of
        // `batch` consecutive selected channels, which the leader
        // probes serially against one shared SoA arena. Submitting
        // every index (leaders and no-ops) keeps the pool's stable
        // parallel_for metrics identical to per-channel mode, so the
        // two modes export the same telemetry bytes.
        const std::size_t groups =
            (selected.size() + batch - 1) / batch;
        if (kernelArenas_.size() < groups)
            kernelArenas_.resize(groups);
        pool_->parallelFor(selected.size(), [&](std::size_t i) {
            if (i % batch != 0)
                return;
            const std::size_t g = i / batch;
            const std::size_t hi =
                std::min(i + batch, selected.size());
            for (std::size_t j = i; j < hi; ++j) {
                const std::size_t c = selected[j];
                channels_[c]->attachKernelArena(&kernelArenas_[g]);
                round.probes[j].channel = c;
                round.probes[j].verdict = channels_[c]->monitorAt(wall);
                channels_[c]->attachKernelArena(nullptr);
            }
        });
        tmKernelBatches_.add(groups);
        tmKernelBatchedProbes_.add(selected.size());
    } else {
        pool_->parallelFor(selected.size(), [&](std::size_t i) {
            const std::size_t c = selected[i];
            round.probes[i].channel = c;
            round.probes[i].verdict = channels_[c]->monitorAt(wall);
        });
    }

    for (const ChannelProbe &probe : round.probes) {
        lastProbeTick_[probe.channel] = static_cast<int64_t>(tick_);
        ++probeCounts_[probe.channel];
        fleetAuth_.observe(probe.channel, probe.verdict);
    }
    round.fused = fleetAuth_.evaluate(tick_);
    lastVerdict_ = round.fused;

    tmTicks_.add();
    tmProbes_.add(selected.size());
    tmInstrumentSlots_.add(config_.instruments);
    tmIdleSlots_.add(config_.instruments - selected.size());
    (round.fused.busTrusted ? tmTrusted_ : tmUntrusted_).add();
    if (round.fused.tamperAlarm)
        tmAlarms_.add();
    if (round.fused.busTrusted != lastTrusted_) {
        tmTrustFlips_.add();
        TelemetryEvent event;
        event.time = wall;
        event.ordinal = tick_;
        event.kind = "fleet.trust";
        event.tag = "fleet";
        event.detail = round.fused.busTrusted
            ? "untrusted->trusted" : "trusted->untrusted";
        telemetry_->events().record(std::move(event));
    }
    lastTrusted_ = round.fused.busTrusted;
    span.close(wall + slot_, 0);

    ++tick_;
    return round;
}

FleetRound
ChannelScheduler::run(std::size_t rounds)
{
    FleetRound last;
    for (std::size_t r = 0; r < rounds; ++r)
        last = tick();
    return last;
}

BusChannel &
ChannelScheduler::channel(std::size_t index)
{
    if (index >= channels_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, channels_.size());
    return *channels_[index];
}

const BusChannel &
ChannelScheduler::channel(std::size_t index) const
{
    if (index >= channels_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, channels_.size());
    return *channels_[index];
}

uint64_t
ChannelScheduler::probeCount(std::size_t index) const
{
    if (index >= probeCounts_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, probeCounts_.size());
    return probeCounts_[index];
}

FleetCacheStats
ChannelScheduler::cacheStats() const
{
    FleetCacheStats stats;
    stats.totals.name = "fleet";
    stats.perChannel.reserve(channels_.size());
    for (const auto &channel : channels_) {
        const TraceCache &cache = channel->traceCache();
        ChannelCacheStats cs;
        cs.name = channel->name();
        cs.hits = cache.hits();
        cs.misses = cache.misses();
        cs.evictions = cache.evictions();
        stats.totals.hits += cs.hits;
        stats.totals.misses += cs.misses;
        stats.totals.evictions += cs.evictions;
        stats.perChannel.push_back(std::move(cs));
    }
    return stats;
}

} // namespace divot
