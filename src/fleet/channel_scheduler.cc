#include "fleet/channel_scheduler.hh"

#include <algorithm>

#include "util/completion_queue.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

namespace {

// Stable fork tag base for per-channel RNG lanes: channel i's lane is
// a pure function of the fleet seed and i, so the thread count and
// probe history cannot perturb fabrication or measurement draws.
constexpr uint64_t kTagFleetChannel = 0x7000ULL;

// Request-pressure boost: added to a channel's staleness x risk
// priority when a service request names it. Large enough to dominate
// any organic priority (staleness is bounded by the tick count of a
// run, risk by 8), so a requested channel wins the next dispatch.
constexpr uint64_t kRequestBoost = 1ull << 32;

// Slack for "does this round still fit in the epoch" comparisons:
// epoch boundaries are sums of per-round durations, so a fitting
// round can miss the boundary by an ulp of accumulated FP error.
constexpr double kEpochSlack = 1e-12;

// Risk weight of an authenticator state: how urgently the scheduler
// should spend a shared instrument on a channel in that state.
// Suspect channels are probed more often, not less — confirming or
// clearing an alarm is worth more than re-checking a healthy wire.
uint64_t
riskWeight(AuthState state)
{
    switch (state) {
    case AuthState::Unenrolled:
    case AuthState::Monitoring:
        return 1;
    case AuthState::Mismatch:
    case AuthState::Degraded:
        return 4;
    case AuthState::TamperAlert:
    case AuthState::Quarantine:
        return 8;
    case AuthState::PendingReenroll:
        return 0; // nothing to authenticate against: never selected
    }
    return 1;
}

} // namespace

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::RoundRobin:
        return "round-robin";
    case SchedulerPolicy::RiskWeighted:
        return "risk-weighted";
    }
    return "?";
}

ChannelScheduler::ChannelScheduler(FleetConfig config, Rng rng)
    : config_(config), rng_(rng),
      telemetry_(std::make_unique<Telemetry>(config.telemetry)),
      fleetAuth_(config.fusion, config.similarityThreshold,
                 config.tamperWireVotes),
      pool_(std::make_unique<ThreadPool>(config.threads)),
      cq_(std::make_unique<CompletionQueue>(*pool_)),
      reactor_(std::make_unique<Reactor>(config.reactor,
                                         config.instruments))
{
    if (config_.instruments == 0)
        divot_fatal("fleet needs at least one iTDR instrument");
    pool_->attachTelemetry(telemetry_.get(), "fleet.pool");
    cq_->attachTelemetry(telemetry_.get(), "fleet.cq");
    reactor_->attachTelemetry(telemetry_.get());
    Registry &reg = telemetry_->registry();
    tmTicks_ = reg.counter("fleet.ticks");
    tmProbes_ = reg.counter("fleet.probes");
    tmInstrumentSlots_ = reg.counter("fleet.slots.total");
    tmIdleSlots_ = reg.counter("fleet.slots.idle");
    tmTrusted_ = reg.counter("fleet.verdicts.trusted");
    tmUntrusted_ = reg.counter("fleet.verdicts.untrusted");
    tmAlarms_ = reg.counter("fleet.alarms");
    tmTrustFlips_ = reg.counter("fleet.trust_flips");
    tmKernelBatches_ = reg.counter("fleet.kernel.batches",
                                   MetricStability::Unstable);
    tmKernelBatchedProbes_ = reg.counter("fleet.kernel.batched_probes",
                                         MetricStability::Unstable);
    tmStaleness_ = reg.histogram("fleet.staleness",
                                 {1, 2, 4, 8, 16, 32});
    tmRiskWeight_ = reg.histogram("fleet.risk_weight", {1, 4, 8});
    tmUtilization_ = reg.gauge("fleet.instrument.utilization");
    tmIdleSlotPermille_ = reg.gauge("fleet.reactor.idle_slot.permille");
    tmQueuePeak_ = reg.gauge("fleet.reactor.queue.peak");
    // Steady-state epoch: one hydrate + one completion per instrument
    // plus the epoch tail — pre-size the arena so ticks never grow it.
    reactor_->reserve(2 * config_.instruments + 4);
}

ChannelScheduler::~ChannelScheduler() = default;
ChannelScheduler::ChannelScheduler(ChannelScheduler &&) noexcept = default;
ChannelScheduler &
ChannelScheduler::operator=(ChannelScheduler &&) noexcept = default;

std::size_t
ChannelScheduler::addChannel(BusChannelConfig config)
{
    if (calibrated_)
        divot_fatal("cannot add channel '%s' after calibrateAll()",
                    config.name.c_str());
    const std::size_t index = channels_.size();
    channels_.push_back(std::make_unique<BusChannel>(
        std::move(config), rng_.forkStable(kTagFleetChannel + index)));
    channels_.back()->attachTelemetry(telemetry_.get());
    tmChannelProbes_.push_back(telemetry_->registry().counter(
        "fleet.channel." + channels_.back()->name() + ".probes"));
    lastProbeTick_.push_back(-1);
    probeCounts_.push_back(0);
    generations_.push_back(0);
    phase_.push_back(ChannelPhase::Idle);
    lastDispatchTick_.push_back(-1);
    channelSlot_.push_back(0);
    requestBoost_.push_back(0);
    nameIndex_.emplace(channels_.back()->name(), index);
    if (db_ != nullptr) {
        shardChannels_[db_->shardOf(channels_.back()->name())]
            .push_back(index);
    }
    fleetAuth_.setChannelCount(channels_.size());
    return index;
}

void
ChannelScheduler::rebuildShardRouting()
{
    shardChannels_.clear();
    if (db_ == nullptr)
        return;
    for (std::size_t i = 0; i < channels_.size(); ++i)
        shardChannels_[db_->shardOf(channels_[i]->name())].push_back(i);
}

unsigned
ChannelScheduler::resolveLanes() const
{
    // Lanes partition *hydration*, which only exists store-backed;
    // Pipelined mode interleaves hydration with dispatch chains whose
    // order is instrument-driven, so it keeps the single queue.
    if (db_ == nullptr ||
        config_.reactor.mode == ReactorMode::Pipelined) {
        return 1;
    }
    if (config_.reactorLanes != 0)
        return config_.reactorLanes;
    const unsigned shards =
        db_->config().shards == 0 ? 1 : db_->config().shards;
    return std::min(shards, 8u);
}

unsigned
ChannelScheduler::laneOf(std::size_t index) const
{
    return db_->shardOf(channels_[index]->name()) % laneCount_;
}

void
ChannelScheduler::scheduleEvent(Reactor &target, ReactorEventType type,
                                double vtime, std::size_t channel,
                                uint64_t ticket)
{
    target.schedule(type, vtime, channel, ticket);
    // The lane-invariant queue-shape account: total events queued
    // fleet-wide, sampled where the total can only have grown. For
    // one lane this is exactly the reactor's own high-water; for K
    // lanes the sum is identical because the same events exist, just
    // partitioned.
    std::size_t depth = reactor_->depth();
    for (const auto &lane : laneReactors_)
        depth += lane->depth();
    if (depth > queuePeak_) {
        queuePeak_ = depth;
        tmQueuePeak_.max(static_cast<int64_t>(depth));
    }
}

void
ChannelScheduler::attachStore(store::EnrollmentDb *db,
                              std::size_t resident_budget_bytes)
{
    db_ = db;
    residentBudget_ = resident_budget_bytes;
    resident_ = 0;
    rebuildShardRouting();
    laneReactors_.clear();
    laneCount_ = resolveLanes();
    if (db_ == nullptr)
        return;
    if (laneCount_ > 1) {
        // Lane reactors share the primary's telemetry cells
        // (registration is idempotent) and never touch the instrument
        // pool — instruments are acquired only from the serial probe
        // phase on the primary.
        laneReactors_.reserve(laneCount_);
        for (unsigned k = 0; k < laneCount_; ++k) {
            laneReactors_.push_back(std::make_unique<Reactor>(
                config_.reactor, config_.instruments));
            laneReactors_.back()->attachTelemetry(telemetry_.get());
            laneReactors_.back()->reserve(config_.instruments + 1);
        }
    }
    db_->setShardCacheLanes(laneCount_);
    Registry &reg = telemetry_->registry();
    tmHydrates_ = reg.counter("store.hydrates");
    tmEvictions_ = reg.counter("store.evictions");
    tmPendingReenroll_ = reg.counter("store.pending_reenroll");
    tmScrubTicks_ = reg.counter("store.scrub.idle_ticks");
    if (calibrated_) {
        persistAll();
        enforceResidentBudget(-1);
    }
}

bool
ChannelScheduler::persistChannel(std::size_t index)
{
    if (db_ == nullptr)
        return false;
    const BusChannel &ch = *channels_[index];
    if (!ch.enrollmentResident())
        return true; // evicted: the durable copy is already current
    store::EnrollmentRecord record;
    record.id = ch.name();
    record.fp = ch.authenticator().enrolled();
    record.nominal = ch.authenticator().nominal();
    if (ch.state() == AuthState::Quarantine)
        record.flags |= store::kRecordQuarantined;
    // The durable record carries the post-bump generation, so what
    // the service reports after an Enroll is exactly what a later
    // hydration (or audit) reads back.
    record.generation = generations_[index] + 1;
    if (!db_->put(record))
        return false;
    ++generations_[index];
    return true;
}

void
ChannelScheduler::persistAll()
{
    resident_ = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (!persistChannel(i))
            divot_warn("fleet: failed to persist enrollment for "
                       "channel '%s'", channels_[i]->name().c_str());
        if (channels_[i]->enrollmentResident())
            resident_ += channels_[i]->enrollmentBytes();
    }
}

void
ChannelScheduler::demoteToPendingReenroll(std::size_t index,
                                          double wall)
{
    BusChannel &ch = *channels_[index];
    const std::size_t bytes =
        ch.enrollmentResident() ? ch.enrollmentBytes() : 0;
    const AuthVerdict verdict = ch.markPendingReenroll();
    resident_ -= std::min(resident_, bytes);
    phase_[index] = ChannelPhase::Fenced;
    tmPendingReenroll_.add();
    // The fused verdict must stop reusing this wire's stale score the
    // moment the loss is known, so the demotion is observed like a
    // probe even though no instrument ran.
    fleetAuth_.observe(index, verdict);
    requestBoost_[index] = 0;
    if (hook_ != nullptr)
        hook_->onProbeObserved(index, verdict, wall);
    TelemetryEvent event;
    event.time = wall;
    event.ordinal = tick_;
    event.kind = "store.lost";
    event.tag = ch.name();
    event.detail = "enrollment unrecoverable; pending re-enroll";
    telemetry_->events().record(std::move(event));
}

bool
ChannelScheduler::hydrateChannel(std::size_t index, double wall)
{
    BusChannel &ch = *channels_[index];
    if (ch.state() == AuthState::PendingReenroll)
        return false;
    if (db_ == nullptr || ch.enrollmentResident())
        return true;
    store::EnrollmentRecord record;
    if (db_->get(ch.name(), record) == store::DbGetStatus::Ok) {
        ch.restoreEnrollment(std::move(record.fp),
                             std::move(record.nominal));
        resident_ += ch.enrollmentBytes();
        tmHydrates_.add();
        return true;
    }
    // Missing or damaged in every bank: for an enrolled channel both
    // mean the calibration is gone. Fence the channel, keep the fleet.
    demoteToPendingReenroll(index, wall);
    return false;
}

void
ChannelScheduler::enforceResidentBudget(int64_t current_tick)
{
    if (db_ == nullptr || residentBudget_ == 0 ||
        resident_ <= residentBudget_) {
        return;
    }
    // LRU over (last probe tick, index): deterministic, and channels
    // probed this tick are pinned — the tick working set is the floor
    // below which the budget cannot squeeze.
    struct Candidate
    {
        int64_t lastProbe;
        std::size_t index;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (!channels_[i]->enrollmentResident())
            continue;
        if (generations_[i] == 0)
            continue; // never persisted: eviction would lose it
        if (lastProbeTick_[i] == current_tick)
            continue;
        candidates.push_back({lastProbeTick_[i], i});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.lastProbe != b.lastProbe)
                      return a.lastProbe < b.lastProbe;
                  return a.index < b.index;
              });
    for (const Candidate &cand : candidates) {
        if (resident_ <= residentBudget_)
            break;
        BusChannel &ch = *channels_[cand.index];
        const std::size_t bytes = ch.enrollmentBytes();
        ch.releaseEnrollment();
        resident_ -= std::min(resident_, bytes);
        tmEvictions_.add();
    }
}

bool
ChannelScheduler::reenrollChannel(std::size_t index)
{
    BusChannel &ch = channel(index);
    // Operator-initiated: consumed immediately (between epochs), but
    // still sequenced and counted so the event order stays a complete
    // record of everything that happened to the fleet.
    reactor_->dispatchImmediate(ReactorEventType::RecalibrateRequest,
                                elapsed_, index);
    const bool was_resident = ch.enrollmentResident();
    const std::size_t before = was_resident ? ch.enrollmentBytes() : 0;
    ch.calibrate();
    phase_[index] = ChannelPhase::Idle;
    if (db_ != nullptr) {
        resident_ -= std::min(resident_, before);
        resident_ += ch.enrollmentBytes();
        if (!persistChannel(index)) {
            reactor_->dispatchImmediate(ReactorEventType::FaultEvent,
                                        elapsed_, index);
            return false;
        }
        return true;
    }
    return true;
}

void
ChannelScheduler::calibrateAll()
{
    if (channels_.empty())
        divot_fatal("fleet has no channels to calibrate");
    pool_->parallelFor(channels_.size(), [&](std::size_t idx) {
        channels_[idx]->calibrate();
    });
    // One barrier slot spans the slowest channel's round so every
    // probe of a tick fits inside it regardless of which channels are
    // selected.
    slot_ = 0.0;
    for (const auto &channel : channels_)
        slot_ = std::max(slot_, channel->roundDuration());
    calibrated_ = true;
    if (db_ != nullptr) {
        persistAll();
        enforceResidentBudget(-1);
    }
    divot_inform("fleet calibrated: %zu channels, %zu instruments, "
                 "%s policy, %s reactor, tick %.3g s",
                 channels_.size(), config_.instruments,
                 schedulerPolicyName(config_.policy),
                 reactorModeName(config_.reactor.mode), tickDuration());
}

double
ChannelScheduler::tickDuration() const
{
    if (config_.reactor.mode == ReactorMode::Pipelined)
        return slot_ * static_cast<double>(config_.reactor.epochSlots);
    return slot_;
}

ChannelPhase
ChannelScheduler::channelPhase(std::size_t index) const
{
    if (index >= phase_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, phase_.size());
    return phase_[index];
}

double
ChannelScheduler::instrumentUtilization() const
{
    return reactor_->utilization(elapsed_);
}

std::vector<std::size_t>
ChannelScheduler::selectChannels() const
{
    // Priority = staleness (ticks since last probe, never-probed
    // counts from before tick 0) scaled by the state risk weight
    // under RiskWeighted. Pure function of fleet state: no RNG.
    struct Ranked
    {
        uint64_t priority;
        std::size_t index;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        // A PendingReenroll channel has no enrollment to probe
        // against; spending an instrument slot on it is pure waste
        // under either policy.
        if (channels_[i]->state() == AuthState::PendingReenroll)
            continue;
        const uint64_t staleness = static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[i]);
        uint64_t priority = staleness;
        if (config_.policy == SchedulerPolicy::RiskWeighted)
            priority *= riskWeight(channels_[i]->state());
        // Request pressure rides on top of the organic priority, so
        // requested channels outrank everything but each other (among
        // themselves: more requests, then staleness, then index).
        priority += requestBoost_[i];
        ranked.push_back({priority, i});
    }
    const std::size_t k =
        std::min(config_.instruments, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      [](const Ranked &a, const Ranked &b) {
                          if (a.priority != b.priority)
                              return a.priority > b.priority;
                          return a.index < b.index;
                      });
    std::vector<std::size_t> selected(k);
    for (std::size_t i = 0; i < k; ++i)
        selected[i] = ranked[i].index;
    std::sort(selected.begin(), selected.end());
    return selected;
}

bool
ChannelScheduler::tryDispatch(double vtime)
{
    // Pipelined ranking mirrors selectChannels(), restricted to
    // channels that are idle, not fenced, not yet dispatched this
    // epoch, and whose round still finishes inside the epoch. The
    // best fitting candidate wins (tie-break: lower index), so a
    // too-long round near the boundary doesn't idle an instrument a
    // shorter round could use.
    bool found = false;
    uint64_t bestPriority = 0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        if (phase_[i] != ChannelPhase::Idle)
            continue;
        const AuthState state = channels_[i]->state();
        if (state == AuthState::PendingReenroll)
            continue;
        if (lastDispatchTick_[i] == static_cast<int64_t>(tick_))
            continue;
        if (vtime + channels_[i]->roundDuration() >
            epochEnd_ + kEpochSlack) {
            continue;
        }
        const uint64_t staleness = static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[i]);
        uint64_t priority = staleness;
        if (config_.policy == SchedulerPolicy::RiskWeighted)
            priority *= riskWeight(state);
        priority += requestBoost_[i];
        if (!found || priority > bestPriority) {
            found = true;
            bestPriority = priority;
            best = i;
        }
    }
    if (!found)
        return false;
    lastDispatchTick_[best] = static_cast<int64_t>(tick_);
    phase_[best] = ChannelPhase::Hydrating;
    scheduleEvent(*reactor_, ReactorEventType::HydrateRequest, vtime,
                  best);
    return true;
}

void
ChannelScheduler::handleEvent(const ReactorEvent &event)
{
    switch (event.type) {
    case ReactorEventType::HydrateRequest:
        onHydrateRequest(event);
        return;
    case ReactorEventType::ProbeComplete:
        onProbeComplete(event);
        return;
    case ReactorEventType::FuseEpoch:
        onFuseEpoch(event);
        return;
    case ReactorEventType::EvictPressure:
        onEvictPressure(event);
        return;
    case ReactorEventType::ScrubStep:
        onScrubStep(event);
        return;
    case ReactorEventType::RecalibrateRequest:
        // Operator path: consumed immediately in reenrollChannel(),
        // never queued.
        return;
    case ReactorEventType::FaultEvent:
        // Recovery already ran when the fault was detected (demotion
        // or failed persist); the event exists so fault manifestation
        // has a deterministic place in the order and in the
        // fleet.reactor.events.fault account.
        return;
    case ReactorEventType::RequestArrival:
        if (hook_ != nullptr)
            hook_->onRequestArrival(event);
        return;
    case ReactorEventType::RequestComplete:
        if (hook_ != nullptr)
            hook_->onRequestComplete(event);
        return;
    }
}

void
ChannelScheduler::onHydrateRequest(const ReactorEvent &event)
{
    const std::size_t c = event.channel;
    const bool pipelined =
        config_.reactor.mode == ReactorMode::Pipelined;
    if (!hydrateChannel(c, event.vtime)) {
        // Channel fenced (demotion already observed into the fused
        // verdict); record the manifestation and, pipelined, hand the
        // freed dispatch slot to the next ranked candidate.
        scheduleEvent(*reactor_, ReactorEventType::FaultEvent,
                      event.vtime, c);
        if (pipelined)
            tryDispatch(event.vtime);
        return;
    }
    phase_[c] = ChannelPhase::Probing;
    if (!pipelined) {
        epochReady_.push_back(c);
        return;
    }
    // Scheduling metrics at dispatch: staleness and risk weight are
    // exactly the quantities the ranking used, and the probe will
    // update them.
    tmStaleness_.record(static_cast<uint64_t>(
        static_cast<int64_t>(tick_) - lastProbeTick_[c]));
    tmRiskWeight_.record(riskWeight(channels_[c]->state()));
    tmChannelProbes_[c].add();
    const double vtime = event.vtime;
    const std::size_t slot = pipeProbes_.size();
    ChannelProbe seed;
    seed.channel = c;
    pipeProbes_.push_back(seed);
    channelSlot_[c] = slot;
    ChannelProbe *out = &pipeProbes_.back();
    BusChannel *ch = channels_[c].get();
    // Physical computation on the pool; logical completion at the
    // ProbeComplete event, in deterministic (vtime, seq) order.
    const CompletionQueue::Ticket ticket = cq_->submit(
        [ch, out, vtime] { out->verdict = ch->monitorAt(vtime); });
    reactor_->acquireInstrument();
    scheduleEvent(*reactor_, ReactorEventType::ProbeComplete,
                  vtime + ch->roundDuration(), c, ticket);
}

void
ChannelScheduler::hydrateLanes(const std::vector<std::size_t> &selected)
{
    // Lane phase: every lane drains its own HydrateRequest queue on
    // the pool, staging what it *would* do to the fleet. A lane only
    // touches lane-confined state — its own reactor, its shard-cache
    // partition (shard % K == lane, the same rule laneOf() routes by),
    // and the selected channels' own objects (restoreEnrollment) —
    // so the staged outcomes are a pure function of (seed, config)
    // at any thread count.
    enum class Outcome : uint8_t
    {
        Ready,       // already resident: just dispatchable
        HydratedNew, // restored from the store this epoch
        Lost,        // missing/unrecoverable: fence the channel
        FencedSkip   // was already PendingReenroll when popped
    };
    struct Staged
    {
        Outcome kind = Outcome::Ready;
        std::size_t bytes = 0;
    };
    std::vector<Staged> staged(selected.size());
    pool_->parallelFor(laneCount_, [&](std::size_t lane) {
        Reactor &lr = *laneReactors_[lane];
        while (!lr.empty()) {
            const ReactorEvent event = lr.pop();
            Staged &out = staged[event.ticket];
            BusChannel &ch = *channels_[event.channel];
            if (ch.state() == AuthState::PendingReenroll) {
                out.kind = Outcome::FencedSkip;
                continue;
            }
            if (ch.enrollmentResident()) {
                out.kind = Outcome::Ready;
                continue;
            }
            store::EnrollmentRecord record;
            if (db_->get(ch.name(), record) ==
                store::DbGetStatus::Ok) {
                ch.restoreEnrollment(std::move(record.fp),
                                     std::move(record.nominal));
                out.kind = Outcome::HydratedNew;
                out.bytes = ch.enrollmentBytes();
                continue;
            }
            out.kind = Outcome::Lost;
        }
    });
    // Serial merge, ascending selection order — exactly the order a
    // single lane pops (equal vtime, ascending seq), so phase
    // transitions, the epochReady_ batch, demotion side effects (the
    // order-sensitive "store.lost" event ring) and the FaultEvent
    // sequence on the primary reproduce the one-lane run bit for bit.
    for (std::size_t j = 0; j < selected.size(); ++j) {
        const std::size_t c = selected[j];
        switch (staged[j].kind) {
        case Outcome::HydratedNew:
            resident_ += staged[j].bytes;
            tmHydrates_.add();
            [[fallthrough]];
        case Outcome::Ready:
            phase_[c] = ChannelPhase::Probing;
            epochReady_.push_back(c);
            break;
        case Outcome::Lost:
            demoteToPendingReenroll(c, epochWall_);
            scheduleEvent(*reactor_, ReactorEventType::FaultEvent,
                          epochWall_, c);
            break;
        case Outcome::FencedSkip:
            scheduleEvent(*reactor_, ReactorEventType::FaultEvent,
                          epochWall_, c);
            break;
        }
    }
    // Fold lane consumption into the primary so consumed() totals are
    // lane-count-invariant (shared telemetry cells were bumped once,
    // at the lane's pop).
    for (auto &lane : laneReactors_)
        reactor_->absorb(*lane);
}

void
ChannelScheduler::launchBarrierProbes()
{
    probesLaunched_ = true;
    const double wall = epochWall_;

    // Scheduling metrics captured before the probes run: staleness and
    // risk weight are exactly the quantities selectChannels() ranked
    // on, and the probe updates them.
    for (const std::size_t c : epochReady_) {
        tmStaleness_.record(static_cast<uint64_t>(
            static_cast<int64_t>(tick_) - lastProbeTick_[c]));
        tmRiskWeight_.record(riskWeight(channels_[c]->state()));
        tmChannelProbes_[c].add();
    }

    round_.probes.resize(epochReady_.size());
    // Disjoint channels, disjoint result slots: bit-identical at any
    // thread count.
    const std::size_t batch =
        config_.measureBatch > 1 ? config_.measureBatch : 1;
    if (batch > 1) {
        // Batched mode: item i is a no-op unless it leads a group of
        // `batch` consecutive ready channels, which the leader probes
        // serially against one shared SoA arena. Submitting every
        // index (leaders and no-ops) keeps the pool's stable
        // parallel_for metrics identical to per-channel mode, so the
        // two modes export the same telemetry bytes.
        const std::size_t groups =
            (epochReady_.size() + batch - 1) / batch;
        if (kernelArenas_.size() < groups)
            kernelArenas_.resize(groups);
        pool_->parallelFor(epochReady_.size(), [&](std::size_t i) {
            if (i % batch != 0)
                return;
            const std::size_t g = i / batch;
            const std::size_t hi =
                std::min(i + batch, epochReady_.size());
            for (std::size_t j = i; j < hi; ++j) {
                const std::size_t c = epochReady_[j];
                channels_[c]->attachKernelArena(&kernelArenas_[g]);
                round_.probes[j].channel = c;
                round_.probes[j].verdict = channels_[c]->monitorAt(wall);
                channels_[c]->attachKernelArena(nullptr);
            }
        });
        tmKernelBatches_.add(groups);
        tmKernelBatchedProbes_.add(epochReady_.size());
    } else {
        pool_->parallelFor(epochReady_.size(), [&](std::size_t i) {
            const std::size_t c = epochReady_[i];
            round_.probes[i].channel = c;
            round_.probes[i].verdict = channels_[c]->monitorAt(wall);
        });
    }

    // Completions land on the tick boundary, ascending channel order
    // (epochReady_ is ascending), followed by fusion and — with a
    // store attached — eviction pressure and, when slots idled, one
    // scrub step: exactly the pre-reactor operation order.
    for (std::size_t i = 0; i < epochReady_.size(); ++i) {
        reactor_->acquireInstrument();
        scheduleEvent(*reactor_, ReactorEventType::ProbeComplete,
                      epochEnd_, epochReady_[i], /*ticket=*/i);
    }
    scheduleEvent(*reactor_, ReactorEventType::FuseEpoch, epochEnd_);
    if (db_ != nullptr) {
        scheduleEvent(*reactor_, ReactorEventType::EvictPressure,
                      epochEnd_);
        if (epochReady_.size() < config_.instruments)
            scheduleEvent(*reactor_, ReactorEventType::ScrubStep,
                          epochEnd_);
    }
}

void
ChannelScheduler::scheduleEpochTail()
{
    scheduleEvent(*reactor_, ReactorEventType::FuseEpoch, epochEnd_);
    if (db_ != nullptr) {
        scheduleEvent(*reactor_, ReactorEventType::EvictPressure,
                      epochEnd_);
        // Idle instrument time funds background maintenance, as idle
        // slots did under the barrier scheduler.
        const double capacity =
            static_cast<double>(config_.instruments) *
            (epochEnd_ - epochWall_);
        const double busy = reactor_->busySeconds() - epochBusyStart_;
        if (busy + kEpochSlack < capacity)
            scheduleEvent(*reactor_, ReactorEventType::ScrubStep,
                          epochEnd_);
    }
}

void
ChannelScheduler::onProbeComplete(const ReactorEvent &event)
{
    const std::size_t c = event.channel;
    const double dur = channels_[c]->roundDuration();
    if (config_.reactor.mode == ReactorMode::Pipelined) {
        // Block until this probe's computation finished; every other
        // ordering decision was already fixed at dispatch.
        cq_->wait(event.ticket);
        const ChannelProbe &probe = pipeProbes_[channelSlot_[c]];
        lastProbeTick_[c] = static_cast<int64_t>(tick_);
        ++probeCounts_[c];
        fleetAuth_.observe(c, probe.verdict);
        round_.probes.push_back(probe);
        reactor_->releaseInstrument(dur);
        phase_[c] = ChannelPhase::Idle;
        requestBoost_[c] = 0;
        if (hook_ != nullptr)
            hook_->onProbeObserved(c, probe.verdict, event.vtime);
        // The freed instrument goes straight to the next ranked
        // channel whose round still fits — the saturation win over
        // the barrier scheduler.
        tryDispatch(event.vtime);
        return;
    }
    const ChannelProbe &probe = round_.probes[event.ticket];
    lastProbeTick_[c] = static_cast<int64_t>(tick_);
    ++probeCounts_[c];
    fleetAuth_.observe(c, probe.verdict);
    reactor_->releaseInstrument(dur);
    phase_[c] = ChannelPhase::Idle;
    requestBoost_[c] = 0;
    if (hook_ != nullptr)
        hook_->onProbeObserved(c, probe.verdict, event.vtime);
}

void
ChannelScheduler::onFuseEpoch(const ReactorEvent &event)
{
    round_.fused = fleetAuth_.evaluate(tick_);
    lastVerdict_ = round_.fused;
    epochFused_ = true;
    if (hook_ != nullptr)
        hook_->onEpochFused(round_.fused, event.vtime);
}

void
ChannelScheduler::onEvictPressure(const ReactorEvent &event)
{
    (void)event;
    enforceResidentBudget(static_cast<int64_t>(tick_));
}

void
ChannelScheduler::onScrubStep(const ReactorEvent &event)
{
    // One shard gets a scrub pass, repairing any single-bank damage
    // while the siblings are still healthy. Channels whose records
    // turn out damaged in both banks are fenced off right here rather
    // than at their next probe.
    const store::ScrubResult scrub = db_->scrubStep();
    tmScrubTicks_.add();
    for (const std::string &id : scrub.lostIds) {
        const auto it = nameIndex_.find(id);
        if (it == nameIndex_.end())
            continue;
        const std::size_t i = it->second;
        if (channels_[i]->state() == AuthState::PendingReenroll)
            continue;
        demoteToPendingReenroll(i, event.vtime);
        scheduleEvent(*reactor_, ReactorEventType::FaultEvent,
                      event.vtime, i);
    }
    if (scrub.unreadable) {
        // The whole shard image yielded nothing recoverable, so
        // channels routed to it have lost their stored enrollment;
        // fence them now rather than letting each discover the damage
        // at its next probe. A record still pending in the
        // journal-backed overlay is not lost, so only channels the db
        // can no longer serve are demoted.
        const auto sit = shardChannels_.find(scrub.shard);
        if (sit == shardChannels_.end())
            return;
        for (const std::size_t i : sit->second) {
            if (channels_[i]->state() == AuthState::PendingReenroll)
                continue;
            store::EnrollmentRecord rec;
            if (db_->get(channels_[i]->name(), rec) !=
                store::DbGetStatus::Ok) {
                demoteToPendingReenroll(i, event.vtime);
                scheduleEvent(*reactor_, ReactorEventType::FaultEvent,
                              event.vtime, i);
            }
        }
    }
}

FleetRound
ChannelScheduler::tick()
{
    if (!calibrated_)
        divot_fatal("fleet tick() before calibrateAll()");

    const bool pipelined =
        config_.reactor.mode == ReactorMode::Pipelined;
    const double epochLen = tickDuration();
    epochWall_ = epochLen * static_cast<double>(tick_);
    epochEnd_ = epochWall_ + epochLen;
    epochBusyStart_ = reactor_->busySeconds();
    round_ = FleetRound();
    round_.tick = tick_;
    epochFused_ = false;
    probesLaunched_ = false;
    epochReady_.clear();
    pipeProbes_.clear();
    epochSeeded_ = 0;

    SpanScope span = telemetry_->tracer().open("fleet.tick", "fleet",
                                               epochWall_, tick_);

    // Service requests admitted since the last epoch wait at the head
    // of the queue (the previous epoch drained everything else).
    // Consume them before ranking so their boosts steer this epoch's
    // dispatch; immediate kinds complete right here, because arrival
    // handlers schedule RequestComplete events this same loop drains.
    while (!reactor_->empty())
        handleEvent(reactor_->pop());

    if (pipelined) {
        SpanScope epochSpan = telemetry_->tracer().open(
            "fleet.reactor.epoch", "reactor", epochWall_, tick_);
        // Seed one dispatch chain per instrument; each chain keeps
        // its instrument busy until no ranked candidate fits in the
        // epoch anymore.
        for (std::size_t k = 0; k < config_.instruments; ++k) {
            if (!tryDispatch(epochWall_))
                break;
            ++epochSeeded_;
        }
        for (;;) {
            if (reactor_->empty()) {
                if (epochFused_)
                    break;
                scheduleEpochTail();
            }
            handleEvent(reactor_->pop());
        }
        epochSpan.close(epochEnd_, 0);
    } else {
        const std::vector<std::size_t> selected = selectChannels();
        epochSeeded_ = selected.size();
        for (std::size_t j = 0; j < selected.size(); ++j) {
            const std::size_t c = selected[j];
            phase_[c] = ChannelPhase::Hydrating;
            // Lane routing follows the store shard (shard % K), so a
            // lane's queue aligns with its shard-cache partition; the
            // ticket carries the selection position for the staged
            // outcome slot.
            scheduleEvent(laneCount_ > 1 ? *laneReactors_[laneOf(c)]
                                         : *reactor_,
                          ReactorEventType::HydrateRequest,
                          epochWall_, c, /*ticket=*/j);
        }
        if (laneCount_ > 1)
            hydrateLanes(selected);
        // Hydrations consume in ascending channel order (equal vtime,
        // ascending seq); the queue then runs dry and the probe batch
        // + epoch tail launch in the pre-reactor operation order.
        for (;;) {
            if (reactor_->empty()) {
                if (epochFused_)
                    break;
                if (!probesLaunched_)
                    launchBarrierProbes();
                else
                    scheduleEpochTail();
            }
            handleEvent(reactor_->pop());
        }
    }

    tmTicks_.add();
    tmProbes_.add(round_.probes.size());
    tmInstrumentSlots_.add(config_.instruments);
    const std::size_t used =
        pipelined ? std::min(config_.instruments, epochSeeded_)
                  : round_.probes.size();
    tmIdleSlots_.add(config_.instruments - used);
    (round_.fused.busTrusted ? tmTrusted_ : tmUntrusted_).add();
    if (round_.fused.tamperAlarm)
        tmAlarms_.add();
    if (round_.fused.busTrusted != lastTrusted_) {
        tmTrustFlips_.add();
        TelemetryEvent event;
        event.time = epochWall_;
        event.ordinal = tick_;
        event.kind = "fleet.trust";
        event.tag = "fleet";
        event.detail = round_.fused.busTrusted
            ? "untrusted->trusted" : "trusted->untrusted";
        telemetry_->events().record(std::move(event));
    }
    lastTrusted_ = round_.fused.busTrusted;
    elapsed_ = epochEnd_;
    const int64_t util = reactor_->utilizationPerMille(elapsed_);
    tmUtilization_.set(util);
    tmIdleSlotPermille_.set(1000 - util);
    span.close(epochEnd_, 0);

    ++tick_;
    FleetRound result = std::move(round_);
    return result;
}

std::size_t
ChannelScheduler::findChannel(const std::string &name) const
{
    const auto it = nameIndex_.find(name);
    return it == nameIndex_.end() ? kNoChannel : it->second;
}

void
ChannelScheduler::scheduleRequestArrival(std::size_t channel,
                                         uint64_t ticket)
{
    scheduleEvent(*reactor_, ReactorEventType::RequestArrival,
                  elapsed_, channel, ticket);
}

void
ChannelScheduler::scheduleRequestComplete(std::size_t channel,
                                          uint64_t ticket, double vtime)
{
    scheduleEvent(*reactor_, ReactorEventType::RequestComplete, vtime,
                  channel, ticket);
}

void
ChannelScheduler::boostChannel(std::size_t index)
{
    if (index >= requestBoost_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, requestBoost_.size());
    requestBoost_[index] += kRequestBoost;
}

bool
ChannelScheduler::persistEnrollment(std::size_t index)
{
    if (db_ == nullptr)
        return false;
    if (!persistChannel(index)) {
        reactor_->dispatchImmediate(ReactorEventType::FaultEvent,
                                    elapsed_, index);
        return false;
    }
    return true;
}

uint64_t
ChannelScheduler::enrollmentGeneration(std::size_t index) const
{
    if (index >= generations_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, generations_.size());
    return generations_[index];
}

FleetRound
ChannelScheduler::run(std::size_t rounds)
{
    FleetRound last;
    for (std::size_t r = 0; r < rounds; ++r)
        last = tick();
    return last;
}

BusChannel &
ChannelScheduler::channel(std::size_t index)
{
    if (index >= channels_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, channels_.size());
    return *channels_[index];
}

const BusChannel &
ChannelScheduler::channel(std::size_t index) const
{
    if (index >= channels_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, channels_.size());
    return *channels_[index];
}

uint64_t
ChannelScheduler::probeCount(std::size_t index) const
{
    if (index >= probeCounts_.size())
        divot_fatal("fleet channel index %zu out of range (%zu)",
                    index, probeCounts_.size());
    return probeCounts_[index];
}

FleetCacheStats
ChannelScheduler::cacheStats() const
{
    FleetCacheStats stats;
    stats.totals.name = "fleet";
    stats.perChannel.reserve(channels_.size());
    for (const auto &channel : channels_) {
        const TraceCache &cache = channel->traceCache();
        ChannelCacheStats cs;
        cs.name = channel->name();
        cs.hits = cache.hits();
        cs.misses = cache.misses();
        cs.evictions = cache.evictions();
        stats.totals.hits += cs.hits;
        stats.totals.misses += cs.misses;
        stats.totals.evictions += cs.evictions;
        stats.perChannel.push_back(std::move(cs));
    }
    return stats;
}

} // namespace divot
