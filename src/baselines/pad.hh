/**
 * @file
 * Probe attempt detector (PAD) — Manich, Wamser & Sigl [40].
 *
 * A ring oscillator is multiplexed onto the victim wire; a contact
 * probe's tip capacitance (~1 pF) lowers the oscillation frequency,
 * which a counter detects against a calibrated threshold. Two honest
 * limitations from the paper:
 *
 *  - decode and surveillance modes cannot run concurrently, so the
 *    detector only sees an attack while it holds the bus (duty
 *    cycle), and every surveillance window steals bus time;
 *  - a non-contact EM probe adds essentially no load capacitance, so
 *    it is invisible to the RO.
 */

#ifndef DIVOT_BASELINES_PAD_HH
#define DIVOT_BASELINES_PAD_HH

#include "baselines/baseline.hh"

namespace divot {

/** PAD electrical/operating parameters. */
struct PadParams
{
    double wireCapacitance = 10e-12;   //!< victim wire C, farad
    double probeCapacitance = 1e-12;   //!< typical probe tip C, farad
    double emProbeCapacitance = 5e-15; //!< parasitic C of an EM probe
    double frequencyNoiseRel = 2e-3;   //!< RO frequency jitter (rel.)
    double detectSigmas = 4.0;         //!< alarm threshold in sigmas
    double surveillanceDuty = 0.10;    //!< fraction of time surveilling
};

/**
 * Ring-oscillator probe attempt detector.
 */
class ProbeAttemptDetector : public ProtectionBaseline
{
  public:
    explicit ProbeAttemptDetector(PadParams params = {});

    BaselineTraits traits() const override;
    double detectProbability(AttackKind kind, double severity,
                             std::size_t trials, Rng &rng) override;
    double identificationEer() const override { return -1.0; }

  private:
    PadParams params_;
};

} // namespace divot

#endif // DIVOT_BASELINES_PAD_HH
