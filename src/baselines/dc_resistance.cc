#include "baselines/dc_resistance.hh"

namespace divot {

DcResistanceMonitor::DcResistanceMonitor(DcMonitorParams params)
    : params_(params)
{
}

BaselineTraits
DcResistanceMonitor::traits() const
{
    return {"DC resistance (Paley)",
            /*runtimeConcurrent=*/false,
            /*integrable=*/true,
            /*locatesAttack=*/false,
            /*busTimeOverhead=*/params_.measureDuty};
}

double
DcResistanceMonitor::detectProbability(AttackKind kind, double severity,
                                       std::size_t trials, Rng &rng)
{
    double delta_r = 0.0;
    switch (kind) {
      case AttackKind::WireTap:
        delta_r = params_.tapResistanceDelta * severity;
        break;
      case AttackKind::ModuleSwap:
        // New module, new contact/bond resistances.
        delta_r = 2.0 * params_.tapResistanceDelta * severity;
        break;
      case AttackKind::ContactProbe:
        // A high-impedance probe draws no DC current: tiny effect.
        delta_r = 0.05 * params_.tapResistanceDelta * severity;
        break;
      case AttackKind::EmProbe:
        delta_r = 0.0;  // no galvanic contact at all
        break;
    }
    const double rel_shift = delta_r / params_.traceResistance;
    const double threshold =
        params_.detectSigmas * params_.measureNoiseRel;

    std::size_t hits = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        if (!rng.bernoulli(params_.measureDuty))
            continue;  // data was flowing; no measurement possible
        const double measured =
            rel_shift + rng.gaussian(0.0, params_.measureNoiseRel);
        if (measured > threshold)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(trials);
}

} // namespace divot
