/**
 * @file
 * Board-level input-impedance PUF — Zhang, Hennessy & Bhunia [78].
 *
 * Uses input-impedance variation across traces, measured offline with
 * a bench impedance analyzer, to detect counterfeit PCBs in the
 * supply chain. Honest limitations from the paper: no runtime
 * protection (the analyzer is bulky bench equipment) and lower
 * identification performance than RO/arbiter/Tx-line PUFs.
 */

#ifndef DIVOT_BASELINES_BOARD_PUF_HH
#define DIVOT_BASELINES_BOARD_PUF_HH

#include "baselines/baseline.hh"

namespace divot {

/** Board-PUF score-model parameters. */
struct BoardPufParams
{
    double genuineMean = 0.92;   //!< genuine similarity score mean
    double genuineSigma = 0.035; //!< genuine score spread
    double impostorMean = 0.72;  //!< impostor score mean (coarse
                                 //!< feature => high baseline overlap)
    double impostorSigma = 0.05; //!< impostor score spread
};

/**
 * Offline board-identification PUF.
 */
class BoardImpedancePuf : public ProtectionBaseline
{
  public:
    explicit BoardImpedancePuf(BoardPufParams params = {});

    BaselineTraits traits() const override;
    double detectProbability(AttackKind kind, double severity,
                             std::size_t trials, Rng &rng) override;
    double identificationEer() const override;

  private:
    BoardPufParams params_;
};

} // namespace divot

#endif // DIVOT_BASELINES_BOARD_PUF_HH
