#include "baselines/pad.hh"

#include <cmath>

namespace divot {

ProbeAttemptDetector::ProbeAttemptDetector(PadParams params)
    : params_(params)
{
}

BaselineTraits
ProbeAttemptDetector::traits() const
{
    return {"PAD (ring oscillator)",
            /*runtimeConcurrent=*/false,
            /*integrable=*/true,
            /*locatesAttack=*/false,
            /*busTimeOverhead=*/params_.surveillanceDuty};
}

double
ProbeAttemptDetector::detectProbability(AttackKind kind, double severity,
                                        std::size_t trials, Rng &rng)
{
    // RO frequency f ~ 1/C: a capacitance delta shifts frequency by
    // -dC/C relatively. Alarm when the shift clears the jitter-based
    // threshold. The attack is only visible during surveillance.
    double delta_c = 0.0;
    switch (kind) {
      case AttackKind::ContactProbe:
        delta_c = params_.probeCapacitance * severity;
        break;
      case AttackKind::WireTap:
        // A soldered tap wire loads far more than a probe tip.
        delta_c = 5.0 * params_.probeCapacitance * severity;
        break;
      case AttackKind::EmProbe:
        delta_c = params_.emProbeCapacitance * severity;
        break;
      case AttackKind::ModuleSwap:
        // The RO sees the new module's input C; swap with same-model
        // silicon changes C only marginally.
        delta_c = 0.1 * params_.probeCapacitance * severity;
        break;
    }
    const double rel_shift = delta_c / params_.wireCapacitance;
    const double threshold =
        params_.detectSigmas * params_.frequencyNoiseRel;

    std::size_t hits = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        // Attack episode lands in a surveillance window with duty
        // probability; otherwise the detector was decoding and blind.
        if (!rng.bernoulli(params_.surveillanceDuty))
            continue;
        const double measured =
            rel_shift + rng.gaussian(0.0, params_.frequencyNoiseRel);
        if (measured > threshold)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(trials);
}

} // namespace divot
