#include "baselines/baseline.hh"

namespace divot {

const char *
attackKindName(AttackKind kind)
{
    switch (kind) {
      case AttackKind::ContactProbe: return "contact-probe";
      case AttackKind::EmProbe: return "em-probe";
      case AttackKind::WireTap: return "wire-tap";
      case AttackKind::ModuleSwap: return "module-swap";
    }
    return "?";
}

} // namespace divot
