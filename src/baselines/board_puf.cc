#include "baselines/board_puf.hh"

#include <cmath>

#include "util/math.hh"

namespace divot {

BoardImpedancePuf::BoardImpedancePuf(BoardPufParams params)
    : params_(params)
{
}

BaselineTraits
BoardImpedancePuf::traits() const
{
    return {"Board impedance PUF (Zhang)",
            /*runtimeConcurrent=*/false,
            /*integrable=*/false,  // bench impedance analyzer
            /*locatesAttack=*/false,
            /*busTimeOverhead=*/1.0};  // offline only: bus unusable
                                       // during the measurement
}

double
BoardImpedancePuf::detectProbability(AttackKind kind, double severity,
                                     std::size_t trials, Rng &rng)
{
    // Offline technique: a runtime attack episode is simply never
    // observed. Only a module swap that persists until the *next*
    // offline audit can be caught, and only with the PUF's
    // identification power. Model one audit per episode.
    if (kind != AttackKind::ModuleSwap)
        return 0.0;

    // Audit: score the foreign board against the stored identity.
    // Detected when the score falls below the EER threshold.
    const double threshold = 0.5 *
        (params_.genuineMean + params_.impostorMean);
    std::size_t hits = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        const double score = params_.impostorMean +
            (1.0 - severity) * (params_.genuineMean -
                                params_.impostorMean) +
            rng.gaussian(0.0, params_.impostorSigma);
        if (score < threshold)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(trials);
}

double
BoardImpedancePuf::identificationEer() const
{
    // For two Gaussians the EER is Phi(-d'/2) with
    // d' = (mu_g - mu_i) / sqrt((s_g^2 + s_i^2)/2).
    const double pooled = std::sqrt(
        0.5 * (params_.genuineSigma * params_.genuineSigma +
               params_.impostorSigma * params_.impostorSigma));
    const double dprime =
        (params_.genuineMean - params_.impostorMean) / pooled;
    return normalCdf(-0.5 * dprime);
}

} // namespace divot
