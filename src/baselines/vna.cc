#include "baselines/vna.hh"

#include "txline/lattice.hh"

namespace divot {

VnaIipReference::VnaIipReference(VnaParams params)
    : params_(params)
{
}

BaselineTraits
VnaIipReference::traits() const
{
    return {"VNA IIP (Wei)",
            /*runtimeConcurrent=*/false,
            /*integrable=*/false,
            /*locatesAttack=*/true,
            /*busTimeOverhead=*/1.0};  // bench instrument owns the line
}

double
VnaIipReference::detectProbability(AttackKind kind, double severity,
                                   std::size_t trials, Rng &rng)
{
    (void)trials;
    (void)rng;
    (void)severity;
    // Offline: runtime episodes pass unobserved, like the board PUF;
    // persistent changes are caught essentially surely at the next
    // bench measurement thanks to the gold-standard fidelity.
    switch (kind) {
      case AttackKind::WireTap:
      case AttackKind::ModuleSwap:
        return 1.0;  // permanent IIP change, certain at next audit
      case AttackKind::ContactProbe:
      case AttackKind::EmProbe:
        return 0.0;  // transient: gone before anyone wheels in a VNA
    }
    return 0.0;
}

Waveform
VnaIipReference::measure(const TransmissionLine &line, Rng &rng) const
{
    Waveform prof = idealReflectionProfile(line);
    for (std::size_t i = 0; i < prof.size(); ++i)
        prof[i] += rng.gaussian(0.0, params_.noiseFloor);
    return prof;
}

} // namespace divot
