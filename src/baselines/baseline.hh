/**
 * @file
 * Common interface for the related-work countermeasures DIVOT is
 * compared against in Section V. Each baseline is an honest small
 * model of the published technique's sensing physics and operating
 * constraints, so the comparison bench can reproduce the paper's
 * qualitative capability matrix *and* put numbers on it.
 */

#ifndef DIVOT_BASELINES_BASELINE_HH
#define DIVOT_BASELINES_BASELINE_HH

#include <string>

#include "util/rng.hh"

namespace divot {

/** Attack classes used across the comparison. */
enum class AttackKind
{
    ContactProbe,  //!< metal probe touching a trace (adds pF load)
    EmProbe,       //!< non-contact magnetic/EM probe
    WireTap,       //!< soldered tap wire
    ModuleSwap,    //!< cold boot / Trojan module replacement
};

/** Operating constraints of a technique. */
struct BaselineTraits
{
    std::string name;
    bool runtimeConcurrent;  //!< monitors during live data transfers
    bool integrable;         //!< fits in chip interface logic
    bool locatesAttack;      //!< reports attack position
    double busTimeOverhead;  //!< fraction of bus time stolen from data
};

/**
 * A physical-attack countermeasure under comparison.
 */
class ProtectionBaseline
{
  public:
    virtual ~ProtectionBaseline() = default;

    /** @return static capability/constraint description. */
    virtual BaselineTraits traits() const = 0;

    /**
     * Monte-Carlo probability of detecting one attack episode.
     *
     * @param kind     attack class
     * @param severity normalized attack strength in (0, 1]; 1 is the
     *                 paper-typical magnitude for that class
     * @param trials   Monte-Carlo repetitions
     * @param rng      random stream
     */
    virtual double detectProbability(AttackKind kind, double severity,
                                     std::size_t trials, Rng &rng) = 0;

    /**
     * Identification equal error rate when the technique is used as a
     * PUF to distinguish boards/lines (negative when the technique
     * cannot identify at all).
     */
    virtual double identificationEer() const = 0;
};

/** @return printable attack-kind name. */
const char *attackKindName(AttackKind kind);

} // namespace divot

#endif // DIVOT_BASELINES_BASELINE_HH
