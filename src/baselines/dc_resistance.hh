/**
 * @file
 * DC trace-resistance monitor — Paley, Hoque & Bhunia [45].
 *
 * Measures the copper resistance of PCB traces to detect physical
 * tampering. Honest limitations from the paper: the measurement needs
 * a *quiescent* trace (data transfer must stop), it cannot work on
 * AC-coupled links, and DC resistance is insensitive to EM-field
 * probes (no galvanic contact, no resistance change).
 */

#ifndef DIVOT_BASELINES_DC_RESISTANCE_HH
#define DIVOT_BASELINES_DC_RESISTANCE_HH

#include "baselines/baseline.hh"

namespace divot {

/** DC monitor parameters. */
struct DcMonitorParams
{
    double traceResistance = 0.5;     //!< ohms of the victim trace
    double measureNoiseRel = 5e-3;    //!< measurement noise (relative)
    double detectSigmas = 4.0;        //!< alarm threshold in sigmas
    double tapResistanceDelta = 0.02; //!< added ohms from a solder tap
    double measureDuty = 0.05;        //!< fraction of time measuring
                                      //!< (data halted meanwhile)
};

/**
 * DC resistance tamper monitor.
 */
class DcResistanceMonitor : public ProtectionBaseline
{
  public:
    explicit DcResistanceMonitor(DcMonitorParams params = {});

    BaselineTraits traits() const override;
    double detectProbability(AttackKind kind, double severity,
                             std::size_t trials, Rng &rng) override;
    double identificationEer() const override { return -1.0; }

  private:
    DcMonitorParams params_;
};

} // namespace divot

#endif // DIVOT_BASELINES_DC_RESISTANCE_HH
