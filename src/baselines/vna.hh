/**
 * @file
 * VNA-based IIP reader — Wei & Huang [69].
 *
 * The precursor of DIVOT: extracts the same IIP fingerprint but with
 * a bench vector network analyzer. Measurement fidelity is excellent
 * (it is the accuracy upper bound for iTDR reconstructions), but the
 * instrument is expensive bench equipment: no runtime operation, no
 * integration into interface logic.
 */

#ifndef DIVOT_BASELINES_VNA_HH
#define DIVOT_BASELINES_VNA_HH

#include "baselines/baseline.hh"
#include "signal/waveform.hh"
#include "txline/txline.hh"

namespace divot {

/** VNA model parameters. */
struct VnaParams
{
    double noiseFloor = 5e-6;  //!< residual trace noise, volts RMS
    double bandwidthHz = 20e9; //!< instrument bandwidth
};

/**
 * Offline gold-standard IIP reader.
 */
class VnaIipReference : public ProtectionBaseline
{
  public:
    explicit VnaIipReference(VnaParams params = {});

    BaselineTraits traits() const override;
    double detectProbability(AttackKind kind, double severity,
                             std::size_t trials, Rng &rng) override;
    double identificationEer() const override { return 1e-6; }

    /**
     * Measure a line's reflection profile at VNA fidelity: the ideal
     * profile plus only the instrument noise floor. Benches compare
     * iTDR reconstructions against this.
     */
    Waveform measure(const TransmissionLine &line, Rng &rng) const;

  private:
    VnaParams params_;
};

} // namespace divot

#endif // DIVOT_BASELINES_VNA_HH
