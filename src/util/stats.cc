#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace divot {

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        divot_panic("Histogram: bad range [%g,%g) or bins=%zu",
                    lo, hi, bins);
    width_ = (hi_ - lo_) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    long idx = static_cast<long>(std::floor((x - lo_) / width_));
    idx = std::max(0L, std::min(idx, static_cast<long>(bins()) - 1));
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

void
Histogram::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::density(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
        (static_cast<double>(total_) * width_);
}

std::vector<std::pair<double, double>>
Histogram::series() const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(bins());
    for (std::size_t i = 0; i < bins(); ++i)
        out.emplace_back(binCenter(i), density(i));
    return out;
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        divot_panic("quantile of empty vector");
    q = std::min(std::max(q, 0.0), 1.0);
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double t = pos - static_cast<double>(lo);
    return xs[lo] + t * (xs[hi] - xs[lo]);
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.size() < 2)
        divot_panic("pearson: size mismatch or too few samples");
    RunningStats sa, sb;
    sa.addAll(a);
    sb.addAll(b);
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
    cov /= static_cast<double>(a.size() - 1);
    const double denom = sa.stddev() * sb.stddev();
    if (denom == 0.0)
        return 0.0;
    return cov / denom;
}

} // namespace divot
