#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "util/logging.hh"

namespace divot {

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("DIVOT_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
        divot_warn("ignoring invalid DIVOT_THREADS value '%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : threadCount_(threads > 0 ? threads : defaultThreadCount())
{
    // A single-thread pool runs everything inline in parallelFor and
    // on one worker in submit; still spawn the worker so submit works.
    workers_.reserve(threadCount_);
    for (unsigned i = 0; i < threadCount_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            // Keep the worker alive: the error surfaces at the next
            // drain() instead of terminating the process.
            recordError(std::current_exception());
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                allDone_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            divot_panic("submit on a stopping ThreadPool");
        queue_.push_back(std::move(task));
        ++pending_;
        tmTasks_.add();
        tmQueueDepthMax_.max(static_cast<int64_t>(queue_.size()));
    }
    taskReady_.notify_one();
}

void
ThreadPool::attachTelemetry(Telemetry *telemetry,
                            const std::string &prefix)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (telemetry == nullptr || !telemetry->enabled()) {
        tmTasks_ = Counter();
        tmParallelFors_ = Counter();
        tmParallelItems_ = Counter();
        tmQueueDepthMax_ = Gauge();
        tmWorkers_ = Gauge();
        return;
    }
    Registry &reg = telemetry->registry();
    tmTasks_ = reg.counter(prefix + ".tasks",
                           MetricStability::Unstable);
    // Execution-shape accounting, like queue depth: the number of
    // parallelFor fan-outs depends on how work is partitioned (e.g.
    // the reactor lane count), not on what the fleet computed, so the
    // counts stay out of the stable deterministic export.
    tmParallelFors_ = reg.counter(prefix + ".parallel_for.calls",
                                  MetricStability::Unstable);
    tmParallelItems_ = reg.counter(prefix + ".parallel_for.items",
                                   MetricStability::Unstable);
    tmQueueDepthMax_ = reg.gauge(prefix + ".queue_depth.max",
                                 MetricStability::Unstable);
    tmWorkers_ = reg.gauge(prefix + ".workers",
                           MetricStability::Unstable);
    tmWorkers_.set(threadCount_);
}

void
ThreadPool::recordError(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!firstError_)
        firstError_ = std::move(error);
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::drain()
{
    wait();
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        error = std::exchange(firstError_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    tmParallelFors_.add();
    tmParallelItems_.add(n);
    if (threadCount_ <= 1 || n == 1) {
        // Serial reference path: same bodies, same order, no pool.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto next = std::make_shared<std::atomic<std::size_t>>(0);

    const std::size_t runners =
        std::min<std::size_t>(threadCount_, n);
    for (std::size_t r = 0; r < runners; ++r) {
        submit([this, n, next, &body] {
            for (;;) {
                const std::size_t i =
                    next->fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    body(i);
                } catch (...) {
                    // Record but keep claiming indices: every body
                    // runs even when an early one fails, matching the
                    // serial path's side effects as closely as
                    // possible before the error is rethrown.
                    recordError(std::current_exception());
                }
            }
        });
    }
    drain();
}

} // namespace divot
