#include "util/completion_queue.hh"

#include <utility>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

CompletionQueue::CompletionQueue(ThreadPool &pool) : pool_(pool) {}

CompletionQueue::~CompletionQueue()
{
    // Tasks capture `this`; letting the queue die with work in flight
    // would hand workers a dangling pointer.
    drainAll();
}

void
CompletionQueue::finish(Ticket ticket, std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Slot &slot = slots_[ticket];
    slot.done = true;
    slot.error = std::move(error);
    --inFlight_;
    // Notify while still holding the lock: the destructor's drainAll
    // may be waiting on completed_, and an unlocked notify could touch
    // the condition variable after drainAll observed inFlight_ == 0
    // and let the queue die.
    completed_.notify_all();
}

CompletionQueue::Ticket
CompletionQueue::submit(std::function<void()> task)
{
    Ticket ticket = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ticket = nextTicket_++;
        slots_.emplace(ticket, Slot{});
        ++inFlight_;
        tmSubmitted_.add();
        tmInFlightMax_.max(static_cast<int64_t>(inFlight_));
    }
    pool_.submit([this, ticket, task = std::move(task)] {
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        finish(ticket, std::move(error));
    });
    return ticket;
}

CompletionQueue::Ticket
CompletionQueue::submitSerial(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return 0;
    Ticket first = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        first = nextTicket_;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            slots_.emplace(nextTicket_++, Slot{});
            ++inFlight_;
        }
        tmSubmitted_.add(tasks.size());
        tmInFlightMax_.max(static_cast<int64_t>(inFlight_));
    }
    pool_.submit([this, first, tasks = std::move(tasks)] {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            std::exception_ptr error;
            try {
                tasks[i]();
            } catch (...) {
                error = std::current_exception();
            }
            finish(first + i, std::move(error));
        }
    });
    return first;
}

void
CompletionQueue::wait(Ticket ticket)
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto it = slots_.find(ticket);
        if (it == slots_.end()) {
            divot_fatal("CompletionQueue::wait on unknown ticket %llu "
                        "(never issued, or waited twice)",
                        static_cast<unsigned long long>(ticket));
        }
        completed_.wait(lock, [&] { return it->second.done; });
        error = std::move(it->second.error);
        slots_.erase(it);
        tmWaits_.add();
    }
    if (error)
        std::rethrow_exception(error);
}

void
CompletionQueue::drainAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    completed_.wait(lock, [this] { return inFlight_ == 0; });
}

uint64_t
CompletionQueue::issued() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextTicket_ - 1;
}

std::size_t
CompletionQueue::outstanding() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

void
CompletionQueue::attachTelemetry(Telemetry *telemetry,
                                 const std::string &prefix)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (telemetry == nullptr || !telemetry->enabled()) {
        tmSubmitted_ = Counter();
        tmWaits_ = Counter();
        tmInFlightMax_ = Gauge();
        return;
    }
    Registry &reg = telemetry->registry();
    tmSubmitted_ = reg.counter(prefix + ".submitted");
    tmWaits_ = reg.counter(prefix + ".waits");
    tmInFlightMax_ = reg.gauge(prefix + ".inflight.max",
                               MetricStability::Unstable);
}

} // namespace divot
