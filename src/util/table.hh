/**
 * @file
 * Console table and CSV emission used by every bench binary so that
 * the regenerated figure/table data is consistently formatted.
 */

#ifndef DIVOT_UTIL_TABLE_HH
#define DIVOT_UTIL_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace divot {

/**
 * A simple column-aligned text table with an optional title, rendered
 * to any ostream. Cells are strings; numeric helpers format doubles.
 */
class Table
{
  public:
    /** @param title heading printed above the table (may be empty). */
    explicit Table(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of pre-formatted cells (must match column count). */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 6);

    /** Format a double in scientific notation. */
    static std::string sci(double v, int precision = 3);

    /** Render the table, column aligned, to os. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (no alignment padding) to os. */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows added. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Emit an (x, y) series in a gnuplot-friendly two-column block with a
 * "# name" comment header. Used for figure-series bench output.
 */
void printSeries(std::ostream &os, const std::string &name,
                 const std::vector<std::pair<double, double>> &series);

} // namespace divot

#endif // DIVOT_UTIL_TABLE_HH
