#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

namespace {

/** splitmix64 — seed expander recommended by the xoshiro authors. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Marsaglia polar method: no trig, well-behaved tails.
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cachedNormal_ = v * m;
    hasCachedNormal_ = true;
    return u * m;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    if (bound == 0)
        divot_panic("uniformInt bound must be > 0");
    // Lemire-style rejection to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

uint64_t
Rng::binomial(uint64_t n, double p)
{
    // Degenerate cases consume no draws (part of the reproducibility
    // contract: a caller skipping saturated probabilities sees the
    // same stream as one passing them through).
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    // Symmetry reduction keeps the inversion walk short: sample the
    // failure count when successes are the majority.
    if (p > 0.5)
        return n - binomial(n, 1.0 - p);

    if (n <= binomialInversionCutoff) {
        // Exact CDF inversion against one uniform draw (the walk
        // itself is the shared, draw-free binomialInvert).
        return binomialInvert(uniform(), n, p);
    }

    // Large n: normal cutoff — round the matched-moment Gaussian and
    // clamp into [0, n]. One gaussian() draw, O(1) work; the O(1/n)
    // moment error is far below APC reconstruction noise at the trial
    // counts that reach this branch.
    const double mean = static_cast<double>(n) * p;
    const double sd = std::sqrt(mean * (1.0 - p));
    const double draw = std::floor(mean + sd * gaussian() + 0.5);
    if (draw <= 0.0)
        return 0;
    if (draw >= static_cast<double>(n))
        return n;
    return static_cast<uint64_t>(draw);
}

uint64_t
Rng::binomialInvert(double u, uint64_t n, double p)
{
    // Walk the pmf via the recurrence
    //   pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
    // until the cumulative mass passes the uniform draw.
    const double odds = p / (1.0 - p);
    // pmf(0) = (1-p)^n by exponentiation-by-squaring: pure IEEE
    // multiplies, so the value (and hence the stream) cannot
    // drift with libm versions. p <= 1/2 here, so q >= 1/2 and
    // q^n underflows only at astronomically unlikely inputs (the
    // walk then returns a tail value, still in range).
    double pmf = 1.0;
    double q_pow = 1.0 - p;
    for (uint64_t e = n; e != 0; e >>= 1) {
        if (e & 1)
            pmf *= q_pow;
        q_pow *= q_pow;
    }
    double cum = pmf;
    uint64_t k = 0;
    while (cum <= u && k < n) {
        pmf *= odds * static_cast<double>(n - k) /
            static_cast<double>(k + 1);
        cum += pmf;
        ++k;
    }
    return k;
}

Rng
Rng::forkStable(uint64_t tag) const
{
    // Mix the full 256-bit state with the tag through splitmix64
    // rounds. No state advances, so the derivation commutes with any
    // interleaving of other forks/draws on this generator.
    uint64_t h = tag ^ 0x9e3779b97f4a7c15ULL;
    for (uint64_t word : s_) {
        uint64_t chain = h ^ word;
        h = splitmix64(chain);
    }
    return Rng(h);
}

Rng
Rng::fork(uint64_t tag)
{
    // Hash the child tag together with fresh output from this stream so
    // that (a) children with different tags differ and (b) successive
    // forks with the same tag differ.
    uint64_t mix = next() ^ (tag * 0xd6e8feb86659fd93ULL);
    return Rng(mix);
}

void
Rng::gaussianVector(std::vector<double> &out)
{
    gaussianVector(out.data(), out.size());
}

void
Rng::gaussianVector(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = gaussian();
}

} // namespace divot
