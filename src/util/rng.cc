#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

namespace {

/** splitmix64 — seed expander recommended by the xoshiro authors. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1)
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Marsaglia polar method: no trig, well-behaved tails.
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cachedNormal_ = v * m;
    hasCachedNormal_ = true;
    return u * m;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    if (bound == 0)
        divot_panic("uniformInt bound must be > 0");
    // Lemire-style rejection to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::forkStable(uint64_t tag) const
{
    // Mix the full 256-bit state with the tag through splitmix64
    // rounds. No state advances, so the derivation commutes with any
    // interleaving of other forks/draws on this generator.
    uint64_t h = tag ^ 0x9e3779b97f4a7c15ULL;
    for (uint64_t word : s_) {
        uint64_t chain = h ^ word;
        h = splitmix64(chain);
    }
    return Rng(h);
}

Rng
Rng::fork(uint64_t tag)
{
    // Hash the child tag together with fresh output from this stream so
    // that (a) children with different tags differ and (b) successive
    // forks with the same tag differ.
    uint64_t mix = next() ^ (tag * 0xd6e8feb86659fd93ULL);
    return Rng(mix);
}

void
Rng::gaussianVector(std::vector<double> &out)
{
    for (auto &x : out)
        x = gaussian();
}

} // namespace divot
