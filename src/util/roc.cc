#include "util/roc.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/math.hh"
#include "util/stats.hh"

namespace divot {

double
RocAnalysis::fprAt(double threshold) const
{
    // FPR(th) = P(impostor score >= th) is a right-continuous step
    // function that changes only at observed scores. The curve is
    // sorted by decreasing threshold: the operating point for `th` is
    // the last curve point whose threshold is still >= th.
    double fpr = 0.0;
    for (const auto &pt : curve) {
        if (pt.threshold >= threshold)
            fpr = pt.falsePositiveRate;
        else
            break;
    }
    return fpr;
}

double
RocAnalysis::thresholdForFpr(double fpr) const
{
    double best = curve.empty() ? 0.0 : curve.front().threshold;
    for (const auto &pt : curve) {
        if (pt.falsePositiveRate <= fpr)
            best = pt.threshold;
        else
            break;
    }
    return best;
}

RocAnalysis
analyzeRoc(const std::vector<double> &genuine,
           const std::vector<double> &impostor)
{
    if (genuine.empty() || impostor.empty())
        divot_panic("analyzeRoc: empty population (g=%zu, i=%zu)",
                    genuine.size(), impostor.size());

    // Merge all scores as candidate thresholds, descending. Sweeping
    // from the highest threshold down, both acceptance rates increase
    // monotonically, which yields the exact empirical ROC.
    std::vector<double> g = genuine, im = impostor;
    std::sort(g.begin(), g.end(), std::greater<double>());
    std::sort(im.begin(), im.end(), std::greater<double>());

    std::vector<double> thresholds;
    thresholds.reserve(g.size() + im.size() + 1);
    thresholds.insert(thresholds.end(), g.begin(), g.end());
    thresholds.insert(thresholds.end(), im.begin(), im.end());
    std::sort(thresholds.begin(), thresholds.end(),
              std::greater<double>());
    thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                     thresholds.end());

    RocAnalysis out;
    out.curve.reserve(thresholds.size() + 1);

    const double ng = static_cast<double>(g.size());
    const double ni = static_cast<double>(im.size());
    std::size_t gi = 0, ii = 0;

    // Start above every score: nothing accepted.
    out.curve.push_back({thresholds.empty() ? 1.0
                         : thresholds.front() + 1.0, 0.0, 0.0});

    for (double th : thresholds) {
        while (gi < g.size() && g[gi] >= th)
            ++gi;
        while (ii < im.size() && im[ii] >= th)
            ++ii;
        out.curve.push_back({th,
                             static_cast<double>(ii) / ni,
                             static_cast<double>(gi) / ng});
    }

    // EER: point where FPR == FNR (FNR = 1 - TPR). Interpolate between
    // the two bracketing operating points.
    out.eer = 1.0;
    out.eerThreshold = 0.0;
    for (std::size_t k = 0; k < out.curve.size(); ++k) {
        const auto &pt = out.curve[k];
        const double fnr = 1.0 - pt.truePositiveRate;
        if (pt.falsePositiveRate >= fnr) {
            if (k == 0) {
                out.eer = 0.5 * (pt.falsePositiveRate + fnr);
                out.eerThreshold = pt.threshold;
            } else {
                const auto &prev = out.curve[k - 1];
                const double fnrPrev = 1.0 - prev.truePositiveRate;
                const double d1 = fnrPrev - prev.falsePositiveRate;
                const double d2 = pt.falsePositiveRate - fnr;
                const double t = (d1 + d2) > 0 ? d1 / (d1 + d2) : 0.5;
                out.eer = prev.falsePositiveRate +
                    t * (pt.falsePositiveRate - prev.falsePositiveRate);
                out.eerThreshold = prev.threshold +
                    t * (pt.threshold - prev.threshold);
            }
            break;
        }
    }

    // AUC by trapezoid over the FPR axis.
    out.auc = 0.0;
    for (std::size_t k = 1; k < out.curve.size(); ++k) {
        const double dx = out.curve[k].falsePositiveRate -
            out.curve[k - 1].falsePositiveRate;
        const double ym = 0.5 * (out.curve[k].truePositiveRate +
                                 out.curve[k - 1].truePositiveRate);
        out.auc += dx * ym;
    }
    // Close the curve to (1,1) if the largest threshold never accepts
    // everything.
    if (!out.curve.empty()) {
        const auto &last = out.curve.back();
        out.auc += (1.0 - last.falsePositiveRate) *
            0.5 * (1.0 + last.truePositiveRate);
    }
    return out;
}

double
decidabilityIndex(const std::vector<double> &genuine,
                  const std::vector<double> &impostor)
{
    RunningStats sg, si;
    sg.addAll(genuine);
    si.addAll(impostor);
    const double pooled =
        std::sqrt(0.5 * (sg.variance() + si.variance()));
    if (pooled == 0.0)
        return std::numeric_limits<double>::infinity();
    return std::fabs(sg.mean() - si.mean()) / pooled;
}

double
gaussianFitEer(const std::vector<double> &genuine,
               const std::vector<double> &impostor)
{
    const double dprime = decidabilityIndex(genuine, impostor);
    if (std::isinf(dprime))
        return 0.0;
    return normalCdf(-0.5 * dprime);
}

} // namespace divot
