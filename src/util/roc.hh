/**
 * @file
 * Receiver-operating-characteristic analysis for the authentication
 * experiments (Fig. 7b). Given genuine and impostor similarity scores,
 * computes the ROC curve, the equal error rate (EER), the area under
 * the curve, and the decision threshold at a requested false-positive
 * rate.
 *
 * Convention (matching the paper): a *genuine* score comes from
 * re-measuring the same Tx-line; an *impostor* score comes from a
 * different Tx-line. Scores are similarities in [0,1]; accepting means
 * score >= threshold. A false positive accepts an impostor; a false
 * negative rejects a genuine measurement.
 */

#ifndef DIVOT_UTIL_ROC_HH
#define DIVOT_UTIL_ROC_HH

#include <cstddef>
#include <vector>

namespace divot {

/** One operating point on a ROC curve. */
struct RocPoint
{
    double threshold;          //!< decision threshold on the score
    double falsePositiveRate;  //!< impostors accepted / impostors
    double truePositiveRate;   //!< genuines accepted / genuines
};

/** Result bundle of a ROC analysis. */
struct RocAnalysis
{
    std::vector<RocPoint> curve;  //!< sorted by decreasing threshold
    double eer;                   //!< equal error rate
    double eerThreshold;          //!< threshold achieving the EER
    double auc;                   //!< area under the ROC curve

    /** @return the false-positive rate at the given threshold. */
    double fprAt(double threshold) const;

    /** @return smallest threshold whose FPR does not exceed fpr. */
    double thresholdForFpr(double fpr) const;
};

/**
 * Analyze genuine vs impostor score populations.
 *
 * @param genuine   similarity scores of matching pairs
 * @param impostor  similarity scores of non-matching pairs
 * @return full ROC analysis; panics if either population is empty
 */
RocAnalysis analyzeRoc(const std::vector<double> &genuine,
                       const std::vector<double> &impostor);

/**
 * Decidability index d' = |mu_g - mu_i| / sqrt((var_g + var_i)/2),
 * a scale-free separation measure between the two score populations.
 */
double decidabilityIndex(const std::vector<double> &genuine,
                         const std::vector<double> &impostor);

/**
 * Gaussian-fit EER estimate Phi(-d'/2): the equal error rate two
 * equal-variance normal score populations with the measured d' would
 * exhibit. Resolves EERs far below the 1/N empirical floor, which is
 * how sub-basis-point rates are compared against the paper's numbers
 * without millions of samples.
 */
double gaussianFitEer(const std::vector<double> &genuine,
                      const std::vector<double> &impostor);

} // namespace divot

#endif // DIVOT_UTIL_ROC_HH
