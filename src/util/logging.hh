/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Prints the message and aborts (core dump friendly).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Prints and exits(1).
 * warn()   — something is suspicious but the run continues.
 * inform() — status messages with no connotation of incorrectness.
 */

#ifndef DIVOT_UTIL_LOGGING_HH
#define DIVOT_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace divot {

/** Severity levels used by the message sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Route a formatted message to the log sink.
 *
 * @param level severity of the message
 * @param fmt   printf-style format string
 */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Internal invariant violated — print and abort. Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Unrecoverable user error — print and exit(1). Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Suppress or restore non-fatal log output. Benches use this to keep
 * their stdout tables clean.
 *
 * @param quiet true silences Inform/Warn messages
 */
void setLogQuiet(bool quiet);

/** @return true when Inform/Warn output is currently suppressed. */
bool logQuiet();

} // namespace divot

#define divot_panic(...) \
    ::divot::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define divot_fatal(...) \
    ::divot::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define divot_warn(...) \
    ::divot::logMessage(::divot::LogLevel::Warn, __VA_ARGS__)
#define divot_inform(...) \
    ::divot::logMessage(::divot::LogLevel::Inform, __VA_ARGS__)

#endif // DIVOT_UTIL_LOGGING_HH
