/**
 * @file
 * Reusable worker-thread pool for the measurement campaigns.
 *
 * The Monte-Carlo studies are embarrassingly parallel once every
 * measurement task owns its random stream (Rng::forkStable) and its
 * wall-clock slot is precomputed, so the pool is deliberately simple:
 * a work queue drained by persistent workers plus a parallelFor that
 * fans indexed tasks out and blocks until they complete. Determinism
 * is the caller's contract — tasks must write disjoint state and must
 * not share random streams — the pool itself adds no ordering
 * guarantees beyond completion.
 */

#ifndef DIVOT_UTIL_THREAD_POOL_HH
#define DIVOT_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hh"

namespace divot {

/**
 * Fixed-size pool of worker threads with a FIFO work queue.
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 resolves through
     *                defaultThreadCount() (the DIVOT_THREADS
     *                environment variable, else hardware concurrency)
     */
    explicit ThreadPool(unsigned threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Thread count a default-constructed pool uses: the DIVOT_THREADS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned defaultThreadCount();

    /** @return number of worker threads (>= 1). */
    unsigned threadCount() const { return threadCount_; }

    /**
     * Enqueue one task. The first exception escaping any task is
     * captured (the worker keeps running) and rethrown by the next
     * drain(); later exceptions before that drain are dropped —
     * matching parallelFor's first-error contract.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. A captured
     *  exception stays pending for drain(). */
    void wait();

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised since the last drain (clearing
     * it). Returns normally when no task threw.
     */
    void drain();

    /**
     * Run body(0..n-1) across the pool and block until all complete.
     * Indices are claimed dynamically, so bodies must be independent
     * (disjoint writes, no shared random streams). With a single
     * worker the loop runs inline on the calling thread — the serial
     * reference path used by the determinism tests. The first
     * exception thrown by a body is rethrown here after all workers
     * drain.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Attach a telemetry sink under `prefix`. parallelFor call/item
     * counts are Stable (thread-count-invariant); submitted-task
     * counts, queue-depth high-water, and the worker count depend on
     * scheduling and register as Unstable, so they never enter the
     * deterministic export. Pass nullptr to detach. Not owned; must
     * outlive the pool.
     */
    void attachTelemetry(Telemetry *telemetry,
                         const std::string &prefix = "pool");

  private:
    unsigned threadCount_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0;  //!< queued + running tasks
    bool stopping_ = false;
    std::exception_ptr firstError_;  //!< first task exception since
                                     //!< the last drain()

    /** @name Telemetry plumbing (inert until attachTelemetry). */
    ///@{
    Counter tmTasks_;          //!< Unstable: runner tasks scale with
                               //!< the worker count
    Counter tmParallelFors_;   //!< Stable call count
    Counter tmParallelItems_;  //!< Stable total indices dispatched
    Gauge tmQueueDepthMax_;    //!< Unstable high-water mark
    Gauge tmWorkers_;          //!< Unstable worker count
    ///@}

    void workerLoop();
    void recordError(std::exception_ptr error);
};

} // namespace divot

#endif // DIVOT_UTIL_THREAD_POOL_HH
