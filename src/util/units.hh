/**
 * @file
 * Physical unit constants. The simulator works in SI internally
 * (seconds, meters, ohms, volts); these constants make configuration
 * code read like the paper ("11.16 ps phase step", "25 cm line",
 * "156.25 MHz clock").
 */

#ifndef DIVOT_UTIL_UNITS_HH
#define DIVOT_UTIL_UNITS_HH

namespace divot {
namespace units {

// --- time ---
constexpr double second = 1.0;
constexpr double ms = 1e-3;
constexpr double us = 1e-6;
constexpr double ns = 1e-9;
constexpr double ps = 1e-12;

// --- frequency ---
constexpr double Hz = 1.0;
constexpr double kHz = 1e3;
constexpr double MHz = 1e6;
constexpr double GHz = 1e9;

// --- distance ---
constexpr double meter = 1.0;
constexpr double cm = 1e-2;
constexpr double mm = 1e-3;
constexpr double um = 1e-6;

// --- electrical ---
constexpr double ohm = 1.0;
constexpr double volt = 1.0;
constexpr double mV = 1e-3;
constexpr double uV = 1e-6;

/**
 * Typical EM propagation velocity on FR-4 PCB traces, ~15 cm/ns
 * (paper, Section II-D).
 */
constexpr double pcbVelocity = 0.15 / 1e-9;  // m/s

} // namespace units
} // namespace divot

#endif // DIVOT_UTIL_UNITS_HH
