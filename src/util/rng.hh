/**
 * @file
 * Deterministic, seedable random-number generation.
 *
 * Every stochastic component of the simulator draws from an Rng object
 * so that experiments are exactly reproducible given a seed. The core
 * generator is xoshiro256++ (public domain, Blackman & Vigna), chosen
 * for speed and quality; distribution transforms are implemented on
 * top of it so results do not depend on the C++ standard library's
 * unspecified distribution algorithms.
 */

#ifndef DIVOT_UTIL_RNG_HH
#define DIVOT_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace divot {

/**
 * Seedable pseudo-random generator with the distribution draws the
 * simulator needs (uniform, Gaussian, integer ranges).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return next raw 64-bit value. Defined inline (with uniform())
     *  so hot draw loops — the SIMD strobe kernels consume one
     *  uniform per non-degenerate lane — pay no call overhead. */
    uint64_t next()
    {
        const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double uniform()
    {
        // 53 high bits -> double in [0,1)
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * @return standard normal draw (Box-Muller with caching; exact
     * distribution independent of platform libm quirks).
     */
    double gaussian();

    /** @return normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** @return uniform integer in [0, bound) ; bound must be > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** @return true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * Draw from Binomial(n, p) — the number of successes in n
     * independent trials of probability p. This is the analytic
     * strobe engine's workhorse: one binomial draw replaces n
     * Gaussian draws in the APC hot loop.
     *
     * The algorithm selection is fixed (not platform- or
     * libm-version-adaptive) so streams are reproducible: degenerate
     * cases (n == 0, p <= 0, p >= 1) consume no draws; p > 1/2 is
     * mapped to n - Binomial(n, 1-p); small n uses exact CDF
     * inversion (one uniform, pmf recurrence); large n uses the
     * rounded-and-clamped normal cutoff approximation (one Gaussian).
     * The small/large seam is `binomialInversionCutoff`.
     *
     * @param n number of trials
     * @param p per-trial success probability (clamped to [0,1])
     */
    uint64_t binomial(uint64_t n, double p);

    /** Largest n served by exact CDF inversion in binomial(). */
    static constexpr uint64_t binomialInversionCutoff = 64;

    /**
     * The exact CDF-inversion walk of binomial() given a pre-drawn
     * uniform: pmf(0) = (1-p)^n by exponentiation-by-squaring, then
     * the recurrence pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p) until
     * the cumulative mass passes u. Pure IEEE multiplies/divides in a
     * fixed order, so the result cannot drift with libm versions —
     * the vectorized strobe kernels mirror these operations lane-wise
     * and therefore reproduce this function bit for bit.
     *
     * Preconditions: 0 < p <= 1/2, 1 <= n <= binomialInversionCutoff.
     */
    static uint64_t binomialInvert(double u, uint64_t n, double p);

    /**
     * Fork a child generator whose stream is independent of this one.
     * Used to give every Tx-line / iTDR its own stream so adding a
     * component never perturbs another component's draws.
     *
     * @param tag arbitrary domain-separation tag
     */
    Rng fork(uint64_t tag);

    /**
     * Derive a child generator from this generator's *current state*
     * and the tag, without advancing this stream. Unlike fork(),
     * repeated calls with the same tag return identical children, and
     * the derivation is independent of how many other children were
     * created in between — the property that lets parallel measurement
     * tasks seed themselves from (line, wire, repetition) indices and
     * still reproduce the serial run bit-for-bit.
     *
     * @param tag domain-separation tag; distinct tags give streams
     *            that are independent for all practical purposes
     */
    Rng forkStable(uint64_t tag) const;

    /** Fill a vector with standard normal draws. */
    void gaussianVector(std::vector<double> &out);

    /**
     * Fill a raw buffer with standard normal draws — the
     * allocation-free form strobe batching uses. Consumes exactly the
     * same draws as n scalar gaussian() calls.
     */
    void gaussianVector(double *out, std::size_t n);

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace divot

#endif // DIVOT_UTIL_RNG_HH
