/**
 * @file
 * CompletionQueue — deterministic completion ordering on top of the
 * ThreadPool.
 *
 * parallelFor's barrier contract ("everything finished") is too
 * coarse for an event-driven consumer: the fleet reactor needs to
 * consume *individual* probe completions in an order that is a pure
 * function of (seed, config), never of which worker finished first.
 * The queue provides exactly that seam: submission hands back a
 * monotonically increasing Ticket, the pool executes tasks in
 * whatever order scheduling allows, and wait(ticket) blocks until
 * that one task is done — so the caller, not the scheduler, chooses
 * the consumption order, and any exception a task raised is rethrown
 * at its own wait() instead of racing for a shared first-error slot.
 *
 * Determinism contract: Ticket values depend only on the submission
 * sequence (serial, caller-side). A consumer that waits tickets in a
 * deterministic order therefore observes results, side effects it
 * reads after the wait, and exceptions in a deterministic order at
 * any worker count. Tasks themselves must still follow the repo's
 * disjoint-write / forkStable discipline.
 *
 * submitSerial() covers the fleet's cross-channel kernel batching:
 * the supplied tasks run back-to-back in one pool task (sharing
 * caches and SoA arenas), yet each gets its own Ticket that completes
 * as its slice finishes — so batched and per-task submission are
 * indistinguishable to the consumer and to stable telemetry.
 */

#ifndef DIVOT_UTIL_COMPLETION_QUEUE_HH
#define DIVOT_UTIL_COMPLETION_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.hh"

namespace divot {

class ThreadPool;

/**
 * Ordered-completion facade over a borrowed ThreadPool.
 */
class CompletionQueue
{
  public:
    /** Identifies one submitted task; assigned serially from 1. */
    using Ticket = uint64_t;

    /** @param pool borrowed; must outlive the queue. */
    explicit CompletionQueue(ThreadPool &pool);

    ~CompletionQueue();

    CompletionQueue(const CompletionQueue &) = delete;
    CompletionQueue &operator=(const CompletionQueue &) = delete;

    /**
     * Run `task` on the pool.
     *
     * @return the task's ticket, strictly greater than every ticket
     *         returned before it
     */
    Ticket submit(std::function<void()> task);

    /**
     * Run `tasks` back-to-back inside one pool task (one worker, in
     * order — the batched-execution path). Every task still gets its
     * own consecutive ticket, marked done as its slice completes.
     *
     * @return the first task's ticket (task i holds ticket
     *         return + i); 0 when `tasks` is empty
     */
    Ticket submitSerial(std::vector<std::function<void()>> tasks);

    /**
     * Block until `ticket`'s task has finished, then forget it. If
     * the task threw, its exception is rethrown here (exactly once).
     * Waiting on a never-issued or already-waited ticket is fatal —
     * it would deadlock, and a deterministic consumer never does it.
     */
    void wait(Ticket ticket);

    /** Block until every outstanding ticket's task has finished.
     *  Exceptions stay parked on their tickets (fetch with wait()). */
    void drainAll();

    /** @return tickets issued so far. */
    uint64_t issued() const;

    /** @return tickets not yet waited on. */
    std::size_t outstanding() const;

    /**
     * Attach a telemetry sink under `prefix`. Submitted/waited counts
     * are Stable (pure functions of the caller's submission
     * sequence); the in-flight high-water mark depends on scheduling
     * and registers as Unstable. Pass nullptr to detach. Not owned;
     * must outlive the queue.
     */
    void attachTelemetry(Telemetry *telemetry,
                         const std::string &prefix = "cq");

  private:
    struct Slot
    {
        bool done = false;
        std::exception_ptr error;
    };

    ThreadPool &pool_;
    mutable std::mutex mutex_;
    std::condition_variable completed_;
    std::unordered_map<Ticket, Slot> slots_;
    Ticket nextTicket_ = 1;
    std::size_t inFlight_ = 0; //!< submitted, not yet finished

    Counter tmSubmitted_;   //!< Stable: caller-side submission count
    Counter tmWaits_;       //!< Stable: completed waits
    Gauge tmInFlightMax_;   //!< Unstable high-water mark

    void finish(Ticket ticket, std::exception_ptr error);
};

} // namespace divot

#endif // DIVOT_UTIL_COMPLETION_QUEUE_HH
