#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace divot {

namespace {

bool quietFlag = false;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list ap)
{
    if (quietFlag &&
        (level == LogLevel::Inform || level == LogLevel::Warn)) {
        return;
    }
    std::fprintf(stderr, "[%s] ", levelTag(level));
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(level, fmt, ap);
    va_end(ap);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "[panic] %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "[fatal] %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

} // namespace divot
