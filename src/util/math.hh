/**
 * @file
 * Numerical helpers: the standard normal CDF and its inverse, linear
 * interpolation grids, and small conveniences used across the library.
 *
 * The inverse normal CDF (Acklam's rational approximation refined with
 * one Halley step) is the workhorse of analog-to-probability
 * conversion: Eq. (2) of the paper reconstructs V_sig from a measured
 * probability through CDF^{-1}.
 */

#ifndef DIVOT_UTIL_MATH_HH
#define DIVOT_UTIL_MATH_HH

#include <cstddef>
#include <vector>

namespace divot {

/** Standard normal cumulative distribution function Phi(x). */
double normalCdf(double x);

/**
 * Phi(z) with the APC's exact +-8 sigma saturation: past 8 sigma the
 * tail mass (< 1e-15) is unobservable at any realistic trial count,
 * and the saturated value must be an *exact* 0.0 / 1.0 — a binomial
 * draw at a saturated probability consumes no random draw, so an
 * almost-0 would silently desynchronize the stream. This is the
 * single definition both the scalar strobe path and the scalar SIMD
 * kernel share.
 */
inline double
normalCdfSaturated(double z)
{
    return z <= -8.0 ? 0.0 : z >= 8.0 ? 1.0 : normalCdf(z);
}

/**
 * Batched Phi-with-saturation over a lane of z-scores: p[i] =
 * normalCdfSaturated(z[i]). The scalar reference the vectorized
 * strobe kernels are ULP-tested against.
 */
void normalCdfSaturatedLane(const double *z, double *p, std::size_t n);

/** Standard normal probability density function phi(x). */
double normalPdf(double x);

/**
 * Inverse standard normal CDF.
 *
 * @param p probability in (0, 1); values at or beyond the open
 *          interval are clamped to a tiny epsilon away from 0/1 so
 *          that saturated APC counters yield large-but-finite voltages.
 * @return x such that Phi(x) = p
 */
double normalInvCdf(double p);

/**
 * Evenly spaced grid of n points covering [lo, hi] inclusive.
 * n == 1 yields {lo}.
 */
std::vector<double> linspace(double lo, double hi, std::size_t n);

/** Clamp x into [lo, hi]. */
double clampTo(double x, double lo, double hi);

/** Linear interpolation of tabulated (xs, ys) at x; clamps at ends. */
double interpLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys, double x);

/** Greatest common divisor of two positive integers. */
unsigned long long gcdU64(unsigned long long a, unsigned long long b);

/** @return true when a and b are coprime (gcd == 1). */
bool coprime(unsigned long long a, unsigned long long b);

/**
 * Invert a monotone increasing function on [lo, hi] by bisection.
 *
 * Used to invert the PDM mixture CDF, which has no closed form.
 *
 * @param f       monotone non-decreasing callable double->double
 * @param target  value to invert
 * @param lo,hi   bracketing interval
 * @param iters   bisection iterations (53 gives full double precision)
 */
template <typename F>
double
invertMonotone(F &&f, double target, double lo, double hi,
               int iters = 80)
{
    double a = lo, b = hi;
    for (int i = 0; i < iters; ++i) {
        const double mid = 0.5 * (a + b);
        if (f(mid) < target)
            a = mid;
        else
            b = mid;
    }
    return 0.5 * (a + b);
}

} // namespace divot

#endif // DIVOT_UTIL_MATH_HH
