/**
 * @file
 * Lightweight statistics: running moments, histograms, quantiles.
 * All experiment drivers accumulate their measurements through these
 * so every bench reports from the same, tested code path.
 */

#ifndef DIVOT_UTIL_STATS_HH
#define DIVOT_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace divot {

/**
 * Numerically stable running mean / variance / extrema (Welford).
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold a whole vector of samples. */
    void addAll(const std::vector<double> &xs);

    /** @return number of samples folded so far. */
    std::size_t count() const { return n_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** @return sample standard deviation. */
    double stddev() const;

    /** @return smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** @return largest sample seen (-inf when empty). */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;

  public:
    RunningStats();
};

/**
 * Fixed-range histogram with uniform bins, matching the paper's
 * distribution plots (Figs. 7a, 8).
 */
class Histogram
{
  public:
    /**
     * @param lo    lower edge of the histogram range
     * @param hi    upper edge (must be > lo)
     * @param bins  number of uniform bins (>0)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample; out-of-range samples clamp to the edge bins. */
    void add(double x);

    /** Add every sample of a vector. */
    void addAll(const std::vector<double> &xs);

    /** @return count in bin i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** @return center x value of bin i. */
    double binCenter(std::size_t i) const;

    /** @return number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** @return total number of samples added. */
    std::size_t total() const { return total_; }

    /** @return density (count / total / width) for bin i. */
    double density(std::size_t i) const;

    /**
     * Render as a two-column series (center, density) for bench output.
     */
    std::vector<std::pair<double, double>> series() const;

  private:
    double lo_, hi_, width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/** @return the q-quantile (0<=q<=1) of xs by linear interpolation. */
double quantile(std::vector<double> xs, double q);

/** Pearson correlation of two equal-length vectors. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

} // namespace divot

#endif // DIVOT_UTIL_STATS_HH
