#include "util/math.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace divot {

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x * M_SQRT1_2);
}

void
normalCdfSaturatedLane(const double *z, double *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        p[i] = normalCdfSaturated(z[i]);
}

double
normalPdf(double x)
{
    static const double invSqrt2Pi = 0.3989422804014327;
    return invSqrt2Pi * std::exp(-0.5 * x * x);
}

double
normalInvCdf(double p)
{
    // Clamp: saturated probabilities map to large finite quantiles.
    const double eps = 1e-300;
    p = clampTo(p, eps, 1.0 - 1e-16);

    // Acklam's rational approximation.
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00 };
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01 };
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00 };
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00 };

    const double plow = 0.02425;
    const double phigh = 1.0 - plow;
    double x;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
            ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    } else if (p <= phigh) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0]*r + a[1])*r + a[2])*r + a[3])*r + a[4])*r + a[5])*q /
            (((((b[0]*r + b[1])*r + b[2])*r + b[3])*r + b[4])*r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
            ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    }

    // One Halley refinement step brings the error near machine epsilon.
    const double e = normalCdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

std::vector<double>
linspace(double lo, double hi, std::size_t n)
{
    std::vector<double> out(n);
    if (n == 0)
        return out;
    if (n == 1) {
        out[0] = lo;
        return out;
    }
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = lo + step * static_cast<double>(i);
    return out;
}

double
clampTo(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

double
interpLinear(const std::vector<double> &xs, const std::vector<double> &ys,
             double x)
{
    if (xs.size() != ys.size() || xs.empty())
        divot_panic("interpLinear: mismatched or empty tables");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    const std::size_t lo = hi - 1;
    const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return ys[lo] + t * (ys[hi] - ys[lo]);
}

unsigned long long
gcdU64(unsigned long long a, unsigned long long b)
{
    while (b != 0) {
        const unsigned long long t = a % b;
        a = b;
        b = t;
    }
    return a;
}

bool
coprime(unsigned long long a, unsigned long long b)
{
    return gcdU64(a, b) == 1;
}

} // namespace divot
