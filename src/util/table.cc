#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace divot {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        divot_panic("Table row has %zu cells; header has %zu",
                    row.size(), header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::setprecision(precision) << v;
    return ss.str();
}

std::string
Table::sci(double v, int precision)
{
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(precision) << v;
    return ss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

void
printSeries(std::ostream &os, const std::string &name,
            const std::vector<std::pair<double, double>> &series)
{
    os << "# " << name << "\n";
    for (const auto &[x, y] : series)
        os << x << " " << y << "\n";
    os << "\n";
}

} // namespace divot
