#include "store/codec.hh"

#include <cstring>
#include <optional>

namespace divot::store {

uint64_t
fnv1a(const char *data, std::size_t n)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t
fnv1a(const std::vector<char> &bytes)
{
    return fnv1a(bytes.data(), bytes.size());
}

void
putU64(std::vector<char> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::vector<char> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putString(std::vector<char> &out, const std::string &s)
{
    putU64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

void
putWaveform(std::vector<char> &out, const Waveform &w)
{
    putF64(out, w.dt());
    putF64(out, w.startTime());
    putU64(out, w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        putF64(out, w[i]);
}

bool
ByteReader::u64(uint64_t &v)
{
    if (pos_ + 8 > n_)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
}

bool
ByteReader::f64(double &v)
{
    uint64_t bits;
    if (!u64(bits))
        return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
}

bool
ByteReader::str(std::string &s)
{
    uint64_t len;
    if (!u64(len) || len > remaining())
        return false;
    s.assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return true;
}

bool
ByteReader::waveform(Waveform &w)
{
    double dt, t0;
    uint64_t n;
    if (!f64(dt) || !f64(t0) || !u64(n))
        return false;
    if (n > 0 && dt <= 0.0)
        return false;
    if (n > (1ull << 32) || n * 8 > remaining())
        return false;
    if (n == 0) {
        w = Waveform();
        return true;
    }
    std::vector<double> samples(n);
    for (auto &x : samples) {
        if (!f64(x))
            return false;
    }
    w = Waveform(dt, std::move(samples), t0);
    return true;
}

bool
ByteReader::raw(std::vector<char> &out, uint64_t len)
{
    if (len > remaining())
        return false;
    out.assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return true;
}

bool
ByteReader::skip(uint64_t len)
{
    if (len > remaining())
        return false;
    pos_ += len;
    return true;
}

std::size_t
EnrollmentRecord::residentBytes() const
{
    return sizeof(EnrollmentRecord) + id.size() + fp.label().size() +
           8 * (fp.raw().size() + fp.residual().size() +
                nominal.size());
}

std::vector<char>
encodeRecordBody(const EnrollmentRecord &record)
{
    std::vector<char> body;
    putString(body, record.id);
    putString(body, record.fp.label());
    putWaveform(body, record.fp.raw());
    putWaveform(body, record.fp.residual());
    putWaveform(body, record.nominal);
    putU64(body, record.flags);
    putU64(body, record.generation);
    return body;
}

bool
decodeRecordBody(const std::vector<char> &body, EnrollmentRecord &out)
{
    ByteReader br(body);
    EnrollmentRecord rec;
    std::string label;
    Waveform raw, residual;
    if (!br.str(rec.id) || !br.str(label) || !br.waveform(raw) ||
        !br.waveform(residual) || !br.waveform(rec.nominal) ||
        !br.u64(rec.flags) || !br.u64(rec.generation) || !br.done()) {
        return false;
    }
    if (raw.empty())
        return false; // a record must carry a usable fingerprint
    rec.fp = Fingerprint::fromParts(std::move(raw), std::move(residual),
                                    std::move(label));
    out = std::move(rec);
    return true;
}

namespace {

/** Payload = record count, then per record [bodyLen][body][crc]. */
std::vector<char>
buildPayload(const std::map<std::string, EnrollmentRecord> &records)
{
    std::vector<char> payload;
    putU64(payload, records.size());
    for (const auto &[id, record] : records) {
        const std::vector<char> body = encodeRecordBody(record);
        putU64(payload, body.size());
        payload.insert(payload.end(), body.begin(), body.end());
        putU64(payload, fnv1a(body));
    }
    return payload;
}

/** Result of a lenient frame walk over one bank's payload bytes. */
struct WalkResult
{
    uint64_t declaredCount = 0; //!< leading count field (0 if absent)
    std::vector<std::optional<EnrollmentRecord>> records; //!< by index
    std::vector<RecordDamage> damaged;
    bool clean = false; //!< every frame verified and walk consumed all
};

/**
 * Walk a payload's record frames, recovering every record whose CRC
 * verifies. Damage is localized: a bad CRC with plausible framing
 * skips to the next frame; implausible framing ends the walk (frames
 * cannot be resynchronized without their length prefix).
 */
WalkResult
walkPayload(const char *data, std::size_t n)
{
    WalkResult result;
    ByteReader pr(data, n);
    if (!pr.u64(result.declaredCount))
        return result;

    bool all_ok = true;
    for (uint64_t index = 0;; ++index) {
        if (pr.done())
            break;
        const uint64_t offset = pr.pos();
        uint64_t body_len = 0;
        // Overflow-safe frame guard: body_len comes straight from the
        // medium, so a rotted length near 2^64 must not wrap the sum
        // past the real bound.
        if (!pr.u64(body_len) || pr.remaining() < 8 ||
            body_len > pr.remaining() - 8) {
            RecordDamage dmg;
            dmg.index = index;
            dmg.offset = offset;
            result.damaged.push_back(std::move(dmg));
            all_ok = false;
            break; // framing lost: cannot locate the next record
        }
        std::vector<char> body;
        uint64_t crc = 0;
        pr.raw(body, body_len);
        pr.u64(crc);

        EnrollmentRecord rec;
        if (fnv1a(body) == crc && decodeRecordBody(body, rec)) {
            result.records.push_back(std::move(rec));
            continue;
        }
        RecordDamage dmg;
        dmg.index = index;
        dmg.offset = offset;
        // Best-effort id for the report: the id string leads the body
        // and often survives a corruption that lands elsewhere.
        ByteReader br(body);
        std::string maybe_id;
        if (br.str(maybe_id))
            dmg.id = std::move(maybe_id);
        result.damaged.push_back(std::move(dmg));
        result.records.emplace_back(std::nullopt);
        all_ok = false;
    }
    result.clean = all_ok && pr.done() &&
                   result.records.size() == result.declaredCount;
    return result;
}

struct BankSpan
{
    bool located = false;
    std::size_t offset = 0;
    std::size_t length = 0;
    bool crcOk = false;
};

uint64_t
readU64At(const std::vector<char> &bytes, std::size_t pos)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(bytes[pos + i]))
             << (8 * i);
    }
    return v;
}

/**
 * Locate a bank's payload span. Header fields are used when they are
 * self-consistent; otherwise the span falls back to the structural
 * midpoint (both banks carry the same payload, so an undamaged image
 * always splits evenly between the two 24-byte frames).
 */
BankSpan
locateBank(const std::vector<char> &bytes, bool bank_b)
{
    BankSpan span;
    if (bytes.size() < 2 * kBankHeaderSize)
        return span;
    const std::size_t body = bytes.size() - 2 * kBankHeaderSize;
    const std::size_t expected = body / 2;

    uint64_t magic_ver, len, crc;
    if (!bank_b) {
        magic_ver = readU64At(bytes, 0);
        len = readU64At(bytes, 8);
        crc = readU64At(bytes, 16);
    } else {
        const std::size_t t = bytes.size() - kBankHeaderSize;
        crc = readU64At(bytes, t);
        len = readU64At(bytes, t + 8);
        magic_ver = readU64At(bytes, t + 16);
    }

    const bool header_ok =
        (magic_ver & 0xffffffffu) == kStoreMagic &&
        (magic_ver >> 32) == kShardVersion && len <= body;
    span.length = header_ok ? static_cast<std::size_t>(len) : expected;
    span.offset = bank_b ? bytes.size() - kBankHeaderSize - span.length
                         : kBankHeaderSize;
    if (span.offset < kBankHeaderSize ||
        span.offset + span.length > bytes.size() - kBankHeaderSize) {
        return span;
    }
    span.located = true;
    span.crcOk = header_ok &&
                 fnv1a(bytes.data() + span.offset, span.length) == crc;
    return span;
}

} // namespace

std::vector<char>
buildShardImage(const std::map<std::string, EnrollmentRecord> &records)
{
    const std::vector<char> payload = buildPayload(records);
    const uint64_t magic_ver =
        (static_cast<uint64_t>(kShardVersion) << 32) | kStoreMagic;
    const uint64_t crc = fnv1a(payload);

    std::vector<char> image;
    image.reserve(2 * payload.size() + 2 * kBankHeaderSize);
    putU64(image, magic_ver);
    putU64(image, payload.size());
    putU64(image, crc);
    image.insert(image.end(), payload.begin(), payload.end());
    image.insert(image.end(), payload.begin(), payload.end());
    putU64(image, crc);
    putU64(image, payload.size());
    putU64(image, magic_ver);
    return image;
}

ShardParseReport
parseShardImage(const std::vector<char> &bytes,
                std::map<std::string, EnrollmentRecord> &out)
{
    ShardParseReport report;
    out.clear();
    if (bytes.size() < 2 * kBankHeaderSize) {
        report.detail = "image too short";
        return report;
    }

    const BankSpan a = locateBank(bytes, false);
    const BankSpan b = locateBank(bytes, true);
    // Bank health is reported independently of which bank serves the
    // read: the background scrub repairs latent standby-bank damage
    // long before the primary bank fails too.
    report.bankAHealthy = a.located && a.crcOk;
    report.bankBHealthy = b.located && b.crcOk;

    // Strict paths first: a verified whole-bank CRC means every record
    // inside is intact, so the walk is just deserialization.
    for (int bank = 0; bank < 2; ++bank) {
        const BankSpan &span = bank == 0 ? a : b;
        if (!span.located || !span.crcOk)
            continue;
        WalkResult walk =
            walkPayload(bytes.data() + span.offset, span.length);
        if (!walk.clean)
            continue; // CRC collision with mangled framing: salvage
        for (auto &rec : walk.records) {
            EnrollmentRecord r = std::move(*rec);
            out[r.id] = std::move(r);
        }
        report.ok = true;
        report.bankUsed = bank;
        report.fellBack = bank == 1;
        report.records = out.size();
        if (bank == 1)
            report.detail = "bank A damaged; recovered from bank B";
        return report;
    }

    // Salvage: both whole-bank checks failed. Recover per record from
    // both banks; index i of bank A is the same record as index i of
    // bank B, so a record is lost only when both frames are damaged.
    WalkResult wa;
    if (a.located)
        wa = walkPayload(bytes.data() + a.offset, a.length);
    WalkResult wb;
    if (b.located)
        wb = walkPayload(bytes.data() + b.offset, b.length);
    report.damagedA = wa.damaged;
    report.damagedB = wb.damaged;

    std::size_t slots =
        std::max(wa.records.size(), wb.records.size());
    // A torn/truncated image can lose trailing frames in both banks;
    // the declared record count (when sane in either bank) tells us
    // how many records existed so the loss is reported, not silent.
    // (The count field itself can be the corrupted byte, so cap how
    // far it may extend the report: a count wildly beyond what the
    // frames support is damage, not information.)
    const std::size_t sane_bound =
        slots + wa.damaged.size() + wb.damaged.size() + 64;
    for (const WalkResult *walk : {&wa, &wb}) {
        if (walk->declaredCount <= sane_bound)
            slots = std::max(
                slots, static_cast<std::size_t>(walk->declaredCount));
    }
    if (slots == 0 && wa.damaged.empty() && wb.damaged.empty()) {
        report.detail = "both banks unreadable";
        return report;
    }
    for (std::size_t i = 0; i < slots; ++i) {
        const std::optional<EnrollmentRecord> *pick = nullptr;
        if (i < wa.records.size() && wa.records[i].has_value())
            pick = &wa.records[i];
        else if (i < wb.records.size() && wb.records[i].has_value())
            pick = &wb.records[i];
        if (pick != nullptr) {
            EnrollmentRecord r = **pick;
            out[r.id] = std::move(r);
            continue;
        }
        RecordDamage dmg;
        dmg.index = i;
        for (const auto &list : {wa.damaged, wb.damaged}) {
            for (const RecordDamage &d : list) {
                if (d.index == i) {
                    dmg.offset = d.offset;
                    if (dmg.id.empty())
                        dmg.id = d.id;
                }
            }
        }
        report.unrecoverable.push_back(std::move(dmg));
    }

    report.ok = true;
    report.bankUsed = 2;
    report.fellBack = true;
    report.salvaged = true;
    report.records = out.size();
    report.detail = "both banks damaged; per-record salvage recovered " +
                    std::to_string(out.size()) + " records, lost " +
                    std::to_string(report.unrecoverable.size());
    return report;
}

int
findShardRecord(const std::vector<char> &bytes, const std::string &id,
                EnrollmentRecord &out)
{
    if (bytes.size() < 2 * kBankHeaderSize)
        return -1;
    bool damaged_hit = false;
    bool complete_walk = false;
    for (int bank = 0; bank < 2; ++bank) {
        const BankSpan span = locateBank(bytes, bank == 1);
        if (!span.located)
            continue;
        ByteReader pr(bytes.data() + span.offset, span.length);
        uint64_t count = 0;
        if (!pr.u64(count))
            continue;
        bool walked_all = true;
        while (!pr.done()) {
            uint64_t body_len = 0;
            // Overflow-safe: a rotted length field near 2^64 would
            // wrap `body_len + 8` past the bound and let the reader
            // below run off the shard buffer.
            if (!pr.u64(body_len) || pr.remaining() < 8 ||
                body_len > pr.remaining() - 8) {
                walked_all = false;
                break;
            }
            const char *body = bytes.data() + span.offset + pr.pos();
            if (!pr.skip(body_len)) {
                walked_all = false;
                break;
            }
            uint64_t crc = 0;
            pr.u64(crc);

            // Peek the id (leads the body) before paying for the CRC.
            ByteReader br(body, body_len);
            std::string rec_id;
            if (!br.str(rec_id)) {
                walked_all = false; // mangled frame: ids beyond are
                continue;           // still reachable via framing
            }
            if (rec_id != id)
                continue;
            if (fnv1a(body, body_len) == crc) {
                std::vector<char> copy(body, body + body_len);
                if (decodeRecordBody(copy, out))
                    return 1;
            }
            damaged_hit = true;
        }
        complete_walk = complete_walk || walked_all;
    }
    if (damaged_hit)
        return -1;
    return complete_walk ? 0 : -1;
}

namespace {

constexpr uint32_t kLegacyV1 = 1;
constexpr uint32_t kLegacyV2 = 2;

/** v1/v2 record body: [channel][label][raw][residual]. */
bool
decodeLegacyBody(ByteReader &br, EnrollmentRecord &out)
{
    EnrollmentRecord rec;
    std::string label;
    Waveform raw, residual;
    if (!br.str(rec.id) || !br.str(label) || !br.waveform(raw) ||
        !br.waveform(residual)) {
        return false;
    }
    if (raw.empty())
        return false;
    rec.fp = Fingerprint::fromParts(std::move(raw), std::move(residual),
                                    std::move(label));
    out = std::move(rec);
    return true;
}

/** Strict v2 bank payload: count, then [bodyLen][body][crc] frames. */
bool
parseLegacyPayload(const char *data, std::size_t n,
                   std::map<std::string, EnrollmentRecord> &out)
{
    ByteReader pr(data, n);
    uint64_t count = 0;
    if (!pr.u64(count))
        return false;
    std::map<std::string, EnrollmentRecord> loaded;
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t body_len = 0, crc = 0;
        std::vector<char> body;
        if (!pr.u64(body_len) || !pr.raw(body, body_len) ||
            !pr.u64(crc) || fnv1a(body) != crc) {
            return false;
        }
        ByteReader br(body);
        EnrollmentRecord rec;
        if (!decodeLegacyBody(br, rec) || !br.done())
            return false;
        loaded[rec.id] = std::move(rec);
    }
    if (!pr.done())
        return false;
    out = std::move(loaded);
    return true;
}

bool
parseLegacyV1(const std::vector<char> &bytes,
              std::map<std::string, EnrollmentRecord> &out)
{
    if (bytes.size() < 16)
        return false;
    ByteReader hr(bytes.data(), 16);
    uint64_t magic_ver = 0, checksum = 0;
    hr.u64(magic_ver);
    hr.u64(checksum);
    if ((magic_ver & 0xffffffffu) != kStoreMagic ||
        (magic_ver >> 32) != kLegacyV1) {
        return false;
    }
    if (fnv1a(bytes.data() + 16, bytes.size() - 16) != checksum)
        return false;

    // v1 records carry no per-record framing.
    ByteReader pr(bytes.data() + 16, bytes.size() - 16);
    uint64_t count = 0;
    if (!pr.u64(count))
        return false;
    std::map<std::string, EnrollmentRecord> loaded;
    for (uint64_t i = 0; i < count; ++i) {
        EnrollmentRecord rec;
        if (!decodeLegacyBody(pr, rec))
            return false;
        loaded[rec.id] = std::move(rec);
    }
    if (!pr.done())
        return false;
    out = std::move(loaded);
    return true;
}

bool
parseLegacyV2(const std::vector<char> &bytes,
              std::map<std::string, EnrollmentRecord> &out)
{
    if (bytes.size() < 2 * kBankHeaderSize)
        return false;

    // Bank A from the front.
    {
        uint64_t magic_ver = readU64At(bytes, 0);
        uint64_t len = readU64At(bytes, 8);
        uint64_t crc = readU64At(bytes, 16);
        if ((magic_ver & 0xffffffffu) == kStoreMagic &&
            (magic_ver >> 32) == kLegacyV2 &&
            len <= bytes.size() - kBankHeaderSize &&
            fnv1a(bytes.data() + kBankHeaderSize, len) == crc &&
            parseLegacyPayload(bytes.data() + kBankHeaderSize, len,
                               out)) {
            return true;
        }
    }

    // Bank B from the end, trailer fields reversed.
    const std::size_t t = bytes.size() - kBankHeaderSize;
    uint64_t crc = readU64At(bytes, t);
    uint64_t len = readU64At(bytes, t + 8);
    uint64_t magic_ver = readU64At(bytes, t + 16);
    if ((magic_ver & 0xffffffffu) != kStoreMagic ||
        (magic_ver >> 32) != kLegacyV2 ||
        len > bytes.size() - kBankHeaderSize) {
        return false;
    }
    const std::size_t payload_end = bytes.size() - kBankHeaderSize;
    if (payload_end < len)
        return false;
    if (fnv1a(bytes.data() + (payload_end - len), len) != crc)
        return false;
    return parseLegacyPayload(bytes.data() + (payload_end - len), len,
                              out);
}

} // namespace

int
parseLegacyImage(const std::vector<char> &bytes,
                 std::map<std::string, EnrollmentRecord> &out)
{
    if (parseLegacyV1(bytes, out))
        return 1;
    if (parseLegacyV2(bytes, out))
        return 2;
    return 0;
}

uint64_t
channelHash(const std::string &id)
{
    return fnv1a(id.data(), id.size());
}

} // namespace divot::store
