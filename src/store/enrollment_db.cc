#include "store/enrollment_db.hh"

#include <algorithm>
#include <cstdio>
#include <set>

#include "store/io.hh"
#include "util/logging.hh"

namespace divot::store {

namespace {

constexpr uint32_t kJournalMagic = 0x4C414A44; // "DJAL"
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpErase = 2;

/** Interpret a StorageFault as the WriteFault for one physical write. */
WriteFault
writeFaultFor(const StorageFault &fault, std::size_t bytes,
              bool is_commit)
{
    WriteFault wf;
    if (fault.torn) {
        double f = fault.tornFraction;
        if (f < 0.0)
            f = 0.0;
        if (f > 1.0)
            f = 1.0;
        wf.tornAfterBytes =
            static_cast<int64_t>(f * static_cast<double>(bytes));
    }
    if (fault.crash) {
        if (fault.crashPoint == StorageCrashPoint::BeforeWrite)
            wf.crashBeforeWrite = true;
        else if (is_commit &&
                 fault.crashPoint == StorageCrashPoint::BeforeCommit)
            wf.crashBeforeRename = true;
    }
    return wf;
}

/** @return true when the parse saw any damage at all. */
bool
imageDamaged(const ShardParseReport &report)
{
    return !report.ok || report.fellBack || report.salvaged ||
           !report.damagedA.empty() || !report.damagedB.empty() ||
           !report.bankAHealthy || !report.bankBHealthy;
}

/**
 * @return true when a damaged image yielded no records AND no
 * accounting of what was lost — either the parse failed outright or
 * the framing is so mangled the record count is unknowable. Rewriting
 * such an image would silently destroy every record it held while
 * reporting zero losses.
 */
bool
imageUnreadable(const ShardParseReport &report, std::size_t recovered)
{
    return imageDamaged(report) && recovered == 0 &&
           report.unrecoverable.empty();
}

} // namespace

EnrollmentDb::EnrollmentDb(EnrollmentDbConfig config)
    : config_(std::move(config))
{
    if (config_.shards == 0)
        config_.shards = 1;
    overlays_.resize(config_.shards);
    deferredImageSync_.assign(config_.shards, false);
    if (config_.shardCacheBytes > 0) {
        ShardCacheConfig cc;
        cc.budgetBytes = config_.shardCacheBytes;
        cc.shards = config_.shards;
        cc.lanes = config_.shardCacheLanes;
        cache_ = std::make_unique<ShardImageCache>(cc);
    }
}

std::string
EnrollmentDb::shardPath(unsigned shard) const
{
    return config_.directory + "/shard-" + std::to_string(shard) +
           ".bin";
}

std::string
EnrollmentDb::journalPath() const
{
    return config_.directory + "/journal.wal";
}

unsigned
EnrollmentDb::shardOf(const std::string &id) const
{
    return static_cast<unsigned>(channelHash(id) %
                                 config_.shards);
}

bool
EnrollmentDb::open()
{
    if (!dirExists(config_.directory)) {
        divot_warn("enrollment db directory '%s' does not exist",
                   config_.directory.c_str());
        return false;
    }
    opened_ = true;
    // Deferred image data syncs are legal only while the journal can
    // rebuild every image from scratch — i.e. no image predates this
    // journal. A fresh directory qualifies; reopening over existing
    // images (normal restart or crash recovery) conservatively does
    // not.
    journalCoversImages_ = true;
    for (unsigned s = 0; s < config_.shards && journalCoversImages_;
         ++s) {
        if (fileExists(shardPath(s)))
            journalCoversImages_ = false;
    }
    replayJournal();
    return true;
}

void
EnrollmentDb::attachFaultInjector(const FaultInjector *injector)
{
    injector_ = injector != nullptr && injector->hasStorageFaults()
        ? injector : nullptr;
}

void
EnrollmentDb::attachTelemetry(Telemetry *telemetry)
{
    if (telemetry == nullptr || !telemetry->enabled()) {
        telemetry_ = nullptr;
        return;
    }
    telemetry_ = telemetry;
    Registry &reg = telemetry->registry();
    tmPuts_ = reg.counter("store.puts");
    tmGets_ = reg.counter("store.gets");
    tmGetDamaged_ = reg.counter("store.gets.damaged");
    tmFlushes_ = reg.counter("store.shard.flushes");
    tmCheckpoints_ = reg.counter("store.checkpoints");
    tmJournalEntries_ = reg.counter("store.journal.entries");
    tmJournalReplays_ = reg.counter("store.journal.replays");
    tmScrubPasses_ = reg.counter("store.scrub.passes");
    tmScrubRepairs_ = reg.counter("store.scrub.repairs");
    tmScrubLost_ = reg.counter("store.scrub.lost_records");
    tmCrashes_ = reg.counter("store.crashes");
    if (cache_ != nullptr)
        cache_->attachTelemetry(telemetry);
}

bool
EnrollmentDb::loadShardView(unsigned shard, ShardView &view)
{
    std::vector<char> bytes;
    if (!readFile(shardPath(shard), bytes) || bytes.empty())
        return false;
    const ShardParseReport report = parseShardImage(bytes, view.records);
    view.clean = !imageDamaged(report);
    return true;
}

std::shared_ptr<const ShardView>
EnrollmentDb::shardView(unsigned shard, bool *from_cache)
{
    if (shard >= config_.shards)
        return nullptr;
    const auto loader = [this, shard](ShardView &view) {
        return loadShardView(shard, view);
    };
    if (cache_ != nullptr)
        return cache_->acquire(shard, loader, from_cache);
    if (from_cache != nullptr)
        *from_cache = false;
    auto view = std::make_shared<ShardView>();
    if (!loader(*view))
        return nullptr;
    view->accountBytes();
    return view;
}

void
EnrollmentDb::setShardCacheLanes(unsigned lanes)
{
    config_.shardCacheLanes = lanes == 0 ? 1 : lanes;
    if (cache_ != nullptr)
        cache_->configureLanes(config_.shardCacheLanes);
}

ShardCacheStats
EnrollmentDb::cacheStats() const
{
    return cache_ != nullptr ? cache_->stats() : ShardCacheStats{};
}

void
EnrollmentDb::settleDurability()
{
    for (unsigned s = 0; s < config_.shards; ++s) {
        if (deferredImageSync_[s]) {
            syncFileData(shardPath(s));
            deferredImageSync_[s] = false;
        }
    }
    if (!pendingDirSync_)
        return;
    syncDir(config_.directory);
    pendingDirSync_ = false;
}

StorageFault
EnrollmentDb::faultFor(uint64_t event) const
{
    if (injector_ == nullptr)
        return StorageFault{};
    return injector_->storageFrameFor(event);
}

bool
EnrollmentDb::appendJournal(uint8_t op, const std::vector<char> &body,
                            const StorageFault &fault)
{
    std::vector<char> entry;
    entry.reserve(body.size() + 40);
    putU64(entry, (static_cast<uint64_t>(op) << 32) | kJournalMagic);
    putU64(entry, journalSeq_);
    putU64(entry, body.size());
    entry.insert(entry.end(), body.begin(), body.end());
    putU64(entry, fnv1a(body));

    const WriteFault wf = writeFaultFor(fault, entry.size(), false);
    // Group commit keeps the journal handle open across appends —
    // one open()/close() per epoch instead of one per record; the
    // durability model (flushed, never fsynced, torn tails detected
    // on replay) is byte-identical either way.
    const bool ok = config_.journalGroupCommit
        ? journalStream_.append(journalPath(), entry, &wf)
        : appendFile(journalPath(), entry, &wf);
    if (fault.torn || wf.crashBeforeWrite) {
        // Power cut mid-append: whatever prefix landed is a torn tail
        // the next open() will detect and discard.
        dead_ = true;
        tmCrashes_.add();
        return false;
    }
    if (!ok)
        return false;
    ++journalSeq_;
    journalBytes_ += entry.size();
    tmJournalEntries_.add();
    return true;
}

bool
EnrollmentDb::replayJournal()
{
    std::vector<char> bytes;
    if (!readFile(journalPath(), bytes) || bytes.empty())
        return true;

    ByteReader pr(bytes);
    uint64_t applied = 0;
    std::size_t good_end = 0;
    while (!pr.done()) {
        uint64_t header = 0, seq = 0, body_len = 0;
        if (!pr.u64(header) || (header & 0xffffffffu) != kJournalMagic)
            break; // framing lost: torn tail starts here
        const uint8_t op = static_cast<uint8_t>(header >> 32);
        if (op != kOpPut && op != kOpErase)
            break;
        if (!pr.u64(seq) || !pr.u64(body_len) ||
            pr.remaining() < 8 || body_len > pr.remaining() - 8) {
            // Entry runs off the end of the file (overflow-safe: a
            // rotted length near 2^64 must not wrap past the bound).
            break; // torn tail
        }
        std::vector<char> body;
        uint64_t crc = 0;
        if (!pr.raw(body, body_len) || !pr.u64(crc))
            break; // short read despite the guard: treat as torn tail
        good_end = pr.pos();
        journalSeq_ = seq + 1;
        if (fnv1a(body) != crc)
            continue; // framing intact, payload rotted: skip the entry

        if (op == kOpPut) {
            EnrollmentRecord rec;
            if (!decodeRecordBody(body, rec))
                continue;
            overlays_[shardOf(rec.id)][rec.id] = std::move(rec);
        } else {
            ByteReader br(body);
            std::string id;
            if (!br.str(id) || !br.done())
                continue;
            overlays_[shardOf(id)][id] = std::nullopt;
        }
        ++applied;
    }

    if (good_end < bytes.size()) {
        // Drop the torn tail so later appends frame cleanly again.
        journalStream_.close();
        truncateFile(journalPath(), good_end);
        divot_warn("enrollment journal '%s': discarded %zu torn tail "
                   "bytes", journalPath().c_str(),
                   bytes.size() - good_end);
    }
    journalBytes_ = good_end;
    replayed_ = applied;
    if (applied > 0)
        tmJournalReplays_.add();
    return true;
}

bool
EnrollmentDb::flushShard(unsigned shard, const StorageFault &fault)
{
    Overlay &overlay = overlays_[shard];
    std::map<std::string, EnrollmentRecord> records;
    const std::shared_ptr<const ShardView> cached =
        cache_ != nullptr ? cache_->peek(shard) : nullptr;
    if (cached != nullptr && cached->clean) {
        // Fast path: a clean cached view is byte-coherent with the
        // on-disk image (every rewrite write-through-updates it, every
        // injected damage invalidates it), so the read + lenient parse
        // of a growing image — the dominant cost of enrollment at
        // fleet scale — is skipped entirely.
        records = cached->records;
    } else {
        std::vector<char> bytes;
        if (readFile(shardPath(shard), bytes) && !bytes.empty()) {
            // Lenient parse: keep whatever verifies in either bank.
            const ShardParseReport report =
                parseShardImage(bytes, records);
            if (imageUnreadable(report, records.size())) {
                // The overlay must still flush, but overwriting an
                // image that yielded nothing would silently destroy
                // whatever it held. Move the bytes aside for forensics
                // first; their channels surface as
                // Missing/Unrecoverable and re-enroll.
                if (cache_ != nullptr)
                    cache_->invalidate(shard);
                std::rename(shardPath(shard).c_str(),
                            (shardPath(shard) + ".corrupt").c_str());
                divot_warn("shard %u image unreadable; preserved as "
                           "'%s.corrupt' before rewrite",
                           shard, shardPath(shard).c_str());
            }
        }
    }

    for (const auto &[id, pending] : overlay) {
        if (pending.has_value())
            records[id] = *pending;
        else
            records.erase(id);
    }
    const std::vector<char> image = buildShardImage(records);
    const WriteFault wf = writeFaultFor(fault, image.size(), true);
    // Group commit batches the directory sync per epoch; while the
    // journal still covers every image record (cold enroll into a
    // fresh directory) the data sync defers to the checkpoint too —
    // a crash in between replays the full journal over whatever
    // prefix of the images survived.
    const bool defer_data =
        config_.journalGroupCommit && journalCoversImages_;
    if (!atomicWriteFile(shardPath(shard), image, &wf,
                         /*sync_dir=*/!config_.journalGroupCommit,
                         /*sync_data=*/!defer_data))
        return false;
    if (config_.journalGroupCommit)
        pendingDirSync_ = true;
    if (defer_data)
        deferredImageSync_[shard] = true;
    if (cache_ != nullptr) {
        ShardView fresh;
        fresh.records = std::move(records);
        fresh.clean = true;
        cache_->update(shard, std::move(fresh));
    }
    overlay.clear();
    tmFlushes_.add();
    return true;
}

void
EnrollmentDb::applyPostWriteDamage(const StorageFault &fault,
                                   unsigned shard)
{
    // Medium damage lands on the shard image when one exists (that is
    // where scrub repair earns its keep), else on the journal.
    const bool on_image = fileExists(shardPath(shard));
    const std::string target = on_image ? shardPath(shard)
                                        : journalPath();
    if (on_image && cache_ != nullptr &&
        (fault.bitRotBits > 0 || fault.truncate)) {
        // The cached decoded view no longer matches the medium; the
        // next reader must re-decode the rotted bytes.
        cache_->invalidate(shard);
    }
    if (fault.bitRotBits > 0) {
        Rng rot = fault.rotRng;
        std::vector<StuckBit> bits;
        bits.reserve(fault.bitRotBits);
        for (uint64_t i = 0; i < fault.bitRotBits; ++i) {
            StuckBit sb;
            sb.offset = rot.uniformInt(1u << 30);
            sb.bit = static_cast<unsigned>(rot.uniformInt(8));
            sb.level = static_cast<int>(rot.uniformInt(2));
            bits.push_back(sb);
        }
        applyStuckBits(target, bits);
    }
    if (fault.truncate) {
        const int64_t size = fileSize(target);
        if (size > 0) {
            double keep = fault.truncateKeep;
            if (keep < 0.0)
                keep = 0.0;
            if (keep > 1.0)
                keep = 1.0;
            truncateFile(target, static_cast<uint64_t>(
                keep * static_cast<double>(size)));
        }
    }
}

bool
EnrollmentDb::mutate(uint8_t op, const std::string &id,
                     const EnrollmentRecord *record)
{
    if (dead_ || !opened_)
        return false;

    const StorageFault fault = faultFor(ioEvent_++);
    if (fault.crash &&
        fault.crashPoint == StorageCrashPoint::BeforeWrite) {
        dead_ = true;
        tmCrashes_.add();
        return false;
    }

    std::vector<char> body;
    if (op == kOpPut) {
        body = encodeRecordBody(*record);
    } else {
        putString(body, id);
    }
    if (!appendJournal(op, body, fault))
        return false;
    if (fault.crash &&
        fault.crashPoint == StorageCrashPoint::AfterJournal) {
        // The journal entry is durable; the in-memory apply never
        // happens. Replay recovers the mutation on the next open.
        dead_ = true;
        tmCrashes_.add();
        return false;
    }

    const unsigned shard = shardOf(id);
    if (op == kOpPut)
        overlays_[shard][id] = *record;
    else
        overlays_[shard][id] = std::nullopt;

    if (fault.crash &&
        fault.crashPoint == StorageCrashPoint::BeforeCommit) {
        // Force the commit attempt so the cut lands between the temp
        // image and the rename — the crash-matrix cell the dual path
        // (intact old image + replayable journal) must cover.
        flushShard(shard, fault);
        dead_ = true;
        tmCrashes_.add();
        return false;
    }

    bool durable = true;
    if (overlays_[shard].size() >= config_.overlayFlushRecords)
        durable = flushShard(shard, StorageFault{});
    applyPostWriteDamage(fault, shard);
    if (durable && journalBytes_ >= config_.journalCheckpointBytes) {
        for (unsigned s = 0; s < config_.shards && durable; ++s) {
            if (!overlays_[s].empty())
                durable = flushShard(s, StorageFault{});
        }
        if (durable) {
            // Group commit: every rename this epoch deferred its
            // directory sync (and, while the journal covered the
            // images, its data sync); pin them all now, while the
            // journal can still replay anything a lost entry would
            // resurface over.
            settleDurability();
            journalStream_.close();
            truncateFile(journalPath(), 0);
            journalBytes_ = 0;
            journalCoversImages_ = false;
            tmCheckpoints_.add();
        }
    }

    // Count the put before the AfterCommit cut below: the mutation is
    // durable at this point, so it belongs in store.puts even when the
    // process doesn't survive the tick.
    if (op == kOpPut)
        tmPuts_.add();
    if (fault.crash &&
        fault.crashPoint == StorageCrashPoint::AfterCommit) {
        dead_ = true;
        tmCrashes_.add();
        // The mutation is durable (journaled, possibly flushed); the
        // process just doesn't survive to do anything else.
        return true;
    }
    return true;
}

bool
EnrollmentDb::put(const EnrollmentRecord &record)
{
    if (record.id.empty() || !record.fp.valid()) {
        divot_warn("enrollment db: refusing invalid record '%s'",
                   record.id.c_str());
        return false;
    }
    return mutate(kOpPut, record.id, &record);
}

bool
EnrollmentDb::erase(const std::string &id)
{
    return mutate(kOpErase, id, nullptr);
}

bool
EnrollmentDb::setFlags(const std::string &id, uint64_t flags)
{
    EnrollmentRecord rec;
    if (get(id, rec) != DbGetStatus::Ok)
        return false;
    if (rec.flags == flags)
        return true;
    rec.flags = flags;
    return put(rec);
}

DbGetStatus
EnrollmentDb::get(const std::string &id, EnrollmentRecord &out)
{
    tmGets_.add();
    const unsigned shard = shardOf(id);
    const Overlay &overlay = overlays_[shard];
    const auto it = overlay.find(id);
    if (it != overlay.end()) {
        if (!it->second.has_value())
            return DbGetStatus::Missing;
        out = *it->second;
        return DbGetStatus::Ok;
    }

    if (cache_ != nullptr) {
        const auto view = cache_->acquire(
            shard,
            [this, shard](ShardView &v) {
                return loadShardView(shard, v);
            });
        if (view == nullptr)
            return DbGetStatus::Missing; // no image on disk
        const auto vit = view->records.find(id);
        if (vit != view->records.end()) {
            out = vit->second;
            return DbGetStatus::Ok;
        }
        if (view->clean)
            return DbGetStatus::Missing; // provable: whole image read
        // Damaged image and the id isn't among the salvaged records:
        // only the targeted frame scan can distinguish "never written"
        // from "written but damaged in every bank". Fall through.
    }

    std::vector<char> bytes;
    if (!readFile(shardPath(shard), bytes) || bytes.empty())
        return DbGetStatus::Missing;
    const int found = findShardRecord(bytes, id, out);
    if (found == 1)
        return DbGetStatus::Ok;
    if (found == 0)
        return DbGetStatus::Missing;
    tmGetDamaged_.add();
    return DbGetStatus::Unrecoverable;
}

bool
EnrollmentDb::checkpoint()
{
    if (dead_ || !opened_)
        return false;
    const StorageFault fault = faultFor(ioEvent_++);
    if (fault.crash &&
        fault.crashPoint == StorageCrashPoint::BeforeWrite) {
        dead_ = true;
        tmCrashes_.add();
        return false;
    }
    bool first = true;
    for (unsigned s = 0; s < config_.shards; ++s) {
        if (overlays_[s].empty())
            continue;
        // The fault frame targets the first physical write of the
        // operation; later flushes run clean so one scheduled cell
        // interrupts exactly one commit.
        if (!flushShard(s, first ? fault : StorageFault{}))
            return false;
        if (first && (fault.torn || fault.crash)) {
            dead_ = true;
            tmCrashes_.add();
            return false;
        }
        first = false;
    }
    settleDurability();
    journalStream_.close();
    truncateFile(journalPath(), 0);
    journalCoversImages_ = false;
    journalBytes_ = 0;
    tmCheckpoints_.add();
    if (fault.crash &&
        fault.crashPoint == StorageCrashPoint::AfterCommit) {
        dead_ = true;
        tmCrashes_.add();
    }
    return true;
}

ScrubResult
EnrollmentDb::scrubShard(unsigned shard)
{
    ScrubResult result;
    result.shard = shard;
    if (shard >= config_.shards || dead_ || !opened_)
        return result;
    tmScrubPasses_.add();

    std::vector<char> bytes;
    if (!readFile(shardPath(shard), bytes) || bytes.empty())
        return result;
    result.scanned = true;

    std::map<std::string, EnrollmentRecord> records;
    const ShardParseReport report = parseShardImage(bytes, records);
    for (const RecordDamage &dmg : report.unrecoverable) {
        if (!dmg.id.empty())
            result.lostIds.push_back(dmg.id);
        else
            ++result.lostUnnamed;
    }
    if (!imageDamaged(report))
        return result; // pristine image: nothing to repair
    if (imageUnreadable(report, records.size())) {
        // Nothing in the image could be recovered and nothing could
        // even be counted as lost (parse failed outright, or the
        // framing is mangled beyond accounting). Rewriting from the
        // empty recovered map would destroy every record in the shard
        // while reporting zero losses — exactly the silent wipe this
        // layer must never do. Leave the file untouched (point lookups
        // keep returning Unrecoverable, and the bytes stay available
        // for forensics) and surface the wholesale loss so the fleet
        // can demote the shard's channels immediately instead of at
        // their next probe.
        result.unreadable = true;
        return result;
    }

    // Rewrite a pristine dual-bank image from everything recoverable
    // (salvaged records plus this shard's pending overlay), so the
    // next corruption again has a healthy sibling bank to fall back
    // on. Unrecoverable records are dropped — their channels must
    // re-enroll — but never silently: the result reports them.
    for (const auto &[id, pending] : overlays_[shard]) {
        if (pending.has_value())
            records[id] = *pending;
        else
            records.erase(id);
    }
    const std::vector<char> image = buildShardImage(records);
    const StorageFault fault = faultFor(ioEvent_++);
    const WriteFault wf = writeFaultFor(fault, image.size(), true);
    if (!atomicWriteFile(shardPath(shard), image, &wf)) {
        if (fault.torn || fault.crash) {
            dead_ = true;
            tmCrashes_.add();
        }
        return result;
    }
    if (cache_ != nullptr) {
        // The rewrite is the shard's new pristine image; write it
        // through so no reader ever sees pre-scrub salvage state.
        ShardView fresh;
        fresh.records = std::move(records);
        fresh.clean = true;
        cache_->update(shard, std::move(fresh));
    }
    overlays_[shard].clear();
    applyPostWriteDamage(fault, shard);
    result.repaired = true;
    tmScrubRepairs_.add();
    tmScrubLost_.add(result.lostIds.size() + result.lostUnnamed);
    return result;
}

ScrubResult
EnrollmentDb::scrubStep()
{
    const unsigned shard = scrubCursor_;
    scrubCursor_ = (scrubCursor_ + 1) % config_.shards;
    return scrubShard(shard);
}

uint64_t
EnrollmentDb::importImage(const std::vector<char> &bytes)
{
    std::map<std::string, EnrollmentRecord> records;
    if (parseLegacyImage(bytes, records) == 0) {
        const ShardParseReport report = parseShardImage(bytes, records);
        if (!report.ok)
            return 0;
    }
    uint64_t imported = 0;
    for (const auto &[id, record] : records) {
        if (put(record))
            ++imported;
    }
    return imported;
}

std::vector<std::string>
EnrollmentDb::ids()
{
    std::set<std::string> all;
    for (unsigned s = 0; s < config_.shards; ++s) {
        std::vector<char> bytes;
        if (readFile(shardPath(s), bytes) && !bytes.empty()) {
            std::map<std::string, EnrollmentRecord> records;
            parseShardImage(bytes, records);
            for (const auto &[id, record] : records)
                all.insert(id);
        }
        for (const auto &[id, pending] : overlays_[s]) {
            if (pending.has_value())
                all.insert(id);
            else
                all.erase(id);
        }
    }
    return {all.begin(), all.end()};
}

} // namespace divot::store
