/**
 * @file
 * ShardImageCache — shard-level hydration cache with admission
 * control.
 *
 * The EnrollmentDb's read path is deliberately frugal: a point lookup
 * scans one shard file for one CRC frame, and the mega-fleet tick
 * re-reads and re-scans each shard image it touches. That is the
 * right shape when memory is the scarce resource, but at 10^5..10^6
 * channels the same few hundred shard images are decoded over and
 * over — the parse, not the physics, dominates the tick. This cache
 * keeps whole *decoded* shard images (the post-CRC-salvage record
 * map) resident under a byte budget:
 *
 *  - LRU over shards, byte-budgeted: the cache never holds more than
 *    `budgetBytes` of decoded records, however many shards that is.
 *  - Frequency-based admission: a shard is only admitted by evicting
 *    colder shards. Each access bumps a saturating per-shard
 *    frequency; a candidate may evict the LRU victim only while the
 *    victim's frequency does not exceed its own. Under a scan pattern
 *    whose working set exceeds the budget, plain LRU degenerates to
 *    0% hits (every miss evicts the entry the scan needs next);
 *    admission control instead pins a stable hot subset and serves
 *    budget/working-set of the traffic from memory.
 *  - Lane partition: with `lanes = K`, shard s belongs to lane
 *    s % K, with its own LRU list and budget share. Calls touching
 *    lane k's shards must all come from the thread driving lane k
 *    (the reactor-lane discipline); the cache itself takes no locks,
 *    so the access order per lane — and with it every admission and
 *    eviction decision — is deterministic at any thread count.
 *
 * Coherence contract: the cache belongs to the EnrollmentDb, which
 * updates it (write-through) whenever it rewrites a shard image and
 * invalidates it whenever injected damage lands on one. Bytes written
 * behind the db's back (forensic tooling, external truncation) are
 * outside the coherence domain, exactly like an OS page cache.
 *
 * Every cache metric is MetricStability::Unstable: hit patterns
 * depend on the budget knob, and the stable telemetry export must be
 * byte-identical with the cache on or off.
 */

#ifndef DIVOT_STORE_SHARD_CACHE_HH
#define DIVOT_STORE_SHARD_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/codec.hh"
#include "telemetry/telemetry.hh"

namespace divot::store {

/** One decoded shard image, shared between the cache and readers. */
struct ShardView
{
    /** Every record recoverable from the image (whole-bank read or
     *  per-record salvage — the same preference order, bank A first,
     *  that the targeted frame scan uses). */
    std::map<std::string, EnrollmentRecord> records;

    /** True when the parse saw no damage at all: both banks located
     *  and whole-bank CRC-verified, zero damaged frames. A miss in
     *  `records` of a clean view is a *provable* Missing; a miss in a
     *  damaged view must fall back to the targeted frame scan to
     *  distinguish Missing from Unrecoverable. */
    bool clean = false;

    /** Approximate decoded footprint, bytes (budget accounting). */
    std::size_t bytes = 0;

    /** Recompute `bytes` from `records`. */
    void accountBytes();
};

/** Cache tuning. */
struct ShardCacheConfig
{
    std::size_t budgetBytes = 0; //!< decoded-image budget; 0 disables
    unsigned shards = 1;         //!< shard-index space (fixed)
    unsigned lanes = 1;          //!< lane partition (see file header)
};

/** Aggregate counters (summed over lanes). */
struct ShardCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;      //!< loader invocations
    uint64_t admissions = 0;  //!< loaded views admitted
    uint64_t rejections = 0;  //!< loaded views served transiently
                              //!< (victim hotter, or view > budget)
    uint64_t evictions = 0;
    uint64_t updates = 0;     //!< write-through image rewrites
    uint64_t invalidations = 0;
    std::size_t bytes = 0;    //!< currently resident decoded bytes
    std::size_t peakBytes = 0;
};

/**
 * The byte-budgeted, admission-filtered, lane-partitioned cache of
 * decoded shard images.
 */
class ShardImageCache
{
  public:
    explicit ShardImageCache(ShardCacheConfig config);

    /** Fill `view` from disk; false when there is nothing to read. */
    using Loader = std::function<bool(ShardView &view)>;

    /**
     * Return the decoded image of `shard`, loading (and possibly
     * admitting) it on a miss. A loaded-but-rejected view is returned
     * transiently — valid for the caller, never stored.
     *
     * @param from_cache optionally reports whether this was a hit
     * @return null when the loader found nothing to read
     */
    std::shared_ptr<const ShardView> acquire(unsigned shard,
                                             const Loader &loader,
                                             bool *from_cache = nullptr);

    /**
     * Return `shard`'s resident view, or null without touching disk.
     * Counts as an access (LRU + frequency) when resident.
     */
    std::shared_ptr<const ShardView> peek(unsigned shard);

    /**
     * Write-through: the db rewrote `shard`'s image and `view` is its
     * exact new decoded content. Replaces the resident entry (or
     * attempts admission like an access would).
     */
    void update(unsigned shard, ShardView view);

    /** Drop `shard`'s entry (damage landed on the image). */
    void invalidate(unsigned shard);

    /** Drop everything (reopen, lane re-partition). */
    void invalidateAll();

    /**
     * Re-partition into `lanes` lanes. Drops every entry: per-lane
     * LRU state cannot be split deterministically, and the callers
     * that re-partition (attachStore, fleet construction) run before
     * the traffic the determinism contract covers.
     */
    void configureLanes(unsigned lanes);

    const ShardCacheConfig &config() const { return config_; }

    /** @return counters summed across lanes (serial sections only). */
    ShardCacheStats stats() const;

    /** Register the store.cache.* counters (all Unstable). */
    void attachTelemetry(Telemetry *telemetry);

  private:
    struct Entry
    {
        std::shared_ptr<const ShardView> view; //!< null = not cached
        std::list<unsigned>::iterator lruIt;   //!< valid when cached
        uint32_t frequency = 0; //!< saturating access count
    };

    struct Lane
    {
        std::list<unsigned> lru; //!< front = hottest
        std::size_t bytes = 0;
        std::size_t budget = 0;
        ShardCacheStats stats;
    };

    Lane &laneOf(unsigned shard) { return lanes_[shard % lanes_.size()]; }
    void evict(Lane &lane, unsigned shard);
    /** Try to make room for and insert `view`; false = rejected. */
    bool admit(Lane &lane, unsigned shard,
               std::shared_ptr<const ShardView> view);
    void rebuildLanes(unsigned lanes);

    ShardCacheConfig config_;
    std::vector<Entry> entries_; //!< indexed by shard
    std::vector<Lane> lanes_;
    Counter tmHits_;
    Counter tmMisses_;
    Counter tmAdmissions_;
    Counter tmRejections_;
    Counter tmEvictions_;
    Counter tmUpdates_;
    Counter tmInvalidations_;
};

} // namespace divot::store

#endif // DIVOT_STORE_SHARD_CACHE_HH
