/**
 * @file
 * Crash-safe sharded enrollment database.
 *
 * `EnrollmentDb` generalizes the single-file dual-bank EnrollmentStore
 * (PR 2) to fleet scale: records are distributed across N shard files
 * keyed by a stable hash of the channel id, every shard is the same
 * dual-bank + per-record-CRC image, and all of it sits behind a
 * write-ahead journal so each mutation (enroll, re-calibrate,
 * quarantine flag, erase) is atomic across power cuts:
 *
 *   1. the mutation is appended to `journal.wal` (CRC-framed, so a
 *      torn tail is detected and discarded on replay);
 *   2. it lands in the owning shard's in-memory overlay;
 *   3. overlays flush to their shard image (atomic temp+rename
 *      rewrite) when they grow past `overlayFlushRecords`, and the
 *      journal truncates at a checkpoint once every overlay has
 *      flushed.
 *
 * A crash at any point leaves either the old state or the new state
 * reachable: un-flushed mutations replay from the journal on the next
 * open; a torn shard rewrite leaves the abandoned temp file beside an
 * intact image. Memory stays bounded — overlays never exceed the
 * flush threshold and reads (`get`) scan the shard file for one
 * record instead of materializing the shard.
 *
 * Storage faults are injected through the same deterministic
 * `FaultInjector` the instruments use: each mutating operation
 * consumes one IO-event index, and `storageFrameFor(event)` decides
 * whether that operation is torn, crashed at a chosen commit point,
 * bit-rotted, or truncated. A simulated power cut marks the db dead
 * (`alive()` false, every later call refuses); recovery is a fresh
 * EnrollmentDb on the same directory.
 *
 * See DESIGN.md §14 for the shard layout, journal format, and crash
 * matrix.
 */

#ifndef DIVOT_STORE_ENROLLMENT_DB_HH
#define DIVOT_STORE_ENROLLMENT_DB_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "store/codec.hh"
#include "store/io.hh"
#include "store/shard_cache.hh"
#include "telemetry/telemetry.hh"

namespace divot::store {

/** Tunables for one EnrollmentDb. */
struct EnrollmentDbConfig
{
    std::string directory;      //!< shard + journal directory (must exist)
    unsigned shards = 16;       //!< shard file count (fixed at creation)
    uint64_t overlayFlushRecords = 64; //!< per-shard overlay size
                                       //!< triggering a shard flush
    uint64_t journalCheckpointBytes = 1u << 20; //!< journal size
                                                //!< triggering checkpoint

    /** Decoded-image cache budget, bytes; 0 keeps the classic
     *  read-per-lookup path (see shard_cache.hh). */
    std::size_t shardCacheBytes = 0;

    /** Cache lane partition; the fleet reconfigures this to its
     *  reactor-lane count via setShardCacheLanes(). */
    unsigned shardCacheLanes = 1;

    /**
     * Group commit: defer the directory fsync of shard-image renames
     * to one `syncDir` per flush epoch, issued before the journal
     * truncates at a checkpoint. The temp-file fsync still runs on
     * every rewrite, so each image is old-or-new; a power cut that
     * loses a deferred directory entry merely resurfaces the old
     * image, and the still-intact journal replays the difference.
     */
    bool journalGroupCommit = false;
};

/** Outcome of a point lookup. */
enum class DbGetStatus
{
    Ok,            //!< record returned
    Missing,       //!< provably not in the database
    Unrecoverable, //!< frames damaged in every bank — channel must
                   //!< re-enroll
};

/** Outcome of scrubbing one shard. */
struct ScrubResult
{
    unsigned shard = 0;    //!< shard index that was examined
    bool scanned = false;  //!< shard file existed and was examined
    bool repaired = false; //!< image was rewritten from recovered records
    bool unreadable = false; //!< image yielded nothing recoverable; the
                             //!< file is left untouched for forensics
                             //!< and every record in the shard must be
                             //!< presumed lost (owner should fence all
                             //!< channels routed to this shard)
    std::vector<std::string> lostIds; //!< records damaged beyond repair
                                      //!< (ids only when parseable)
    uint64_t lostUnnamed = 0; //!< unrecoverable records with no
                              //!< readable id
};

/**
 * The sharded enrollment database. Not thread-safe: callers mutate it
 * from serial sections only (the fleet scheduler's fold phase, bench
 * enrollment loops), which also keeps the IO-event sequence — and
 * therefore every injected storage fault — deterministic.
 */
class EnrollmentDb
{
  public:
    explicit EnrollmentDb(EnrollmentDbConfig config);

    /**
     * Open the database: validate the directory, replay any journal
     * tail left by a crash (torn entries are detected by their CRC
     * frame and truncated away), and prime per-shard bookkeeping.
     *
     * @return false when the directory is unusable
     */
    bool open();

    /** @return false once a simulated power cut has hit this handle. */
    bool alive() const { return !dead_; }

    /**
     * Insert or replace a record (journal append + overlay; may
     * trigger a shard flush and a checkpoint).
     *
     * @return true when the mutation is durable (journaled or
     *         flushed; see io.hh for the journal's power-cut sync
     *         model); false on a crash/torn fault or dead handle
     */
    bool put(const EnrollmentRecord &record);

    /** Remove a record (tombstone through the same journal path). */
    bool erase(const std::string &id);

    /**
     * Update just the lifecycle flags of an existing record.
     *
     * @return false when the record is missing/unrecoverable or the
     *         rewrite faulted
     */
    bool setFlags(const std::string &id, uint64_t flags);

    /**
     * Point lookup: overlay first, then the decoded-image cache when
     * one is configured (a miss in a *clean* cached view is a provable
     * Missing; a miss in a damaged view falls back to the targeted
     * frame scan so Missing vs Unrecoverable stays exact), else a
     * targeted frame scan of the shard image (no full-shard
     * materialization).
     */
    DbGetStatus get(const std::string &id, EnrollmentRecord &out);

    /**
     * Whole-shard read of the *image layer* (pending overlays are not
     * consulted — the mega-fleet hydrates from durable state only,
     * matching its original per-record image scan). Served from the
     * cache when one is configured, decoded transiently otherwise.
     *
     * @param from_cache optionally reports whether the view was
     *        resident (callers charge transient decode bytes against
     *        their memory budget only when it was not)
     * @return null when the shard has no image on disk
     */
    std::shared_ptr<const ShardView> shardView(unsigned shard,
                                               bool *from_cache = nullptr);

    /**
     * Re-partition the decoded-image cache into `lanes` lanes (shard s
     * belongs to lane s % lanes; see shard_cache.hh for the lane
     * threading discipline). Drops all cached views. No-op without a
     * cache.
     */
    void setShardCacheLanes(unsigned lanes);

    /** @return cache counters (zeroes when no cache is configured). */
    ShardCacheStats cacheStats() const;

    /** Flush every overlay and truncate the journal. */
    bool checkpoint();

    /**
     * Scrub one shard: parse its image leniently and rewrite a
     * pristine dual-bank copy whenever anything short of a clean
     * bank A read was needed (bank-B fallback, per-record salvage).
     * Records damaged in both banks are dropped from the rewrite and
     * reported in the result so the fleet can demote those channels
     * to PendingReenroll. An image that yields *nothing* recoverable
     * is never rewritten (that would silently wipe the shard): it is
     * left in place and flagged `ScrubResult::unreadable`.
     */
    ScrubResult scrubShard(unsigned shard);

    /**
     * Background scrub hook: examine the next shard in round-robin
     * order. Designed to be called once per idle scheduler tick.
     */
    ScrubResult scrubStep();

    /**
     * Import every record of a legacy v1/v2 EnrollmentStore image (or
     * a v3 shard image) through the normal `put` path.
     *
     * @return records imported (0 when the bytes parse as nothing)
     */
    uint64_t importImage(const std::vector<char> &bytes);

    /** @return all ids currently in the database (disk + overlays). */
    std::vector<std::string> ids();

    /** Route an id to its shard index. */
    unsigned shardOf(const std::string &id) const;

    /** @return shard image path (exists only after a flush). */
    std::string shardPath(unsigned shard) const;

    /** @return journal path. */
    std::string journalPath() const;

    /** @return IO events consumed so far (fault-plan addressing). */
    uint64_t ioEvents() const { return ioEvent_; }

    /** @return journal entries replayed by open(). */
    uint64_t replayedEntries() const { return replayed_; }

    /** Attach a fault injector (nullptr detaches). */
    void attachFaultInjector(const FaultInjector *injector);

    /** Attach telemetry; registers the stable store.* counters. */
    void attachTelemetry(Telemetry *telemetry);

    const EnrollmentDbConfig &config() const { return config_; }

  private:
    /** One shard's pending mutations; nullopt marks a tombstone. */
    using Overlay = std::map<std::string,
                             std::optional<EnrollmentRecord>>;

    bool appendJournal(uint8_t op, const std::vector<char> &body,
                       const StorageFault &fault);
    bool flushShard(unsigned shard, const StorageFault &fault);
    /** Decode `shard`'s image into `view`; false when no file. */
    bool loadShardView(unsigned shard, ShardView &view);
    /**
     * Settle every deferred sync of the group-commit epoch: fdatasync
     * each shard image written with a deferred data sync, then the
     * deferred directory sync. Must run before the journal truncates
     * — afterwards the journal no longer covers the images and
     * deferral stops (journalCoversImages_ goes false).
     */
    void settleDurability();
    void applyPostWriteDamage(const StorageFault &fault,
                              unsigned shard);
    bool replayJournal();
    StorageFault faultFor(uint64_t event) const;
    bool mutate(uint8_t op, const std::string &id,
                const EnrollmentRecord *record);

    EnrollmentDbConfig config_;
    std::vector<Overlay> overlays_;
    bool dead_ = false;
    bool opened_ = false;
    uint64_t ioEvent_ = 0;
    uint64_t journalBytes_ = 0;
    uint64_t journalSeq_ = 0;
    uint64_t replayed_ = 0;
    unsigned scrubCursor_ = 0;
    bool pendingDirSync_ = false;
    /**
     * True while the live journal can reconstruct every record held
     * by every shard image — exactly the window (from a fresh
     * directory until the first checkpoint truncation) in which image
     * data syncs may be deferred to the checkpoint. Conservative:
     * reopening over existing images clears it.
     */
    bool journalCoversImages_ = false;
    std::vector<bool> deferredImageSync_; //!< per shard: image was
                                          //!< written sync_data=false
    std::unique_ptr<ShardImageCache> cache_;
    AppendStream journalStream_; //!< group-commit: journal handle
                                 //!< held open across appends; closed
                                 //!< before every truncation
    const FaultInjector *injector_ = nullptr;
    Telemetry *telemetry_ = nullptr;
    Counter tmPuts_;
    Counter tmGets_;
    Counter tmGetDamaged_;
    Counter tmFlushes_;
    Counter tmCheckpoints_;
    Counter tmJournalEntries_;
    Counter tmJournalReplays_;
    Counter tmScrubPasses_;
    Counter tmScrubRepairs_;
    Counter tmScrubLost_;
    Counter tmCrashes_;
};

} // namespace divot::store

#endif // DIVOT_STORE_ENROLLMENT_DB_HH
