/**
 * @file
 * Crash-safe file primitives for the enrollment persistence layer.
 *
 * Every durable artifact of the store — shard images, the write-ahead
 * journal, the legacy single-image EPROM — goes through these three
 * operations, which concentrate the crash-consistency reasoning in
 * one place:
 *
 *  - atomicWriteFile: write a temp sibling, fsync it, rename over the
 *    target, fsync the directory. A power cut at any instant leaves
 *    either the old file or the new file, never a torn mixture.
 *  - appendFile: buffered append, flushed to the OS but not fsynced
 *    (per-entry fsync would dominate mutation cost). A real power cut
 *    can therefore drop the tail appended since the last image
 *    checkpoint — but the journal's CRC framing makes that loss look
 *    exactly like a torn append, which replay discards as "op never
 *    happened"; corruption is never loaded either way.
 *  - readFile: whole-file slurp.
 *
 * Each write-side primitive takes an optional WriteFault describing a
 * simulated storage failure (torn write at a byte offset, power cut
 * before/after the rename). The campaign layer schedules these
 * deterministically from Rng::forkStable; production callers pass
 * nullptr and the checks fold away.
 */

#ifndef DIVOT_STORE_IO_HH
#define DIVOT_STORE_IO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace divot::store {

/** A simulated storage failure applied to one write operation. */
struct WriteFault
{
    /** Write only this many bytes of the payload, then act as if the
     *  power failed (-1 = write everything). */
    int64_t tornAfterBytes = -1;

    /** Power cut after the temp file is written but before the rename
     *  commits it (atomicWriteFile only). */
    bool crashBeforeRename = false;

    /** Power cut before any byte reaches the medium. */
    bool crashBeforeWrite = false;

    /** @return true when the fault interrupts the operation. */
    bool interrupts() const
    {
        return tornAfterBytes >= 0 || crashBeforeRename ||
               crashBeforeWrite;
    }
};

/**
 * Slurp a file.
 *
 * @return false when the file cannot be opened (out is cleared)
 */
bool readFile(const std::string &path, std::vector<char> &out);

/**
 * Atomically replace `path` with `bytes`: writes `path + ".tmp"`,
 * fsyncs it to the medium, renames over `path`, then (by default)
 * fsyncs the directory so the new entry itself survives a power cut.
 * With a fault, the on-disk state mimics the corresponding power cut
 * (partial temp file left behind, or a complete temp never renamed)
 * and false is returned.
 *
 * Group commit: `sync_dir = false` skips only the directory fsync.
 * `sync_data = false` additionally skips the temp-file data sync —
 * legal ONLY while some other durable copy (for the enrollment db:
 * the journal, which is truncated strictly after the deferred syncs
 * settle) can reconstruct every record the written image holds. When
 * the image carries records older than the journal's last
 * checkpoint, the data sync must stay inline: the old image is their
 * sole copy and renaming a non-durable temp over it would break the
 * old-or-new guarantee. A caller deferring either sync must settle —
 * `syncFileData()` on each deferred path, then `syncDir()` on the
 * parent — before it destroys any other way to recover the renamed
 * content (before the journal truncates at a checkpoint). Losing a
 * deferred directory entry or data block in a power cut merely
 * resurfaces the old state, and the still-intact journal replays the
 * difference.
 *
 * @return true when the rename committed
 */
bool atomicWriteFile(const std::string &path,
                     const std::vector<char> &bytes,
                     const WriteFault *fault = nullptr,
                     bool sync_dir = true,
                     bool sync_data = true);

/**
 * fdatasync a file written earlier with `sync_data = false`: pins the
 * data blocks and size before the journal stops covering them.
 * Best-effort on open failure (the file may have been damaged or
 * removed by a fault in between; recovery handles it as torn).
 */
void syncFileData(const std::string &path);

/**
 * fsync a directory so every rename committed into it survives a
 * power cut. Pairs with `atomicWriteFile(..., sync_dir = false)`:
 * one directory sync per flush epoch instead of one per rename.
 * Best-effort, like the inline sync (some file systems refuse
 * directory fds).
 */
void syncDir(const std::string &dir);

/**
 * Append `bytes` to `path` (creating it if missing). A torn-write
 * fault appends only the prefix, modeling a power cut mid-append.
 * Not fsynced — see the file header for the power-cut model.
 *
 * @return true when every byte was appended
 */
bool appendFile(const std::string &path,
                const std::vector<char> &bytes,
                const WriteFault *fault = nullptr);

/**
 * Append-only file handle held open across appends — the group-commit
 * counterpart of appendFile, which opens and closes the file on every
 * call (measurable at 10^5 appends per enroll pass). Durability is
 * identical: the descriptor is opened O_APPEND-style (std::ios::app),
 * every append is flushed to the OS, nothing is fsynced, and a torn
 * fault appends only the prefix and closes the handle. close()
 * before truncating the file elsewhere keeps the model simple (the
 * next append reopens at the new end).
 */
class AppendStream
{
  public:
    /** Same contract and return as appendFile. */
    bool append(const std::string &path,
                const std::vector<char> &bytes,
                const WriteFault *fault = nullptr);

    /** Close the handle (no-op when closed). */
    void close();

  private:
    struct FileCloser
    {
        void operator()(std::FILE *f) const;
    };
    std::unique_ptr<std::FILE, FileCloser> file_;
    std::string path_;
};

/** @return size of the file in bytes, or -1 when unreadable. */
int64_t fileSize(const std::string &path);

/** @return true when the path exists. */
bool fileExists(const std::string &path);

/** Delete a file; missing files count as success. */
bool removeFile(const std::string &path);

/**
 * Truncate a file to `keep` bytes (shard-truncation fault cell and
 * journal tail repair).
 *
 * @return true on success
 */
bool truncateFile(const std::string &path, uint64_t keep);

/**
 * Flip bits in-place at deterministic positions (stuck-at bit-rot
 * fault cell): for each (offset, bit, level) tuple the addressed bit
 * is forced to `level`.
 *
 * @return bits actually changed (already-at-level bits don't count)
 */
struct StuckBit
{
    uint64_t offset = 0; //!< byte offset into the file
    unsigned bit = 0;    //!< bit index 0..7
    int level = 0;       //!< forced value, 0 or 1
};

unsigned applyStuckBits(const std::string &path,
                        const std::vector<StuckBit> &bits);

/**
 * Create a directory (one level; parents must exist). An existing
 * directory counts as success.
 */
bool ensureDir(const std::string &path);

/** @return true when `path` exists and is a directory. */
bool dirExists(const std::string &path);

} // namespace divot::store

#endif // DIVOT_STORE_IO_HH
