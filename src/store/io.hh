/**
 * @file
 * Crash-safe file primitives for the enrollment persistence layer.
 *
 * Every durable artifact of the store — shard images, the write-ahead
 * journal, the legacy single-image EPROM — goes through these three
 * operations, which concentrate the crash-consistency reasoning in
 * one place:
 *
 *  - atomicWriteFile: write a temp sibling, fsync it, rename over the
 *    target, fsync the directory. A power cut at any instant leaves
 *    either the old file or the new file, never a torn mixture.
 *  - appendFile: buffered append, flushed to the OS but not fsynced
 *    (per-entry fsync would dominate mutation cost). A real power cut
 *    can therefore drop the tail appended since the last image
 *    checkpoint — but the journal's CRC framing makes that loss look
 *    exactly like a torn append, which replay discards as "op never
 *    happened"; corruption is never loaded either way.
 *  - readFile: whole-file slurp.
 *
 * Each write-side primitive takes an optional WriteFault describing a
 * simulated storage failure (torn write at a byte offset, power cut
 * before/after the rename). The campaign layer schedules these
 * deterministically from Rng::forkStable; production callers pass
 * nullptr and the checks fold away.
 */

#ifndef DIVOT_STORE_IO_HH
#define DIVOT_STORE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace divot::store {

/** A simulated storage failure applied to one write operation. */
struct WriteFault
{
    /** Write only this many bytes of the payload, then act as if the
     *  power failed (-1 = write everything). */
    int64_t tornAfterBytes = -1;

    /** Power cut after the temp file is written but before the rename
     *  commits it (atomicWriteFile only). */
    bool crashBeforeRename = false;

    /** Power cut before any byte reaches the medium. */
    bool crashBeforeWrite = false;

    /** @return true when the fault interrupts the operation. */
    bool interrupts() const
    {
        return tornAfterBytes >= 0 || crashBeforeRename ||
               crashBeforeWrite;
    }
};

/**
 * Slurp a file.
 *
 * @return false when the file cannot be opened (out is cleared)
 */
bool readFile(const std::string &path, std::vector<char> &out);

/**
 * Atomically replace `path` with `bytes`: writes `path + ".tmp"`,
 * fsyncs it to the medium, renames over `path`, then fsyncs the
 * directory so the new entry itself survives a power cut. With a
 * fault, the on-disk state mimics the corresponding power cut
 * (partial temp file left behind, or a complete temp never renamed)
 * and false is returned.
 *
 * @return true when the rename committed
 */
bool atomicWriteFile(const std::string &path,
                     const std::vector<char> &bytes,
                     const WriteFault *fault = nullptr);

/**
 * Append `bytes` to `path` (creating it if missing). A torn-write
 * fault appends only the prefix, modeling a power cut mid-append.
 * Not fsynced — see the file header for the power-cut model.
 *
 * @return true when every byte was appended
 */
bool appendFile(const std::string &path,
                const std::vector<char> &bytes,
                const WriteFault *fault = nullptr);

/** @return size of the file in bytes, or -1 when unreadable. */
int64_t fileSize(const std::string &path);

/** @return true when the path exists. */
bool fileExists(const std::string &path);

/** Delete a file; missing files count as success. */
bool removeFile(const std::string &path);

/**
 * Truncate a file to `keep` bytes (shard-truncation fault cell and
 * journal tail repair).
 *
 * @return true on success
 */
bool truncateFile(const std::string &path, uint64_t keep);

/**
 * Flip bits in-place at deterministic positions (stuck-at bit-rot
 * fault cell): for each (offset, bit, level) tuple the addressed bit
 * is forced to `level`.
 *
 * @return bits actually changed (already-at-level bits don't count)
 */
struct StuckBit
{
    uint64_t offset = 0; //!< byte offset into the file
    unsigned bit = 0;    //!< bit index 0..7
    int level = 0;       //!< forced value, 0 or 1
};

unsigned applyStuckBits(const std::string &path,
                        const std::vector<StuckBit> &bits);

/**
 * Create a directory (one level; parents must exist). An existing
 * directory counts as success.
 */
bool ensureDir(const std::string &path);

/** @return true when `path` exists and is a directory. */
bool dirExists(const std::string &path);

} // namespace divot::store

#endif // DIVOT_STORE_IO_HH
