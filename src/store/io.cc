#include "store/io.hh"

#include <cstdio>
#include <fstream>
#include <iterator>

#include <sys/stat.h>
#include <unistd.h>

namespace divot::store {

bool
readFile(const std::string &path, std::vector<char> &out)
{
    out.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

namespace {

/** Write `count` bytes to a fresh file and flush them to the medium. */
bool
writeWhole(const std::string &path, const char *data, std::size_t count)
{
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(data, static_cast<std::streamsize>(count));
        out.flush();
        if (!out)
            return false;
    }
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::vector<char> &bytes,
                const WriteFault *fault)
{
    if (fault != nullptr && fault->crashBeforeWrite)
        return false;

    const std::string tmp = path + ".tmp";
    std::size_t count = bytes.size();
    bool torn = false;
    if (fault != nullptr && fault->tornAfterBytes >= 0 &&
        static_cast<uint64_t>(fault->tornAfterBytes) < count) {
        count = static_cast<std::size_t>(fault->tornAfterBytes);
        torn = true;
    }
    if (!writeWhole(tmp, bytes.data(), count))
        return false;
    if (torn || (fault != nullptr && fault->crashBeforeRename))
        return false; // power cut: temp file abandoned, target intact

    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return false;
    return true;
}

bool
appendFile(const std::string &path, const std::vector<char> &bytes,
           const WriteFault *fault)
{
    if (fault != nullptr && fault->crashBeforeWrite)
        return false;

    std::size_t count = bytes.size();
    bool torn = false;
    if (fault != nullptr && fault->tornAfterBytes >= 0 &&
        static_cast<uint64_t>(fault->tornAfterBytes) < count) {
        count = static_cast<std::size_t>(fault->tornAfterBytes);
        torn = true;
    }
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return false;
    out.write(bytes.data(), static_cast<std::streamsize>(count));
    out.flush();
    return static_cast<bool>(out) && !torn;
}

int64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<int64_t>(st.st_size);
}

bool
fileExists(const std::string &path)
{
    return fileSize(path) >= 0;
}

bool
removeFile(const std::string &path)
{
    if (!fileExists(path))
        return true;
    return std::remove(path.c_str()) == 0;
}

bool
truncateFile(const std::string &path, uint64_t keep)
{
    return ::truncate(path.c_str(), static_cast<off_t>(keep)) == 0;
}

unsigned
applyStuckBits(const std::string &path, const std::vector<StuckBit> &bits)
{
    std::vector<char> data;
    if (!readFile(path, data) || data.empty())
        return 0;
    unsigned changed = 0;
    for (const StuckBit &sb : bits) {
        const uint64_t pos = sb.offset % data.size();
        const unsigned char mask =
            static_cast<unsigned char>(1u << (sb.bit & 7));
        unsigned char byte = static_cast<unsigned char>(data[pos]);
        const unsigned char forced = sb.level != 0
            ? static_cast<unsigned char>(byte | mask)
            : static_cast<unsigned char>(byte & ~mask);
        if (forced != byte) {
            data[pos] = static_cast<char>(forced);
            ++changed;
        }
    }
    if (changed == 0)
        return 0;
    if (!writeWhole(path, data.data(), data.size()))
        return 0;
    return changed;
}

bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0)
        return true;
    return dirExists(path);
}

bool
dirExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace divot::store
