#include "store/io.hh"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <iterator>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace divot::store {

bool
readFile(const std::string &path, std::vector<char> &out)
{
    out.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

namespace {

/** Write every byte through a raw fd, retrying short/EINTR writes. */
bool
writeAllFd(int fd, const char *data, std::size_t count)
{
    std::size_t done = 0;
    while (done < count) {
        const ssize_t n = ::write(fd, data + done, count - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Write `count` bytes to a fresh file and (when `sync` is set) sync
 * them to the medium. fdatasync suffices for the old-or-new
 * guarantee: the file is fresh, so the data blocks plus the size
 * (which fdatasync is required to flush, being metadata needed to
 * read the data back) are the whole durable state — the inode
 * timestamps fsync would additionally journal buy nothing, and at
 * fleet scale the difference is a measurable slice of every flush
 * epoch.
 */
bool
writeWhole(const std::string &path, const char *data, std::size_t count,
           bool sync = true)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    bool ok = writeAllFd(fd, data, count);
    if (sync)
        ok = ::fdatasync(fd) == 0 && ok;
    ok = ::close(fd) == 0 && ok;
    return ok;
}

/**
 * fsync the directory holding `path` so a completed rename survives a
 * power cut (the data already reached the medium via the temp-file
 * fsync; this pins the directory entry). Best-effort: some file
 * systems refuse directory fds, and the rename itself has committed.
 */
void
syncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void
syncFileData(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    ::fdatasync(fd);
    ::close(fd);
}

void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

bool
atomicWriteFile(const std::string &path, const std::vector<char> &bytes,
                const WriteFault *fault, bool sync_dir, bool sync_data)
{
    if (fault != nullptr && fault->crashBeforeWrite)
        return false;

    const std::string tmp = path + ".tmp";
    std::size_t count = bytes.size();
    bool torn = false;
    if (fault != nullptr && fault->tornAfterBytes >= 0 &&
        static_cast<uint64_t>(fault->tornAfterBytes) < count) {
        count = static_cast<std::size_t>(fault->tornAfterBytes);
        torn = true;
    }
    if (!writeWhole(tmp, bytes.data(), count, sync_data))
        return false;
    if (torn || (fault != nullptr && fault->crashBeforeRename))
        return false; // power cut: temp file abandoned, target intact

    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return false;
    if (sync_dir)
        syncParentDir(path);
    return true;
}

bool
appendFile(const std::string &path, const std::vector<char> &bytes,
           const WriteFault *fault)
{
    if (fault != nullptr && fault->crashBeforeWrite)
        return false;

    std::size_t count = bytes.size();
    bool torn = false;
    if (fault != nullptr && fault->tornAfterBytes >= 0 &&
        static_cast<uint64_t>(fault->tornAfterBytes) < count) {
        count = static_cast<std::size_t>(fault->tornAfterBytes);
        torn = true;
    }
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return false;
    out.write(bytes.data(), static_cast<std::streamsize>(count));
    out.flush();
    return static_cast<bool>(out) && !torn;
}

void
AppendStream::FileCloser::operator()(std::FILE *f) const
{
    if (f != nullptr)
        std::fclose(f);
}

bool
AppendStream::append(const std::string &path,
                     const std::vector<char> &bytes,
                     const WriteFault *fault)
{
    if (fault != nullptr && fault->crashBeforeWrite)
        return false;

    std::size_t count = bytes.size();
    bool torn = false;
    if (fault != nullptr && fault->tornAfterBytes >= 0 &&
        static_cast<uint64_t>(fault->tornAfterBytes) < count) {
        count = static_cast<std::size_t>(fault->tornAfterBytes);
        torn = true;
    }
    if (file_ == nullptr || path != path_) {
        file_.reset(std::fopen(path.c_str(), "ab"));
        if (file_ == nullptr)
            return false;
        path_ = path;
    }
    const bool wrote =
        std::fwrite(bytes.data(), 1, count, file_.get()) == count &&
        std::fflush(file_.get()) == 0;
    if (torn) {
        // Power cut mid-append: the handle dies with the machine.
        close();
        return false;
    }
    return wrote;
}

void
AppendStream::close()
{
    file_.reset();
    path_.clear();
}

int64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<int64_t>(st.st_size);
}

bool
fileExists(const std::string &path)
{
    return fileSize(path) >= 0;
}

bool
removeFile(const std::string &path)
{
    if (!fileExists(path))
        return true;
    return std::remove(path.c_str()) == 0;
}

bool
truncateFile(const std::string &path, uint64_t keep)
{
    return ::truncate(path.c_str(), static_cast<off_t>(keep)) == 0;
}

unsigned
applyStuckBits(const std::string &path, const std::vector<StuckBit> &bits)
{
    std::vector<char> data;
    if (!readFile(path, data) || data.empty())
        return 0;
    unsigned changed = 0;
    for (const StuckBit &sb : bits) {
        const uint64_t pos = sb.offset % data.size();
        const unsigned char mask =
            static_cast<unsigned char>(1u << (sb.bit & 7));
        unsigned char byte = static_cast<unsigned char>(data[pos]);
        const unsigned char forced = sb.level != 0
            ? static_cast<unsigned char>(byte | mask)
            : static_cast<unsigned char>(byte & ~mask);
        if (forced != byte) {
            data[pos] = static_cast<char>(forced);
            ++changed;
        }
    }
    if (changed == 0)
        return 0;
    if (!writeWhole(path, data.data(), data.size()))
        return 0;
    return changed;
}

bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0)
        return true;
    return dirExists(path);
}

bool
dirExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace divot::store
