/**
 * @file
 * Byte codec shared by every enrollment persistence format.
 *
 * Three formats read through this module:
 *
 *  - v1: legacy single-copy EPROM image (read-only compatibility).
 *  - v2: the dual-bank EnrollmentStore image (PR 2).
 *  - v3: EnrollmentDb shard images — the same dual-bank + per-record
 *    CRC discipline, with a richer record body (nominal response,
 *    lifecycle flags, generation counter) so a fleet channel can be
 *    rehydrated without re-deriving anything.
 *
 * The dual-bank frame is bootloader-style: bank A is framed from the
 * front of the image (`[magicver][len][crc][payload]`), bank B from
 * the end with the trailer fields mirrored in reverse, so the two
 * banks never share bytes and any single corrupted byte damages
 * exactly one of them. Inside a payload every record is individually
 * CRC-framed (`[bodyLen][body][fnv1a(body)]`), which is what lets the
 * salvage path say "record 3 at offset 217 is bad" instead of "bank A
 * is bad" — and lets a reader recover every intact record from a
 * payload whose whole-bank checksum no longer verifies.
 */

#ifndef DIVOT_STORE_CODEC_HH
#define DIVOT_STORE_CODEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hh"
#include "signal/waveform.hh"

namespace divot::store {

/** FNV-1a over a byte range — the integrity check of every frame. */
uint64_t fnv1a(const char *data, std::size_t n);
uint64_t fnv1a(const std::vector<char> &bytes);

/** @name Little-endian primitive writers. */
///@{
void putU64(std::vector<char> &out, uint64_t v);
void putF64(std::vector<char> &out, double v);
void putString(std::vector<char> &out, const std::string &s);
void putWaveform(std::vector<char> &out, const Waveform &w);
///@}

/** Bounds-checked sequential reader over a byte range. */
class ByteReader
{
  public:
    ByteReader(const char *data, std::size_t n) : data_(data), n_(n) {}
    explicit ByteReader(const std::vector<char> &bytes)
        : data_(bytes.data()), n_(bytes.size())
    {}

    bool u64(uint64_t &v);
    bool f64(double &v);
    bool str(std::string &s);
    bool waveform(Waveform &w);
    bool raw(std::vector<char> &out, uint64_t len);
    bool skip(uint64_t len);

    bool done() const { return pos_ == n_; }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return n_ - pos_; }

  private:
    const char *data_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

/** Lifecycle flags persisted with a record. */
enum RecordFlag : uint64_t
{
    kRecordQuarantined = 1u << 0,    //!< operator fenced the channel
    kRecordPendingReenroll = 1u << 1 //!< calibration lost; must re-enroll
};

/** One durable enrollment record (shard-image currency). */
struct EnrollmentRecord
{
    std::string id;       //!< channel identifier (db key)
    Fingerprint fp;       //!< enrollment fingerprint
    Waveform nominal;     //!< nominal design response (may be empty)
    uint64_t flags = 0;   //!< RecordFlag bits
    uint64_t generation = 0; //!< bumped on every re-calibration

    /** @return approximate resident footprint, bytes. */
    std::size_t residentBytes() const;
};

/** Serialize / parse one record body (no CRC frame). */
std::vector<char> encodeRecordBody(const EnrollmentRecord &record);
bool decodeRecordBody(const std::vector<char> &body,
                      EnrollmentRecord &out);

/** Where damage landed, for operator-facing reports. */
struct RecordDamage
{
    uint64_t index = 0;  //!< record position within the payload
    uint64_t offset = 0; //!< byte offset of the frame in the payload
    std::string id;      //!< channel id when the body was parseable
};

/** Outcome of reading one dual-bank shard image. */
struct ShardParseReport
{
    bool ok = false;        //!< at least one complete bank verified,
                            //!< or salvage recovered records
    int bankUsed = -1;      //!< 0 = A, 1 = B, 2 = salvage merge
    bool fellBack = false;  //!< bank A failed whole-bank verification
    bool salvaged = false;  //!< both banks failed; per-record salvage
    bool bankAHealthy = false; //!< bank A located and whole-bank CRC ok
    bool bankBHealthy = false; //!< bank B located and whole-bank CRC ok
    uint64_t records = 0;   //!< records recovered
    std::vector<RecordDamage> damagedA; //!< bad frames seen in bank A
    std::vector<RecordDamage> damagedB; //!< bad frames seen in bank B
    std::vector<RecordDamage> unrecoverable; //!< bad in both banks
    std::string detail;     //!< human-readable cause
};

/** Build a v3 dual-bank shard image from a sorted record map. */
std::vector<char>
buildShardImage(const std::map<std::string, EnrollmentRecord> &records);

/**
 * Parse a v3 shard image: bank A strict, bank B strict, then
 * per-record salvage across both banks. Salvage recovers every record
 * whose CRC frame verifies in either bank; frames damaged in both are
 * reported in `unrecoverable` (by payload index/offset, with the id
 * when the body is still parseable).
 *
 * @return report; `out` holds the recovered records (empty on ok=false)
 */
ShardParseReport
parseShardImage(const std::vector<char> &bytes,
                std::map<std::string, EnrollmentRecord> &out);

/**
 * Scan a shard image for a single record without materializing the
 * rest of the shard — the hydration hot path. Tries bank A's frame
 * walk first, then bank B's.
 *
 * @return 1 = found (out filled), 0 = provably absent, -1 = the
 *         record's frames are damaged in every readable bank
 */
int findShardRecord(const std::vector<char> &bytes,
                    const std::string &id, EnrollmentRecord &out);

/**
 * Parse a legacy image into v3 records: v1 (single-copy, whole-image
 * checksum) or v2 (the dual-bank EnrollmentStore format, bank A then
 * bank B). Imported records carry an empty nominal response and zero
 * flags/generation — the fields the old formats never stored.
 *
 * @return detected format version (1 or 2) on success, 0 when the
 *         bytes parse as neither (out untouched)
 */
int parseLegacyImage(const std::vector<char> &bytes,
                     std::map<std::string, EnrollmentRecord> &out);

/** Magic/version constants shared with the legacy EnrollmentStore. */
constexpr uint32_t kStoreMagic = 0x44495654; // "DIVT"
constexpr uint32_t kShardVersion = 3;
constexpr std::size_t kBankHeaderSize = 24; // magic/ver + len + crc

/**
 * 64-bit stable hash of a channel id (FNV-1a): shard selection must
 * not depend on std::hash, whose value is implementation-defined.
 */
uint64_t channelHash(const std::string &id);

} // namespace divot::store

#endif // DIVOT_STORE_CODEC_HH
