#include "store/shard_cache.hh"

#include <utility>

namespace divot::store {

namespace {

/** Per-record map overhead: node pointers, key header, flags. */
constexpr std::size_t kRecordOverhead = 96;

constexpr uint32_t kFrequencyCap = 1u << 20;

} // namespace

void
ShardView::accountBytes()
{
    std::size_t total = sizeof(ShardView);
    for (const auto &[id, rec] : records)
        total += id.size() + rec.residentBytes() + kRecordOverhead;
    bytes = total;
}

ShardImageCache::ShardImageCache(ShardCacheConfig config)
    : config_(std::move(config))
{
    if (config_.shards == 0)
        config_.shards = 1;
    if (config_.lanes == 0)
        config_.lanes = 1;
    entries_.resize(config_.shards);
    rebuildLanes(config_.lanes);
}

void
ShardImageCache::rebuildLanes(unsigned lanes)
{
    config_.lanes = lanes == 0 ? 1 : lanes;
    lanes_.assign(config_.lanes, Lane{});
    for (Lane &lane : lanes_)
        lane.budget = config_.budgetBytes / config_.lanes;
}

void
ShardImageCache::configureLanes(unsigned lanes)
{
    invalidateAll();
    rebuildLanes(lanes);
}

void
ShardImageCache::evict(Lane &lane, unsigned shard)
{
    Entry &entry = entries_[shard];
    lane.bytes -= entry.view->bytes;
    lane.lru.erase(entry.lruIt);
    entry.view.reset();
    ++lane.stats.evictions;
    tmEvictions_.add(1);
}

bool
ShardImageCache::admit(Lane &lane, unsigned shard,
                       std::shared_ptr<const ShardView> view)
{
    if (view->bytes > lane.budget)
        return false;
    // Make room from the cold end, but never displace a hotter shard:
    // under a scan whose working set exceeds the budget this is what
    // keeps a stable subset pinned instead of thrashing every entry.
    while (lane.bytes + view->bytes > lane.budget) {
        const unsigned victim = lane.lru.back();
        if (entries_[victim].frequency > entries_[shard].frequency)
            return false;
        evict(lane, victim);
    }
    Entry &entry = entries_[shard];
    lane.bytes += view->bytes;
    entry.view = std::move(view);
    lane.lru.push_front(shard);
    entry.lruIt = lane.lru.begin();
    ++lane.stats.admissions;
    tmAdmissions_.add(1);
    if (lane.bytes > lane.stats.peakBytes)
        lane.stats.peakBytes = lane.bytes;
    return true;
}

std::shared_ptr<const ShardView>
ShardImageCache::peek(unsigned shard)
{
    Lane &lane = laneOf(shard);
    Entry &entry = entries_[shard];
    if (entry.view == nullptr)
        return nullptr;
    if (entry.frequency < kFrequencyCap)
        ++entry.frequency;
    lane.lru.splice(lane.lru.begin(), lane.lru, entry.lruIt);
    ++lane.stats.hits;
    tmHits_.add(1);
    return entry.view;
}

std::shared_ptr<const ShardView>
ShardImageCache::acquire(unsigned shard, const Loader &loader,
                         bool *from_cache)
{
    Lane &lane = laneOf(shard);
    Entry &entry = entries_[shard];
    if (entry.frequency < kFrequencyCap)
        ++entry.frequency;

    if (entry.view != nullptr) {
        lane.lru.splice(lane.lru.begin(), lane.lru, entry.lruIt);
        ++lane.stats.hits;
        tmHits_.add(1);
        if (from_cache != nullptr)
            *from_cache = true;
        return entry.view;
    }

    ++lane.stats.misses;
    tmMisses_.add(1);
    if (from_cache != nullptr)
        *from_cache = false;

    auto view = std::make_shared<ShardView>();
    if (!loader(*view))
        return nullptr; // nothing on disk; never negatively cached
    view->accountBytes();
    if (!admit(lane, shard, view)) {
        ++lane.stats.rejections;
        tmRejections_.add(1);
    }
    return view;
}

void
ShardImageCache::update(unsigned shard, ShardView view)
{
    Lane &lane = laneOf(shard);
    Entry &entry = entries_[shard];
    ++lane.stats.updates;
    tmUpdates_.add(1);
    view.accountBytes();
    auto fresh = std::make_shared<const ShardView>(std::move(view));

    if (entry.view != nullptr) {
        // Replace in place; if the rewrite grew the image past the
        // lane budget, fall back to the admission path (which may now
        // legitimately drop it).
        lane.bytes -= entry.view->bytes;
        lane.lru.erase(entry.lruIt);
        entry.view.reset();
    }
    if (entry.frequency < kFrequencyCap)
        ++entry.frequency;
    if (!admit(lane, shard, std::move(fresh))) {
        ++lane.stats.rejections;
        tmRejections_.add(1);
    }
}

void
ShardImageCache::invalidate(unsigned shard)
{
    Lane &lane = laneOf(shard);
    Entry &entry = entries_[shard];
    if (entry.view == nullptr)
        return;
    lane.bytes -= entry.view->bytes;
    lane.lru.erase(entry.lruIt);
    entry.view.reset();
    ++lane.stats.invalidations;
    tmInvalidations_.add(1);
}

void
ShardImageCache::invalidateAll()
{
    for (unsigned lane_idx = 0; lane_idx < lanes_.size(); ++lane_idx) {
        Lane &lane = lanes_[lane_idx];
        while (!lane.lru.empty()) {
            const unsigned shard = lane.lru.back();
            lane.bytes -= entries_[shard].view->bytes;
            lane.lru.pop_back();
            entries_[shard].view.reset();
            ++lane.stats.invalidations;
            tmInvalidations_.add(1);
        }
    }
    for (Entry &entry : entries_)
        entry.frequency = 0;
}

ShardCacheStats
ShardImageCache::stats() const
{
    ShardCacheStats total;
    for (const Lane &lane : lanes_) {
        total.hits += lane.stats.hits;
        total.misses += lane.stats.misses;
        total.admissions += lane.stats.admissions;
        total.rejections += lane.stats.rejections;
        total.evictions += lane.stats.evictions;
        total.updates += lane.stats.updates;
        total.invalidations += lane.stats.invalidations;
        total.bytes += lane.bytes;
        total.peakBytes += lane.stats.peakBytes;
    }
    return total;
}

void
ShardImageCache::attachTelemetry(Telemetry *telemetry)
{
    if (telemetry == nullptr)
        return;
    // All Unstable: hit patterns track the budget knob and thread-side
    // load order, and the stable export must be byte-identical with
    // the cache on or off.
    Registry &reg = telemetry->registry();
    tmHits_ = reg.counter("store.cache.hit", MetricStability::Unstable);
    tmMisses_ = reg.counter("store.cache.miss", MetricStability::Unstable);
    tmAdmissions_ =
        reg.counter("store.cache.admit", MetricStability::Unstable);
    tmRejections_ =
        reg.counter("store.cache.reject", MetricStability::Unstable);
    tmEvictions_ =
        reg.counter("store.cache.evict", MetricStability::Unstable);
    tmUpdates_ =
        reg.counter("store.cache.update", MetricStability::Unstable);
    tmInvalidations_ =
        reg.counter("store.cache.invalidate", MetricStability::Unstable);
}

} // namespace divot::store
