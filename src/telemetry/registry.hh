/**
 * @file
 * Metric registry — thread-safe counters, gauges, and fixed-bucket
 * histograms behind hierarchical dotted names ("itdr.bus0.measure.
 * cycles").
 *
 * Determinism contract (DESIGN.md §12): counters and histogram cells
 * are unsigned-integer atomics whose updates commute, so totals are
 * bit-identical at any thread count as long as the *set* of updates
 * is (which the simulator's forkStable/disjoint-write discipline
 * guarantees). Gauges do not commute — they must only be set from
 * serial (or per-owner) contexts. Metrics that are inherently
 * thread-count-dependent (worker counts, queue depths) register as
 * MetricStability::Unstable and are excluded from deterministic
 * snapshots by default.
 *
 * Handles are the hot-path currency: registering a name returns a
 * small value object holding a pointer to the heap cell. When the
 * registry is disabled the pointer is null and every operation is a
 * branch-predicted no-op, so instrumented code needs no `if
 * (telemetry)` guards of its own.
 */

#ifndef DIVOT_TELEMETRY_REGISTRY_HH
#define DIVOT_TELEMETRY_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace divot {

/** Whether a metric is part of the deterministic snapshot. */
enum class MetricStability
{
    Stable,   //!< bit-identical at any thread count (default)
    Unstable  //!< depends on scheduling (pool tasks, queue depths);
              //!< excluded from deterministic exports
};

namespace telemetry_detail {

struct CounterCell
{
    std::atomic<uint64_t> value{0};
    MetricStability stability = MetricStability::Stable;
};

struct GaugeCell
{
    std::atomic<int64_t> value{0};
    MetricStability stability = MetricStability::Stable;
};

struct HistogramCell
{
    std::vector<uint64_t> bounds;  //!< ascending inclusive upper edges
    std::vector<std::atomic<uint64_t>> counts; //!< bounds.size() + 1
                                               //!< (last = overflow)
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> sum{0};
    MetricStability stability = MetricStability::Stable;
};

} // namespace telemetry_detail

/** Monotonic counter handle. Default-constructed (or disabled)
 *  handles are inert. */
class Counter
{
  public:
    Counter() = default;

    /** Add `n` (relaxed; sums commute across threads). */
    void add(uint64_t n = 1)
    {
        if (cell_ != nullptr)
            cell_->value.fetch_add(n, std::memory_order_relaxed);
    }

    /** @return current value (0 for an inert handle). */
    uint64_t value() const
    {
        return cell_ != nullptr
            ? cell_->value.load(std::memory_order_relaxed) : 0;
    }

    /** @return whether the handle is wired to a live cell. */
    bool live() const { return cell_ != nullptr; }

  private:
    friend class Registry;
    explicit Counter(telemetry_detail::CounterCell *cell) : cell_(cell) {}
    telemetry_detail::CounterCell *cell_ = nullptr;
};

/** Last-writer-wins gauge handle. Set only from serial contexts when
 *  the metric must stay deterministic. */
class Gauge
{
  public:
    Gauge() = default;

    void set(int64_t v)
    {
        if (cell_ != nullptr)
            cell_->value.store(v, std::memory_order_relaxed);
    }

    /** Raise to `v` if larger (high-water marks). */
    void max(int64_t v)
    {
        if (cell_ == nullptr)
            return;
        int64_t cur = cell_->value.load(std::memory_order_relaxed);
        while (v > cur &&
               !cell_->value.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    int64_t value() const
    {
        return cell_ != nullptr
            ? cell_->value.load(std::memory_order_relaxed) : 0;
    }

    bool live() const { return cell_ != nullptr; }

  private:
    friend class Registry;
    explicit Gauge(telemetry_detail::GaugeCell *cell) : cell_(cell) {}
    telemetry_detail::GaugeCell *cell_ = nullptr;
};

/** Fixed-bucket histogram handle (unsigned integer samples only, so
 *  cross-thread accumulation stays exact and deterministic). */
class HistogramMetric
{
  public:
    HistogramMetric() = default;

    void record(uint64_t v);

    uint64_t total() const
    {
        return cell_ != nullptr
            ? cell_->total.load(std::memory_order_relaxed) : 0;
    }

    uint64_t sum() const
    {
        return cell_ != nullptr
            ? cell_->sum.load(std::memory_order_relaxed) : 0;
    }

    bool live() const { return cell_ != nullptr; }

  private:
    friend class Registry;
    explicit HistogramMetric(telemetry_detail::HistogramCell *cell)
        : cell_(cell) {}
    telemetry_detail::HistogramCell *cell_ = nullptr;
};

/** Read-only snapshot rows used by the exporters and tests. */
struct CounterSnapshot
{
    std::string name;
    uint64_t value = 0;
    MetricStability stability = MetricStability::Stable;
};

struct GaugeSnapshot
{
    std::string name;
    int64_t value = 0;
    MetricStability stability = MetricStability::Stable;
};

struct HistogramSnapshot
{
    std::string name;
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> counts;  //!< bounds.size() + 1 (overflow last)
    uint64_t total = 0;
    uint64_t sum = 0;
    MetricStability stability = MetricStability::Stable;
};

/**
 * Owns the metric cells. Registration is idempotent: asking for an
 * existing name returns a handle to the same cell (histograms must
 * re-declare identical bounds). Disabled registries hand out inert
 * handles and store nothing.
 */
class Registry
{
  public:
    explicit Registry(bool enabled = true) : enabled_(enabled) {}

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** @return whether handles are live. */
    bool enabled() const { return enabled_; }

    Counter counter(const std::string &name,
                    MetricStability stability = MetricStability::Stable);

    Gauge gauge(const std::string &name,
                MetricStability stability = MetricStability::Stable);

    /**
     * @param bounds ascending inclusive upper bucket edges; a sample v
     *               lands in the first bucket with v <= bounds[i],
     *               else in the trailing overflow bucket
     */
    HistogramMetric histogram(
        const std::string &name, std::vector<uint64_t> bounds,
        MetricStability stability = MetricStability::Stable);

    /** @return a counter's value, 0 when never registered. */
    uint64_t counterValue(const std::string &name) const;

    /** @return a gauge's value, 0 when never registered. */
    int64_t gaugeValue(const std::string &name) const;

    /** @name Sorted-by-name snapshots (Stable metrics only unless
     *  include_unstable). */
    ///@{
    std::vector<CounterSnapshot>
    counters(bool include_unstable = false) const;

    std::vector<GaugeSnapshot>
    gauges(bool include_unstable = false) const;

    std::vector<HistogramSnapshot>
    histograms(bool include_unstable = false) const;
    ///@}

  private:
    bool enabled_;
    mutable std::mutex mutex_;
    std::map<std::string,
             std::unique_ptr<telemetry_detail::CounterCell>> counters_;
    std::map<std::string,
             std::unique_ptr<telemetry_detail::GaugeCell>> gauges_;
    std::map<std::string,
             std::unique_ptr<telemetry_detail::HistogramCell>> histograms_;
};

} // namespace divot

#endif // DIVOT_TELEMETRY_REGISTRY_HH
