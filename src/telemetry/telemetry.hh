/**
 * @file
 * Telemetry facade — one object bundling the metric Registry, the
 * SpanTracer, and the EventLog, plus deterministic JSON/CSV exporters.
 *
 * Construction cost when disabled is negligible and every handle the
 * facade hands out is inert, so subsystems can instrument
 * unconditionally and let the null-pointer check in each handle pay
 * the (branch-predicted) cost.
 *
 * Determinism contract: exportJson(false) — the default — emits only
 * MetricStability::Stable metrics and includes span/event record
 * arrays only when their rings never dropped anything. Under those
 * rules the exported string is byte-identical across thread counts
 * for any workload honoring the repo's forkStable/disjoint-write
 * discipline (asserted by test_property_pipeline and the bench
 * gates).
 */

#ifndef DIVOT_TELEMETRY_TELEMETRY_HH
#define DIVOT_TELEMETRY_TELEMETRY_HH

#include <cstddef>
#include <string>

#include "telemetry/event_log.hh"
#include "telemetry/registry.hh"
#include "telemetry/span.hh"

namespace divot {

/** Configuration for a Telemetry instance. */
struct TelemetryConfig
{
    bool enabled = true;          //!< master switch (off = all no-ops)
    std::size_t spanCapacity = 4096;  //!< span ring size (0 = counts only)
    std::size_t eventCapacity = 4096; //!< event ring size (0 = counts only)
};

/**
 * Facade owning the three collectors.
 */
class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig &config = TelemetryConfig())
        : config_(config),
          registry_(config.enabled),
          tracer_(config.spanCapacity, config.enabled),
          events_(config.eventCapacity, config.enabled)
    {}

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** @return whether collection is on. */
    bool enabled() const { return config_.enabled; }

    const TelemetryConfig &config() const { return config_; }

    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }

    SpanTracer &tracer() { return tracer_; }
    const SpanTracer &tracer() const { return tracer_; }

    EventLog &events() { return events_; }
    const EventLog &events() const { return events_; }

    /**
     * Serialize the full snapshot as pretty-printed JSON (sorted
     * keys, 2-space indent, %.17g doubles).
     *
     * @param include_unstable also emit MetricStability::Unstable
     *        metrics (thread-count-dependent; never byte-stable)
     */
    std::string exportJson(bool include_unstable = false) const;

    /**
     * Serialize counters/gauges/histograms as CSV rows
     * (`metric,kind,value[,sum]` with histogram buckets flattened to
     * `name[le=BOUND]` rows).
     */
    std::string exportCsv(bool include_unstable = false) const;

  private:
    TelemetryConfig config_;
    Registry registry_;
    SpanTracer tracer_;
    EventLog events_;
};

} // namespace divot

#endif // DIVOT_TELEMETRY_TELEMETRY_HH
