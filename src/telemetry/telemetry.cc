#include "telemetry/telemetry.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace divot {

namespace {

/**
 * Format a double with %.17g — round-trippable, and every value the
 * exporters see is derived from IEEE arithmetic on exact inputs (slot
 * * tick, cycle / f_clk), never libm transcendentals, so the text is
 * platform-stable.
 */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtU64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
fmtI64(int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
u64Array(const std::vector<uint64_t> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += fmtU64(values[i]);
    }
    out += "]";
    return out;
}

} // namespace

std::string
Telemetry::exportJson(bool include_unstable) const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n";

    // Counters: flat sorted name -> value object.
    os << "  \"counters\": {";
    const auto counters = registry_.counters(include_unstable);
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        os << "    \"" << jsonEscape(counters[i].name) << "\": "
           << fmtU64(counters[i].value);
    }
    os << (counters.empty() ? "},\n" : "\n  },\n");

    os << "  \"gauges\": {";
    const auto gauges = registry_.gauges(include_unstable);
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        os << "    \"" << jsonEscape(gauges[i].name) << "\": "
           << fmtI64(gauges[i].value);
    }
    os << (gauges.empty() ? "},\n" : "\n  },\n");

    os << "  \"histograms\": {";
    const auto histograms = registry_.histograms(include_unstable);
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const auto &h = histograms[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    \"" << jsonEscape(h.name) << "\": {"
           << "\"bounds\": " << u64Array(h.bounds)
           << ", \"counts\": " << u64Array(h.counts)
           << ", \"count\": " << fmtU64(h.total)
           << ", \"sum\": " << fmtU64(h.sum) << "}";
    }
    os << (histograms.empty() ? "},\n" : "\n  },\n");

    // Spans: aggregate counts always; the record array only while the
    // ring never wrapped (which records survive a wrap depends on
    // arrival order and would break byte-stability).
    os << "  \"spans\": {\n";
    os << "    \"opened\": " << fmtU64(tracer_.opened()) << ",\n";
    os << "    \"closed\": " << fmtU64(tracer_.closed()) << ",\n";
    os << "    \"dropped\": " << fmtU64(tracer_.dropped());
    if (tracer_.dropped() == 0) {
        os << ",\n    \"records\": [";
        const auto spans = tracer_.sorted();
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const auto &s = spans[i];
            os << (i == 0 ? "\n" : ",\n");
            os << "      {\"name\": \"" << jsonEscape(s.name)
               << "\", \"tag\": \"" << jsonEscape(s.tag)
               << "\", \"start\": " << fmtDouble(s.start)
               << ", \"duration\": " << fmtDouble(s.duration)
               << ", \"cycles\": " << fmtU64(s.cycles)
               << ", \"ordinal\": " << fmtU64(s.ordinal) << "}";
        }
        os << (spans.empty() ? "]\n" : "\n    ]\n");
    } else {
        os << "\n";
    }
    os << "  },\n";

    os << "  \"events\": {\n";
    os << "    \"recorded\": " << fmtU64(events_.recorded()) << ",\n";
    os << "    \"dropped\": " << fmtU64(events_.dropped());
    if (events_.dropped() == 0) {
        os << ",\n    \"records\": [";
        const auto events = events_.sorted();
        for (std::size_t i = 0; i < events.size(); ++i) {
            const auto &e = events[i];
            os << (i == 0 ? "\n" : ",\n");
            os << "      {\"time\": " << fmtDouble(e.time)
               << ", \"ordinal\": " << fmtU64(e.ordinal)
               << ", \"kind\": \"" << jsonEscape(e.kind)
               << "\", \"tag\": \"" << jsonEscape(e.tag)
               << "\", \"detail\": \"" << jsonEscape(e.detail) << "\"}";
        }
        os << (events.empty() ? "]\n" : "\n    ]\n");
    } else {
        os << "\n";
    }
    os << "  }\n";
    os << "}\n";
    return os.str();
}

std::string
Telemetry::exportCsv(bool include_unstable) const
{
    std::ostringstream os;
    os << "metric,kind,value,sum\n";
    for (const auto &c : registry_.counters(include_unstable))
        os << c.name << ",counter," << fmtU64(c.value) << ",\n";
    for (const auto &g : registry_.gauges(include_unstable))
        os << g.name << ",gauge," << fmtI64(g.value) << ",\n";
    for (const auto &h : registry_.histograms(include_unstable)) {
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            os << h.name << "[le=";
            if (i < h.bounds.size())
                os << fmtU64(h.bounds[i]);
            else
                os << "inf";
            os << "],histogram," << fmtU64(h.counts[i]) << ",\n";
        }
        os << h.name << ",histogram," << fmtU64(h.total) << ","
           << fmtU64(h.sum) << "\n";
    }
    os << "spans.opened,counter," << fmtU64(tracer_.opened()) << ",\n";
    os << "spans.closed,counter," << fmtU64(tracer_.closed()) << ",\n";
    os << "spans.dropped,counter," << fmtU64(tracer_.dropped()) << ",\n";
    os << "events.recorded,counter," << fmtU64(events_.recorded())
       << ",\n";
    os << "events.dropped,counter," << fmtU64(events_.dropped())
       << ",\n";
    return os.str();
}

} // namespace divot
