/**
 * @file
 * EventLog — bounded ring buffer of discrete observability events:
 * BusEvents applied by the DIVOT gate, health-screen failures,
 * authenticator state-ladder transitions, fleet trust flips.
 *
 * Events carry a per-channel tag and a deterministic stamp (simulated
 * time + producer ordinal), never wall-clock time, so the sorted view
 * is bit-identical across thread counts as long as nothing wrapped
 * out of the ring (see SpanTracer for the same caveat).
 */

#ifndef DIVOT_TELEMETRY_EVENT_LOG_HH
#define DIVOT_TELEMETRY_EVENT_LOG_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace divot {

/** One logged event. */
struct TelemetryEvent
{
    double time = 0.0;    //!< simulated seconds (fleet wall clock,
                          //!< gate cycle / f_clk, ...)
    uint64_t ordinal = 0; //!< producer sequence (round, tick, cycle)
    std::string kind;     //!< event class ("auth.state", "bus.event",
                          //!< "health", "fleet.trust")
    std::string tag;      //!< channel / component tag
    std::string detail;   //!< human-readable payload
};

/**
 * Bounded ring of TelemetryEvents.
 */
class EventLog
{
  public:
    /**
     * @param capacity retained events (ring; 0 keeps counts only)
     * @param enabled  disabled logs drop everything for free
     */
    EventLog(std::size_t capacity, bool enabled)
        : capacity_(capacity), enabled_(enabled) {}

    /** @return whether events are being collected. */
    bool enabled() const { return enabled_; }

    /** Append an event (oldest evicted when the ring is full). */
    void record(TelemetryEvent event);

    /** @return events recorded since construction. */
    uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** @return events evicted by ring overflow. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** @return retained event count. */
    std::size_t size() const;

    /** @return ring capacity. */
    std::size_t capacity() const { return capacity_; }

    /** @return retained events sorted by (time, tag, ordinal, kind) —
     *  deterministic whenever the retained *set* is. */
    std::vector<TelemetryEvent> sorted() const;

  private:
    std::size_t capacity_;
    bool enabled_;
    mutable std::mutex mutex_;
    std::deque<TelemetryEvent> ring_;
    std::atomic<uint64_t> recorded_{0};
    std::atomic<uint64_t> dropped_{0};
};

} // namespace divot

#endif // DIVOT_TELEMETRY_EVENT_LOG_HH
