#include "telemetry/registry.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace divot {

namespace {

// The telemetry library sits below divot_util (ThreadPool itself is
// instrumented), so it cannot use divot_fatal without a dependency
// cycle; misregistration is a programming error worth the same
// abort-with-context treatment.
[[noreturn]] void
registryFatal(const char *what, const std::string &name)
{
    std::fprintf(stderr, "divot telemetry: fatal: histogram '%s' %s\n",
                 name.c_str(), what);
    std::abort();
}

} // namespace

void
HistogramMetric::record(uint64_t v)
{
    if (cell_ == nullptr)
        return;
    const auto it = std::lower_bound(cell_->bounds.begin(),
                                     cell_->bounds.end(), v);
    const std::size_t bucket =
        static_cast<std::size_t>(it - cell_->bounds.begin());
    cell_->counts[bucket].fetch_add(1, std::memory_order_relaxed);
    cell_->total.fetch_add(1, std::memory_order_relaxed);
    cell_->sum.fetch_add(v, std::memory_order_relaxed);
}

Counter
Registry::counter(const std::string &name, MetricStability stability)
{
    if (!enabled_)
        return Counter();
    std::lock_guard<std::mutex> lock(mutex_);
    auto &cell = counters_[name];
    if (!cell) {
        cell = std::make_unique<telemetry_detail::CounterCell>();
        cell->stability = stability;
    }
    return Counter(cell.get());
}

Gauge
Registry::gauge(const std::string &name, MetricStability stability)
{
    if (!enabled_)
        return Gauge();
    std::lock_guard<std::mutex> lock(mutex_);
    auto &cell = gauges_[name];
    if (!cell) {
        cell = std::make_unique<telemetry_detail::GaugeCell>();
        cell->stability = stability;
    }
    return Gauge(cell.get());
}

HistogramMetric
Registry::histogram(const std::string &name,
                    std::vector<uint64_t> bounds,
                    MetricStability stability)
{
    if (!enabled_)
        return HistogramMetric();
    if (bounds.empty())
        registryFatal("needs at least one bucket bound", name);
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        registryFatal("bounds must be ascending", name);
    std::lock_guard<std::mutex> lock(mutex_);
    auto &cell = histograms_[name];
    if (!cell) {
        cell = std::make_unique<telemetry_detail::HistogramCell>();
        cell->bounds = std::move(bounds);
        // counts gets bounds.size() + 1 zero-initialized atomics; the
        // vector never reallocates afterwards, so handle pointers into
        // the cell stay valid for the registry's lifetime.
        cell->counts = std::vector<std::atomic<uint64_t>>(
            cell->bounds.size() + 1);
        cell->stability = stability;
    } else if (cell->bounds != bounds) {
        registryFatal("re-registered with different bucket bounds",
                      name);
    }
    return HistogramMetric(cell.get());
}

uint64_t
Registry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end()
        ? 0 : it->second->value.load(std::memory_order_relaxed);
}

int64_t
Registry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end()
        ? 0 : it->second->value.load(std::memory_order_relaxed);
}

std::vector<CounterSnapshot>
Registry::counters(bool include_unstable) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterSnapshot> out;
    out.reserve(counters_.size());
    for (const auto &[name, cell] : counters_) {
        if (!include_unstable &&
            cell->stability == MetricStability::Unstable)
            continue;
        out.push_back({name,
                       cell->value.load(std::memory_order_relaxed),
                       cell->stability});
    }
    return out;
}

std::vector<GaugeSnapshot>
Registry::gauges(bool include_unstable) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<GaugeSnapshot> out;
    out.reserve(gauges_.size());
    for (const auto &[name, cell] : gauges_) {
        if (!include_unstable &&
            cell->stability == MetricStability::Unstable)
            continue;
        out.push_back({name,
                       cell->value.load(std::memory_order_relaxed),
                       cell->stability});
    }
    return out;
}

std::vector<HistogramSnapshot>
Registry::histograms(bool include_unstable) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<HistogramSnapshot> out;
    out.reserve(histograms_.size());
    for (const auto &[name, cell] : histograms_) {
        if (!include_unstable &&
            cell->stability == MetricStability::Unstable)
            continue;
        HistogramSnapshot snap;
        snap.name = name;
        snap.bounds = cell->bounds;
        snap.counts.reserve(cell->counts.size());
        for (const auto &c : cell->counts)
            snap.counts.push_back(c.load(std::memory_order_relaxed));
        snap.total = cell->total.load(std::memory_order_relaxed);
        snap.sum = cell->sum.load(std::memory_order_relaxed);
        snap.stability = cell->stability;
        out.push_back(std::move(snap));
    }
    return out;
}

} // namespace divot
