#include "telemetry/span.hh"

#include <algorithm>
#include <tuple>

namespace divot {

SpanScope::~SpanScope()
{
    finish();
}

void
SpanScope::close(double end, uint64_t cycles)
{
    if (tracer_ == nullptr)
        return;
    record_.duration = end - record_.start;
    record_.cycles = cycles;
    SpanTracer *tracer = tracer_;
    tracer_ = nullptr;
    tracer->closed_.fetch_add(1, std::memory_order_relaxed);
    tracer->push(std::move(record_));
}

void
SpanScope::finish()
{
    // Abandoned scope: close as a zero-length span at the open stamp
    // so the opened/closed balance invariant survives early exits.
    if (tracer_ != nullptr)
        close(record_.start, 0);
}

void
SpanTracer::record(SpanRecord record)
{
    if (!enabled_)
        return;
    opened_.fetch_add(1, std::memory_order_relaxed);
    closed_.fetch_add(1, std::memory_order_relaxed);
    push(std::move(record));
}

SpanScope
SpanTracer::open(std::string name, std::string tag, double start,
                 uint64_t ordinal)
{
    if (!enabled_)
        return SpanScope();
    opened_.fetch_add(1, std::memory_order_relaxed);
    SpanRecord record;
    record.name = std::move(name);
    record.tag = std::move(tag);
    record.start = start;
    record.ordinal = ordinal;
    return SpanScope(this, std::move(record));
}

void
SpanTracer::push(SpanRecord record)
{
    if (capacity_ == 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(record));
    if (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::size_t
SpanTracer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::vector<SpanRecord>
SpanTracer::sorted() const
{
    std::vector<SpanRecord> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.assign(ring_.begin(), ring_.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return std::tie(a.start, a.tag, a.name, a.ordinal) <
                         std::tie(b.start, b.tag, b.name, b.ordinal);
              });
    return out;
}

} // namespace divot
