/**
 * @file
 * SpanTracer — scoped timing spans over the measure → fingerprint →
 * authenticate → react pipeline.
 *
 * The clock source is NOT real time: producers stamp spans with the
 * simulator's own deterministic schedule (an instrument's elapsed
 * trigger cycles, the fleet's precomputed slot * tick wall clock), so
 * traces are bit-identical across thread counts exactly like the rest
 * of the system. Records carry a producer-chosen ordinal (round or
 * measurement index) so the export sort key (start, tag, name,
 * ordinal) is a total order even when stamps collide.
 *
 * The record buffer is a bounded ring: when it overflows, the oldest
 * records are dropped (counted). Which records survive a wrap depends
 * on arrival order, so deterministic exports include the record array
 * only while nothing was dropped — see Telemetry::exportJson.
 */

#ifndef DIVOT_TELEMETRY_SPAN_HH
#define DIVOT_TELEMETRY_SPAN_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace divot {

/** One completed span. */
struct SpanRecord
{
    std::string name;      //!< stage label ("itdr.measure", ...)
    std::string tag;       //!< channel / component tag
    double start = 0.0;    //!< simulated seconds at open
    double duration = 0.0; //!< simulated seconds spanned
    uint64_t cycles = 0;   //!< bus cycles consumed inside the span
    uint64_t ordinal = 0;  //!< producer sequence (round index etc.)
};

class SpanTracer;

/**
 * RAII span: opened by SpanTracer::open, closed explicitly with the
 * end stamp. A scope abandoned without close() records a zero-length
 * span at its start stamp so opened == closed always holds.
 */
class SpanScope
{
  public:
    SpanScope() = default;
    ~SpanScope();

    SpanScope(SpanScope &&other) noexcept { *this = std::move(other); }

    SpanScope &operator=(SpanScope &&other) noexcept
    {
        if (this != &other) {
            finish();
            tracer_ = other.tracer_;
            record_ = std::move(other.record_);
            other.tracer_ = nullptr;
        }
        return *this;
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** Close the span at `end` (simulated seconds). */
    void close(double end, uint64_t cycles = 0);

    /** @return whether the scope still holds an open span. */
    bool open() const { return tracer_ != nullptr; }

  private:
    friend class SpanTracer;
    SpanScope(SpanTracer *tracer, SpanRecord record)
        : tracer_(tracer), record_(std::move(record)) {}

    void finish();

    SpanTracer *tracer_ = nullptr;
    SpanRecord record_;
};

/**
 * Collects spans into a bounded ring.
 */
class SpanTracer
{
  public:
    /**
     * @param capacity retained records (ring; 0 keeps counts only)
     * @param enabled  disabled tracers drop everything for free
     */
    SpanTracer(std::size_t capacity, bool enabled)
        : capacity_(capacity), enabled_(enabled) {}

    /** @return whether spans are being collected. */
    bool enabled() const { return enabled_; }

    /** Record an already-finished span (opened + closed in one go). */
    void record(SpanRecord record);

    /** Open a scoped span; close it with SpanScope::close. */
    SpanScope open(std::string name, std::string tag, double start,
                   uint64_t ordinal = 0);

    /** @return spans opened (scoped or direct). */
    uint64_t opened() const
    {
        return opened_.load(std::memory_order_relaxed);
    }

    /** @return spans closed (== opened once all scopes resolved). */
    uint64_t closed() const
    {
        return closed_.load(std::memory_order_relaxed);
    }

    /** @return records evicted by ring overflow. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** @return retained record count. */
    std::size_t size() const;

    /** @return ring capacity. */
    std::size_t capacity() const { return capacity_; }

    /** @return retained records sorted by (start, tag, name, ordinal)
     *  — a deterministic order whenever the retained *set* is. */
    std::vector<SpanRecord> sorted() const;

  private:
    friend class SpanScope;

    void push(SpanRecord record);

    std::size_t capacity_;
    bool enabled_;
    mutable std::mutex mutex_;
    std::deque<SpanRecord> ring_;
    std::atomic<uint64_t> opened_{0};
    std::atomic<uint64_t> closed_{0};
    std::atomic<uint64_t> dropped_{0};
};

} // namespace divot

#endif // DIVOT_TELEMETRY_SPAN_HH
