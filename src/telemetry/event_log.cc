#include "telemetry/event_log.hh"

#include <algorithm>
#include <tuple>

namespace divot {

void
EventLog::record(TelemetryEvent event)
{
    if (!enabled_)
        return;
    recorded_.fetch_add(1, std::memory_order_relaxed);
    if (capacity_ == 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(event));
    if (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::vector<TelemetryEvent>
EventLog::sorted() const
{
    std::vector<TelemetryEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.assign(ring_.begin(), ring_.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TelemetryEvent &a, const TelemetryEvent &b) {
                  return std::tie(a.time, a.tag, a.ordinal, a.kind) <
                         std::tie(b.time, b.tag, b.ordinal, b.kind);
              });
    return out;
}

} // namespace divot
