#include "txline/txline.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

TransmissionLine::TransmissionLine(std::vector<double> segment_impedances,
                                   double segment_length, double velocity,
                                   double source_impedance,
                                   double load_impedance,
                                   double loss_neper_per_m,
                                   std::string name)
    : z_(std::move(segment_impedances)), segLen_(segment_length),
      velocity_(velocity), zSource_(source_impedance),
      zLoad_(load_impedance), loss_(loss_neper_per_m),
      name_(std::move(name))
{
    if (z_.empty())
        divot_fatal("TransmissionLine needs at least one segment");
    if (segLen_ <= 0.0 || velocity_ <= 0.0)
        divot_fatal("bad geometry: segLen=%g velocity=%g",
                    segLen_, velocity_);
    if (zSource_ <= 0.0 || zLoad_ <= 0.0)
        divot_fatal("impedances must be positive: Zs=%g Zl=%g",
                    zSource_, zLoad_);
    for (double z : z_) {
        if (z <= 0.0)
            divot_fatal("segment impedance must be positive (got %g)", z);
    }
}

double
TransmissionLine::length() const
{
    return static_cast<double>(z_.size()) * segLen_;
}

void
TransmissionLine::setVelocity(double v)
{
    if (v <= 0.0)
        divot_fatal("velocity must be positive (got %g)", v);
    velocity_ = v;
}

double
TransmissionLine::oneWayDelay() const
{
    return length() / velocity_;
}

double
TransmissionLine::roundTripDelay() const
{
    return 2.0 * oneWayDelay();
}

void
TransmissionLine::setLoadImpedance(double z)
{
    if (z <= 0.0)
        divot_fatal("load impedance must be positive (got %g)", z);
    zLoad_ = z;
}

double
TransmissionLine::segmentAttenuation() const
{
    return std::exp(-loss_ * segLen_);
}

double
TransmissionLine::junctionReflection(std::size_t i) const
{
    if (i + 1 >= z_.size())
        divot_panic("junctionReflection index %zu out of range "
                    "(segments=%zu)", i, z_.size());
    return (z_[i + 1] - z_[i]) / (z_[i + 1] + z_[i]);
}

double
TransmissionLine::loadReflection() const
{
    const double zn = z_.back();
    return (zLoad_ - zn) / (zLoad_ + zn);
}

double
TransmissionLine::sourceReflection() const
{
    const double z0 = z_.front();
    return (zSource_ - z0) / (zSource_ + z0);
}

double
TransmissionLine::junctionPosition(std::size_t i) const
{
    return static_cast<double>(i + 1) * segLen_;
}

double
TransmissionLine::roundTripTimeAt(double distance) const
{
    return 2.0 * distance / velocity_;
}

double
TransmissionLine::distanceAtRoundTripTime(double t) const
{
    return 0.5 * t * velocity_;
}

TransmissionLine
reversedView(const TransmissionLine &line)
{
    std::vector<double> z(line.impedances().rbegin(),
                          line.impedances().rend());
    return TransmissionLine(std::move(z), line.segmentLength(),
                            line.velocity(), line.loadImpedance(),
                            line.sourceImpedance(),
                            line.lossNeperPerMeter(),
                            line.name() + ".rev");
}

} // namespace divot
