/**
 * @file
 * Exact traveling-wave (lattice / wave-digital) simulator.
 *
 * Each segment of a TransmissionLine carries one rightward and one
 * leftward voltage wave; per time step (one segment transit time)
 * waves scatter at every junction with the standard coefficients
 *
 *     rho      = (Z2 - Z1) / (Z2 + Z1)    (rightward incidence)
 *     t_fwd    = 1 + rho
 *     rho_rev  = -rho                      (leftward incidence)
 *     t_rev    = 1 - rho
 *
 * plus the source and load reflections at the ends. This captures
 * *all* multiple reflections exactly (for a lossless line the scheme
 * is energy-conserving, which the test-suite checks), making it the
 * golden reference for the faster first-order Born model.
 *
 * The detector output is the leftward wave arriving back at the
 * source end — what the paper's coupler (CPL in Fig. 1) extracts and
 * feeds to the comparator.
 */

#ifndef DIVOT_TXLINE_LATTICE_HH
#define DIVOT_TXLINE_LATTICE_HH

#include "signal/edge.hh"
#include "signal/waveform.hh"
#include "txline/txline.hh"

namespace divot {

/** Result of a lattice TDR run. */
struct TdrTrace
{
    Waveform reflection;   //!< back-reflected wave at the detector
    Waveform incident;     //!< incident wave as launched (reference)
    Waveform loadVoltage;  //!< voltage waveform delivered to the load
};

/**
 * Time-domain traveling-wave simulator for one TransmissionLine.
 */
class LatticeSimulator
{
  public:
    /**
     * @param line the line to simulate (held by reference; caller
     *             keeps it alive for the simulator's lifetime)
     */
    explicit LatticeSimulator(const TransmissionLine &line);

    /**
     * Launch one probe edge and record the back-reflection.
     *
     * @param edge          probe transition (data or clock edge)
     * @param capture_time  how long to record after launch; defaults
     *                      to 1.5x the round-trip delay plus the edge
     *                      duration so the load echo is fully captured
     * @return detector / incident / load traces sampled at the
     *         segment transit interval
     */
    TdrTrace probe(const EdgeShape &edge, double capture_time = 0.0) const;

    /** @return simulation time step (one segment transit). */
    double timeStep() const;

  private:
    const TransmissionLine &line_;
};

/**
 * Compute the steady-state "static IIP" — the idealized reflection
 * profile rho_i versus round-trip time with first-order transmission
 * losses — directly from the line geometry (no time stepping). This
 * is the analytic ground truth the reconstruction tests compare
 * against.
 */
Waveform idealReflectionProfile(const TransmissionLine &line);

} // namespace divot

#endif // DIVOT_TXLINE_LATTICE_HH
