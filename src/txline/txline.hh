/**
 * @file
 * The transmission-line model.
 *
 * A TransmissionLine is a chain of uniform segments, each with its own
 * characteristic impedance (the discretized IIP), plus the source
 * impedance of the driving transmitter and the load impedance of the
 * receiving chip. Tamper transforms (tamper.hh) and environment
 * effects (environment.hh) operate by producing modified copies, so a
 * pristine enrolled line is never mutated by an attack model.
 */

#ifndef DIVOT_TXLINE_TXLINE_HH
#define DIVOT_TXLINE_TXLINE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace divot {

/**
 * A discretized transmission line between a transmitter and a
 * receiver chip.
 */
class TransmissionLine
{
  public:
    /**
     * @param segment_impedances per-segment Z in ohms (the IIP)
     * @param segment_length     spatial step in meters
     * @param velocity           propagation velocity in m/s
     * @param source_impedance   driver output impedance in ohms
     * @param load_impedance     receiver input impedance in ohms
     * @param loss_neper_per_m   attenuation coefficient
     * @param name               label used in logs and experiments
     */
    TransmissionLine(std::vector<double> segment_impedances,
                     double segment_length, double velocity,
                     double source_impedance, double load_impedance,
                     double loss_neper_per_m = 0.0,
                     std::string name = "txline");

    /** @return number of segments. */
    std::size_t segments() const { return z_.size(); }

    /** @return characteristic impedance of segment i in ohms. */
    double impedanceAt(std::size_t i) const { return z_.at(i); }

    /** @return mutable per-segment impedance vector. */
    std::vector<double> &impedances() { return z_; }

    /** @return per-segment impedance vector. */
    const std::vector<double> &impedances() const { return z_; }

    /** @return spatial discretization step in meters. */
    double segmentLength() const { return segLen_; }

    /** @return physical length in meters. */
    double length() const;

    /** @return propagation velocity in m/s. */
    double velocity() const { return velocity_; }

    /** Override the propagation velocity (used by temperature model). */
    void setVelocity(double v);

    /** @return one-way propagation delay in seconds. */
    double oneWayDelay() const;

    /** @return round-trip delay in seconds (the Fig. 9 time span). */
    double roundTripDelay() const;

    /** @return driver output impedance in ohms. */
    double sourceImpedance() const { return zSource_; }

    /** @return receiver input impedance in ohms. */
    double loadImpedance() const { return zLoad_; }

    /** Replace the load impedance (chip swap / Trojan models). */
    void setLoadImpedance(double z);

    /** @return attenuation in neper per meter. */
    double lossNeperPerMeter() const { return loss_; }

    /** @return per-segment one-way amplitude attenuation factor. */
    double segmentAttenuation() const;

    /** @return label of this line. */
    const std::string &name() const { return name_; }

    /** Rename the line (clones of tampered lines tag themselves). */
    void setName(std::string name) { name_ = std::move(name); }

    /**
     * Reflection coefficient at the junction between segment i and
     * segment i+1 for a rightward-travelling wave:
     * rho = (Z_{i+1} - Z_i) / (Z_{i+1} + Z_i).
     */
    double junctionReflection(std::size_t i) const;

    /** Reflection coefficient looking into the load from the last
     *  segment. */
    double loadReflection() const;

    /** Reflection coefficient looking into the source from segment 0. */
    double sourceReflection() const;

    /** @return spatial position (meters) of junction i. */
    double junctionPosition(std::size_t i) const;

    /**
     * Convert a one-way distance from the source into the round-trip
     * reflection arrival time seen at the detector.
     */
    double roundTripTimeAt(double distance) const;

    /**
     * Convert a round-trip reflection time into the distance of the
     * discontinuity that produced it.
     */
    double distanceAtRoundTripTime(double t) const;

  private:
    std::vector<double> z_;
    double segLen_;
    double velocity_;
    double zSource_;
    double zLoad_;
    double loss_;
    std::string name_;
};

/**
 * The same physical line as seen from the other end: the impedance
 * profile reverses and the source/load roles swap. A memory-module-
 * side iTDR observes exactly this view of the shared bus.
 */
TransmissionLine reversedView(const TransmissionLine &line);

} // namespace divot

#endif // DIVOT_TXLINE_TXLINE_HH
