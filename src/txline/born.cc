#include "txline/born.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace divot {

BornTdrModel::BornTdrModel(const TransmissionLine &line)
    : line_(line)
{
}

Waveform
BornTdrModel::probe(const EdgeShape &edge, double dt,
                    double capture_time) const
{
    const std::size_t n = line_.segments();
    const double seg_dt = line_.segmentLength() / line_.velocity();
    if (dt <= 0.0)
        dt = seg_dt;
    if (capture_time <= 0.0)
        capture_time = 1.5 * line_.roundTripDelay() + 3.0 * edge.duration();
    const std::size_t steps =
        static_cast<std::size_t>(std::ceil(capture_time / dt));

    const double launch_gain =
        line_.impedanceAt(0) /
        (line_.sourceImpedance() + line_.impedanceAt(0));
    const double edge_center = 1.5 * edge.duration();
    const double a2 =
        line_.segmentAttenuation() * line_.segmentAttenuation();

    // Collect (arrival time, amplitude) of each single-bounce echo.
    struct Echo { double t; double amp; };
    std::vector<Echo> echoes;
    echoes.reserve(n);
    double fwd = launch_gain;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        fwd *= a2;
        const double r = line_.junctionReflection(i);
        echoes.push_back({static_cast<double>(2 * (i + 1)) * seg_dt,
                          fwd * r});
        fwd *= (1.0 - r * r);
    }
    fwd *= a2;
    echoes.push_back({static_cast<double>(2 * n) * seg_dt,
                      fwd * line_.loadReflection()});

    Waveform out = Waveform::zeros(dt, steps);
    // Superpose each echo as a shifted copy of the edge *deviation*
    // (zero before arrival, a constant plateau after the transition).
    // Evaluate the raised-cosine only inside the transition window and
    // add the plateau as a constant beyond it.
    const double dur = edge.duration();
    const double plateau =
        edge.kind() == EdgeKind::Falling ? -edge.amplitude()
                                         : edge.amplitude();
    for (const auto &echo : echoes) {
        const double t_start = echo.t + edge_center - dur / 2.0;
        const double t_stop = echo.t + edge_center + dur / 2.0;
        long i_lo = static_cast<long>(std::floor(t_start / dt));
        long i_hi = static_cast<long>(std::ceil(t_stop / dt));
        i_lo = std::max(0L, i_lo);
        i_hi = std::min(i_hi, static_cast<long>(steps) - 1);
        for (long i = i_lo; i <= i_hi; ++i) {
            const double t = static_cast<double>(i) * dt;
            out[static_cast<std::size_t>(i)] +=
                echo.amp * edge.deviationAt(t - echo.t - edge_center);
        }
        for (long i = i_hi + 1; i < static_cast<long>(steps); ++i)
            out[static_cast<std::size_t>(i)] += echo.amp * plateau;
    }
    return out;
}

} // namespace divot
