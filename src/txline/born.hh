/**
 * @file
 * First-order (Born-approximation) TDR model.
 *
 * For the weak discontinuities of a real PCB trace (|rho| ~ 1e-2),
 * multiple reflections are second order and the back-reflection is
 * well approximated by the superposition of single bounces:
 *
 *   r(t) ~= sum_i  T_i * rho_i * s(t - t_i),
 *
 * where s() is the incident edge, t_i the round-trip time to
 * discontinuity i, and T_i the accumulated two-way transmission and
 * attenuation. This is orders of magnitude faster than the lattice
 * simulator and is the production path for Monte-Carlo experiments;
 * its fidelity against the lattice reference is checked by tests and
 * quantified by the ablation bench.
 */

#ifndef DIVOT_TXLINE_BORN_HH
#define DIVOT_TXLINE_BORN_HH

#include "signal/edge.hh"
#include "signal/waveform.hh"
#include "txline/txline.hh"

namespace divot {

/**
 * Fast first-order reflection model for one TransmissionLine.
 */
class BornTdrModel
{
  public:
    /**
     * @param line the line to model (caller keeps it alive)
     */
    explicit BornTdrModel(const TransmissionLine &line);

    /**
     * Compute the back-reflection for one probe edge.
     *
     * @param edge         probe transition
     * @param dt           output sampling interval; defaults to the
     *                     segment transit time
     * @param capture_time record length; defaults as in the lattice
     * @return reflection waveform at the detector
     */
    Waveform probe(const EdgeShape &edge, double dt = 0.0,
                   double capture_time = 0.0) const;

  private:
    const TransmissionLine &line_;
};

} // namespace divot

#endif // DIVOT_TXLINE_BORN_HH
