/**
 * @file
 * Environmental effects on a transmission line (Section IV-C).
 *
 *  - Temperature: PCB laminate dielectric constant Dk rises with
 *    temperature [Hinaga et al.], raising the line capacitance. That
 *    lowers every local impedance *in the same proportion* and slows
 *    propagation — so the impedance *contrast* (the IIP shape) is
 *    largely preserved, and the genuine similarity only shifts
 *    slightly (paper: EER 0.06 % -> 0.14 % over a 23->75 C swing). A
 *    small differential term models the residual non-uniformity of
 *    the laminate's thermal response.
 *
 *  - Vibration / acoustics: a piezo driver chirped 1-50 Hz compresses
 *    and stretches the board. Within one IIP measurement (tens of
 *    microseconds) the strain is quasi-static, so each measurement
 *    sees a random strain sample that rescales segment lengths (time
 *    axis stretch) and modulates impedance through the geometry
 *    (paper: EER -> 0.27 %).
 *
 *  - EMI: a nearby high-speed digital circuit couples interference
 *    into the receiver. It is asynchronous to the probe edges, so the
 *    synchronized APC averaging suppresses it (paper: EER stays
 *    0.06 %). EMI therefore enters at the comparator input, not here;
 *    this header only carries its configuration.
 */

#ifndef DIVOT_TXLINE_ENVIRONMENT_HH
#define DIVOT_TXLINE_ENVIRONMENT_HH

#include "txline/txline.hh"
#include "util/rng.hh"

namespace divot {

/** Static environmental conditions for a measurement campaign. */
struct EnvironmentConditions
{
    double temperatureC = 23.0;       //!< ambient temperature
    double temperatureSwingHiC = 0.0; //!< when > temperatureC, each
                                      //!< measurement sees a random
                                      //!< temperature in the swing
                                      //!< range (the Fig. 8 oven test)
    double vibrationStrain = 0.0;     //!< peak strain from vibration
    double vibrationFreqLoHz = 1.0;   //!< chirp start frequency
    double vibrationFreqHiHz = 50.0;  //!< chirp stop frequency
    double emiAmplitude = 0.0;        //!< coupled EMI at receiver (V)
    double emiFrequencyHz = 312.7e6;  //!< asynchronous EMI tone
};

/**
 * Stateful environment model: produces a per-measurement snapshot of
 * the line under the configured conditions.
 */
class Environment
{
  public:
    /** Thermal coefficient of Dk per kelvin for FR-4-class laminate. */
    static constexpr double dkTempCoeff = 4.0e-4;

    /** Residual differential (non-uniform) thermal coefficient. */
    static constexpr double dkDifferentialCoeff = 2.5e-5;

    /** Reference (calibration) temperature in Celsius. */
    static constexpr double referenceTemperatureC = 23.0;

    /**
     * @param conditions campaign conditions
     * @param rng        random stream for per-measurement variation
     */
    Environment(EnvironmentConditions conditions, Rng rng);

    /**
     * Produce the line as it exists during one measurement: thermal
     * scaling plus the instantaneous vibration strain.
     *
     * @param line          pristine enrolled line
     * @param measurement_t wall-clock time of the measurement (drives
     *                      the vibration chirp phase)
     */
    TransmissionLine snapshot(const TransmissionLine &line,
                              double measurement_t);

    /** @return configured conditions. */
    const EnvironmentConditions &conditions() const { return cond_; }

    /**
     * Instantaneous strain of the vibration chirp at time t (exposed
     * for tests; zero when vibration is disabled).
     */
    double strainAt(double t) const;

  private:
    EnvironmentConditions cond_;
    Rng rng_;
};

} // namespace divot

#endif // DIVOT_TXLINE_ENVIRONMENT_HH
