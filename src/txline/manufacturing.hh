/**
 * @file
 * Manufacturing-variation model for PCB transmission lines.
 *
 * The paper's fingerprint is the Impedance Inhomogeneity Pattern
 * (IIP): the characteristic impedance Z(x) of a Tx-line varies with
 * distance because etching width, copper roughness, laminate Dk, and
 * layer-spacing all fluctuate during fabrication. These fluctuations
 * are random but *spatially correlated* — variations at nearby points
 * come from the same local process conditions. We model Z(x) as
 *
 *     Z(x) = Z0 * (1 + delta(x)),
 *
 * where delta(x) is a stationary Gaussian process with standard
 * deviation `relativeSigma` and exponential autocorrelation of length
 * `correlationLength`, synthesized by smoothing white Gaussian noise
 * with a Gaussian kernel. Each fabricated line gets an independent
 * draw — that independence is exactly what makes the IIP a PUF.
 */

#ifndef DIVOT_TXLINE_MANUFACTURING_HH
#define DIVOT_TXLINE_MANUFACTURING_HH

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.hh"

namespace divot {

/**
 * Parameters of the PCB fabrication process from which individual
 * lines are drawn.
 */
struct ProcessParams
{
    double nominalImpedance = 50.0;   //!< target Z0 in ohms
    double relativeSigma = 0.05;      //!< std-dev of delta(x); PCB
                                      //!< impedance tolerance is
                                      //!< typically 5-10 %
    double correlationLength = 4e-3;  //!< meters; local process scale
    double commonModeFraction = 0.35; //!< energy fraction of delta(x)
                                      //!< shared by every line of the
                                      //!< lot: panel-level etching and
                                      //!< laminate gradients affect
                                      //!< all traces on one board the
                                      //!< same way, which is why
                                      //!< impostor similarities are
                                      //!< not exactly zero (the paper
                                      //!< measured six lines on a
                                      //!< single PCB)
    double lossNeperPerMeter = 0.5;   //!< conductor+dielectric loss
    double velocity = 0.15e9;         //!< propagation velocity m/s
};

/**
 * A fabrication lot: draws independent impedance profiles for lines,
 * mimicking pulling boards from the same production run.
 */
class ManufacturingProcess
{
  public:
    /**
     * @param params process statistics
     * @param rng    lot-level random stream; each drawn line forks it
     */
    ManufacturingProcess(ProcessParams params, Rng rng);

    /**
     * Draw the impedance profile of one fabricated line.
     *
     * @param length         physical line length in meters
     * @param segment_length spatial discretization in meters
     * @return per-segment characteristic impedance in ohms
     */
    std::vector<double> drawImpedanceProfile(double length,
                                             double segment_length);

    /** @return process parameters. */
    const ProcessParams &params() const { return params_; }

  private:
    ProcessParams params_;
    Rng rng_;
    uint64_t drawCounter_ = 0;

    /** Lazily drawn lot-shared profiles, keyed by segment count. */
    std::map<std::size_t, std::vector<double>> shared_;
};

/**
 * Synthesize a correlated Gaussian profile directly (used by the
 * process above and unit-testable on its own).
 *
 * @param n                  number of points
 * @param sigma              target marginal standard deviation
 * @param correlation_points correlation length in sample units
 * @param rng                random stream
 */
std::vector<double> correlatedGaussianProfile(std::size_t n,
                                              double sigma,
                                              double correlation_points,
                                              Rng &rng);

} // namespace divot

#endif // DIVOT_TXLINE_MANUFACTURING_HH
