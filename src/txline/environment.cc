#include "txline/environment.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

Environment::Environment(EnvironmentConditions conditions, Rng rng)
    : cond_(conditions), rng_(rng)
{
    if (cond_.vibrationFreqHiHz < cond_.vibrationFreqLoHz)
        divot_fatal("vibration chirp range inverted (%g > %g)",
                    cond_.vibrationFreqLoHz, cond_.vibrationFreqHiHz);
}

double
Environment::strainAt(double t) const
{
    if (cond_.vibrationStrain == 0.0)
        return 0.0;
    // Linear chirp over a 1 s sweep period, repeating.
    const double sweep = 1.0;
    const double tau = std::fmod(t, sweep);
    const double f0 = cond_.vibrationFreqLoHz;
    const double k = (cond_.vibrationFreqHiHz - f0) / sweep;
    const double phase = 2.0 * M_PI * (f0 * tau + 0.5 * k * tau * tau);
    return cond_.vibrationStrain * std::sin(phase);
}

TransmissionLine
Environment::snapshot(const TransmissionLine &line, double measurement_t)
{
    double temperature = cond_.temperatureC;
    if (cond_.temperatureSwingHiC > cond_.temperatureC) {
        temperature = rng_.uniform(cond_.temperatureC,
                                   cond_.temperatureSwingHiC);
    }
    const double dT = temperature - referenceTemperatureC;

    // Uniform thermal effect: Dk up => C up => Z = sqrt(L/C) down and
    // v = 1/sqrt(LC) down, both by ~ dDk/2.
    const double dk_rel = dkTempCoeff * dT;
    const double z_scale = 1.0 / std::sqrt(1.0 + dk_rel);
    const double v_scale = 1.0 / std::sqrt(1.0 + dk_rel);

    // Instantaneous vibration strain: quasi-static within one
    // measurement. Stretching the board lengthens the line (velocity
    // scale on the time axis) and thins the trace slightly (impedance
    // rises with strain via geometry).
    const double strain = strainAt(measurement_t);
    const double strain_z = 1.0 + 0.5 * strain;
    const double strain_v = 1.0 / (1.0 + strain);

    TransmissionLine out = line;
    out.setVelocity(line.velocity() * v_scale * strain_v);

    auto &z = out.impedances();
    const std::size_t n = z.size();
    for (std::size_t i = 0; i < n; ++i) {
        // Residual differential thermal response: laminate regions do
        // not heat identically; a gentle position-dependent ripple
        // scaled by dT perturbs the IIP slightly. Deterministic per
        // position so repeated measurements at the same temperature
        // agree.
        const double x = static_cast<double>(i) / static_cast<double>(n);
        const double ripple = 1.0 + dkDifferentialCoeff * dT *
            std::sin(2.0 * M_PI * (3.0 * x + 0.25));
        z[i] *= z_scale * strain_z * ripple;
    }
    return out;
}

} // namespace divot
