#include "txline/manufacturing.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

ManufacturingProcess::ManufacturingProcess(ProcessParams params, Rng rng)
    : params_(params), rng_(rng)
{
    if (params.nominalImpedance <= 0.0)
        divot_fatal("nominal impedance must be positive (got %g)",
                    params.nominalImpedance);
    if (params.relativeSigma < 0.0 || params.relativeSigma >= 0.5)
        divot_fatal("relativeSigma out of sane range (got %g)",
                    params.relativeSigma);
    if (params.correlationLength <= 0.0)
        divot_fatal("correlationLength must be positive (got %g)",
                    params.correlationLength);
}

std::vector<double>
ManufacturingProcess::drawImpedanceProfile(double length,
                                           double segment_length)
{
    if (length <= 0.0 || segment_length <= 0.0 ||
        segment_length > length) {
        divot_fatal("bad line geometry: length=%g segment=%g",
                    length, segment_length);
    }
    const std::size_t n =
        static_cast<std::size_t>(std::round(length / segment_length));
    Rng line_rng = rng_.fork(++drawCounter_);
    const double corr_pts = params_.correlationLength / segment_length;
    auto delta = correlatedGaussianProfile(n, params_.relativeSigma,
                                           corr_pts, line_rng);

    // Mix in the lot-shared (panel-level) component at the configured
    // energy fraction; lines from the same lot correlate by exactly
    // this amount.
    const double f = params_.commonModeFraction;
    if (f > 0.0) {
        auto it = shared_.find(n);
        if (it == shared_.end()) {
            Rng lot_rng = rng_.fork(0xc0117);
            it = shared_.emplace(
                n, correlatedGaussianProfile(
                       n, params_.relativeSigma, corr_pts, lot_rng))
                     .first;
        }
        const double own = std::sqrt(1.0 - f);
        const double shared = std::sqrt(f);
        for (std::size_t i = 0; i < n; ++i)
            delta[i] = own * delta[i] + shared * it->second[i];
    }

    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i)
        z[i] = params_.nominalImpedance * (1.0 + delta[i]);
    return z;
}

std::vector<double>
correlatedGaussianProfile(std::size_t n, double sigma,
                          double correlation_points, Rng &rng)
{
    if (n == 0)
        return {};

    // Gaussian-kernel smoothing of white noise. The kernel half-width
    // is set so the output autocorrelation length ~= requested.
    const double kw = std::max(correlation_points, 1e-9);
    const long half = std::max(1L, static_cast<long>(std::ceil(3.0 * kw)));
    std::vector<double> kernel(static_cast<std::size_t>(2 * half + 1));
    double ksq = 0.0;
    for (long k = -half; k <= half; ++k) {
        const double v =
            std::exp(-0.5 * (static_cast<double>(k) / kw) *
                     (static_cast<double>(k) / kw));
        kernel[static_cast<std::size_t>(k + half)] = v;
        ksq += v * v;
    }
    // Normalize so the smoothed process keeps unit variance.
    const double norm = 1.0 / std::sqrt(ksq);
    for (auto &v : kernel)
        v *= norm;

    // Extended white-noise buffer so every output point sees a full
    // kernel (no edge variance droop).
    std::vector<double> white(n + static_cast<std::size_t>(2 * half));
    for (auto &w : white)
        w = rng.gaussian();

    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < kernel.size(); ++j)
            acc += kernel[j] * white[i + j];
        out[i] = sigma * acc;
    }
    return out;
}

} // namespace divot
