/**
 * @file
 * Physical-attack transforms on a transmission line.
 *
 * Each attack the paper demonstrates (Section IV-D/E/F) has a
 * distinct electrical signature, modelled here as a transformation of
 * the pristine TransmissionLine:
 *
 *  - LoadModification  (Fig. 9b/c): a Trojan chip or a cold-boot
 *    module swap replaces the receiver; the termination impedance
 *    changes, producing a large echo at the line end (~3.5 ns on the
 *    25 cm prototype line).
 *  - WireTap           (Fig. 9e/f): a soldered tap wire is a shunt
 *    stub; at the tap point the line sees the parallel combination of
 *    the continuing trace and the stub — a severe local impedance
 *    drop. Soldering also permanently damages the trace (the paper
 *    found the IIP non-reversible), modelled as residual damage left
 *    behind after the tap is removed.
 *  - MagneticProbe     (Fig. 9h/i): a non-contact EM probe couples a
 *    mutual inductance into the trace, locally *raising* Z = sqrt(L/C)
 *    slightly over the probe's footprint — the subtlest attack.
 *  - TrojanChipInsertion: an interposed chip in series creates two
 *    close discontinuities (in and out of the interposer).
 *
 * All transforms return a modified copy; the enrolled line object is
 * never mutated.
 */

#ifndef DIVOT_TXLINE_TAMPER_HH
#define DIVOT_TXLINE_TAMPER_HH

#include <memory>
#include <string>

#include "txline/txline.hh"

namespace divot {

/**
 * Interface of a physical attack applied to a line.
 */
class TamperTransform
{
  public:
    virtual ~TamperTransform() = default;

    /** @return a tampered copy of the pristine line. */
    virtual TransmissionLine apply(const TransmissionLine &line) const = 0;

    /** @return human-readable attack label. */
    virtual std::string describe() const = 0;

    /**
     * Nominal attack position as a fraction of line length in [0,1],
     * or a negative value when the attack has no single location
     * (e.g. load modification acts at the termination).
     */
    virtual double nominalPosition() const { return -1.0; }
};

/** Receiver-chip replacement (Trojan chip / cold-boot module swap). */
class LoadModification : public TamperTransform
{
  public:
    /**
     * @param new_load_impedance input impedance of the foreign chip
     */
    explicit LoadModification(double new_load_impedance);

    TransmissionLine apply(const TransmissionLine &line) const override;
    std::string describe() const override;
    double nominalPosition() const override { return 1.0; }

  private:
    double newLoad_;
};

/** Soldered tap wire: shunt stub plus permanent solder damage. */
class WireTap : public TamperTransform
{
  public:
    /**
     * @param position_fraction tap location along the line in [0,1]
     * @param stub_impedance    characteristic impedance of the tap
     *                          wire (the scope lead), ohms
     * @param extent            physical footprint of the solder
     *                          joint in meters
     * @param damage_fraction   residual relative impedance scar left
     *                          if the tap is later removed
     */
    WireTap(double position_fraction, double stub_impedance,
            double extent = 2e-3, double damage_fraction = 0.05);

    TransmissionLine apply(const TransmissionLine &line) const override;

    /**
     * @return the line after the attacker removes the tap: the stub
     * is gone but the solder scar remains (paper: IIP "permanently
     * destroyed and non-reversible").
     */
    TransmissionLine applyRemoved(const TransmissionLine &line) const;

    std::string describe() const override;
    double nominalPosition() const override { return position_; }

  private:
    double position_;
    double stubZ_;
    double extent_;
    double damage_;
};

/** Non-contact magnetic / EM probe in proximity to the trace. */
class MagneticProbe : public TamperTransform
{
  public:
    /**
     * @param position_fraction probe location along the line in [0,1]
     * @param coupling          relative local impedance increase from
     *                          the induced mutual inductance (small,
     *                          e.g. 0.01 for 1 %)
     * @param extent            probe footprint in meters
     */
    MagneticProbe(double position_fraction, double coupling = 0.08,
                  double extent = 5e-3);

    TransmissionLine apply(const TransmissionLine &line) const override;
    std::string describe() const override;
    double nominalPosition() const override { return position_; }

    /** @return relative impedance perturbation. */
    double coupling() const { return coupling_; }

  private:
    double position_;
    double coupling_;
    double extent_;
};

/** Series interposer chip inserted into the line. */
class TrojanChipInsertion : public TamperTransform
{
  public:
    /**
     * @param position_fraction insertion point in [0,1]
     * @param interposer_impedance Z through the interposer, ohms
     * @param extent            interposer length in meters
     */
    TrojanChipInsertion(double position_fraction,
                        double interposer_impedance = 65.0,
                        double extent = 4e-3);

    TransmissionLine apply(const TransmissionLine &line) const override;
    std::string describe() const override;
    double nominalPosition() const override { return position_; }

  private:
    double position_;
    double zInterposer_;
    double extent_;
};

} // namespace divot

#endif // DIVOT_TXLINE_TAMPER_HH
