#include "txline/tamper.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace divot {

namespace {

/** Clamp a fractional position into the valid (0,1) range. */
double
checkFraction(double f, const char *what)
{
    if (f < 0.0 || f > 1.0)
        divot_fatal("%s position fraction %g outside [0,1]", what, f);
    return f;
}

/**
 * Index range [lo, hi) of segments covered by a feature centered at
 * `fraction` of the line with the given physical extent.
 */
std::pair<std::size_t, std::size_t>
segmentRange(const TransmissionLine &line, double fraction, double extent)
{
    const double center = fraction * line.length();
    const double lo_m = center - extent / 2.0;
    const double hi_m = center + extent / 2.0;
    long lo = static_cast<long>(std::floor(lo_m / line.segmentLength()));
    long hi = static_cast<long>(std::ceil(hi_m / line.segmentLength()));
    lo = std::max(0L, lo);
    hi = std::min(hi, static_cast<long>(line.segments()));
    if (hi <= lo)
        hi = std::min(lo + 1, static_cast<long>(line.segments()));
    return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

} // namespace

// --- LoadModification -----------------------------------------------

LoadModification::LoadModification(double new_load_impedance)
    : newLoad_(new_load_impedance)
{
    if (new_load_impedance <= 0.0)
        divot_fatal("LoadModification impedance must be positive "
                    "(got %g)", new_load_impedance);
}

TransmissionLine
LoadModification::apply(const TransmissionLine &line) const
{
    TransmissionLine out = line;
    out.setLoadImpedance(newLoad_);
    out.setName(line.name() + "+load_mod");
    return out;
}

std::string
LoadModification::describe() const
{
    return "load modification (chip swap / cold boot), Zl -> " +
        std::to_string(newLoad_) + " ohm";
}

// --- WireTap ----------------------------------------------------------

WireTap::WireTap(double position_fraction, double stub_impedance,
                 double extent, double damage_fraction)
    : position_(checkFraction(position_fraction, "WireTap")),
      stubZ_(stub_impedance), extent_(extent), damage_(damage_fraction)
{
    if (stub_impedance <= 0.0)
        divot_fatal("WireTap stub impedance must be positive (got %g)",
                    stub_impedance);
}

TransmissionLine
WireTap::apply(const TransmissionLine &line) const
{
    TransmissionLine out = line;
    auto [lo, hi] = segmentRange(line, position_, extent_);
    auto &z = out.impedances();
    for (std::size_t i = lo; i < hi; ++i) {
        // At the tap, the wave sees the continuing trace in parallel
        // with the stub: Z_par = Z*Zstub / (Z + Zstub).
        z[i] = z[i] * stubZ_ / (z[i] + stubZ_);
        // The solder joint also scars the trace.
        z[i] *= (1.0 - damage_);
    }
    out.setName(line.name() + "+wiretap");
    return out;
}

TransmissionLine
WireTap::applyRemoved(const TransmissionLine &line) const
{
    TransmissionLine out = line;
    auto [lo, hi] = segmentRange(line, position_, extent_);
    auto &z = out.impedances();
    for (std::size_t i = lo; i < hi; ++i)
        z[i] *= (1.0 - damage_);
    out.setName(line.name() + "+wiretap_removed");
    return out;
}

std::string
WireTap::describe() const
{
    return "wire-tap (soldered stub " + std::to_string(stubZ_) +
        " ohm) at " + std::to_string(position_ * 100.0) + "% of line";
}

// --- MagneticProbe ----------------------------------------------------

MagneticProbe::MagneticProbe(double position_fraction, double coupling,
                             double extent)
    : position_(checkFraction(position_fraction, "MagneticProbe")),
      coupling_(coupling), extent_(extent)
{
    if (coupling <= 0.0 || coupling >= 1.0)
        divot_fatal("MagneticProbe coupling %g outside (0,1)", coupling);
}

TransmissionLine
MagneticProbe::apply(const TransmissionLine &line) const
{
    TransmissionLine out = line;
    auto [lo, hi] = segmentRange(line, position_, extent_);
    auto &z = out.impedances();
    const std::size_t span = hi - lo;
    for (std::size_t i = lo; i < hi; ++i) {
        // Taper the coupling with a raised-cosine profile across the
        // probe footprint (field strength falls off at the edges).
        const double u =
            (static_cast<double>(i - lo) + 0.5) /
            static_cast<double>(span);
        const double taper = 0.5 * (1.0 - std::cos(2.0 * M_PI * u));
        // Eddy-current mutual inductance raises local L, so
        // Z = sqrt(L/C) rises by ~coupling/2 at the center.
        z[i] *= (1.0 + 0.5 * coupling_ * taper);
    }
    out.setName(line.name() + "+magprobe");
    return out;
}

std::string
MagneticProbe::describe() const
{
    return "magnetic probe (coupling " + std::to_string(coupling_) +
        ") at " + std::to_string(position_ * 100.0) + "% of line";
}

// --- TrojanChipInsertion -----------------------------------------------

TrojanChipInsertion::TrojanChipInsertion(double position_fraction,
                                         double interposer_impedance,
                                         double extent)
    : position_(checkFraction(position_fraction, "TrojanChipInsertion")),
      zInterposer_(interposer_impedance), extent_(extent)
{
    if (interposer_impedance <= 0.0)
        divot_fatal("interposer impedance must be positive (got %g)",
                    interposer_impedance);
}

TransmissionLine
TrojanChipInsertion::apply(const TransmissionLine &line) const
{
    TransmissionLine out = line;
    auto [lo, hi] = segmentRange(line, position_, extent_);
    auto &z = out.impedances();
    for (std::size_t i = lo; i < hi; ++i)
        z[i] = zInterposer_;
    out.setName(line.name() + "+trojan");
    return out;
}

std::string
TrojanChipInsertion::describe() const
{
    return "series Trojan interposer (" + std::to_string(zInterposer_) +
        " ohm) at " + std::to_string(position_ * 100.0) + "% of line";
}

} // namespace divot
