#include "txline/lattice.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace divot {

LatticeSimulator::LatticeSimulator(const TransmissionLine &line)
    : line_(line)
{
}

double
LatticeSimulator::timeStep() const
{
    return line_.segmentLength() / line_.velocity();
}

TdrTrace
LatticeSimulator::probe(const EdgeShape &edge, double capture_time) const
{
    const std::size_t n = line_.segments();
    const double dt = timeStep();
    if (capture_time <= 0.0)
        capture_time = 1.5 * line_.roundTripDelay() + 3.0 * edge.duration();
    const std::size_t steps =
        static_cast<std::size_t>(std::ceil(capture_time / dt));

    // Precompute junction reflection coefficients.
    std::vector<double> rho(n > 0 ? n - 1 : 0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        rho[i] = line_.junctionReflection(i);
    const double rho_src = line_.sourceReflection();
    const double rho_load = line_.loadReflection();
    const double atten = line_.segmentAttenuation();

    // right[i]: wave entering segment i travelling right this step.
    // left[i]:  wave entering segment i travelling left this step.
    std::vector<double> right(n, 0.0), left(n, 0.0);
    std::vector<double> nright(n, 0.0), nleft(n, 0.0);

    TdrTrace out;
    out.reflection = Waveform::zeros(dt, steps);
    out.incident = Waveform::zeros(dt, steps);
    out.loadVoltage = Waveform::zeros(dt, steps);

    // The driver is a Thevenin source (open-circuit edge voltage
    // behind Zs); the incident wave entering segment 0 is the voltage
    // divider onto Z_0.
    const double launch_gain =
        line_.impedanceAt(0) /
        (line_.sourceImpedance() + line_.impedanceAt(0));
    // Center the edge after a small lead-in so its foot is captured.
    const double edge_center = 1.5 * edge.duration();

    for (std::size_t step = 0; step < steps; ++step) {
        const double t = static_cast<double>(step) * dt;

        // Waves arriving at boundaries after one transit; apply loss.
        const double src_arrival = left[0] * atten;     // at source end
        const double load_arrival = right[n - 1] * atten; // at load end

        // Detector sees the leftward wave arriving at the source.
        out.reflection[step] = src_arrival;

        const double vsrc = edge.deviationAt(t - edge_center);
        const double injected = vsrc * launch_gain;
        out.incident[step] = injected;

        // Source end: fresh injection plus re-reflection of the
        // returning wave.
        nright[0] = injected + rho_src * src_arrival;

        // Interior junctions.
        for (std::size_t i = 0; i + 1 < n; ++i) {
            const double a = right[i] * atten;     // rightward arrival
            const double b = left[i + 1] * atten;  // leftward arrival
            const double r = rho[i];
            nright[i + 1] = (1.0 + r) * a - r * b;
            nleft[i] = r * a + (1.0 - r) * b;
        }

        // Load end: reflection plus delivered voltage (incident +
        // reflected superpose at the load node).
        nleft[n - 1] = rho_load * load_arrival;
        out.loadVoltage[step] = (1.0 + rho_load) * load_arrival;

        right.swap(nright);
        left.swap(nleft);
    }
    return out;
}

Waveform
idealReflectionProfile(const TransmissionLine &line)
{
    const std::size_t n = line.segments();
    const double dt = line.segmentLength() / line.velocity();
    // Reflection from junction i arrives after a round trip through
    // i+1 segments; the load echo after n segments.
    std::vector<double> prof(2 * n + 1, 0.0);
    double fwd = 1.0;  // accumulated two-way transmission factor
    const double a2 = line.segmentAttenuation() * line.segmentAttenuation();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        fwd *= a2;
        const double r = line.junctionReflection(i);
        prof[2 * (i + 1)] += fwd * r;
        fwd *= (1.0 - r * r);
    }
    fwd *= a2;
    prof[2 * n] += fwd * line.loadReflection();
    return Waveform(dt, std::move(prof), 0.0);
}

} // namespace divot
