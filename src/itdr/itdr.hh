/**
 * @file
 * The integrated time-domain reflectometer (iTDR) — the paper's core
 * hardware contribution, assembled from the APC / PDM / ETS pieces.
 *
 * One measurement pass works exactly like the prototype:
 *
 *   for each ETS phase offset m (0 .. M-1, step tau):        [ETS]
 *       for each of K triggers (probe edges on the bus):
 *           strobe the comparator at offset m*tau after the
 *           edge, against the PDM triangle reference          [PDM]
 *           count 1s in the hit counter                       [APC]
 *       reconstruct V_sig(m*tau) from the hit probability
 *       through the inverse mixture CDF
 *
 * The output is the IIP estimate: the back-reflection voltage profile
 * versus round-trip time on a tau-spaced grid, plus the cycle/time
 * accounting that substantiates the paper's ~50 us claim.
 */

#ifndef DIVOT_ITDR_ITDR_HH
#define DIVOT_ITDR_ITDR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analog/comparator.hh"
#include "analog/coupler.hh"
#include "analog/pll.hh"
#include "fault/fault.hh"
#include "itdr/apc.hh"
#include "itdr/health.hh"
#include "itdr/kernels/kernels.hh"
#include "itdr/kernels/soa.hh"
#include "itdr/pdm.hh"
#include "itdr/trace_cache.hh"
#include "itdr/trigger.hh"
#include "signal/edge.hh"
#include "signal/noise.hh"
#include "signal/waveform.hh"
#include "telemetry/telemetry.hh"
#include "txline/txline.hh"
#include "util/rng.hh"

namespace divot {

/** Which physics backend renders the clean reflection trace. */
enum class ReflectionModel { Born, Lattice };

/**
 * How the APC hit counts are produced (DESIGN.md §11).
 *
 * Sampled draws every comparator strobe individually (or in draw-
 * compatible batches) — the reference model, bit-stable across
 * releases. Binomial samples the sufficient statistic instead: the
 * periodic Vernier reference gives each bin exactly `levels` distinct
 * operating points with trials/levels i.i.d. strobes each, so the
 * bin's hit count is distributed as
 * sum_j Binomial(trials/levels, Phi((V_sig + offset - ref_j)/sigma))
 * and can be drawn with `levels` binomials — O(levels) instead of
 * O(trials) hot-loop work, statistically equivalent but on a
 * different random stream. Configurations the analytic decomposition
 * cannot serve (PLL jitter, extra noise sources, data-lane triggers,
 * a metastable band, counter saturation) fall back to Sampled.
 */
enum class StrobeModel { Sampled, Binomial };

/** Full iTDR configuration. */
struct ItdrConfig
{
    PllParams pll;                  //!< clock + ETS phase stepping
    ComparatorParams comparator;    //!< analog front-end
    PdmConfig pdm;                  //!< reference modulation
    CouplerParams coupler;          //!< reflection pick-off
    TriggerMode triggerMode = TriggerMode::ClockLane;
    unsigned trialsPerPhase = 170;  //!< K (rounded up to the PDM level
                                    //!< count so levels weigh evenly)
    double captureWindow = 0.0;     //!< s; 0 => round trip + margin
    double edgeAmplitude = 0.8;     //!< probe edge swing, volts
    double edgeRiseTime = 25e-12;   //!< probe edge 10-90 %, seconds
    unsigned counterWidthBits = 12; //!< hit-counter register width
    double assumedNoiseSigma = 0.0; //!< reconstruction sigma; 0 => use
                                    //!< the comparator's true sigma
    bool selfCalibrate = false;     //!< run a power-up noise
                                    //!< self-calibration and use the
                                    //!< *estimated* sigma and offset
                                    //!< for reconstruction instead of
                                    //!< oracle values (see
                                    //!< itdr/calibrate.hh)
    ReflectionModel model = ReflectionModel::Born;
    bool batchedStrobes = true;     //!< use the block-strobe fast path
                                    //!< when the configuration allows
                                    //!< (clock lane, no jitter); false
                                    //!< forces the scalar per-trigger
                                    //!< loop (reference / ablation)
    StrobeModel strobeModel = StrobeModel::Sampled;
                                    //!< Sampled (default, bit-stable)
                                    //!< or the exact-binomial analytic
                                    //!< engine (see StrobeModel docs);
                                    //!< ineligible configurations fall
                                    //!< back to Sampled with a one-time
                                    //!< per-instance warning
    SimdTarget simd = SimdTarget::Auto; //!< strobe-kernel dispatch for
                                    //!< the analytic engine's SoA
                                    //!< sweep (DESIGN.md §13):
                                    //!< resolved once at construction
                                    //!< (DIVOT_SIMD overrides; Auto =>
                                    //!< best supported; unsupported =>
                                    //!< scalar with a warning)
    std::size_t traceCacheCapacity = 8; //!< retained clean detector
                                    //!< traces, content-keyed + LRU
                                    //!< (see itdr/trace_cache.hh);
                                    //!< 0 disables caching
    bool healthScreens = true;      //!< run the instrument-health
                                    //!< screens on every measurement
    double healthSaturationLimit = 0.5; //!< max fraction of bins at
                                    //!< probability exactly 0 or 1
                                    //!< before the measurement is
                                    //!< declared unhealthy
    double healthBudgetTolerance = 1.5; //!< bus-cycle overrun factor
                                    //!< vs the predicted budget before
                                    //!< the 50 us envelope is declared
                                    //!< blown
};

/** One measured IIP with its cost accounting. (The health record
 *  type lives in itdr/health.hh so verdict consumers can carry it
 *  without the instrument.) */
struct IipMeasurement
{
    Waveform iip;            //!< reconstructed V_sig vs round-trip time
    uint64_t busCycles = 0;  //!< bus clock cycles consumed
    uint64_t triggers = 0;   //!< probe edges used
    double duration = 0.0;   //!< wall-clock seconds on the bus
    unsigned trialsPerBin = 0; //!< effective K after PDM-level
                               //!< round-up — matches
                               //!< predictBudget().trialsPerBin, so
                               //!< budget accounting can reconcile
                               //!< against what actually ran
    MeasurementHealth health;  //!< instrument self-assessment
};

/**
 * The iTDR instrument bound to one bus interface.
 */
class ITdr
{
  public:
    /**
     * @param config instrument configuration
     * @param rng    dedicated random stream (noise, jitter, trigger
     *               data)
     */
    ITdr(ItdrConfig config, Rng rng);

    /**
     * Measure the IIP of a line.
     *
     * @param line        the line as it physically exists during this
     *                    measurement (tampered / environment-shifted
     *                    copies welcome)
     * @param extra_noise optional additional interference injected at
     *                    the comparator input (EMI model); may be null
     */
    IipMeasurement measure(const TransmissionLine &line,
                           NoiseSource *extra_noise = nullptr);

    /**
     * The noise-free detector trace the comparator samples — the
     * physics ground truth (exposed for tests and benches).
     */
    Waveform cleanDetectorTrace(const TransmissionLine &line) const;

    /**
     * The ideal (noise-free) IIP on the instrument's ETS bin grid:
     * what an infinite-trial measurement would converge to. Used to
     * compute the nominal design response subtracted during
     * fingerprint extraction, and by convergence tests.
     */
    Waveform idealIip(const TransmissionLine &line);

    /** @return number of ETS phase bins per measurement. */
    unsigned phaseBins() const { return bins_; }

    /** @return trials per phase bin actually used (K). */
    unsigned trialsPerPhase() const { return trials_; }

    /** @return instrument configuration. */
    const ItdrConfig &config() const { return config_; }

    /** @return the probe edge shape. */
    const EdgeShape &edge() const { return edge_; }

    /** @return the sigma used for reconstruction (after any
     *  self-calibration). */
    double effectiveSigma() const;

    /** @return the offset correction applied to reconstructions. */
    double offsetCorrection() const { return offsetCorrection_; }

    /** @return the reflection-trace cache (hit/miss accounting). */
    const TraceCache &traceCache() const { return traceCache_; }

    /**
     * Attach a fault injector: every subsequent measure() call asks it
     * for the FaultFrame of the next measurement index and applies the
     * resolved corruptions during the ETS sweep. Pass nullptr to
     * detach. The injector is not owned and must outlive the iTDR.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        faultInjector_ = injector;
    }

    /** @return the attached fault injector (nullptr when none). */
    FaultInjector *faultInjector() const { return faultInjector_; }

    /**
     * Re-run the power-up noise self-calibration against the live
     * comparator and rebuild the inverse-CDF tables with the fresh
     * sigma/offset estimates. This is the Quarantine-recovery hook:
     * after an unhealthy streak the Authenticator re-baselines the
     * instrument before trusting it again.
     *
     * @return true when the calibration converged and was applied
     */
    bool recalibrate();

    /** @return predicted bus cycles per measurement (0 until the
     *  first measure() freezes the bin grid). */
    uint64_t expectedCycles() const { return expectedCycles_; }

    /**
     * Attach a telemetry sink: subsequent measure() calls account
     * engine choice, bins/triggers/cycles, cache hit/miss deltas,
     * health screen outcomes, and fired faults under `prefix` (e.g.
     * "itdr.bus0w1") and emit one span per measurement stamped with
     * the instrument's own trigger-cycle clock. Pass nullptr (or a
     * disabled Telemetry) to detach; the detached cost is one branch
     * per measurement. Not owned; must outlive the iTDR.
     */
    void attachTelemetry(Telemetry *telemetry, const std::string &prefix);

    /** @return the attached telemetry sink (nullptr when none). */
    Telemetry *telemetry() const { return telemetry_; }

    /** @return the resolved strobe-kernel set this instrument runs
     *  (fixed at construction; see ItdrConfig::simd). */
    const StrobeKernels &kernels() const { return *kernels_; }

    /**
     * Point the analytic engine's SoA sweep at an external scratch
     * arena instead of the instrument-owned one. Every arena lane is
     * fully overwritten per measurement (see StrobeSoA), so sharing
     * one arena across instruments measured *serially* — the fleet
     * scheduler's batched mode — changes allocation behaviour, never
     * results. Pass nullptr to return to the owned arena. Not owned;
     * must outlive the attachment.
     */
    void attachKernelArena(StrobeSoA *arena)
    {
        soa_ = arena != nullptr ? arena : &soaOwn_;
    }

  private:
    ItdrConfig config_;
    Rng rng_;
    Comparator comparator_;
    PhaseLockedLoop pll_;
    PdmSchedule pdm_;
    Coupler coupler_;
    TriggerGenerator triggerGen_;
    EdgeShape edge_;
    unsigned trials_;
    unsigned bins_ = 0;
    double window_ = 0.0;
    double calibratedSigma_ = 0.0;
    double offsetCorrection_ = 0.0;
    FaultInjector *faultInjector_ = nullptr;
    uint64_t expectedCycles_ = 0;

    /** Per-bin inverse-CDF tables, built lazily on first measure. */
    std::vector<ApcInverseTable> inverse_;

    /** Content-keyed cache of rendered clean detector traces. */
    mutable TraceCache traceCache_;
    /** Uncached render target when the cache is disabled. */
    mutable Waveform traceScratch_;
    /** Per-bin reference schedule expanded for one strobe batch. */
    std::vector<double> refScratch_;
    /** One Vernier period of reference levels (levelCount() values),
     *  reused across bins so measure() allocates nothing. */
    std::vector<double> periodScratch_;
    /** Analytic engine: per-bin reference levels precomputed on the
     *  frozen bin grid (bins_ x levelCount(), row-major). Built by
     *  prepareBins only when strobeModel == Binomial. */
    std::vector<double> analyticLevels_;
    /** Analytic engine: precomputed reconstruction per (bin, hit
     *  count) — bins_ x (trials_ + 1), row-major, pre offset
     *  correction. A hit count only takes trials_ + 1 values, so the
     *  whole reconstruct sweep collapses to independent table loads
     *  (no data-dependent binary-search chains over the cold CDF
     *  grids); each entry is the verbatim output of
     *  inverse_[m].reconstruct on the HitCounter's probability, so
     *  results are bit-identical to the per-bin path. Built by
     *  prepareBins (Binomial only) and rebuilt by recalibrate. */
    std::vector<double> iipLut_;
    /** One-time fallback warning latch (per instrument). */
    bool analyticFallbackWarned_ = false;
    /** Resolved strobe kernels (never null; set in the ctor). */
    const StrobeKernels *kernels_ = nullptr;
    /** Instrument-owned SoA arena for the analytic sweep. */
    StrobeSoA soaOwn_;
    /** Active arena: soaOwn_ unless attachKernelArena overrode it. */
    StrobeSoA *soa_ = &soaOwn_;

    /** @name Telemetry plumbing (inert until attachTelemetry). */
    ///@{
    Telemetry *telemetry_ = nullptr;
    std::string tmPrefix_;
    Counter tmMeasurements_;
    Counter tmBins_;
    Counter tmTriggers_;
    Counter tmEngineAnalytic_;
    Counter tmEngineBatch_;
    Counter tmEngineScalar_;
    Counter tmFallbacks_;
    Counter tmKernelScalar_;
    Counter tmKernelAvx2_;
    Counter tmKernelNeon_;
    Counter tmCacheHits_;
    Counter tmCacheMisses_;
    Counter tmCacheEvictions_;
    Counter tmCacheLookups_;
    Counter tmHealthFail_;
    Counter tmSaturatedBins_;
    Counter tmNonFiniteBins_;
    Counter tmBudgetOverruns_;
    Counter tmFaultsFired_;
    HistogramMetric tmCycles_;
    /** Cache totals at the last telemetry flush, so per-measurement
     *  deltas (not gauges) feed the shared counters and lanes sharing
     *  a prefix still sum commutatively. */
    uint64_t tmCacheHitsSeen_ = 0;
    uint64_t tmCacheMissesSeen_ = 0;
    uint64_t tmCacheEvictionsSeen_ = 0;
    /** Per-instrument measurement ordinal for span records. */
    uint64_t tmOrdinal_ = 0;
    ///@}

    void prepareBins(const TransmissionLine &line);
    double reconstructionSigma() const;

    /** (Re)build iipLut_ from the current inverse_ tables. */
    void rebuildIipLut();

    /** Render the clean trace (no cache). */
    Waveform renderDetectorTrace(const TransmissionLine &line,
                                 double span) const;

    /** Cache-aware trace lookup; reference valid until next call. */
    const Waveform &detectorTraceFor(const TransmissionLine &line) const;

    /** Capture span for a line (window_ once bins are frozen). */
    double captureSpanFor(const TransmissionLine &line) const;
};

} // namespace divot

#endif // DIVOT_ITDR_ITDR_HH
