#include "itdr/counter.hh"

#include "util/logging.hh"

namespace divot {

HitCounter::HitCounter(unsigned width_bits)
    : width_(width_bits)
{
    if (width_bits == 0 || width_bits > 32)
        divot_fatal("HitCounter width %u outside 1..32", width_bits);
    max_ = width_bits == 32 ? 0xffffffffu : ((1u << width_bits) - 1u);
}

void
HitCounter::record(bool hit)
{
    if (trials_ >= max_)
        return;  // saturate: hardware stops counting, never wraps
    ++trials_;
    if (hit)
        ++hits_;
}

void
HitCounter::recordBatch(uint32_t hits, uint32_t trials)
{
    if (hits > trials)
        divot_panic("recordBatch hits %u > trials %u", hits, trials);
    const uint32_t room = max_ - trials_;
    const uint32_t accepted = trials < room ? trials : room;
    trials_ += accepted;
    hits_ += hits < accepted ? hits : accepted;
}

void
HitCounter::reset()
{
    hits_ = 0;
    trials_ = 0;
}

double
HitCounter::probability() const
{
    if (trials_ == 0)
        return 0.0;
    return static_cast<double>(hits_) / static_cast<double>(trials_);
}

} // namespace divot
