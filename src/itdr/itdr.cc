#include "itdr/itdr.hh"

#include <cmath>
#include <cstdio>

#include "itdr/calibrate.hh"
#include "itdr/counter.hh"
#include "txline/born.hh"
#include "txline/lattice.hh"
#include "util/logging.hh"

namespace divot {

namespace {

unsigned
roundUpToMultiple(unsigned value, unsigned base)
{
    if (base == 0)
        return value;
    const unsigned rem = value % base;
    return rem == 0 ? value : value + (base - rem);
}

} // namespace

ITdr::ITdr(ItdrConfig config, Rng rng)
    : config_(config), rng_(rng),
      comparator_(config.comparator, rng_.fork(0x1001)),
      pll_(config.pll, rng_.fork(0x1002)),
      pdm_(config.pdm, config.pll.clockFrequency),
      coupler_(config.coupler),
      triggerGen_(config.triggerMode, rng_.fork(0x1003)),
      edge_(config.edgeAmplitude, config.edgeRiseTime, EdgeKind::Rising),
      trials_(roundUpToMultiple(std::max(config.trialsPerPhase, 1u),
                                pdm_.levelCount())),
      traceCache_(config.traceCacheCapacity),
      kernels_(&strobeKernels(config.simd))
{
    if (config.trialsPerPhase == 0)
        divot_fatal("iTDR trialsPerPhase must be >= 1");
    if (trials_ != config.trialsPerPhase) {
        // Warn once per instrument (not per process: a second iTDR
        // with a different rounding would otherwise be silently
        // inflated). Silent inflation made predictBudget and the
        // measured cost disagree until IipMeasurement started
        // carrying the effective count.
        divot_warn("iTDR trialsPerPhase %u rounded up to %u (a "
                   "multiple of the %u PDM reference levels); "
                   "IipMeasurement::trialsPerBin carries the "
                   "effective count",
                   config.trialsPerPhase, trials_, pdm_.levelCount());
    }
    if (config.selfCalibrate) {
        // Power-up self-calibration: estimate sigma and offset from
        // the real (noisy) comparator instead of trusting oracle
        // parameters.
        const double guess = config.comparator.noiseSigma > 0.0
            ? config.comparator.noiseSigma
            : 0.5e-3;
        NoiseCalibrator calibrator(guess, 50000);
        const NoiseCalibration result = calibrator.run(comparator_);
        if (result.valid) {
            calibratedSigma_ = result.sigma;
            offsetCorrection_ = result.offset;
        } else {
            divot_warn("iTDR self-calibration failed; falling back to "
                       "configured sigma");
        }
    }
}

double
ITdr::effectiveSigma() const
{
    return reconstructionSigma();
}

void
ITdr::attachTelemetry(Telemetry *telemetry, const std::string &prefix)
{
    if (telemetry == nullptr || !telemetry->enabled()) {
        telemetry_ = nullptr;
        return;
    }
    telemetry_ = telemetry;
    tmPrefix_ = prefix;
    Registry &reg = telemetry->registry();
    tmMeasurements_ = reg.counter(prefix + ".measurements");
    tmBins_ = reg.counter(prefix + ".bins");
    tmTriggers_ = reg.counter(prefix + ".triggers");
    tmEngineAnalytic_ = reg.counter(prefix + ".engine.analytic");
    tmEngineBatch_ = reg.counter(prefix + ".engine.batch");
    tmEngineScalar_ = reg.counter(prefix + ".engine.scalar");
    tmFallbacks_ = reg.counter(prefix + ".engine.fallbacks");
    tmKernelScalar_ = reg.counter(prefix + ".kernel.scalar");
    tmKernelAvx2_ = reg.counter(prefix + ".kernel.avx2");
    tmKernelNeon_ = reg.counter(prefix + ".kernel.neon");
    tmCacheHits_ = reg.counter(prefix + ".cache.hits");
    tmCacheMisses_ = reg.counter(prefix + ".cache.misses");
    tmCacheEvictions_ = reg.counter(prefix + ".cache.evictions");
    tmCacheLookups_ = reg.counter(prefix + ".cache.lookups");
    tmHealthFail_ = reg.counter(prefix + ".health.failed");
    tmSaturatedBins_ = reg.counter(prefix + ".health.saturated_bins");
    tmNonFiniteBins_ = reg.counter(prefix + ".health.nonfinite_bins");
    tmBudgetOverruns_ = reg.counter(prefix + ".health.budget_overruns");
    tmFaultsFired_ = reg.counter(prefix + ".faults.fired");
    tmCycles_ = reg.histogram(
        prefix + ".cycles",
        {8192, 16384, 32768, 65536, 131072, 262144});
    // Cache counters export deltas from this point on, so attaching
    // mid-life never double-counts history.
    tmCacheHitsSeen_ = traceCache_.hits();
    tmCacheMissesSeen_ = traceCache_.misses();
    tmCacheEvictionsSeen_ = traceCache_.evictions();
}

double
ITdr::reconstructionSigma() const
{
    if (calibratedSigma_ > 0.0)
        return calibratedSigma_;
    return config_.assumedNoiseSigma > 0.0 ? config_.assumedNoiseSigma
                                           : comparator_.noiseSigma();
}

void
ITdr::prepareBins(const TransmissionLine &line)
{
    if (bins_ != 0)
        return;  // bins are frozen after the first measurement so
                 // successive IIPs stay index-aligned
    window_ = config_.captureWindow > 0.0
        ? config_.captureWindow
        : 1.1 * line.roundTripDelay() + 3.0 * edge_.duration();
    bins_ = static_cast<unsigned>(
        std::ceil(window_ / pll_.phaseStep()));
    if (bins_ == 0)
        divot_fatal("iTDR capture window too short (%g s)", window_);

    inverse_.clear();
    inverse_.reserve(bins_);
    const double sigma = reconstructionSigma();
    for (unsigned m = 0; m < bins_; ++m) {
        const double t0 = static_cast<double>(m) * pll_.phaseStep();
        inverse_.emplace_back(pdm_.levelsAt(t0), sigma);
    }

    if (config_.strobeModel == StrobeModel::Binomial) {
        // The analytic engine's per-bin reference levels. Trigger
        // cycles only ever advance in whole measurements of
        // bins_ * trials_ clock-lane triggers, and trials_ is a
        // multiple of the Vernier period, so every bin always starts
        // at modulation phase 0: the level sequence seen at bin m is
        // measurement-invariant and can be frozen here with the bin
        // grid.
        const unsigned levels = pdm_.levelCount();
        const double t_clk = pll_.clockPeriod();
        analyticLevels_.resize(static_cast<std::size_t>(bins_) * levels);
        for (unsigned m = 0; m < bins_; ++m) {
            const double t0 = static_cast<double>(m) * pll_.phaseStep();
            for (unsigned j = 0; j < levels; ++j) {
                analyticLevels_[static_cast<std::size_t>(m) * levels +
                                j] =
                    pdm_.referenceAt(static_cast<double>(j) * t_clk +
                                     t0);
            }
        }
        rebuildIipLut();
    }

    // Budget baseline for the health screen: expected cycles follow
    // from the trigger rate exactly as in predictBudget().
    const double trigger_rate =
        config_.triggerMode == TriggerMode::ClockLane ? 1.0 : 0.25;
    expectedCycles_ = static_cast<uint64_t>(std::ceil(
        static_cast<double>(bins_) * static_cast<double>(trials_) /
        trigger_rate));
}

bool
ITdr::recalibrate()
{
    const double guess = reconstructionSigma() > 0.0
        ? reconstructionSigma() : 0.5e-3;
    NoiseCalibrator calibrator(guess, 50000);
    const NoiseCalibration result = calibrator.run(comparator_);
    if (!result.valid) {
        divot_warn("iTDR recalibration failed to converge; keeping the "
                   "previous sigma/offset");
        return false;
    }
    calibratedSigma_ = result.sigma;
    offsetCorrection_ = result.offset;
    if (bins_ != 0) {
        // The inverse tables bake in sigma: rebuild them on the frozen
        // bin grid so reconstructions use the fresh estimate.
        for (unsigned m = 0; m < bins_; ++m) {
            const double t0 = static_cast<double>(m) * pll_.phaseStep();
            inverse_[m] = ApcInverseTable(pdm_.levelsAt(t0),
                                          calibratedSigma_);
        }
        if (config_.strobeModel == StrobeModel::Binomial)
            rebuildIipLut();
    }
    return true;
}

void
ITdr::rebuildIipLut()
{
    // One row per bin, one entry per possible hit count. The counter
    // round-trip reproduces finishBin's probability computation
    // exactly (including any width clamping), so a LUT lookup is
    // bit-identical to calling reconstruct in the bin loop.
    const std::size_t stride = static_cast<std::size_t>(trials_) + 1;
    iipLut_.resize(static_cast<std::size_t>(bins_) * stride);
    HitCounter counter(config_.counterWidthBits);
    for (unsigned m = 0; m < bins_; ++m) {
        for (unsigned h = 0; h <= trials_; ++h) {
            counter.reset();
            counter.recordBatch(h, trials_);
            iipLut_[static_cast<std::size_t>(m) * stride + h] =
                inverse_[m].reconstruct(counter.probability());
        }
    }
}

double
ITdr::captureSpanFor(const TransmissionLine &line) const
{
    return window_ > 0.0
        ? window_
        : 1.1 * line.roundTripDelay() + 3.0 * edge_.duration();
}

Waveform
ITdr::cleanDetectorTrace(const TransmissionLine &line) const
{
    return detectorTraceFor(line);
}

const Waveform &
ITdr::detectorTraceFor(const TransmissionLine &line) const
{
    const double span = captureSpanFor(line);
    if (config_.traceCacheCapacity == 0) {
        traceScratch_ = renderDetectorTrace(line, span);
        return traceScratch_;
    }
    // The key covers everything the render depends on that can change
    // between measurements: the line's electrical content (impedance
    // profile, terminations, velocity, loss — all rewritten by tamper
    // transforms and environment snapshots) plus the capture span.
    // Instrument-fixed parameters (edge, coupler, model) need no
    // keying because the cache lives inside this instrument.
    const TraceKey key = TraceKeyBuilder().add(line).add(span).key();
    if (const Waveform *hit = traceCache_.find(key))
        return *hit;
    return *traceCache_.insert(key, renderDetectorTrace(line, span));
}

Waveform
ITdr::renderDetectorTrace(const TransmissionLine &line, double span) const
{
    if (config_.model == ReflectionModel::Lattice) {
        LatticeSimulator sim(line);
        TdrTrace trace = sim.probe(edge_, span);
        return coupler_.detectorOutput(trace.reflection, trace.incident);
    }
    BornTdrModel born(line);
    Waveform refl = born.probe(edge_, 0.0, span);
    // Synthesize the incident wave the coupler leaks.
    const double launch_gain = line.impedanceAt(0) /
        (line.sourceImpedance() + line.impedanceAt(0));
    const double edge_center = 1.5 * edge_.duration();
    Waveform inc = Waveform::zeros(refl.dt(), refl.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
        inc[i] = launch_gain *
            edge_.deviationAt(inc.timeAt(i) - edge_center);
    }
    return coupler_.detectorOutput(refl, inc);
}

Waveform
ITdr::idealIip(const TransmissionLine &line)
{
    prepareBins(line);
    const Waveform &trace = detectorTraceFor(line);
    const double tau = pll_.phaseStep();
    Waveform out = Waveform::zeros(tau, bins_);
    for (unsigned m = 0; m < bins_; ++m)
        out[m] = trace.valueAt(static_cast<double>(m) * tau);
    return out;
}

IipMeasurement
ITdr::measure(const TransmissionLine &line, NoiseSource *extra_noise)
{
    prepareBins(line);
    const Waveform &trace = detectorTraceFor(line);

    const double tau = pll_.phaseStep();
    const double t_clk = pll_.clockPeriod();
    const uint64_t cycles_before = triggerGen_.cyclesElapsed();
    const uint64_t triggers_before = triggerGen_.triggersProduced();

    // One span per measurement, clocked by the instrument's own
    // trigger-cycle schedule (deterministic at any thread count).
    SpanScope span;
    uint64_t span_ordinal = 0;
    if (telemetry_ != nullptr) {
        span_ordinal = tmOrdinal_++;
        span = telemetry_->tracer().open(
            tmPrefix_ + ".measure", tmPrefix_,
            static_cast<double>(cycles_before) * t_clk, span_ordinal);
    }

    Waveform iip = Waveform::zeros(tau, bins_);
    HitCounter counter(config_.counterWidthBits);

    // Resolve this measurement's fault frame (a pure function of the
    // injector's measurement index, so campaigns stay deterministic at
    // any thread count).
    FaultFrame fault;
    if (faultInjector_ != nullptr)
        fault = faultInjector_->nextFrame();
    const double two_pi = 6.283185307179586;
    // A failed ETS phase step leaves the sampling offset lagging the
    // nominal grid; lags accumulate over the sweep.
    double phase_lag = 0.0;
    unsigned saturated_bins = 0;
    unsigned non_finite_bins = 0;

    // Per-bin fault application, identical for the batch and scalar
    // paths: a signal-input bias (offset drift + EMI burst evaluated
    // at the bin's nominal time, loop-invariant within the bin) before
    // strobing, and post-count corruption of the hit register (stuck
    // comparator output, register bit flips).
    auto faultBias = [&](double t0) {
        double bias = fault.comparatorOffset;
        if (fault.emiAmplitude > 0.0) {
            bias += fault.emiAmplitude *
                std::sin(two_pi * fault.emiFrequency * t0 +
                         fault.emiPhase);
        }
        return bias;
    };
    auto faultSampleTime = [&](double t0) {
        if (fault.pllDropoutRate > 0.0 &&
            fault.binRng.bernoulli(fault.pllDropoutRate)) {
            phase_lag += tau;
        }
        return std::max(0.0, t0 - phase_lag);
    };
    auto faultHits = [&](unsigned hits) {
        if (fault.comparatorStuck >= 0)
            hits = fault.comparatorStuck == 1 ? trials_ : 0;
        if (fault.counterFlipRate > 0.0 &&
            fault.binRng.bernoulli(fault.counterFlipRate)) {
            const unsigned bit = static_cast<unsigned>(
                fault.binRng.uniformInt(config_.counterWidthBits));
            hits ^= 1u << bit;
            if (hits > trials_)
                hits = trials_;
        }
        return hits;
    };
    auto finishBin = [&](unsigned m, unsigned hits) {
        if (hits == 0 || hits >= trials_)
            ++saturated_bins;
        counter.reset();
        counter.recordBatch(hits, trials_);
        double v = inverse_[m].reconstruct(counter.probability()) -
            offsetCorrection_;
        if (!std::isfinite(v)) {
            ++non_finite_bins;
            v = 0.0;
        }
        iip[m] = v;
    };

    const bool no_jitter = config_.pll.jitterRms <= 0.0;
    // Both fast paths need a loop-invariant signal (no jitter, no
    // per-trigger interference), arithmetic trigger cycles (clock
    // lane), statistically independent strobes (no metastable band),
    // and a counter that cannot saturate mid-batch. The analytic
    // engine additionally replaces the per-trial draws with exact
    // binomials (see StrobeModel); sampled configurations use the
    // draw-compatible block batch.
    const bool fast_eligible = no_jitter && extra_noise == nullptr &&
        config_.triggerMode == TriggerMode::ClockLane &&
        comparator_.params().metastableBand == 0.0 &&
        trials_ < (1ull << config_.counterWidthBits);
    const bool analytic =
        config_.strobeModel == StrobeModel::Binomial && fast_eligible;
    const bool batch = !analytic && config_.batchedStrobes &&
        fast_eligible;
    if (config_.strobeModel == StrobeModel::Binomial && !analytic) {
        if (telemetry_ != nullptr)
            tmFallbacks_.add();
        if (!analyticFallbackWarned_) {
            analyticFallbackWarned_ = true;
            divot_warn("iTDR analytic strobe engine unavailable for "
                       "this configuration (jitter, extra noise, "
                       "non-clock triggers, metastable band, or "
                       "counter saturation); falling back to sampled "
                       "strobes");
            if (telemetry_ != nullptr) {
                // One event per instrument naming the blocking
                // condition; the counter above tallies every
                // fallen-back measurement.
                const char *reason = !no_jitter ? "jitter"
                    : extra_noise != nullptr ? "extra-noise"
                    : config_.triggerMode != TriggerMode::ClockLane
                        ? "data-triggers"
                    : comparator_.params().metastableBand != 0.0
                        ? "metastable-band"
                    : "counter-saturation";
                TelemetryEvent event;
                event.time = static_cast<double>(cycles_before) * t_clk;
                event.ordinal = span_ordinal;
                event.kind = "itdr.fallback";
                event.tag = tmPrefix_;
                event.detail = reason;
                telemetry_->events().record(std::move(event));
            }
        }
    }
    if (telemetry_ != nullptr) {
        (analytic ? tmEngineAnalytic_
                  : batch ? tmEngineBatch_ : tmEngineScalar_).add();
    }

    pll_.resetPhase();
    if (analytic) {
        // O(levels) analytic path: each bin's hit count is drawn as
        // sum_j Binomial(trials/levels, p_j) over the bin's frozen
        // Vernier levels — no per-trial work at all. The trigger
        // generator still advances arithmetically so cycle accounting
        // and fault frames are identical to the sampled engine.
        const unsigned levels = pdm_.levelCount();
        const unsigned per_level = trials_ / levels;
        // The SoA sweep runs whole-measurement stages (gather signal
        // levels, one probability-grid kernel, one binomial-lane
        // kernel, reduce) instead of a per-bin loop. That reorders
        // nothing the comparator stream can see — but a fault frame
        // drawing from binRng in *both* the sample-time and hit hooks
        // would interleave those draws per bin in the legacy loop and
        // stage-by-stage here, so such frames keep the per-bin loop.
        const bool soa_ok = fault.pllDropoutRate <= 0.0 &&
            fault.counterFlipRate <= 0.0;
        if (soa_ok) {
            StrobeSoA &soa = *soa_;
            soa.resize(bins_, levels);
            for (unsigned m = 0; m < bins_; ++m) {
                const double t0 = static_cast<double>(m) * tau;
                triggerGen_.advanceClockTriggers(trials_);
                soa.vSig[m] =
                    trace.valueAt(faultSampleTime(t0)) + faultBias(t0);
                pll_.stepPhase();
            }
            comparator_.strobeAnalyticSoA(*kernels_,
                                          analyticLevels_.data(),
                                          bins_, levels, per_level,
                                          soa);
            // finishBin via iipLut_: same saturation/finiteness
            // accounting, same reconstruct value (precomputed), but
            // independent loads instead of per-bin CDF searches — the
            // prefetch keeps the sweep from serializing on the 0.5 MB
            // table's cache misses.
            const std::size_t stride =
                static_cast<std::size_t>(trials_) + 1;
            for (unsigned m = 0; m < bins_; ++m) {
                if (m + 8 < bins_) {
                    __builtin_prefetch(
                        &iipLut_[static_cast<std::size_t>(m + 8) *
                                     stride +
                                 soa.hits[m + 8]]);
                }
                const unsigned hits = faultHits(soa.hits[m]);
                if (hits == 0 || hits >= trials_)
                    ++saturated_bins;
                double v =
                    iipLut_[static_cast<std::size_t>(m) * stride +
                            hits] -
                    offsetCorrection_;
                if (!std::isfinite(v)) {
                    ++non_finite_bins;
                    v = 0.0;
                }
                iip[m] = v;
            }
            if (telemetry_ != nullptr) {
                (kernels_->target == SimdTarget::Avx2 ? tmKernelAvx2_
                 : kernels_->target == SimdTarget::Neon
                     ? tmKernelNeon_
                     : tmKernelScalar_)
                    .add();
            }
        } else {
            for (unsigned m = 0; m < bins_; ++m) {
                const double t0 = static_cast<double>(m) * tau;
                triggerGen_.advanceClockTriggers(trials_);
                const double v_sig =
                    trace.valueAt(faultSampleTime(t0)) + faultBias(t0);
                const unsigned hits =
                    faultHits(comparator_.strobeAnalytic(
                        v_sig,
                        analyticLevels_.data() +
                            static_cast<std::size_t>(m) * levels,
                        levels, per_level));
                finishBin(m, hits);
                pll_.stepPhase();
            }
        }
    } else if (batch) {
        const unsigned levels = pdm_.levelCount();
        refScratch_.resize(trials_);
        periodScratch_.resize(levels);
        for (unsigned m = 0; m < bins_; ++m) {
            const double t0 = static_cast<double>(m) * tau;
            const uint64_t cycle0 =
                triggerGen_.advanceClockTriggers(trials_);
            // The Vernier reference sequence is periodic in the trial
            // index with period `levels` (trials_ is a multiple, so
            // every level weighs equally): evaluate the triangle wave
            // `levels` times instead of trials_ times.
            for (unsigned j = 0; j < levels; ++j) {
                periodScratch_[j] = pdm_.referenceAt(
                    static_cast<double>(cycle0 + j) * t_clk + t0);
            }
            // Bit-exact copies, so the sampled engine's byte-identity
            // contract survives any dispatch target.
            kernels_->tilePeriodic(periodScratch_.data(), levels,
                                   refScratch_.data(), trials_);
            const double v_sig =
                trace.valueAt(faultSampleTime(t0)) + faultBias(t0);
            const unsigned hits = faultHits(comparator_.strobeBatch(
                v_sig, refScratch_.data(), trials_));
            finishBin(m, hits);
            pll_.stepPhase();
        }
    } else {
        for (unsigned m = 0; m < bins_; ++m) {
            const double t0 = static_cast<double>(m) * tau;
            const double t_sig0 = faultSampleTime(t0);
            const double bias = faultBias(t0);
            // Without jitter the signal lookup is loop-invariant
            // (the PDM reference still varies per trigger through
            // t_abs): hoist it out of the trial loop.
            const double v_fixed =
                no_jitter ? trace.valueAt(t_sig0) + bias : 0.0;
            counter.reset();
            for (unsigned k = 0; k < trials_; ++k) {
                const uint64_t cycle = triggerGen_.nextTriggerCycle();
                // Strobe jitter shifts the sampling instant relative
                // to the probe edge.
                double jitter = 0.0;
                if (!no_jitter)
                    jitter = rng_.gaussian(0.0, config_.pll.jitterRms);
                const double t_abs =
                    static_cast<double>(cycle) * t_clk + t0 + jitter;
                double v_sig = no_jitter
                    ? v_fixed : trace.valueAt(t_sig0 + jitter) + bias;
                if (extra_noise != nullptr)
                    v_sig += extra_noise->sampleAt(t_abs);
                const double v_ref = pdm_.referenceAt(t_abs);
                counter.record(comparator_.strobe(v_sig, v_ref));
            }
            finishBin(m, faultHits(
                static_cast<unsigned>(counter.hits())));
            pll_.stepPhase();
        }
    }

    IipMeasurement out;
    out.iip = std::move(iip);
    uint64_t cycles = triggerGen_.cyclesElapsed() - cycles_before;
    if (fault.cycleOverrunFactor != 1.0) {
        // The fault consumes real bus time (arbitration storms, retry
        // loops) without producing extra samples.
        cycles = static_cast<uint64_t>(std::llround(
            static_cast<double>(cycles) * fault.cycleOverrunFactor));
    }
    out.busCycles = cycles;
    out.triggers = triggerGen_.triggersProduced() - triggers_before;
    out.duration = static_cast<double>(out.busCycles) * t_clk;
    out.trialsPerBin = trials_;

    out.health.saturatedBinFraction =
        static_cast<double>(saturated_bins) /
        static_cast<double>(bins_);
    out.health.nonFiniteBins = non_finite_bins;
    out.health.budgetOverrun = expectedCycles_ > 0 &&
        static_cast<double>(out.busCycles) >
            config_.healthBudgetTolerance *
            static_cast<double>(expectedCycles_);
    if (config_.healthScreens) {
        out.health.ok = out.health.saturatedBinFraction <=
                config_.healthSaturationLimit &&
            out.health.nonFiniteBins == 0 && !out.health.budgetOverrun;
    }

    if (telemetry_ != nullptr) {
        tmMeasurements_.add();
        tmBins_.add(bins_);
        tmTriggers_.add(out.triggers);
        tmCycles_.record(out.busCycles);
        // Cache stats arrive as deltas so several instruments sharing
        // one prefix still sum commutatively (hits + misses ==
        // lookups by construction, an invariant the property harness
        // checks).
        const uint64_t cache_hits = traceCache_.hits();
        const uint64_t cache_misses = traceCache_.misses();
        const uint64_t cache_evictions = traceCache_.evictions();
        tmCacheHits_.add(cache_hits - tmCacheHitsSeen_);
        tmCacheMisses_.add(cache_misses - tmCacheMissesSeen_);
        tmCacheEvictions_.add(cache_evictions - tmCacheEvictionsSeen_);
        tmCacheLookups_.add((cache_hits - tmCacheHitsSeen_) +
                            (cache_misses - tmCacheMissesSeen_));
        tmCacheHitsSeen_ = cache_hits;
        tmCacheMissesSeen_ = cache_misses;
        tmCacheEvictionsSeen_ = cache_evictions;
        if (fault.any())
            tmFaultsFired_.add();
        tmSaturatedBins_.add(saturated_bins);
        tmNonFiniteBins_.add(non_finite_bins);
        if (out.health.budgetOverrun)
            tmBudgetOverruns_.add();
        const double t_end =
            static_cast<double>(cycles_before) * t_clk + out.duration;
        if (!out.health.ok) {
            tmHealthFail_.add();
            char detail[96];
            std::snprintf(detail, sizeof(detail),
                          "saturatedBins=%u nonFiniteBins=%u "
                          "budgetOverrun=%d",
                          saturated_bins, non_finite_bins,
                          out.health.budgetOverrun ? 1 : 0);
            TelemetryEvent event;
            event.time = t_end;
            event.ordinal = span_ordinal;
            event.kind = "health";
            event.tag = tmPrefix_;
            event.detail = detail;
            telemetry_->events().record(std::move(event));
        }
        span.close(t_end, out.busCycles);
    }
    return out;
}

} // namespace divot
