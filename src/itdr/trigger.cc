#include "itdr/trigger.hh"

#include "itdr/encoding.hh"
#include "util/logging.hh"

namespace divot {

TriggerGenerator::TriggerGenerator(TriggerMode mode, Rng rng)
    : mode_(mode), rng_(rng)
{
}

bool
TriggerGenerator::nextBit()
{
    if (mode_ == TriggerMode::DataLane)
        return rng_.bernoulli(0.5);

    // Encoded8b10b: serialize random payload octets through the line
    // code, refilling the bit buffer a block at a time.
    if (encodedPos_ >= encodedBits_.size()) {
        std::vector<uint8_t> payload(64);
        for (auto &b : payload)
            b = static_cast<uint8_t>(rng_.uniformInt(256));
        encodedBits_ = encoder_.encodeStream(payload);
        encodedPos_ = 0;
    }
    return encodedBits_[encodedPos_++];
}

uint64_t
TriggerGenerator::nextTriggerCycle()
{
    if (mode_ == TriggerMode::ClockLane) {
        const uint64_t c = cycle_;
        ++cycle_;
        ++triggers_;
        return c;
    }
    // Scan the (random or encoded) bit stream until a 1 is followed
    // by a 0 — a falling probe edge of known polarity.
    for (;;) {
        const bool bit = nextBit();
        const uint64_t c = cycle_;
        ++cycle_;
        const bool fire = havePrev_ && prevBit_ && !bit;
        prevBit_ = bit;
        havePrev_ = true;
        if (fire) {
            ++triggers_;
            return c;
        }
    }
}

uint64_t
TriggerGenerator::advanceClockTriggers(uint64_t n)
{
    if (mode_ != TriggerMode::ClockLane)
        divot_panic("advanceClockTriggers requires a clock lane");
    const uint64_t first = cycle_;
    cycle_ += n;
    triggers_ += n;
    return first;
}

double
TriggerGenerator::expectedTriggerRate() const
{
    switch (mode_) {
      case TriggerMode::ClockLane:
        return 1.0;
      case TriggerMode::DataLane:
        return 0.25;
      case TriggerMode::Encoded8b10b:
        // 8b/10b keeps transition density high; ~3 falling edges per
        // 10-bit symbol on random payloads.
        return 0.3;
    }
    return 0.25;
}

} // namespace divot
