#include "itdr/encoding.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace divot {

namespace {

// 5b/6b tables, indexed by the low five payload bits (EDCBA). Column
// 0 is the code transmitted when the running disparity is -1, column
// 1 when +1; bits are abcdei, msb = a.
const uint8_t six_b[32][2] = {
    {0b100111, 0b011000}, {0b011101, 0b100010},
    {0b101101, 0b010010}, {0b110001, 0b110001},
    {0b110101, 0b001010}, {0b101001, 0b101001},
    {0b011001, 0b011001}, {0b111000, 0b000111},
    {0b111001, 0b000110}, {0b100101, 0b100101},
    {0b010101, 0b010101}, {0b110100, 0b110100},
    {0b001101, 0b001101}, {0b101100, 0b101100},
    {0b011100, 0b011100}, {0b010111, 0b101000},
    {0b011011, 0b100100}, {0b100011, 0b100011},
    {0b010011, 0b010011}, {0b110010, 0b110010},
    {0b001011, 0b001011}, {0b101010, 0b101010},
    {0b011010, 0b011010}, {0b111010, 0b000101},
    {0b110011, 0b001100}, {0b100110, 0b100110},
    {0b010110, 0b010110}, {0b110110, 0b001001},
    {0b001110, 0b001110}, {0b101110, 0b010001},
    {0b011110, 0b100001}, {0b101011, 0b010100},
};

// 3b/4b tables, indexed by the high three payload bits (HGF); bits
// are fghj, msb = f. Entry 8 is the alternate D.x.A7.
const uint8_t four_b[9][2] = {
    {0b1011, 0b0100}, {0b1001, 0b1001}, {0b0101, 0b0101},
    {0b1100, 0b0011}, {0b1101, 0b0010}, {0b1010, 0b1010},
    {0b0110, 0b0110}, {0b1110, 0b0001}, {0b0111, 0b1000},
};

unsigned
popcount(uint32_t v)
{
    unsigned c = 0;
    while (v) {
        c += v & 1u;
        v >>= 1;
    }
    return c;
}

/** Disparity contribution of an n-bit block: ones - zeros. */
int
blockDisparity(uint32_t code, unsigned bits)
{
    return 2 * static_cast<int>(popcount(code)) -
        static_cast<int>(bits);
}

/** A7 substitution is required for these x values per entry RD. */
bool
useA7(unsigned x, int rd)
{
    if (rd == -1)
        return x == 17 || x == 18 || x == 20;
    return x == 11 || x == 13 || x == 14;
}

/** Reverse maps built once: valid code -> payload sub-value. */
const std::map<uint8_t, uint8_t> &
sixbReverse()
{
    static const std::map<uint8_t, uint8_t> map = [] {
        std::map<uint8_t, uint8_t> m;
        for (uint8_t x = 0; x < 32; ++x) {
            m[six_b[x][0]] = x;
            m[six_b[x][1]] = x;
        }
        return m;
    }();
    return map;
}

const std::map<uint8_t, uint8_t> &
fourbReverse()
{
    static const std::map<uint8_t, uint8_t> map = [] {
        std::map<uint8_t, uint8_t> m;
        for (uint8_t y = 0; y < 8; ++y) {
            m[four_b[y][0]] = y;
            m[four_b[y][1]] = y;
        }
        m[four_b[8][0]] = 7;  // A7 decodes as .7
        m[four_b[8][1]] = 7;
        return m;
    }();
    return map;
}

} // namespace

uint16_t
Encoder8b10b::encode(uint8_t byte)
{
    const unsigned x = byte & 0x1f;        // EDCBA
    const unsigned y = (byte >> 5) & 0x7;  // HGF

    const uint8_t code6 = six_b[x][rd_ == -1 ? 0 : 1];
    int rd_after6 = rd_ + blockDisparity(code6, 6);
    if (rd_after6 == 0)
        rd_after6 = rd_;  // neutral block keeps disparity

    unsigned row = y;
    if (y == 7 && useA7(x, rd_after6))
        row = 8;
    const uint8_t code4 = four_b[row][rd_after6 == -1 ? 0 : 1];
    int rd_after4 = rd_after6 + blockDisparity(code4, 4);
    if (rd_after4 == 0)
        rd_after4 = rd_after6;

    rd_ = rd_after4;
    if (rd_ != -1 && rd_ != 1)
        divot_panic("8b/10b running disparity escaped +/-1 (got %d)",
                    rd_);
    return static_cast<uint16_t>((code6 << 4) | code4);
}

bool
Encoder8b10b::decode(uint16_t symbol, uint8_t &byte) const
{
    const uint8_t code6 = static_cast<uint8_t>((symbol >> 4) & 0x3f);
    const uint8_t code4 = static_cast<uint8_t>(symbol & 0xf);
    const auto &six = sixbReverse();
    const auto &four = fourbReverse();
    const auto its = six.find(code6);
    const auto itf = four.find(code4);
    if (its == six.end() || itf == four.end())
        return false;
    byte = static_cast<uint8_t>((itf->second << 5) | its->second);
    return true;
}

std::vector<bool>
Encoder8b10b::encodeStream(const std::vector<uint8_t> &bytes)
{
    std::vector<bool> bits;
    bits.reserve(bytes.size() * 10);
    for (uint8_t b : bytes) {
        const uint16_t sym = encode(b);
        for (int i = 9; i >= 0; --i)
            bits.push_back((sym >> i) & 1u);
    }
    return bits;
}

unsigned
Encoder8b10b::onesCount(uint16_t symbol)
{
    return popcount(symbol & 0x3ff);
}

unsigned
Encoder8b10b::longestRun(const std::vector<bool> &bits)
{
    unsigned best = 0, run = 0;
    bool prev = false;
    bool first = true;
    for (bool b : bits) {
        if (first || b == prev) {
            ++run;
        } else {
            run = 1;
        }
        prev = b;
        first = false;
        best = std::max(best, run);
    }
    return best;
}

} // namespace divot
