#include "itdr/apc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

double
apcMixtureCdf(double v_sig, const std::vector<double> &levels,
              double sigma)
{
    if (levels.empty())
        divot_panic("apcMixtureCdf: no reference levels");
    if (sigma <= 0.0)
        divot_panic("apcMixtureCdf: sigma must be positive (got %g)",
                    sigma);
    double acc = 0.0;
    for (double ref : levels)
        acc += normalCdf((v_sig - ref) / sigma);
    return acc / static_cast<double>(levels.size());
}

double
apcMixturePdf(double v_sig, const std::vector<double> &levels,
              double sigma)
{
    if (levels.empty())
        divot_panic("apcMixturePdf: no reference levels");
    if (sigma <= 0.0)
        divot_panic("apcMixturePdf: sigma must be positive (got %g)",
                    sigma);
    double acc = 0.0;
    for (double ref : levels)
        acc += normalPdf((v_sig - ref) / sigma) / sigma;
    return acc / static_cast<double>(levels.size());
}

double
apcReconstruct(double p, const std::vector<double> &levels,
               double sigma)
{
    if (levels.empty())
        divot_panic("apcReconstruct: no reference levels");
    if (sigma <= 0.0)
        divot_panic("apcReconstruct: sigma must be positive (got %g)",
                    sigma);

    if (levels.size() == 1) {
        // Closed form (Eq. 2).
        return levels[0] + sigma * normalInvCdf(p);
    }

    // Clamp to the invertible interior; a fully saturated counter can
    // only say "beyond the range".
    const double eps = 1e-9;
    p = clampTo(p, eps, 1.0 - eps);

    const auto [lo_it, hi_it] =
        std::minmax_element(levels.begin(), levels.end());
    const double lo = *lo_it - 8.0 * sigma;
    const double hi = *hi_it + 8.0 * sigma;
    return invertMonotone(
        [&](double v) { return apcMixtureCdf(v, levels, sigma); },
        p, lo, hi);
}

ApcInverseTable::ApcInverseTable(const std::vector<double> &levels,
                                 double sigma, std::size_t grid)
{
    if (levels.empty())
        divot_panic("ApcInverseTable: no reference levels");
    if (sigma <= 0.0)
        divot_panic("ApcInverseTable: sigma must be positive (got %g)",
                    sigma);
    if (grid < 2)
        divot_panic("ApcInverseTable: grid too small (%zu)", grid);
    const auto [lo_it, hi_it] =
        std::minmax_element(levels.begin(), levels.end());
    vLo_ = *lo_it - 6.0 * sigma;
    vHi_ = *hi_it + 6.0 * sigma;
    dv_ = (vHi_ - vLo_) / static_cast<double>(grid - 1);

    // Each level's Phi((v - ref)/sigma) saturates outside a +-7.5
    // sigma transition band: beyond it the term is 0 or 1 to within
    // 4e-14 — far below both the counter's probability resolution
    // (1/trials) and the reconstruction clamp epsilon. Evaluating the
    // erf only inside the band cuts the build cost by the ratio of
    // the level span to the band width; `tail` counts the levels
    // fully saturated at 1 below each grid index.
    cdf_.assign(grid, 0.0);
    std::vector<double> tail(grid + 1, 0.0);
    const double cut = 7.5 * sigma;
    for (double ref : levels) {
        const double lo_v = ref - cut;
        const double hi_v = ref + cut;
        const std::size_t i0 = lo_v <= vLo_
            ? 0
            : std::min(grid, static_cast<std::size_t>(
                                 std::ceil((lo_v - vLo_) / dv_)));
        const std::size_t i1 = hi_v >= vHi_
            ? grid
            : std::min(grid, static_cast<std::size_t>(
                                 std::floor((hi_v - vLo_) / dv_)) + 1);
        for (std::size_t i = i0; i < i1; ++i) {
            const double v = vLo_ + dv_ * static_cast<double>(i);
            cdf_[i] += normalCdf((v - ref) / sigma);
        }
        tail[i1] += 1.0;
    }
    const double inv_count = 1.0 / static_cast<double>(levels.size());
    double ones = 0.0;
    for (std::size_t i = 0; i < grid; ++i) {
        ones += tail[i];
        cdf_[i] = (cdf_[i] + ones) * inv_count;
    }
    cdfFront_ = cdf_.front();
    cdfBack_ = cdf_.back();
    constexpr std::size_t kDirEntries = 32;
    dirStep_ = (grid + kDirEntries - 1) / kDirEntries;
    dir_.clear();
    for (std::size_t i = 0; i < grid; i += dirStep_)
        dir_.push_back(cdf_[i]);
}

double
ApcInverseTable::reconstruct(double p) const
{
    if (p <= cdfFront_)
        return vLo_;
    if (p >= cdfBack_)
        return vHi_;
    // CDF is monotone non-decreasing: bracket p in the directory,
    // then binary search one window. Yields exactly the whole-table
    // lower_bound index: dir_[d-1] < p bounds it below, dir_[d] >= p
    // (when present) bounds it above.
    const std::size_t d = static_cast<std::size_t>(
        std::lower_bound(dir_.begin(), dir_.end(), p) - dir_.begin());
    const std::size_t w_lo = (d - 1) * dirStep_;
    const std::size_t w_hi =
        d < dir_.size() ? std::min(d * dirStep_ + 1, cdf_.size())
                        : cdf_.size();
    const auto it = std::lower_bound(cdf_.begin() + w_lo + 1,
                                     cdf_.begin() + w_hi, p);
    const std::size_t hi = static_cast<std::size_t>(it - cdf_.begin());
    const std::size_t lo = hi - 1;
    const double span = cdf_[hi] - cdf_[lo];
    const double t = span > 0.0 ? (p - cdf_[lo]) / span : 0.5;
    return vLo_ + dv_ * (static_cast<double>(lo) + t);
}

double
apcLinearRegionWidth(const std::vector<double> &levels, double sigma,
                     double floor_frac)
{
    if (levels.empty())
        divot_panic("apcLinearRegionWidth: no reference levels");
    const auto [lo_it, hi_it] =
        std::minmax_element(levels.begin(), levels.end());
    const double lo = *lo_it - 6.0 * sigma;
    const double hi = *hi_it + 6.0 * sigma;

    // Scan the sensitivity on a fine grid.
    const std::size_t n = 2001;
    double peak = 0.0;
    std::vector<double> pdf(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double v = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(n - 1);
        pdf[i] = apcMixturePdf(v, levels, sigma);
        peak = std::max(peak, pdf[i]);
    }
    const double floor_v = floor_frac * peak;
    // Longest contiguous run above the floor.
    double best = 0.0, run_start = 0.0;
    bool in_run = false;
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = lo + step * static_cast<double>(i);
        if (pdf[i] >= floor_v) {
            if (!in_run) {
                in_run = true;
                run_start = x;
            }
        } else if (in_run) {
            best = std::max(best, x - run_start);
            in_run = false;
        }
    }
    if (in_run)
        best = std::max(best, hi - run_start);
    return best;
}

} // namespace divot
