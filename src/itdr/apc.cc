#include "itdr/apc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

double
apcMixtureCdf(double v_sig, const std::vector<double> &levels,
              double sigma)
{
    if (levels.empty())
        divot_panic("apcMixtureCdf: no reference levels");
    if (sigma <= 0.0)
        divot_panic("apcMixtureCdf: sigma must be positive (got %g)",
                    sigma);
    double acc = 0.0;
    for (double ref : levels)
        acc += normalCdf((v_sig - ref) / sigma);
    return acc / static_cast<double>(levels.size());
}

double
apcMixturePdf(double v_sig, const std::vector<double> &levels,
              double sigma)
{
    if (levels.empty())
        divot_panic("apcMixturePdf: no reference levels");
    if (sigma <= 0.0)
        divot_panic("apcMixturePdf: sigma must be positive (got %g)",
                    sigma);
    double acc = 0.0;
    for (double ref : levels)
        acc += normalPdf((v_sig - ref) / sigma) / sigma;
    return acc / static_cast<double>(levels.size());
}

double
apcReconstruct(double p, const std::vector<double> &levels,
               double sigma)
{
    if (levels.empty())
        divot_panic("apcReconstruct: no reference levels");
    if (sigma <= 0.0)
        divot_panic("apcReconstruct: sigma must be positive (got %g)",
                    sigma);

    if (levels.size() == 1) {
        // Closed form (Eq. 2).
        return levels[0] + sigma * normalInvCdf(p);
    }

    // Clamp to the invertible interior; a fully saturated counter can
    // only say "beyond the range".
    const double eps = 1e-9;
    p = clampTo(p, eps, 1.0 - eps);

    const auto [lo_it, hi_it] =
        std::minmax_element(levels.begin(), levels.end());
    const double lo = *lo_it - 8.0 * sigma;
    const double hi = *hi_it + 8.0 * sigma;
    return invertMonotone(
        [&](double v) { return apcMixtureCdf(v, levels, sigma); },
        p, lo, hi);
}

ApcInverseTable::ApcInverseTable(const std::vector<double> &levels,
                                 double sigma, std::size_t grid)
{
    if (levels.empty())
        divot_panic("ApcInverseTable: no reference levels");
    if (sigma <= 0.0)
        divot_panic("ApcInverseTable: sigma must be positive (got %g)",
                    sigma);
    if (grid < 2)
        divot_panic("ApcInverseTable: grid too small (%zu)", grid);
    const auto [lo_it, hi_it] =
        std::minmax_element(levels.begin(), levels.end());
    vLo_ = *lo_it - 6.0 * sigma;
    vHi_ = *hi_it + 6.0 * sigma;
    dv_ = (vHi_ - vLo_) / static_cast<double>(grid - 1);
    cdf_.resize(grid);
    for (std::size_t i = 0; i < grid; ++i) {
        cdf_[i] = apcMixtureCdf(vLo_ + dv_ * static_cast<double>(i),
                                levels, sigma);
    }
}

double
ApcInverseTable::reconstruct(double p) const
{
    if (p <= cdf_.front())
        return vLo_;
    if (p >= cdf_.back())
        return vHi_;
    // CDF is monotone non-decreasing: binary search the bracket.
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
    const std::size_t hi = static_cast<std::size_t>(it - cdf_.begin());
    const std::size_t lo = hi - 1;
    const double span = cdf_[hi] - cdf_[lo];
    const double t = span > 0.0 ? (p - cdf_[lo]) / span : 0.5;
    return vLo_ + dv_ * (static_cast<double>(lo) + t);
}

double
apcLinearRegionWidth(const std::vector<double> &levels, double sigma,
                     double floor_frac)
{
    if (levels.empty())
        divot_panic("apcLinearRegionWidth: no reference levels");
    const auto [lo_it, hi_it] =
        std::minmax_element(levels.begin(), levels.end());
    const double lo = *lo_it - 6.0 * sigma;
    const double hi = *hi_it + 6.0 * sigma;

    // Scan the sensitivity on a fine grid.
    const std::size_t n = 2001;
    double peak = 0.0;
    std::vector<double> pdf(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double v = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(n - 1);
        pdf[i] = apcMixturePdf(v, levels, sigma);
        peak = std::max(peak, pdf[i]);
    }
    const double floor_v = floor_frac * peak;
    // Longest contiguous run above the floor.
    double best = 0.0, run_start = 0.0;
    bool in_run = false;
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = lo + step * static_cast<double>(i);
        if (pdf[i] >= floor_v) {
            if (!in_run) {
                in_run = true;
                run_start = x;
            }
        } else if (in_run) {
            best = std::max(best, x - run_start);
            in_run = false;
        }
    }
    if (in_run)
        best = std::max(best, hi - run_start);
    return best;
}

} // namespace divot
