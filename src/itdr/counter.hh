/**
 * @file
 * Hardware hit-counter bank.
 *
 * The Vivado utilization report attributes ~80 % of the DIVOT
 * prototype's registers to counters; this model keeps the counting
 * honest to the hardware: fixed-width hit and trial counters that
 * saturate rather than wrap, one logical bin at a time (the hardware
 * reuses one physical counter across the ETS sweep — bins are visited
 * sequentially, not concurrently).
 */

#ifndef DIVOT_ITDR_COUNTER_HH
#define DIVOT_ITDR_COUNTER_HH

#include <cstdint>

namespace divot {

/**
 * A saturating hit/trial counter pair of configurable width.
 */
class HitCounter
{
  public:
    /**
     * @param width_bits counter register width (1..32)
     */
    explicit HitCounter(unsigned width_bits = 16);

    /** Record one comparator strobe result. */
    void record(bool hit);

    /**
     * Record a whole strobe batch at once. Equivalent to `trials`
     * record() calls of which `hits` were 1s, provided the batch fits
     * below the saturation limit; when it does not, the trial counter
     * saturates and the hit count is clamped to the accepted trials
     * (callers that need exact saturation ordering must use the
     * scalar path — see ITdr's batch gate).
     */
    void recordBatch(uint32_t hits, uint32_t trials);

    /** Reset both counters (start of a new bin). */
    void reset();

    /** @return number of 1s recorded (saturating). */
    uint32_t hits() const { return hits_; }

    /** @return number of trials recorded (saturating). */
    uint32_t trials() const { return trials_; }

    /** @return true once the trial counter has saturated. */
    bool saturated() const { return trials_ >= max_; }

    /** @return empirical hit probability (0 when no trials). */
    double probability() const;

    /** @return register width in bits. */
    unsigned widthBits() const { return width_; }

  private:
    unsigned width_;
    uint32_t max_;
    uint32_t hits_ = 0;
    uint32_t trials_ = 0;
};

} // namespace divot

#endif // DIVOT_ITDR_COUNTER_HH
