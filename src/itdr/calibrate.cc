#include "itdr/calibrate.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

NoiseCalibrator::NoiseCalibrator(double cal_voltage, std::size_t trials)
    : calVoltage_(cal_voltage), trials_(trials)
{
    if (cal_voltage <= 0.0)
        divot_fatal("calibration voltage must be positive (got %g)",
                    cal_voltage);
    if (trials == 0)
        divot_fatal("calibration needs at least one trial");
}

NoiseCalibration
NoiseCalibrator::run(Comparator &comparator) const
{
    NoiseCalibration out;
    out.trials = trials_;

    // Hit probabilities against the +/- references with a quiet input.
    auto probe = [&](double v_ref) {
        std::size_t hits = 0;
        for (std::size_t t = 0; t < trials_; ++t)
            hits += comparator.strobe(0.0, v_ref);
        return static_cast<double>(hits) /
            static_cast<double>(trials_);
    };
    const double p_hi = probe(+calVoltage_);
    const double p_lo = probe(-calVoltage_);

    // Saturated levels carry no slope information.
    const double eps = 1.0 / static_cast<double>(trials_);
    if (p_hi <= eps || p_hi >= 1.0 - eps || p_lo <= eps ||
        p_lo >= 1.0 - eps) {
        divot_warn("noise calibration saturated (p=%.4f/%.4f): "
                   "V_cal=%g likely >> sigma", p_hi, p_lo,
                   calVoltage_);
        return out;
    }

    // p_hi = Phi((offset - V_cal)/sigma), p_lo = Phi((offset +
    // V_cal)/sigma). Two equations, two unknowns:
    const double q_hi = normalInvCdf(p_hi);  // (offset - V)/sigma
    const double q_lo = normalInvCdf(p_lo);  // (offset + V)/sigma
    const double denom = q_lo - q_hi;
    if (denom <= 0.0) {
        divot_warn("noise calibration inconsistent (q_lo <= q_hi)");
        return out;
    }
    out.sigma = 2.0 * calVoltage_ / denom;
    out.offset = 0.5 * (q_lo + q_hi) * out.sigma;
    out.valid = true;
    return out;
}

} // namespace divot
