/**
 * @file
 * 8b/10b channel coding (Widmer & Franaszek) — the line code of the
 * high-speed serial links DIVOT targets (PCIe 1/2, SATA, GbE).
 *
 * Section II-E motivates the data-lane trigger with the observation
 * that channel encoding makes symbols occur evenly: 8b/10b bounds the
 * running disparity to +/-1 at symbol boundaries and guarantees
 * frequent transitions, so a 1->0 probe-edge trigger always finds
 * work within a few bit times. This implementation provides the full
 * 5b/6b + 3b/4b data encoding with running-disparity tracking, a
 * decoder, and the bit-stream view the trigger generator scans.
 */

#ifndef DIVOT_ITDR_ENCODING_HH
#define DIVOT_ITDR_ENCODING_HH

#include <cstdint>
#include <vector>

namespace divot {

/**
 * Running-disparity-tracking 8b/10b encoder/decoder for data symbols
 * (Dxx.y; control symbols are out of scope for bus payloads).
 */
class Encoder8b10b
{
  public:
    Encoder8b10b() = default;

    /**
     * Encode one data octet into a 10-bit symbol.
     *
     * @param byte payload octet
     * @return 10-bit code, bit 9 transmitted first (abcdei fghj)
     */
    uint16_t encode(uint8_t byte);

    /**
     * Decode one 10-bit symbol.
     *
     * @param symbol  10-bit code
     * @param byte    decoded octet on success
     * @return false when the symbol is not a valid data code
     */
    bool decode(uint16_t symbol, uint8_t &byte) const;

    /** @return current running disparity: -1 or +1. */
    int runningDisparity() const { return rd_; }

    /** Reset the running disparity to the link-startup value (-1). */
    void reset() { rd_ = -1; }

    /**
     * Encode a byte stream into the transmitted bit sequence
     * (msb-first per symbol), ready for edge scanning.
     */
    std::vector<bool> encodeStream(const std::vector<uint8_t> &bytes);

    /** Population count of a 10-bit symbol. */
    static unsigned onesCount(uint16_t symbol);

    /**
     * Longest run of identical bits in a bit sequence (8b/10b
     * guarantees <= 5).
     */
    static unsigned longestRun(const std::vector<bool> &bits);

  private:
    int rd_ = -1;
};

} // namespace divot

#endif // DIVOT_ITDR_ENCODING_HH
