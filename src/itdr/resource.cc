#include "itdr/resource.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

namespace {

unsigned
bitsFor(uint64_t values)
{
    unsigned bits = 1;
    while ((1ull << bits) < values)
        ++bits;
    return bits;
}

} // namespace

double
ResourceEstimate::counterRegisterFraction() const
{
    if (totalRegisters == 0)
        return 0.0;
    return static_cast<double>(counterRegisters) /
        static_cast<double>(totalRegisters);
}

unsigned
ResourceEstimate::registersForBuses(unsigned n) const
{
    if (n == 0)
        return 0;
    const unsigned perLane = totalRegisters - shareableRegisters;
    return shareableRegisters + n * perLane;
}

unsigned
ResourceEstimate::lutsForBuses(unsigned n) const
{
    if (n == 0)
        return 0;
    const unsigned perLane = totalLuts - shareableLuts;
    return shareableLuts + n * perLane;
}

ResourceEstimate
estimateResources(const ItdrConfig &config, unsigned bins)
{
    if (bins == 0)
        divot_fatal("estimateResources: bins must be >= 1");

    ResourceEstimate est;

    // Counter datapath: hit counter, trial counter, the readout
    // shadow register, the trial-target compare register, and the ETS
    // bin index. These dominate — the Vivado report attributed ~80 %
    // of the prototype's registers to counter generation.
    const unsigned w = config.counterWidthBits;
    const unsigned binBits = bitsFor(bins);
    const unsigned counterRegs = 4 * w + binBits;
    // Increment/compare logic is ~1 LUT per counter bit for the two
    // live counters plus half a LUT per index bit.
    const unsigned counterLuts = 2 * w + (binBits + 1) / 2;
    est.blocks.push_back({"counters", counterRegs, counterLuts, false});
    est.counterRegisters = counterRegs;

    // Trigger detector: 2-bit symbol history + compare (data lane),
    // or a trivial passthrough (clock lane).
    const bool dataLane = config.triggerMode == TriggerMode::DataLane;
    est.blocks.push_back({"trigger", dataLane ? 3u : 1u,
                          dataLane ? 4u : 2u, false});

    // Comparator capture flop + synchronizer.
    est.blocks.push_back({"capture", 2u, 1u, false});

    // Control FSM: idle/sweep/dump states + handshake.
    est.blocks.push_back({"fsm", 3u, 7u, false});

    // --- shareable blocks (one per chip, not per iTDR) ---

    // PLL phase-step command interface.
    est.blocks.push_back({"pll-ctl", 3u, 5u, true});

    // Triangle (PDM) generator: a toggling output + small divider.
    est.blocks.push_back({"pdm-gen", 3u, 4u, true});

    // Reconstruction / serializer shared datapath (inverse-CDF ROM
    // addressing plus the result shift chain).
    est.blocks.push_back({"recon", 2u, 76u, true});

    for (const auto &b : est.blocks) {
        est.totalRegisters += b.registers;
        est.totalLuts += b.luts;
        if (b.shareable) {
            est.shareableRegisters += b.registers;
            est.shareableLuts += b.luts;
        }
    }
    return est;
}

} // namespace divot
