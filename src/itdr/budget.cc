#include "itdr/budget.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

namespace {

double
windowFor(const ItdrConfig &config, double round_trip_delay)
{
    if (config.captureWindow > 0.0)
        return config.captureWindow;
    const EdgeShape edge(config.edgeAmplitude, config.edgeRiseTime);
    return 1.1 * round_trip_delay + 3.0 * edge.duration();
}

double
triggerRate(const ItdrConfig &config)
{
    return config.triggerMode == TriggerMode::ClockLane ? 1.0 : 0.25;
}

unsigned
levelCount(const ItdrConfig &config)
{
    return config.pdm.enabled ? config.pdm.p : 1u;
}

} // namespace

MeasurementBudget
predictBudget(const ItdrConfig &config, double round_trip_delay)
{
    MeasurementBudget b;
    const double window = windowFor(config, round_trip_delay);
    b.bins = static_cast<unsigned>(
        std::ceil(window / config.pll.phaseStep));
    const unsigned levels = levelCount(config);
    unsigned k = std::max(config.trialsPerPhase, 1u);
    const unsigned rem = k % levels;
    if (rem != 0)
        k += levels - rem;
    b.trialsPerBin = k;
    b.triggers = static_cast<uint64_t>(b.bins) * b.trialsPerBin;
    b.expectedCycles = static_cast<uint64_t>(
        std::ceil(static_cast<double>(b.triggers) / triggerRate(config)));
    b.expectedDuration = static_cast<double>(b.expectedCycles) /
        config.pll.clockFrequency;
    return b;
}

unsigned
maxTrialsWithinLatency(const ItdrConfig &config, double round_trip_delay,
                       double latency_target)
{
    if (latency_target <= 0.0)
        divot_fatal("latency target must be positive (got %g)",
                    latency_target);
    const double window = windowFor(config, round_trip_delay);
    const unsigned bins = static_cast<unsigned>(
        std::ceil(window / config.pll.phaseStep));
    const double cycles_avail =
        latency_target * config.pll.clockFrequency * triggerRate(config);
    const unsigned k_max = static_cast<unsigned>(
        std::floor(cycles_avail / static_cast<double>(bins)));
    const unsigned levels = levelCount(config);
    if (k_max < levels)
        return 0;
    return (k_max / levels) * levels;
}

} // namespace divot
