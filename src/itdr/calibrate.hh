/**
 * @file
 * Runtime noise calibration for the APC front-end.
 *
 * Reconstruction through CDF^{-1} needs the input-referred noise
 * sigma. Silicon noise varies chip to chip and drifts with
 * temperature (the very problem PDM mitigates, Section II-C), so a
 * production iTDR measures its own sigma at power-up: with the bus
 * quiet (V_sig = 0), strobe the comparator against two known
 * reference levels +/- V_cal and invert
 *
 *     p{Y=1 | ref = +-V_cal} = Phi(-+ V_cal / sigma)
 *
 * for sigma. Averaging the two sides also cancels the comparator's
 * static input offset, which this calibrator estimates as a bonus.
 */

#ifndef DIVOT_ITDR_CALIBRATE_HH
#define DIVOT_ITDR_CALIBRATE_HH

#include "analog/comparator.hh"

namespace divot {

/** Outcome of a noise self-calibration. */
struct NoiseCalibration
{
    double sigma = 0.0;        //!< estimated input-referred noise, V
    double offset = 0.0;       //!< estimated static input offset, V
    std::size_t trials = 0;    //!< strobes spent per reference level
    bool valid = false;        //!< false when a level saturated
};

/**
 * Self-calibrates a comparator's noise sigma and offset.
 */
class NoiseCalibrator
{
  public:
    /**
     * @param cal_voltage magnitude of the +/- calibration reference;
     *                    should sit within ~2 sigma of the expected
     *                    noise for good sensitivity
     * @param trials      strobes per reference level
     */
    explicit NoiseCalibrator(double cal_voltage = 0.5e-3,
                             std::size_t trials = 20000);

    /**
     * Run the calibration against a quiet input.
     *
     * @param comparator the device under calibration
     */
    NoiseCalibration run(Comparator &comparator) const;

    /** @return configured calibration voltage. */
    double calVoltage() const { return calVoltage_; }

  private:
    double calVoltage_;
    std::size_t trials_;
};

} // namespace divot

#endif // DIVOT_ITDR_CALIBRATE_HH
