/**
 * @file
 * AVX2 strobe kernels (4-wide doubles).
 *
 * Phi evaluation uses Abramowitz & Stegun 7.1.26 (|abs error| <=
 * 1.5e-7 on erf) over a division-free vector exp (Cody-Waite range
 * reduction + degree-8 Horner, relative error ~2e-9), so interior
 * probabilities differ from the scalar kernel's libm erfc only below
 * ~3e-7 — far inside the APC's counting noise, pinned statistically
 * by the EER-delta gate. Saturation past +-8 sigma is exact 0.0/1.0,
 * exactly like scalar, so a saturated lane never consumes a draw and
 * the draw schedule is target-invariant.
 *
 * The binomial kernel replays Rng::binomialInvert's IEEE operations
 * lane-wise: uniforms are drawn sequentially in lane order for
 * exactly the non-degenerate lanes, and the masked CDF-inversion
 * walk advances all active lanes in lockstep (an active lane at
 * iteration i has walked exactly i steps, so the recurrence factor
 * (n-i)/(i+1) is uniform across the vector). With non-FMA intrinsics
 * (this file is compiled -mavx2 without -mfma, plus
 * -ffp-contract=off) the result is bit-identical to the scalar
 * kernel for identical probability inputs.
 *
 * This whole file compiles to a stub returning nullptr off x86 or
 * when the compiler cannot target AVX2; runtime CPU support is the
 * dispatcher's job (kernels here are only reached after
 * __builtin_cpu_supports("avx2") says yes).
 */

#include "itdr/kernels/kernels.hh"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "util/math.hh"

namespace divot {

namespace {

/** exp(v) for v in [-40, 0]: range-reduce to r in [-ln2/2, ln2/2],
 *  degree-8 Horner, scale by 2^n through the exponent bits. */
inline __m256d
expUnit4(__m256d v)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d log2e = _mm256_set1_pd(1.4426950408889634);
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
    const __m256d n = _mm256_round_pd(
        _mm256_mul_pd(v, log2e),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256d r = _mm256_sub_pd(v, _mm256_mul_pd(n, ln2_hi));
    r = _mm256_sub_pd(r, _mm256_mul_pd(n, ln2_lo));
    __m256d q = _mm256_set1_pd(1.0 / 40320.0);
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 5040.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 720.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 120.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 24.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(1.0 / 6.0));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), _mm256_set1_pd(0.5));
    q = _mm256_add_pd(_mm256_mul_pd(q, r), one);
    q = _mm256_add_pd(_mm256_mul_pd(q, r), one);
    // 2^n via (n + 1023) << 52; n in [-58, 0] here so no clamping.
    const __m128i n32 = _mm256_cvtpd_epi32(n);
    const __m256i n64 = _mm256_cvtepi32_epi64(n32);
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
    return _mm256_mul_pd(q, _mm256_castsi256_pd(bits));
}

/** Phi(z) with exact +-8 sigma saturation (A&S 7.1.26 interior). */
inline __m256d
phi4(__m256d z)
{
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d eight = _mm256_set1_pd(8.0);
    const __m256d sign_mask = _mm256_set1_pd(-0.0);

    const __m256d az = _mm256_andnot_pd(sign_mask, z);
    const __m256d x =
        _mm256_mul_pd(az, _mm256_set1_pd(0.7071067811865476));
    const __m256d t = _mm256_div_pd(
        one,
        _mm256_add_pd(one,
                      _mm256_mul_pd(_mm256_set1_pd(0.3275911), x)));
    __m256d poly = _mm256_set1_pd(1.061405429);
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t),
                         _mm256_set1_pd(-1.453152027));
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t),
                         _mm256_set1_pd(1.421413741));
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t),
                         _mm256_set1_pd(-0.284496736));
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t),
                         _mm256_set1_pd(0.254829592));
    poly = _mm256_mul_pd(poly, t);
    const __m256d ex =
        expUnit4(_mm256_sub_pd(zero, _mm256_mul_pd(x, x)));
    const __m256d erf = _mm256_sub_pd(one, _mm256_mul_pd(poly, ex));

    const __m256d hi = _mm256_mul_pd(half, _mm256_add_pd(one, erf));
    const __m256d lo = _mm256_mul_pd(half, _mm256_sub_pd(one, erf));
    __m256d phi = _mm256_blendv_pd(
        lo, hi, _mm256_cmp_pd(z, zero, _CMP_GE_OQ));
    phi = _mm256_blendv_pd(phi, one,
                           _mm256_cmp_pd(z, eight, _CMP_GE_OQ));
    phi = _mm256_blendv_pd(
        phi, zero,
        _mm256_cmp_pd(z, _mm256_sub_pd(zero, eight), _CMP_LE_OQ));
    return phi;
}

void
avx2ApcProbabilityGrid(const double *v_sig, double offset,
                       double inv_sigma, const double *ref, double *p,
                       std::size_t bins, std::size_t levels)
{
    if (inv_sigma <= 0.0) {
        // Noiseless comparator: the hard step has nothing to gain
        // from the erf pipeline.
        scalarStrobeKernels()->apcProbabilityGrid(
            v_sig, offset, inv_sigma, ref, p, bins, levels);
        return;
    }
    const __m256d vinv = _mm256_set1_pd(inv_sigma);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d eight = _mm256_set1_pd(8.0);
    const __m256d neg_eight = _mm256_set1_pd(-8.0);
    for (std::size_t i = 0; i < bins; ++i) {
        const double base = v_sig[i] + offset;
        const __m256d vbase = _mm256_set1_pd(base);
        const double *r = ref + i * levels;
        double *row = p + i * levels;
        std::size_t j = 0;
        for (; j + 4 <= levels; j += 4) {
            const __m256d dv =
                _mm256_sub_pd(vbase, _mm256_loadu_pd(r + j));
            const __m256d z = _mm256_mul_pd(dv, vinv);
            // Flat trace regions saturate whole vectors: resolve them
            // with two compares instead of the erf pipeline, exactly
            // like the scalar kernel's +-8 sigma short-circuit.
            const __m256d hi = _mm256_cmp_pd(z, eight, _CMP_GE_OQ);
            const __m256d lo = _mm256_cmp_pd(z, neg_eight, _CMP_LE_OQ);
            if (_mm256_movemask_pd(_mm256_or_pd(hi, lo)) == 0xf) {
                _mm256_storeu_pd(row + j,
                                 _mm256_blendv_pd(zero, one, hi));
                continue;
            }
            _mm256_storeu_pd(row + j, phi4(z));
        }
        for (; j < levels; ++j)
            row[j] = normalCdfSaturated((base - r[j]) * inv_sigma);
    }
}

/** G interleaved 4-lane lockstep CDF-inversion walks (see file
 *  comment). Every group executes exactly the same IEEE operation
 *  sequence on its own registers — the i-th iteration's recurrence
 *  factor (n-i)/(i+1) is lane- and group-invariant, and a finished
 *  group's blends are no-ops — so results are bit-identical to G
 *  independent single-group walks. Interleaving exists purely for
 *  instruction-level parallelism: the walk's ~20-cycle
 *  mul/div/mul/add chain is serial within a group, so G independent
 *  chains fill each other's latency instead of stalling the core. */
template <int G>
inline void
binomialWalkN(const double *u, const double *pe, uint64_t n,
              long long *out)
{
    const __m256d one = _mm256_set1_pd(1.0);
    __m256d vodds[G], vpmf[G], vq[G], vcum[G], vu[G];
    __m256i vk[G];
    for (int g = 0; g < G; ++g) {
        const __m256d vpe = _mm256_loadu_pd(pe + 4 * g);
        const __m256d vqe = _mm256_sub_pd(one, vpe);
        vodds[g] = _mm256_div_pd(vpe, vqe);
        vpmf[g] = one;
        vq[g] = vqe;
        vu[g] = _mm256_loadu_pd(u + 4 * g);
        vk[g] = _mm256_setzero_si256();
    }
    // pmf(0) = qe^n, shared exponent: the same square-and-multiply
    // schedule as Rng::binomialInvert, vectorized.
    for (uint64_t e = n; e != 0; e >>= 1) {
        if (e & 1) {
            for (int g = 0; g < G; ++g)
                vpmf[g] = _mm256_mul_pd(vpmf[g], vq[g]);
        }
        for (int g = 0; g < G; ++g)
            vq[g] = _mm256_mul_pd(vq[g], vq[g]);
    }
    for (int g = 0; g < G; ++g)
        vcum[g] = vpmf[g];
    for (uint64_t i = 0; i < n; ++i) {
        __m256d act[G];
        int any = 0;
        for (int g = 0; g < G; ++g) {
            act[g] = _mm256_cmp_pd(vcum[g], vu[g], _CMP_LE_OQ);
            any |= _mm256_movemask_pd(act[g]);
        }
        if (any == 0)
            break;
        // Every active lane has walked exactly i steps, so the
        // scalar recurrence factor (n-k)/(k+1) is lane-invariant.
        const __m256d num =
            _mm256_set1_pd(static_cast<double>(n - i));
        const __m256d den =
            _mm256_set1_pd(static_cast<double>(i + 1));
        for (int g = 0; g < G; ++g) {
            __m256d t = _mm256_mul_pd(vodds[g], num);
            t = _mm256_div_pd(t, den);
            const __m256d pmf_next = _mm256_mul_pd(vpmf[g], t);
            const __m256d cum_next = _mm256_add_pd(vcum[g], pmf_next);
            vpmf[g] = _mm256_blendv_pd(vpmf[g], pmf_next, act[g]);
            vcum[g] = _mm256_blendv_pd(vcum[g], cum_next, act[g]);
            // active lanes are all-ones (-1): subtracting increments.
            vk[g] = _mm256_sub_epi64(vk[g], _mm256_castpd_si256(act[g]));
        }
    }
    for (int g = 0; g < G; ++g) {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 4 * g),
                            vk[g]);
    }
}

void
avx2BinomialLane(Rng &rng, const double *p, uint64_t trials,
                 unsigned *k, std::size_t lanes)
{
    if (trials == 0 || trials > Rng::binomialInversionCutoff) {
        // Above the inversion cutoff the scalar engine's normal
        // cutoff consumes a variable number of draws (polar
        // rejection): not vectorizable without changing the stream.
        scalarStrobeKernels()->binomialLane(rng, p, trials, k, lanes);
        return;
    }
    // Tile so the gather scratch stays cache- and stack-friendly at
    // fleet-scale lane counts (bins x levels can reach ~10^4).
    constexpr std::size_t kTile = 256;
    double u[kTile], pe[kTile];
    std::size_t idx[kTile];
    unsigned char flip[kTile];
    std::size_t l = 0;
    while (l < lanes) {
        const std::size_t end = std::min(l + kTile, lanes);
        // Gather pass: resolve degenerate lanes (no draw — same
        // contract as Rng::binomial), fold the p > 1/2 symmetry, and
        // draw one uniform per surviving lane in lane order. Runs of
        // saturated lanes (flat trace regions produce long stretches
        // of p == 0 / p == 1) resolve four at a time: two compares,
        // a movemask, and a masked int store.
        const __m256d vzero = _mm256_setzero_pd();
        const __m256d vone_ = _mm256_set1_pd(1.0);
        const __m256d vtrials =
            _mm256_set1_pd(static_cast<double>(trials));
        std::size_t m = 0;
        while (l < end) {
            if (l + 4 <= end) {
                const __m256d pl4 = _mm256_loadu_pd(p + l);
                const __m256d lo =
                    _mm256_cmp_pd(pl4, vzero, _CMP_LE_OQ);
                const __m256d hi =
                    _mm256_cmp_pd(pl4, vone_, _CMP_GE_OQ);
                if (_mm256_movemask_pd(_mm256_or_pd(lo, hi)) == 0xf) {
                    // (hi ? trials : 0) as doubles, narrowed to the
                    // 32-bit counters.
                    const __m128i k4 = _mm256_cvtpd_epi32(
                        _mm256_and_pd(hi, vtrials));
                    _mm_storeu_si128(
                        reinterpret_cast<__m128i *>(k + l), k4);
                    l += 4;
                    continue;
                }
            }
            const double pl = p[l];
            if (pl <= 0.0) {
                k[l] = 0;
            } else if (pl >= 1.0) {
                k[l] = static_cast<unsigned>(trials);
            } else {
                const bool fl = pl > 0.5;
                pe[m] = fl ? 1.0 - pl : pl;
                flip[m] = fl ? 1 : 0;
                idx[m] = l;
                u[m] = rng.uniform();
                ++m;
            }
            ++l;
        }
        std::size_t j = 0;
        // Two groups keep every walk register resident (four would
        // spill: ~5 ymm of live state per group against 16 regs).
        for (; j + 8 <= m; j += 8) {
            long long out[8];
            binomialWalkN<2>(u + j, pe + j, trials, out);
            for (std::size_t c = 0; c < 8; ++c) {
                const auto kk = static_cast<uint64_t>(out[c]);
                k[idx[j + c]] = static_cast<unsigned>(
                    flip[j + c] != 0 ? trials - kk : kk);
            }
        }
        for (; j + 4 <= m; j += 4) {
            long long out[4];
            binomialWalkN<1>(u + j, pe + j, trials, out);
            for (std::size_t c = 0; c < 4; ++c) {
                const auto kk = static_cast<uint64_t>(out[c]);
                k[idx[j + c]] = static_cast<unsigned>(
                    flip[j + c] != 0 ? trials - kk : kk);
            }
        }
        for (; j < m; ++j) {
            const uint64_t kk =
                Rng::binomialInvert(u[j], trials, pe[j]);
            k[idx[j]] = static_cast<unsigned>(
                flip[j] != 0 ? trials - kk : kk);
        }
    }
}

void
avx2TilePeriodic(const double *period, std::size_t levels, double *out,
                 std::size_t n)
{
    // Bit-exact copies: vectorizing changes nothing but speed. Tile
    // whole periods while a full period fits, then wrap scalar.
    std::size_t i = 0;
    while (i + levels <= n) {
        std::size_t j = 0;
        for (; j + 4 <= levels; j += 4)
            _mm256_storeu_pd(out + i + j, _mm256_loadu_pd(period + j));
        for (; j < levels; ++j)
            out[i + j] = period[j];
        i += levels;
    }
    for (; i < n; ++i)
        out[i] = period[i % levels];
}

const StrobeKernels kAvx2Kernels = {
    SimdTarget::Avx2,
    "avx2",
    &avx2ApcProbabilityGrid,
    &avx2BinomialLane,
    &avx2TilePeriodic,
};

} // namespace

const StrobeKernels *
avx2StrobeKernels()
{
    return &kAvx2Kernels;
}

} // namespace divot

#else // !(__AVX2__ && x86)

namespace divot {

const StrobeKernels *
avx2StrobeKernels()
{
    return nullptr;
}

} // namespace divot

#endif
