/**
 * @file
 * Runtime-dispatched SIMD strobe kernels (DESIGN.md §13).
 *
 * The analytic (Binomial) strobe engine spends its time in three
 * regular, per-bin-independent loops: the APC output-1 probability
 * Phi((V_sig + offset - ref)/sigma) over every (bin, Vernier level)
 * pair, the exact-binomial CDF-inversion draw per pair, and the
 * tiling of the periodic Vernier schedule. This layer packages those
 * loops as structure-of-arrays kernels with scalar / AVX2 / NEON
 * implementations selected at runtime — per instrument via
 * ItdrConfig::simd, or globally via the DIVOT_SIMD environment
 * variable ({auto, scalar, avx2, neon}; the environment wins).
 *
 * Determinism contract, per kernel (DESIGN.md §13):
 *  - scalar is bit-identical to the pre-kernel Binomial engine (it
 *    performs the very same libm calls and Rng draws in the same
 *    order);
 *  - the binomial kernel is bit-identical across *all* targets for
 *    identical probability inputs — the vector walk replays
 *    Rng::binomialInvert's IEEE operations lane-wise with non-FMA
 *    intrinsics and consumes uniforms in lane order;
 *  - the AVX2 Phi kernel is a polynomial approximation (|error| <
 *    ~3e-7) and may therefore differ from scalar in the last bits of
 *    interior probabilities — statistically invisible (pinned by the
 *    EER-delta gate) but not bit-compatible, which is why results
 *    are pinned per (seed, config, dispatch target), not across
 *    targets. Saturation past +-8 sigma is exact 0.0/1.0 on every
 *    target so a saturated lane never consumes a draw.
 */

#ifndef DIVOT_ITDR_KERNELS_KERNELS_HH
#define DIVOT_ITDR_KERNELS_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "util/rng.hh"

namespace divot {

/** Which strobe-kernel implementation to run. */
enum class SimdTarget
{
    Auto,   //!< best supported target (env DIVOT_SIMD still wins)
    Scalar, //!< portable reference, bit-identical to the pre-kernel
            //!< Binomial engine
    Avx2,   //!< x86-64 AVX2 (4-wide doubles)
    Neon    //!< aarch64 NEON (2-wide doubles)
};

/** @return lower-case target name ("auto", "scalar", "avx2", "neon"). */
const char *simdTargetName(SimdTarget target);

/**
 * The vectorizable pieces of the analytic strobe engine, as function
 * pointers so one ITdr carries exactly one resolved implementation.
 */
struct StrobeKernels
{
    SimdTarget target = SimdTarget::Scalar;
    const char *name = "scalar";

    /**
     * Batched APC output-1 probabilities over a bins x levels grid:
     * p[i*levels + j] for dv = (v_sig[i] + offset) - ref[i*levels+j].
     * inv_sigma <= 0 means a noiseless comparator (p = step(dv));
     * otherwise z = dv * inv_sigma, saturated to an exact 0.0 / 1.0
     * past +-8 sigma (exactness is load-bearing: a saturated
     * probability must consume no draw downstream).
     */
    void (*apcProbabilityGrid)(const double *v_sig, double offset,
                               double inv_sigma, const double *ref,
                               double *p, std::size_t bins,
                               std::size_t levels);

    /**
     * One Binomial(trials, p[l]) draw per lane into k[l], consuming
     * `rng` exactly like `lanes` sequential Rng::binomial(trials,
     * p[l]) calls: degenerate lanes (p <= 0, p >= 1) draw nothing,
     * every other lane draws one uniform in lane order (trials <=
     * Rng::binomialInversionCutoff; larger trial counts fall back to
     * per-lane Rng::binomial on every target).
     */
    void (*binomialLane)(Rng &rng, const double *p, uint64_t trials,
                         unsigned *k, std::size_t lanes);

    /** Tile one Vernier period: out[i] = period[i % levels]. */
    void (*tilePeriodic)(const double *period, std::size_t levels,
                         double *out, std::size_t n);
};

/**
 * @return whether `target` can run on this build + machine (compiled
 * in and supported by the CPU). Scalar and Auto are always true.
 */
bool simdTargetSupported(SimdTarget target);

/**
 * Resolve a configured target to a runnable one: the DIVOT_SIMD
 * environment variable (read on every call, so tests can force a
 * target per instrument construction) overrides `requested`; Auto
 * picks the best supported target; a forced-but-unsupported target
 * falls back to scalar with a one-time warning.
 */
SimdTarget resolveSimdTarget(SimdTarget requested);

/** @return the kernel table for resolveSimdTarget(requested). */
const StrobeKernels &strobeKernels(SimdTarget requested);

/** @name Per-ISA tables (nullptr when not compiled in / unrunnable).
 *  Exposed for the dispatch layer and the lane-equality tests. */
///@{
const StrobeKernels *scalarStrobeKernels();
const StrobeKernels *avx2StrobeKernels();
const StrobeKernels *neonStrobeKernels();
///@}

} // namespace divot

#endif // DIVOT_ITDR_KERNELS_KERNELS_HH
