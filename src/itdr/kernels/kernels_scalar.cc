/**
 * @file
 * Portable scalar strobe kernels — the reference implementation every
 * vector target is tested against, and the bit-identity anchor: these
 * loops perform exactly the libm calls and Rng draws of the
 * pre-kernel Binomial engine (Comparator::strobeAnalytic +
 * Rng::binomial), in the same order, so a scalar-kernel measurement
 * reproduces the pre-kernel engine byte for byte.
 */

#include "itdr/kernels/kernels.hh"

#include "util/math.hh"

namespace divot {

namespace {

void
scalarApcProbabilityGrid(const double *v_sig, double offset,
                         double inv_sigma, const double *ref, double *p,
                         std::size_t bins, std::size_t levels)
{
    for (std::size_t i = 0; i < bins; ++i) {
        const double base = v_sig[i] + offset;
        const double *r = ref + i * levels;
        double *row = p + i * levels;
        if (inv_sigma <= 0.0) {
            // Noiseless comparator: a hard step.
            for (std::size_t j = 0; j < levels; ++j)
                row[j] = base - r[j] > 0.0 ? 1.0 : 0.0;
        } else {
            for (std::size_t j = 0; j < levels; ++j)
                row[j] = normalCdfSaturated((base - r[j]) * inv_sigma);
        }
    }
}

void
scalarBinomialLane(Rng &rng, const double *p, uint64_t trials,
                   unsigned *k, std::size_t lanes)
{
    // Rng::binomial already implements the whole per-lane contract
    // (degenerate lanes draw nothing, p > 1/2 flips, inversion walk
    // below the cutoff, normal cutoff above).
    for (std::size_t l = 0; l < lanes; ++l)
        k[l] = static_cast<unsigned>(rng.binomial(trials, p[l]));
}

void
scalarTilePeriodic(const double *period, std::size_t levels,
                   double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = period[i % levels];
}

const StrobeKernels kScalarKernels = {
    SimdTarget::Scalar,
    "scalar",
    &scalarApcProbabilityGrid,
    &scalarBinomialLane,
    &scalarTilePeriodic,
};

} // namespace

const StrobeKernels *
scalarStrobeKernels()
{
    return &kScalarKernels;
}

} // namespace divot
