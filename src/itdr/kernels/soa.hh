/**
 * @file
 * Structure-of-arrays scratch for one analytic strobe sweep: the
 * per-bin signal levels gathered from the detector trace, the
 * bins x levels probability grid, the per-lane binomial draws, and
 * the reduced per-bin hit counts.
 *
 * Every field is fully overwritten by each measure pass (resize +
 * full writes), so an arena can be shared serially across
 * instruments — the fleet scheduler's batched mode hands one arena
 * to a whole probe group — without any cross-measurement state
 * leaking through it. Sharing therefore cannot perturb results:
 * byte-identity of batched vs per-channel scheduling is by
 * construction, and the property harness pins it.
 */

#ifndef DIVOT_ITDR_KERNELS_SOA_HH
#define DIVOT_ITDR_KERNELS_SOA_HH

#include <cstddef>
#include <vector>

namespace divot {

/** SoA scratch arena for one ETS sweep (reused across measurements). */
struct StrobeSoA
{
    std::vector<double> vSig;       //!< per-bin signal level [bins]
    std::vector<double> prob;       //!< output-1 probability grid
                                    //!< [bins x levels, row-major]
    std::vector<unsigned> laneHits; //!< per-lane binomial draws
                                    //!< [bins x levels, row-major]
    std::vector<unsigned> hits;     //!< reduced per-bin counts [bins]

    /** Size every lane for a bins x levels sweep (grow-only realloc:
     *  vectors keep their capacity across measurements). */
    void resize(std::size_t bins, std::size_t levels)
    {
        vSig.resize(bins);
        prob.resize(bins * levels);
        laneHits.resize(bins * levels);
        hits.resize(bins);
    }
};

} // namespace divot

#endif // DIVOT_ITDR_KERNELS_SOA_HH
