/**
 * @file
 * Runtime kernel dispatch: environment override, CPU capability
 * detection, and the Auto -> best-supported resolution.
 */

#include "itdr/kernels/kernels.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace divot {

namespace {

/** Parse a DIVOT_SIMD value; nullptr return = unrecognized. */
const SimdTarget *
parseSimdTarget(const char *text)
{
    static const SimdTarget kAuto = SimdTarget::Auto;
    static const SimdTarget kScalar = SimdTarget::Scalar;
    static const SimdTarget kAvx2 = SimdTarget::Avx2;
    static const SimdTarget kNeon = SimdTarget::Neon;
    if (std::strcmp(text, "auto") == 0)
        return &kAuto;
    if (std::strcmp(text, "scalar") == 0)
        return &kScalar;
    if (std::strcmp(text, "avx2") == 0)
        return &kAvx2;
    if (std::strcmp(text, "neon") == 0)
        return &kNeon;
    return nullptr;
}

SimdTarget
bestSupportedTarget()
{
    if (simdTargetSupported(SimdTarget::Avx2))
        return SimdTarget::Avx2;
    if (simdTargetSupported(SimdTarget::Neon))
        return SimdTarget::Neon;
    return SimdTarget::Scalar;
}

} // namespace

const char *
simdTargetName(SimdTarget target)
{
    switch (target) {
    case SimdTarget::Auto:
        return "auto";
    case SimdTarget::Scalar:
        return "scalar";
    case SimdTarget::Avx2:
        return "avx2";
    case SimdTarget::Neon:
        return "neon";
    }
    return "?";
}

bool
simdTargetSupported(SimdTarget target)
{
    switch (target) {
    case SimdTarget::Auto:
    case SimdTarget::Scalar:
        return true;
    case SimdTarget::Avx2:
        if (avx2StrobeKernels() == nullptr)
            return false;  // not compiled in
#if defined(__x86_64__) || defined(__i386__)
        // __builtin_cpu_supports folds in the OS XSAVE check, so a
        // "yes" means the ymm registers are actually usable.
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case SimdTarget::Neon:
        // NEON doubles are baseline on aarch64: compiled in == runs.
        return neonStrobeKernels() != nullptr;
    }
    return false;
}

SimdTarget
resolveSimdTarget(SimdTarget requested)
{
    // The environment wins over per-instrument configuration so a
    // whole run (tests, benches, CI legs) can be forced onto one
    // code path without touching configs. Read on every call: the
    // dispatch-forcing tests setenv between instrument constructions.
    if (const char *env = std::getenv("DIVOT_SIMD")) {
        if (const SimdTarget *parsed = parseSimdTarget(env)) {
            requested = *parsed;
        } else {
            static bool warned_env = false;
            if (!warned_env) {
                warned_env = true;
                divot_warn("DIVOT_SIMD='%s' not recognized (want "
                           "auto|scalar|avx2|neon); ignoring",
                           env);
            }
        }
    }
    if (requested == SimdTarget::Auto)
        return bestSupportedTarget();
    if (!simdTargetSupported(requested)) {
        static bool warned_unsupported = false;
        if (!warned_unsupported) {
            warned_unsupported = true;
            divot_warn("SIMD target '%s' is not available on this "
                       "build/machine; falling back to scalar "
                       "strobe kernels",
                       simdTargetName(requested));
        }
        return SimdTarget::Scalar;
    }
    return requested;
}

const StrobeKernels &
strobeKernels(SimdTarget requested)
{
    switch (resolveSimdTarget(requested)) {
    case SimdTarget::Avx2:
        if (const StrobeKernels *k = avx2StrobeKernels())
            return *k;
        break;
    case SimdTarget::Neon:
        if (const StrobeKernels *k = neonStrobeKernels())
            return *k;
        break;
    default:
        break;
    }
    return *scalarStrobeKernels();
}

} // namespace divot
