/**
 * @file
 * NEON strobe kernels (aarch64, 2-wide doubles).
 *
 * The binomial kernel vectorizes the CDF-inversion walk exactly like
 * the AVX2 kernel (lockstep masked recurrence, uniforms drawn in lane
 * order, non-FMA arithmetic — this file compiles with
 * -ffp-contract=off so vmulq/vaddq never fuse), which makes it
 * bit-identical to the scalar kernel for identical inputs. Phi stays
 * on scalar libm per lane: the grid kernel's win on this target is
 * the SoA restructuring plus the vector walk, and keeping libm means
 * the whole NEON kernel set is bit-identical to scalar — there is no
 * approximation seam to re-validate on hardware this repo's CI
 * cannot exercise.
 */

#include "itdr/kernels/kernels.hh"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "util/math.hh"

namespace divot {

namespace {

void
neonApcProbabilityGrid(const double *v_sig, double offset,
                       double inv_sigma, const double *ref, double *p,
                       std::size_t bins, std::size_t levels)
{
    // Scalar libm per lane, SoA iteration order (see file comment).
    scalarStrobeKernels()->apcProbabilityGrid(v_sig, offset, inv_sigma,
                                              ref, p, bins, levels);
}

/** Two lockstep CDF-inversion walks, mirroring Rng::binomialInvert. */
inline void
binomialWalk2(const double *u, const double *pe, uint64_t n,
              uint64_t *out)
{
    const float64x2_t one = vdupq_n_f64(1.0);
    const float64x2_t vpe = vld1q_f64(pe);
    const float64x2_t vqe = vsubq_f64(one, vpe);
    const float64x2_t vodds = vdivq_f64(vpe, vqe);
    float64x2_t vpmf = one;
    float64x2_t vq = vqe;
    for (uint64_t e = n; e != 0; e >>= 1) {
        if (e & 1)
            vpmf = vmulq_f64(vpmf, vq);
        vq = vmulq_f64(vq, vq);
    }
    float64x2_t vcum = vpmf;
    const float64x2_t vu = vld1q_f64(u);
    uint64x2_t vk = vdupq_n_u64(0);
    for (uint64_t i = 0; i < n; ++i) {
        // active lane <=> cum <= u, i.e. !(cum > u)
        const uint64x2_t active = vcleq_f64(vcum, vu);
        if (vgetq_lane_u64(active, 0) == 0
            && vgetq_lane_u64(active, 1) == 0)
            break;
        float64x2_t t =
            vmulq_f64(vodds, vdupq_n_f64(static_cast<double>(n - i)));
        t = vdivq_f64(t, vdupq_n_f64(static_cast<double>(i + 1)));
        const float64x2_t pmf_next = vmulq_f64(vpmf, t);
        const float64x2_t cum_next = vaddq_f64(vcum, pmf_next);
        vpmf = vbslq_f64(active, pmf_next, vpmf);
        vcum = vbslq_f64(active, cum_next, vcum);
        // active lanes are all-ones (~0): subtracting increments k.
        vk = vsubq_u64(vk, active);
    }
    vst1q_u64(out, vk);
}

void
neonBinomialLane(Rng &rng, const double *p, uint64_t trials,
                 unsigned *k, std::size_t lanes)
{
    if (trials == 0 || trials > Rng::binomialInversionCutoff) {
        scalarStrobeKernels()->binomialLane(rng, p, trials, k, lanes);
        return;
    }
    constexpr std::size_t kTile = 256;
    double u[kTile], pe[kTile];
    std::size_t idx[kTile];
    unsigned char flip[kTile];
    std::size_t l = 0;
    while (l < lanes) {
        const std::size_t end = std::min(l + kTile, lanes);
        std::size_t m = 0;
        for (; l < end; ++l) {
            const double pl = p[l];
            if (pl <= 0.0) {
                k[l] = 0;
            } else if (pl >= 1.0) {
                k[l] = static_cast<unsigned>(trials);
            } else {
                const bool fl = pl > 0.5;
                pe[m] = fl ? 1.0 - pl : pl;
                flip[m] = fl ? 1 : 0;
                idx[m] = l;
                u[m] = rng.uniform();
                ++m;
            }
        }
        std::size_t j = 0;
        for (; j + 2 <= m; j += 2) {
            uint64_t out[2];
            binomialWalk2(u + j, pe + j, trials, out);
            for (std::size_t c = 0; c < 2; ++c) {
                k[idx[j + c]] = static_cast<unsigned>(
                    flip[j + c] != 0 ? trials - out[c] : out[c]);
            }
        }
        for (; j < m; ++j) {
            const uint64_t kk =
                Rng::binomialInvert(u[j], trials, pe[j]);
            k[idx[j]] = static_cast<unsigned>(
                flip[j] != 0 ? trials - kk : kk);
        }
    }
}

void
neonTilePeriodic(const double *period, std::size_t levels, double *out,
                 std::size_t n)
{
    std::size_t i = 0;
    while (i + levels <= n) {
        std::size_t j = 0;
        for (; j + 2 <= levels; j += 2)
            vst1q_f64(out + i + j, vld1q_f64(period + j));
        for (; j < levels; ++j)
            out[i + j] = period[j];
        i += levels;
    }
    for (; i < n; ++i)
        out[i] = period[i % levels];
}

const StrobeKernels kNeonKernels = {
    SimdTarget::Neon,
    "neon",
    &neonApcProbabilityGrid,
    &neonBinomialLane,
    &neonTilePeriodic,
};

} // namespace

const StrobeKernels *
neonStrobeKernels()
{
    return &kNeonKernels;
}

} // namespace divot

#else // !__aarch64__

namespace divot {

const StrobeKernels *
neonStrobeKernels()
{
    return nullptr;
}

} // namespace divot

#endif
