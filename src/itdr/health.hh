/**
 * @file
 * Instrument self-assessment for one measurement: is this IIP
 * trustworthy, or is the iTDR itself sick? A wedged comparator drives
 * every bin to probability 0/1 (saturation screen); numerical
 * breakdown in the inverse-CDF shows up as non-finite reconstructions;
 * a measurement that blows the predicted cycle budget violates the
 * paper's 50 us concurrency envelope. Consumers (Authenticator) treat
 * an unhealthy measurement as "instrument sick", never as tamper.
 *
 * Lives in its own header so verdict consumers (auth/verdict.hh,
 * memsys) can carry the health record without pulling in the whole
 * instrument.
 */

#ifndef DIVOT_ITDR_HEALTH_HH
#define DIVOT_ITDR_HEALTH_HH

namespace divot {

/** Health screens of one measurement (see itdr/itdr.hh). */
struct MeasurementHealth
{
    bool ok = true;                 //!< all screens passed
    double saturatedBinFraction = 0.0; //!< bins at probability 0 or 1
    unsigned nonFiniteBins = 0;     //!< NaN/inf reconstructions (the
                                    //!< IIP carries 0.0 in their place)
    bool budgetOverrun = false;     //!< cycle cost blew the envelope
};

} // namespace divot

#endif // DIVOT_ITDR_HEALTH_HH
