/**
 * @file
 * Measurement-latency accounting (the paper's "within 50 us" claim).
 *
 * A full IIP measurement consumes bins * K triggers; on a clock lane
 * one trigger per cycle, on a data lane one per 1/rate cycles in
 * expectation. This model turns an ItdrConfig into the cycle and
 * wall-clock budget, and inversely sizes K to fit a latency target.
 */

#ifndef DIVOT_ITDR_BUDGET_HH
#define DIVOT_ITDR_BUDGET_HH

#include "itdr/itdr.hh"

namespace divot {

/** Predicted measurement cost. */
struct MeasurementBudget
{
    unsigned bins = 0;          //!< ETS phase bins (M)
    unsigned trialsPerBin = 0;  //!< APC trials per bin (K)
    uint64_t triggers = 0;      //!< total probe edges
    uint64_t expectedCycles = 0; //!< expected bus cycles
    double expectedDuration = 0.0; //!< seconds at the bus clock
};

/**
 * Predict the cost of one IIP measurement.
 *
 * @param config           instrument configuration
 * @param round_trip_delay line round-trip time (sets the window when
 *                         config.captureWindow == 0)
 */
MeasurementBudget predictBudget(const ItdrConfig &config,
                                double round_trip_delay);

/**
 * Largest K (multiple of the PDM level count) whose measurement fits
 * within a latency target; returns 0 when even K = levels does not
 * fit.
 *
 * @param config           instrument configuration (trialsPerPhase
 *                         ignored)
 * @param round_trip_delay line round-trip time
 * @param latency_target   seconds available for one measurement
 */
unsigned maxTrialsWithinLatency(const ItdrConfig &config,
                                double round_trip_delay,
                                double latency_target);

} // namespace divot

#endif // DIVOT_ITDR_BUDGET_HH
