/**
 * @file
 * Probability density modulation schedule (Section II-C).
 *
 * Binds a TriangleWave to the sampling clock through the Vernier
 * relation p * f_m = q * f_s (p, q coprime) and answers, for any
 * strobe, which reference voltage the comparator sees. A PdmSchedule
 * with modulation disabled degenerates to a fixed V_ref — plain APC —
 * which the ablation bench compares against.
 */

#ifndef DIVOT_ITDR_PDM_HH
#define DIVOT_ITDR_PDM_HH

#include <cstdint>
#include <vector>

#include "analog/triangle.hh"

namespace divot {

/** Configuration of the PDM reference chain. */
struct PdmConfig
{
    bool enabled = true;        //!< false => fixed reference
    double fixedReference = 0.0; //!< used when disabled, volts
    double amplitude = 8e-3;    //!< triangle peak deviation, volts
    double center = 0.0;        //!< triangle mid-level, volts
    unsigned p = 17;            //!< modulation periods in common frame
    unsigned q = 18;            //!< sample periods in common frame
    double rcShaping = 0.15;    //!< quasi-triangle RC shaping
};

/**
 * Reference-voltage schedule for the comparator's negative input.
 */
class PdmSchedule
{
  public:
    /**
     * @param config          PDM parameters
     * @param clock_frequency sampling clock f_s in Hz
     */
    PdmSchedule(PdmConfig config, double clock_frequency);

    /**
     * Reference voltage at an absolute strobe time.
     *
     * @param t absolute time of the comparator strobe
     */
    double referenceAt(double t) const;

    /**
     * The set of distinct reference levels seen at a fixed
     * waveform-relative offset across p successive repetitions
     * (Fig. 3's V_ref0..V_ref{p-1}).
     *
     * @param t0 waveform-relative strobe offset
     */
    std::vector<double> levelsAt(double t0) const;

    /** @return number of distinct Vernier levels (1 when disabled). */
    unsigned levelCount() const;

    /** @return modulation frequency f_m in Hz (0 when disabled). */
    double modulationFrequency() const;

    /** @return configuration. */
    const PdmConfig &config() const { return config_; }

    /** @return sampling clock period in seconds. */
    double clockPeriod() const { return 1.0 / clockFrequency_; }

  private:
    PdmConfig config_;
    double clockFrequency_;
    TriangleWave wave_;
};

} // namespace divot

#endif // DIVOT_ITDR_PDM_HH
