/**
 * @file
 * Runtime sampling-trigger generation (Section II-E).
 *
 * On a clock lane every cycle carries a rising edge, so the iTDR can
 * strobe every cycle. On a data lane the launched symbols are random;
 * rising and falling edges are equally frequent and their reflections
 * would cancel if sampled indiscriminately. The paper's fix: watch
 * the transmit FIFO and fire the sampling trigger only when a chosen
 * pattern (a 1 followed by a 0 — a falling edge of known polarity) is
 * about to be launched. For i.i.d. random bits that pattern occurs at
 * 1/4 of the cycles, which stretches measurement time by ~4x but
 * preserves edge-polarity consistency.
 */

#ifndef DIVOT_ITDR_TRIGGER_HH
#define DIVOT_ITDR_TRIGGER_HH

#include <cstdint>
#include <vector>

#include "itdr/encoding.hh"
#include "util/rng.hh"

namespace divot {

/** Which lane the iTDR listens to. */
enum class TriggerMode
{
    ClockLane,    //!< every cycle triggers (regular rising edges)
    DataLane,     //!< trigger on a 1->0 boundary in raw random data
    Encoded8b10b, //!< trigger on 1->0 boundaries of an 8b/10b-encoded
                  //!< payload stream — the realistic high-speed-link
                  //!< case Section II-E alludes to; the line code's
                  //!< bounded run length guarantees a trigger within
                  //!< a few bit times
};

/**
 * Produces the cycle indices at which probe edges of consistent
 * polarity are launched.
 */
class TriggerGenerator
{
  public:
    /**
     * @param mode lane type
     * @param rng  stream generating the random data symbols
     */
    TriggerGenerator(TriggerMode mode, Rng rng);

    /**
     * Advance to the next trigger.
     *
     * @return the cycle index of the next qualifying edge (the cycle
     *         count advances by 1 for clock lanes and by a random
     *         geometric-ish amount for data lanes)
     */
    uint64_t nextTriggerCycle();

    /**
     * Consume n consecutive clock-lane triggers in one step —
     * equivalent to n nextTriggerCycle() calls (every cycle triggers
     * on a clock lane, so the cycle indices are consecutive). Only
     * valid in ClockLane mode; data-lane triggers depend on the
     * symbol stream and must be drawn one at a time.
     *
     * @return the cycle index of the first trigger in the block
     */
    uint64_t advanceClockTriggers(uint64_t n);

    /** @return total cycles consumed so far. */
    uint64_t cyclesElapsed() const { return cycle_; }

    /** @return number of triggers produced so far. */
    uint64_t triggersProduced() const { return triggers_; }

    /**
     * Expected fraction of cycles that yield a trigger: 1.0 for the
     * clock lane, 0.25 for i.i.d. random data (P[1 then 0]).
     */
    double expectedTriggerRate() const;

    /** @return lane mode. */
    TriggerMode mode() const { return mode_; }

  private:
    TriggerMode mode_;
    Rng rng_;
    uint64_t cycle_ = 0;
    uint64_t triggers_ = 0;
    bool prevBit_ = false;
    bool havePrev_ = false;

    /** Encoded-stream state (Encoded8b10b mode). */
    Encoder8b10b encoder_;
    std::vector<bool> encodedBits_;
    std::size_t encodedPos_ = 0;

    bool nextBit();
};

} // namespace divot

#endif // DIVOT_ITDR_TRIGGER_HH
