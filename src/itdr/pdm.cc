#include "itdr/pdm.hh"

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

namespace {

TriangleWave
makeWave(const PdmConfig &config, double clock_frequency)
{
    // p * f_m = q * f_s  =>  f_m = (q/p) * f_s. When disabled the wave
    // object is unused; build a placeholder at f_s.
    const double fm = config.enabled
        ? clock_frequency * static_cast<double>(config.q) /
          static_cast<double>(config.p)
        : clock_frequency;
    return TriangleWave(config.amplitude, fm, config.center,
                        config.rcShaping);
}

} // namespace

PdmSchedule::PdmSchedule(PdmConfig config, double clock_frequency)
    : config_(config), clockFrequency_(clock_frequency),
      wave_(makeWave(config, clock_frequency))
{
    if (clock_frequency <= 0.0)
        divot_fatal("PDM clock frequency must be positive (got %g)",
                    clock_frequency);
    if (config.enabled && !coprime(config.p, config.q)) {
        divot_fatal("PDM Vernier ratio p=%u q=%u not coprime: the "
                    "reference pattern repeats early and the scheme "
                    "degenerates (Section II-C)", config.p, config.q);
    }
    if (config.enabled && config.p == 0)
        divot_fatal("PDM p must be >= 1");
}

double
PdmSchedule::referenceAt(double t) const
{
    if (!config_.enabled)
        return config_.fixedReference;
    return wave_.valueAt(t);
}

std::vector<double>
PdmSchedule::levelsAt(double t0) const
{
    if (!config_.enabled)
        return {config_.fixedReference};
    return vernierReferenceLevels(wave_, config_.p, config_.q, t0);
}

unsigned
PdmSchedule::levelCount() const
{
    return config_.enabled ? config_.p : 1u;
}

double
PdmSchedule::modulationFrequency() const
{
    return config_.enabled ? wave_.frequency() : 0.0;
}

} // namespace divot
