/**
 * @file
 * Analog-to-probability conversion (APC) math — Section II-B.
 *
 * With a single reference level V_ref and Gaussian input noise sigma,
 *
 *     p{Y=1} = Phi((V_sig - V_ref) / sigma)            (Eq. 1)
 *     V_sig  = V_ref + sigma * Phi^{-1}(p)             (Eq. 2)
 *
 * With PDM the reference cycles through L discrete levels, so the
 * effective CDF is the normalized mixture
 *
 *     p{Y=1} = (1/L) * sum_l Phi((V_sig - ref_l) / sigma),
 *
 * which is still strictly monotone in V_sig and therefore invertible
 * (numerically, by bisection). This header provides both directions
 * plus the sensitivity (the mixture PDF, Eq. 3) used to analyze the
 * linear dynamic range (Figs. 2 and 4).
 */

#ifndef DIVOT_ITDR_APC_HH
#define DIVOT_ITDR_APC_HH

#include <vector>

namespace divot {

/**
 * Probability of comparator output 1 for a mixture of reference
 * levels with Gaussian noise.
 *
 * @param v_sig  analog input voltage
 * @param levels reference voltages the PDM schedule cycles through
 * @param sigma  input-referred noise standard deviation (> 0)
 */
double apcMixtureCdf(double v_sig, const std::vector<double> &levels,
                     double sigma);

/**
 * Sensitivity d p / d V_sig of the mixture — the equivalent PDF
 * (Eq. 3). High sensitivity == high voltage resolution per trial.
 */
double apcMixturePdf(double v_sig, const std::vector<double> &levels,
                     double sigma);

/**
 * Invert the mixture CDF: recover V_sig from a measured probability.
 *
 * @param p      measured hit probability in [0, 1]; saturated values
 *               clamp to the edge of the invertible range
 * @param levels reference voltages
 * @param sigma  noise standard deviation (> 0)
 */
double apcReconstruct(double p, const std::vector<double> &levels,
                      double sigma);

/**
 * Precomputed inverse of the APC mixture CDF.
 *
 * The bisection in apcReconstruct costs dozens of Phi evaluations per
 * call; a measurement campaign reconstructs millions of bins whose
 * reference-level sets repeat. This table samples the mixture CDF
 * once on a fine voltage grid and answers reconstructions with a
 * binary search plus linear interpolation — the software analogue of
 * the small reconstruction ROM a hardware implementation would use.
 */
class ApcInverseTable
{
  public:
    /**
     * @param levels reference voltages of the bin's PDM schedule
     * @param sigma  input-referred noise standard deviation
     * @param grid   number of table points
     */
    ApcInverseTable(const std::vector<double> &levels, double sigma,
                    std::size_t grid = 1024);

    /** Reconstruct V_sig from a measured hit probability. */
    double reconstruct(double p) const;

    /** @return lowest representable voltage. */
    double voltageLo() const { return vLo_; }

    /** @return highest representable voltage. */
    double voltageHi() const { return vHi_; }

  private:
    double vLo_, vHi_, dv_;
    /** cdf_.front() / cdf_.back(), duplicated inline so the saturated
     *  early-outs in reconstruct() never touch the (large, usually
     *  cache-cold) grid: a sweep holds one table per bin and most
     *  bins reconstruct a saturated probability. */
    double cdfFront_ = 0.0, cdfBack_ = 0.0;
    std::vector<double> cdf_;  //!< CDF at vLo_ + i * dv_
    /** Two-level search: dir_[b] = cdf_[b * dirStep_]. An interior
     *  reconstruct first brackets p in this ~32-entry directory, then
     *  binary-searches one dirStep_-wide window of cdf_ — same index
     *  as a whole-table lower_bound (the CDF is monotone), but ~2
     *  cache lines touched instead of ~10 across a table that is
     *  usually cold (a sweep holds one 8 KiB table per bin). */
    std::vector<double> dir_;
    std::size_t dirStep_ = 1;
};

/**
 * Width of the usable linear region of the mixture CDF: the span of
 * input voltages over which the sensitivity stays above `floor_frac`
 * of its peak value. For a single level this is ~2 sigma at
 * floor_frac = 0.6 (the paper's "APC is most effective within
 * 2 sigma"); PDM widens it roughly by the reference-level span.
 *
 * @param levels     reference voltages
 * @param sigma      noise standard deviation
 * @param floor_frac sensitivity floor as a fraction of peak
 */
double apcLinearRegionWidth(const std::vector<double> &levels,
                            double sigma, double floor_frac = 0.6);

} // namespace divot

#endif // DIVOT_ITDR_APC_HH
