/**
 * @file
 * Content-keyed LRU cache for clean detector traces.
 *
 * Rendering the reflection physics (LatticeSimulator::probe is
 * O(segments x steps)) dominates the cost of a measurement, yet a
 * Monte-Carlo campaign re-measures the *same physical line* hundreds
 * of times: only the comparator noise differs between repetitions.
 * The cache keys each trace by the content that determines it — the
 * per-segment impedance profile, terminations, velocity, loss, and
 * the capture span — so an unperturbed line hits and a tampered or
 * environment-shifted line (whose snapshot rewrites impedances and
 * velocity) computes a fresh key and misses. Invalidation is therefore
 * structural, not explicit: stale entries can never be returned, they
 * can only age out of the LRU list.
 *
 * Keys are a pair of independent 64-bit FNV-1a digests over the raw
 * parameter bytes; a collision requires two distinct lines to agree on
 * 128 hash bits simultaneously, which is negligible against the
 * campaign sizes involved (billions of measurements would be needed
 * before a birthday collision becomes plausible).
 */

#ifndef DIVOT_ITDR_TRACE_CACHE_HH
#define DIVOT_ITDR_TRACE_CACHE_HH

#include <cstdint>
#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

#include "signal/waveform.hh"

namespace divot {

class TransmissionLine;

/** 128-bit content digest identifying one rendered trace. */
struct TraceKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const TraceKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/**
 * Incremental FNV-1a digest builder for trace keys: feed every
 * parameter that influences the rendered trace, then take key().
 */
class TraceKeyBuilder
{
  public:
    TraceKeyBuilder();

    /** Mix one double (by bit pattern). */
    TraceKeyBuilder &add(double v);

    /** Mix one integer. */
    TraceKeyBuilder &add(uint64_t v);

    /** Mix a line's full electrical content (profile + terminations). */
    TraceKeyBuilder &add(const TransmissionLine &line);

    /** @return the accumulated digest. */
    TraceKey key() const { return key_; }

  private:
    TraceKey key_;

    void mixWord(uint64_t word);
};

/**
 * Fixed-capacity LRU map from trace keys to rendered waveforms.
 */
class TraceCache
{
  public:
    /**
     * @param capacity maximum retained traces; 0 disables the cache
     *                 (find always misses, insert is a no-op)
     */
    explicit TraceCache(std::size_t capacity = 8);

    /**
     * Look up a trace; promotes the entry to most-recently-used.
     *
     * @return pointer to the cached waveform, valid until the next
     *         insert/clear, or nullptr on a miss
     */
    const Waveform *find(const TraceKey &key);

    /** Insert (or overwrite) a trace, evicting the LRU tail if full. */
    const Waveform *insert(const TraceKey &key, Waveform trace);

    /** Drop every entry (counters are preserved). */
    void clear();

    /** @return retained entry count. */
    std::size_t size() const { return entries_.size(); }

    /** @return configured capacity. */
    std::size_t capacity() const { return capacity_; }

    /** @return lifetime hit count. */
    uint64_t hits() const { return hits_; }

    /** @return lifetime miss count. */
    uint64_t misses() const { return misses_; }

    /** @return lifetime LRU evictions (full cache pushing out the
     *  least-recently-used trace; clear() does not count). */
    uint64_t evictions() const { return evictions_; }

  private:
    struct KeyHash
    {
        std::size_t operator()(const TraceKey &k) const
        {
            return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
        }
    };

    using Entry = std::pair<TraceKey, Waveform>;

    std::size_t capacity_;
    std::list<Entry> entries_;  //!< front = most recently used
    std::unordered_map<TraceKey, std::list<Entry>::iterator, KeyHash> index_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace divot

#endif // DIVOT_ITDR_TRACE_CACHE_HH
