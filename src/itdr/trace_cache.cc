#include "itdr/trace_cache.hh"

#include <cstring>

#include "txline/txline.hh"

namespace divot {

namespace {

constexpr uint64_t kFnvOffsetLo = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvOffsetHi = 0x6c62272e07bb0142ULL;  // distinct basis
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvStep(uint64_t h, uint64_t word)
{
    // Word-wise FNV-1a with a fold between the two multiplies so
    // high-byte-only differences (doubles near each other share low
    // mantissa bytes) still avalanche across the whole word. The
    // byte-wise original cost 16 dependent multiplies per double and
    // dominated the cache-key path once the strobe loops vectorized;
    // hashing a fleet-size impedance profile is now ~8x cheaper. Key
    // *values* change, but nothing persists or compares them across
    // versions — only equality within one process matters.
    h ^= word;
    h *= kFnvPrime;
    h ^= h >> 32;
    h *= kFnvPrime;
    return h;
}

} // namespace

TraceKeyBuilder::TraceKeyBuilder()
{
    key_.lo = kFnvOffsetLo;
    key_.hi = kFnvOffsetHi;
}

void
TraceKeyBuilder::mixWord(uint64_t word)
{
    key_.lo = fnvStep(key_.lo, word);
    key_.hi = fnvStep(key_.hi, ~word);
}

TraceKeyBuilder &
TraceKeyBuilder::add(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mixWord(bits);
    return *this;
}

TraceKeyBuilder &
TraceKeyBuilder::add(uint64_t v)
{
    mixWord(v);
    return *this;
}

TraceKeyBuilder &
TraceKeyBuilder::add(const TransmissionLine &line)
{
    add(static_cast<uint64_t>(line.segments()));
    for (double z : line.impedances())
        add(z);
    add(line.segmentLength());
    add(line.velocity());
    add(line.sourceImpedance());
    add(line.loadImpedance());
    add(line.lossNeperPerMeter());
    return *this;
}

TraceCache::TraceCache(std::size_t capacity)
    : capacity_(capacity)
{
}

const Waveform *
TraceCache::find(const TraceKey &key)
{
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    it->second = entries_.begin();
    return &entries_.front().second;
}

const Waveform *
TraceCache::insert(const TraceKey &key, Waveform trace)
{
    if (capacity_ == 0)
        return nullptr;
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(trace);
        entries_.splice(entries_.begin(), entries_, it->second);
        it->second = entries_.begin();
        return &entries_.front().second;
    }
    if (entries_.size() >= capacity_) {
        index_.erase(entries_.back().first);
        entries_.pop_back();
        ++evictions_;
    }
    entries_.emplace_front(key, std::move(trace));
    index_[key] = entries_.begin();
    return &entries_.front().second;
}

void
TraceCache::clear()
{
    entries_.clear();
    index_.clear();
}

} // namespace divot
