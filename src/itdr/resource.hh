/**
 * @file
 * Structural hardware-cost model for the iTDR (Section IV-A).
 *
 * The prototype consumed 71 registers and 124 LUTs on a Xilinx
 * xczu7ev (~0.8 % of the device), with ~80 % of the registers in
 * counters. This model derives register and LUT counts structurally
 * from the configuration — counter widths, phase-index width, FSM
 * state bits — so benches can report how cost scales with trials,
 * window length, and the number of protected buses. Per the paper,
 * the PLL, triangle generator, and reconstruction logic are *shared*
 * among all iTDRs on a chip, so the marginal cost of protecting one
 * more bus is only the per-lane slice.
 */

#ifndef DIVOT_ITDR_RESOURCE_HH
#define DIVOT_ITDR_RESOURCE_HH

#include "itdr/itdr.hh"

namespace divot {

/** Register/LUT estimate of one block. */
struct BlockCost
{
    const char *name;
    unsigned registers;
    unsigned luts;
    bool shareable;  //!< true when one instance serves every iTDR
};

/** Aggregated utilization estimate. */
struct ResourceEstimate
{
    std::vector<BlockCost> blocks;
    unsigned totalRegisters = 0;
    unsigned totalLuts = 0;
    unsigned counterRegisters = 0;  //!< registers inside counters
    unsigned shareableRegisters = 0;
    unsigned shareableLuts = 0;

    /** @return fraction of registers spent on counters. */
    double counterRegisterFraction() const;

    /**
     * Total registers for protecting n buses, with shareable blocks
     * instantiated once.
     */
    unsigned registersForBuses(unsigned n) const;

    /** Total LUTs for protecting n buses. */
    unsigned lutsForBuses(unsigned n) const;
};

/**
 * Estimate the hardware cost of an iTDR configuration.
 *
 * @param config the instrument configuration
 * @param bins   ETS bins per measurement (determines index widths)
 */
ResourceEstimate estimateResources(const ItdrConfig &config,
                                   unsigned bins);

} // namespace divot

#endif // DIVOT_ITDR_RESOURCE_HH
