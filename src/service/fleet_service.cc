#include "service/fleet_service.hh"

#include <algorithm>

#include "util/logging.hh"

namespace divot::service {

FleetService::FleetService(ChannelScheduler &fleet) : fleet_(fleet)
{
    channelLoad_.assign(fleet_.channelCount(), 0);
    pendingVerify_.assign(fleet_.channelCount(), {});
    Registry &reg = fleet_.telemetry().registry();
    for (std::size_t i = 0; i < kRequestKinds; ++i) {
        tmRequests_[i] = reg.counter(
            std::string("service.requests.") +
            requestKindName(static_cast<RequestKind>(i)));
    }
    for (std::size_t i = 0; i < kResponseStatuses; ++i) {
        tmResponses_[i] = reg.counter(
            std::string("service.responses.") +
            responseStatusName(static_cast<ResponseStatus>(i)));
    }
    tmAdmitted_ = reg.counter("service.admitted");
    tmRejected_ = reg.counter("service.rejected");
    tmQueuePeak_ = reg.gauge("service.queue.peak");
    fleet_.attachService(this);
}

FleetService::~FleetService()
{
    // Close abandoned request spans in ticket order: the span ring is
    // part of the byte-stable export, so even teardown must not leak
    // hash-map iteration order into it.
    std::vector<uint64_t> tickets;
    tickets.reserve(inflight_.size());
    for (const auto &entry : inflight_)
        tickets.push_back(entry.first);
    std::sort(tickets.begin(), tickets.end());
    for (const uint64_t ticket : tickets)
        inflight_[ticket].span.close(fleet_.elapsedSeconds(), 0);
    fleet_.attachService(nullptr);
}

FleetService::Pending &
FleetService::pendingAt(uint64_t ticket)
{
    const auto it = inflight_.find(ticket);
    if (it == inflight_.end())
        divot_fatal("service: no in-flight request for ticket %llu",
                    static_cast<unsigned long long>(ticket));
    return it->second;
}

void
FleetService::fillChannelState(std::size_t channel,
                               ServiceResponse &response) const
{
    if (channel == ChannelScheduler::kNoChannel)
        return;
    const AuthState state = fleet_.channel(channel).state();
    response.state = static_cast<uint64_t>(state);
    response.phase =
        static_cast<uint64_t>(fleet_.channelPhase(channel));
    if (state == AuthState::TamperAlert ||
        state == AuthState::Quarantine) {
        response.flags |= kResponseTamper;
    }
}

void
FleetService::emitResponse(ServiceResponse response)
{
    digest_ = foldResponseDigest(digest_, response);
    tmResponses_[static_cast<std::size_t>(response.status)].add();
    ++stats_.responses;
    emitted_.push_back(std::move(response));
}

void
FleetService::reject(const ServiceRequest &request,
                     ResponseStatus status)
{
    ServiceResponse response;
    response.id = request.id;
    response.kind = request.kind;
    response.channel = request.channel;
    response.status = status;
    response.tick = fleet_.ticks();
    tmRejected_.add();
    TelemetryEvent event;
    event.time = fleet_.elapsedSeconds();
    event.ordinal = request.id;
    event.kind = "service.reject";
    event.tag = requestKindName(request.kind);
    event.detail = responseStatusName(status);
    fleet_.telemetry().events().record(std::move(event));
    emitResponse(std::move(response));
}

bool
FleetService::submit(const ServiceRequest &request)
{
    ++stats_.submitted;
    tmRequests_[static_cast<std::size_t>(request.kind)].add();
    if (channelLoad_.size() < fleet_.channelCount()) {
        channelLoad_.resize(fleet_.channelCount(), 0);
        pendingVerify_.resize(fleet_.channelCount());
    }
    std::size_t channel = ChannelScheduler::kNoChannel;
    if (request.kind != RequestKind::FleetSummary) {
        channel = fleet_.findChannel(request.channel);
        if (channel == ChannelScheduler::kNoChannel) {
            ++stats_.rejectedUnknown;
            reject(request, ResponseStatus::Unknown);
            return false;
        }
    }
    const FleetConfig &config = fleet_.config();
    const bool globalFull = inflight_.size() >= config.requestQueueDepth;
    const bool channelFull =
        channel != ChannelScheduler::kNoChannel &&
        channelLoad_[channel] >= config.requestChannelDepth;
    if (globalFull || channelFull) {
        ++stats_.rejectedBusy;
        reject(request, ResponseStatus::Busy);
        return false;
    }
    const uint64_t ticket = nextTicket_++;
    Pending pending;
    pending.request = request;
    pending.channel = channel;
    inflight_.emplace(ticket, std::move(pending));
    if (channel != ChannelScheduler::kNoChannel)
        ++channelLoad_[channel];
    ++stats_.admitted;
    tmAdmitted_.add();
    tmQueuePeak_.max(static_cast<int64_t>(inflight_.size()));
    fleet_.scheduleRequestArrival(
        channel == ChannelScheduler::kNoChannel ? 0 : channel, ticket);
    return true;
}

StreamDecode
FleetService::submitStream(const std::vector<char> &bytes)
{
    std::vector<ServiceRequest> requests;
    const StreamDecode decode = decodeRequestStream(bytes, requests);
    for (const ServiceRequest &request : requests)
        submit(request);
    if (!decode.ok())
        ++stats_.parseErrors;
    return decode;
}

FleetRound
FleetService::tick()
{
    return fleet_.tick();
}

std::vector<ServiceResponse>
FleetService::drainResponses()
{
    std::vector<ServiceResponse> out = std::move(emitted_);
    emitted_.clear();
    return out;
}

void
FleetService::onRequestArrival(const ReactorEvent &event)
{
    Pending &pending = pendingAt(event.ticket);
    pending.span = fleet_.telemetry().tracer().open(
        "service.request", requestKindName(pending.request.kind),
        event.vtime, pending.request.id);
    ServiceResponse &response = pending.response;
    response.id = pending.request.id;
    response.kind = pending.request.kind;
    response.channel = pending.request.channel;
    switch (pending.request.kind) {
    case RequestKind::QuarantineStatus:
        fillChannelState(pending.channel, response);
        response.status = ResponseStatus::Ok;
        fleet_.scheduleRequestComplete(pending.channel, event.ticket,
                                       event.vtime);
        return;
    case RequestKind::Enroll: {
        const bool ok = fleet_.persistEnrollment(pending.channel);
        response.status =
            ok ? ResponseStatus::Ok : ResponseStatus::Rejected;
        fillChannelState(pending.channel, response);
        response.generation =
            fleet_.enrollmentGeneration(pending.channel);
        fleet_.scheduleRequestComplete(pending.channel, event.ticket,
                                       event.vtime);
        return;
    }
    case RequestKind::Reenroll: {
        const bool ok = fleet_.reenrollChannel(pending.channel);
        response.status =
            ok ? ResponseStatus::Ok : ResponseStatus::Rejected;
        fillChannelState(pending.channel, response);
        response.generation =
            fleet_.enrollmentGeneration(pending.channel);
        fleet_.scheduleRequestComplete(pending.channel, event.ticket,
                                       event.vtime);
        return;
    }
    case RequestKind::Verify:
        if (fleet_.channel(pending.channel).state() ==
            AuthState::PendingReenroll) {
            // No enrollment to probe against: answer Fenced without
            // burning an instrument slot.
            fillChannelState(pending.channel, response);
            response.status = ResponseStatus::Fenced;
            fleet_.scheduleRequestComplete(pending.channel,
                                           event.ticket, event.vtime);
            return;
        }
        // Request pressure is risk pressure: the boosted channel wins
        // the next dispatch and this ticket rides on its verdict.
        fleet_.boostChannel(pending.channel);
        pendingVerify_[pending.channel].push_back(event.ticket);
        return;
    case RequestKind::FleetSummary:
        pendingSummary_.push_back(event.ticket);
        return;
    }
}

void
FleetService::onProbeObserved(std::size_t channel,
                              const AuthVerdict &verdict, double vtime)
{
    if (channel >= pendingVerify_.size())
        return;
    std::vector<uint64_t> &waiting = pendingVerify_[channel];
    if (waiting.empty())
        return;
    for (const uint64_t ticket : waiting) {
        Pending &pending = pendingAt(ticket);
        ServiceResponse &response = pending.response;
        response.similarity = verdict.similarity;
        response.state = static_cast<uint64_t>(verdict.stateAfter);
        response.phase =
            static_cast<uint64_t>(fleet_.channelPhase(channel));
        if (verdict.authenticated)
            response.flags |= kResponseAuthenticated;
        if (verdict.tamperAlarm)
            response.flags |= kResponseTamper;
        response.status =
            verdict.stateAfter == AuthState::PendingReenroll
                ? ResponseStatus::Fenced
                : ResponseStatus::Ok;
        fleet_.scheduleRequestComplete(channel, ticket, vtime);
    }
    waiting.clear();
}

void
FleetService::onEpochFused(const FleetVerdict &fused, double vtime)
{
    if (pendingSummary_.empty())
        return;
    for (const uint64_t ticket : pendingSummary_) {
        Pending &pending = pendingAt(ticket);
        ServiceResponse &response = pending.response;
        response.status = ResponseStatus::Ok;
        response.similarity = fused.fusedSimilarity;
        response.channels = fused.channels;
        response.fenced = fused.pendingReenrollWires;
        response.quarantined = fused.quarantinedWires;
        if (fused.busAuthenticated)
            response.flags |= kResponseAuthenticated;
        if (fused.tamperAlarm)
            response.flags |= kResponseTamper;
        if (fused.busTrusted)
            response.flags |= kResponseTrusted;
        fleet_.scheduleRequestComplete(0, ticket, vtime);
    }
    pendingSummary_.clear();
}

void
FleetService::onRequestComplete(const ReactorEvent &event)
{
    const auto it = inflight_.find(event.ticket);
    if (it == inflight_.end())
        divot_fatal("service: RequestComplete for unknown ticket %llu",
                    static_cast<unsigned long long>(event.ticket));
    Pending &pending = it->second;
    pending.response.tick = fleet_.ticks();
    pending.span.close(event.vtime, 0);
    if (pending.channel != ChannelScheduler::kNoChannel &&
        channelLoad_[pending.channel] > 0) {
        --channelLoad_[pending.channel];
    }
    emitResponse(std::move(pending.response));
    inflight_.erase(it);
}

} // namespace divot::service
