#include "service/request.hh"

#include <cstring>

#include "store/codec.hh"

namespace divot::service {

namespace {

/** Requests and responses are a few hundred bytes at most; a body
 *  length past this is a corrupted length field, not a big frame. */
constexpr uint64_t kMaxBodyBytes = 1ull << 20;

void
putU32(std::vector<char> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

uint32_t
readU32(const char *data)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
    return v;
}

uint64_t
readU64(const char *data)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
    return v;
}

std::vector<char>
encodeRequestBody(const ServiceRequest &request)
{
    std::vector<char> body;
    store::putU64(body, static_cast<uint64_t>(request.kind));
    store::putU64(body, request.id);
    store::putString(body, request.channel);
    return body;
}

std::vector<char>
encodeResponseBody(const ServiceResponse &response)
{
    std::vector<char> body;
    store::putU64(body, static_cast<uint64_t>(response.kind));
    store::putU64(body, static_cast<uint64_t>(response.status));
    store::putU64(body, response.id);
    store::putU64(body, response.tick);
    store::putString(body, response.channel);
    store::putU64(body, response.state);
    store::putU64(body, response.phase);
    store::putU64(body, response.flags);
    store::putF64(body, response.similarity);
    store::putU64(body, response.generation);
    store::putU64(body, response.channels);
    store::putU64(body, response.fenced);
    store::putU64(body, response.quarantined);
    return body;
}

bool
decodeRequestBody(const std::vector<char> &body, ServiceRequest &out)
{
    store::ByteReader reader(body);
    uint64_t kind = 0;
    ServiceRequest parsed;
    if (!reader.u64(kind) || !reader.u64(parsed.id) ||
        !reader.str(parsed.channel) || !reader.done())
        return false;
    if (kind >= kRequestKinds)
        return false;
    parsed.kind = static_cast<RequestKind>(kind);
    out = std::move(parsed);
    return true;
}

bool
decodeResponseBody(const std::vector<char> &body, ServiceResponse &out)
{
    store::ByteReader reader(body);
    uint64_t kind = 0;
    uint64_t status = 0;
    ServiceResponse parsed;
    if (!reader.u64(kind) || !reader.u64(status) ||
        !reader.u64(parsed.id) || !reader.u64(parsed.tick) ||
        !reader.str(parsed.channel) || !reader.u64(parsed.state) ||
        !reader.u64(parsed.phase) || !reader.u64(parsed.flags) ||
        !reader.f64(parsed.similarity) ||
        !reader.u64(parsed.generation) ||
        !reader.u64(parsed.channels) || !reader.u64(parsed.fenced) ||
        !reader.u64(parsed.quarantined) || !reader.done())
        return false;
    if (kind >= kRequestKinds || status >= kResponseStatuses)
        return false;
    parsed.kind = static_cast<RequestKind>(kind);
    parsed.status = static_cast<ResponseStatus>(status);
    out = std::move(parsed);
    return true;
}

void
appendFrame(std::vector<char> &stream, const std::vector<char> &body)
{
    putU32(stream, kServiceMagic);
    putU32(stream, kServiceVersion);
    store::putU64(stream, body.size());
    store::putU64(stream, store::fnv1a(body));
    stream.insert(stream.end(), body.begin(), body.end());
}

/**
 * Validate one frame header + checksum at data[0..n). On success the
 * verified body bytes are copied into `body` and status is Ok;
 * otherwise status/detail name the first thing wrong. Checks are
 * ordered so the most specific diagnosis wins: a wrong magic is
 * reported as BadMagic even when the buffer is also short.
 */
FrameParse
openFrame(const char *data, std::size_t n, std::vector<char> &body)
{
    FrameParse parse;
    if (n >= 4 && readU32(data) != kServiceMagic) {
        parse.status = ParseStatus::BadMagic;
        parse.detail = "frame does not start with DIVQ magic";
        return parse;
    }
    if (n >= 8 && readU32(data + 4) != kServiceVersion) {
        parse.status = ParseStatus::BadVersion;
        parse.detail = "unsupported codec version " +
                       std::to_string(readU32(data + 4));
        return parse;
    }
    if (n < kServiceFrameHeader) {
        parse.status = ParseStatus::Truncated;
        parse.detail = "frame header truncated (" + std::to_string(n) +
                       " of " + std::to_string(kServiceFrameHeader) +
                       " bytes)";
        return parse;
    }
    const uint64_t bodyLen = readU64(data + 8);
    const uint64_t crc = readU64(data + 16);
    if (bodyLen > kMaxBodyBytes) {
        parse.status = ParseStatus::BadLength;
        parse.detail = "body length " + std::to_string(bodyLen) +
                       " exceeds the frame bound";
        return parse;
    }
    // Overflow-safe: compare against what is actually left.
    if (bodyLen > n - kServiceFrameHeader) {
        parse.status = ParseStatus::Truncated;
        parse.detail =
            "frame body truncated (" +
            std::to_string(n - kServiceFrameHeader) + " of " +
            std::to_string(bodyLen) + " bytes)";
        return parse;
    }
    body.assign(data + kServiceFrameHeader,
                data + kServiceFrameHeader + bodyLen);
    if (store::fnv1a(body) != crc) {
        parse.status = ParseStatus::BadChecksum;
        parse.detail = "frame body fails its checksum";
        return parse;
    }
    parse.consumed = kServiceFrameHeader + static_cast<std::size_t>(bodyLen);
    return parse;
}

template <typename Value, typename DecodeBody>
StreamDecode
decodeStream(const std::vector<char> &bytes, std::vector<Value> &out,
             DecodeBody decodeBody)
{
    StreamDecode result;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        Value value;
        FrameParse parse;
        std::vector<char> body;
        parse = openFrame(bytes.data() + pos, bytes.size() - pos, body);
        if (parse.ok() && !decodeBody(body, value)) {
            parse.status = ParseStatus::BadBody;
            parse.consumed = 0;
            parse.detail = "frame body does not parse";
        }
        if (!parse.ok()) {
            parse.detail = "frame " + std::to_string(result.frames) +
                           " at offset " + std::to_string(pos) + ": " +
                           parse.detail;
            result.offset = pos;
            result.last = parse;
            return result;
        }
        out.push_back(std::move(value));
        ++result.frames;
        pos += parse.consumed;
    }
    result.offset = pos;
    return result;
}

} // namespace

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
    case RequestKind::Enroll:
        return "enroll";
    case RequestKind::Verify:
        return "verify";
    case RequestKind::QuarantineStatus:
        return "quarantine_status";
    case RequestKind::Reenroll:
        return "reenroll";
    case RequestKind::FleetSummary:
        return "fleet_summary";
    }
    return "?";
}

const char *
responseStatusName(ResponseStatus status)
{
    switch (status) {
    case ResponseStatus::Ok:
        return "ok";
    case ResponseStatus::Busy:
        return "busy";
    case ResponseStatus::Fenced:
        return "fenced";
    case ResponseStatus::Unknown:
        return "unknown";
    case ResponseStatus::Rejected:
        return "rejected";
    }
    return "?";
}

const char *
parseStatusName(ParseStatus status)
{
    switch (status) {
    case ParseStatus::Ok:
        return "ok";
    case ParseStatus::Truncated:
        return "truncated";
    case ParseStatus::BadMagic:
        return "bad_magic";
    case ParseStatus::BadVersion:
        return "bad_version";
    case ParseStatus::BadLength:
        return "bad_length";
    case ParseStatus::BadChecksum:
        return "bad_checksum";
    case ParseStatus::BadBody:
        return "bad_body";
    }
    return "?";
}

void
appendRequestFrame(std::vector<char> &stream,
                   const ServiceRequest &request)
{
    appendFrame(stream, encodeRequestBody(request));
}

void
appendResponseFrame(std::vector<char> &stream,
                    const ServiceResponse &response)
{
    appendFrame(stream, encodeResponseBody(response));
}

FrameParse
decodeRequestFrame(const char *data, std::size_t n, ServiceRequest &out)
{
    std::vector<char> body;
    FrameParse parse = openFrame(data, n, body);
    if (!parse.ok())
        return parse;
    if (!decodeRequestBody(body, out)) {
        parse.status = ParseStatus::BadBody;
        parse.consumed = 0;
        parse.detail = "request body does not parse";
    }
    return parse;
}

FrameParse
decodeResponseFrame(const char *data, std::size_t n,
                    ServiceResponse &out)
{
    std::vector<char> body;
    FrameParse parse = openFrame(data, n, body);
    if (!parse.ok())
        return parse;
    if (!decodeResponseBody(body, out)) {
        parse.status = ParseStatus::BadBody;
        parse.consumed = 0;
        parse.detail = "response body does not parse";
    }
    return parse;
}

StreamDecode
decodeRequestStream(const std::vector<char> &bytes,
                    std::vector<ServiceRequest> &out)
{
    return decodeStream(bytes, out, decodeRequestBody);
}

StreamDecode
decodeResponseStream(const std::vector<char> &bytes,
                     std::vector<ServiceResponse> &out)
{
    return decodeStream(bytes, out, decodeResponseBody);
}

uint64_t
foldResponseDigest(uint64_t digest, const ServiceResponse &response)
{
    std::vector<char> bytes;
    store::putU64(bytes, digest);
    appendResponseFrame(bytes, response);
    return store::fnv1a(bytes);
}

} // namespace divot::service
