/**
 * @file
 * Typed request/response surface of the fleet authentication service,
 * plus its wire codec.
 *
 * External traffic consults the authority through five request kinds
 * (Enroll, Verify, QuarantineStatus, Reenroll, FleetSummary). A
 * request stream is persisted and replayed as a sequence of CRC
 * frames with the same framing discipline as the store's shard
 * images: a fixed header `[magic|version][bodyLen][fnv1a(body)]`
 * followed by the body, so a single corrupted byte damages exactly
 * one frame and the decoder can say *which* frame and *why* instead
 * of accepting junk. The codec is strict: a frame either decodes to
 * exactly the bytes that were encoded or is rejected with a
 * diagnosable ParseStatus — there is no resynchronization, because a
 * replayed stream is evidence, not best-effort telemetry.
 *
 * Shared by FleetService (the store-backed ChannelScheduler front
 * end) and MegaFleet (the million-channel synthetic fleet), so both
 * answer the same protocol.
 */

#ifndef DIVOT_SERVICE_REQUEST_HH
#define DIVOT_SERVICE_REQUEST_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace divot::service {

/** What a client can ask the authority. */
enum class RequestKind : uint8_t
{
    Enroll = 0,       //!< persist the channel's current enrollment
    Verify,           //!< probe the channel and report its verdict
    QuarantineStatus, //!< snapshot lifecycle state without probing
    Reenroll,         //!< recalibrate + persist (lifts a fence)
    FleetSummary      //!< fused fleet verdict after this epoch
};

/** Number of RequestKind values (telemetry table size). */
constexpr std::size_t kRequestKinds = 5;

/** @return stable lower-case kind name ("enroll", ...). */
const char *requestKindName(RequestKind kind);

/** How the authority answered. */
enum class ResponseStatus : uint8_t
{
    Ok = 0,   //!< request served; payload fields are valid
    Busy,     //!< admission queue full — retry later
    Fenced,   //!< channel is quarantined/pending re-enrollment
    Unknown,  //!< no such channel
    Rejected  //!< request was admissible but the operation failed
              //!< (e.g. persist fault)
};

/** Number of ResponseStatus values (telemetry table size). */
constexpr std::size_t kResponseStatuses = 5;

/** @return stable lower-case status name ("ok", "busy", ...). */
const char *responseStatusName(ResponseStatus status);

/** One client request. `channel` is empty for FleetSummary. */
struct ServiceRequest
{
    uint64_t id = 0; //!< client correlation id, echoed in the response
    RequestKind kind = RequestKind::Verify;
    std::string channel;
};

/**
 * One response. Which payload fields are meaningful depends on
 * (kind, status); everything else is zero so encoded frames are a
 * pure function of the served request.
 */
struct ServiceResponse
{
    uint64_t id = 0;       //!< echoes ServiceRequest::id
    RequestKind kind = RequestKind::Verify;
    ResponseStatus status = ResponseStatus::Ok;
    uint64_t tick = 0;     //!< fleet tick the response was emitted on
    std::string channel;

    uint64_t state = 0;      //!< AuthState ordinal of the channel
    uint64_t phase = 0;      //!< ChannelPhase ordinal
    uint64_t flags = 0;      //!< kResponseAuthenticated / ...Tamper /
                             //!< ...Trusted bits
    double similarity = 0.0; //!< probe (Verify) or fused (Summary)
    uint64_t generation = 0; //!< enrollment generation after
                             //!< Enroll/Reenroll
    uint64_t channels = 0;   //!< FleetSummary: fleet size
    uint64_t fenced = 0;     //!< FleetSummary: pending-reenroll count
    uint64_t quarantined = 0; //!< FleetSummary: quarantined count
};

/** ServiceResponse::flags bits. */
enum ResponseFlag : uint64_t
{
    kResponseAuthenticated = 1u << 0, //!< probe/fusion authenticated
    kResponseTamper = 1u << 1,        //!< tamper alarm raised
    kResponseTrusted = 1u << 2        //!< fused bus-trusted verdict
};

/** Frame constants ("DIVQ", version 1, 24-byte header like the
 *  store's bank header). */
constexpr uint32_t kServiceMagic = 0x44495651; // "DIVQ"
constexpr uint32_t kServiceVersion = 1;
constexpr std::size_t kServiceFrameHeader = 24;

/** Why a frame failed to decode. */
enum class ParseStatus : uint8_t
{
    Ok = 0,
    Truncated,  //!< fewer bytes than the header/body promises
    BadMagic,   //!< frame does not start with kServiceMagic
    BadVersion, //!< unknown codec version
    BadLength,  //!< body length is absurd (overflow guard tripped)
    BadChecksum,//!< body bytes fail their FNV-1a
    BadBody     //!< checksum fine but the body does not parse (bad
                //!< enum ordinal, short/overlong field stream)
};

/** @return stable status name ("ok", "truncated", ...). */
const char *parseStatusName(ParseStatus status);

/** Outcome of decoding one frame. */
struct FrameParse
{
    ParseStatus status = ParseStatus::Ok;
    std::size_t consumed = 0; //!< whole frame size when Ok, else 0
    std::string detail;       //!< diagnosable cause ("frame body fails
                              //!< checksum", ...)

    bool ok() const { return status == ParseStatus::Ok; }
};

/** @name Frame writers — append one CRC frame to a stream. */
///@{
void appendRequestFrame(std::vector<char> &stream,
                        const ServiceRequest &request);
void appendResponseFrame(std::vector<char> &stream,
                         const ServiceResponse &response);
///@}

/** @name Frame readers — decode one frame from `data[0..n)`. Strict:
 *  the body must consume exactly bodyLen bytes and every enum
 *  ordinal must be in range. `out` is untouched unless Ok. */
///@{
FrameParse decodeRequestFrame(const char *data, std::size_t n,
                              ServiceRequest &out);
FrameParse decodeResponseFrame(const char *data, std::size_t n,
                               ServiceResponse &out);
///@}

/** Outcome of decoding a whole stream (e.g. a replay file). */
struct StreamDecode
{
    std::size_t frames = 0; //!< frames decoded before stopping
    std::size_t offset = 0; //!< byte offset decoding stopped at
    FrameParse last;        //!< Ok when the stream ended cleanly

    bool ok() const { return last.ok(); }
};

/**
 * Decode a stream of request frames until the bytes end or a frame
 * fails. Frames already decoded stay in `out` — a damaged byte never
 * un-accepts the intact prefix, and never yields a request that was
 * not encoded.
 */
StreamDecode decodeRequestStream(const std::vector<char> &bytes,
                                 std::vector<ServiceRequest> &out);

/** Response-stream variant of decodeRequestStream. */
StreamDecode decodeResponseStream(const std::vector<char> &bytes,
                                  std::vector<ServiceResponse> &out);

/**
 * Fold one response into a chained digest (FNV-1a over its encoded
 * frame). Two services answered identically iff their digests match —
 * the bit-identity currency of the thread/lane gates.
 */
uint64_t foldResponseDigest(uint64_t digest,
                            const ServiceResponse &response);

/** Deterministic admission/emission totals of a request front end
 *  (FleetService and MegaFleet keep one each). */
struct ServiceStats
{
    uint64_t submitted = 0; //!< submit() calls
    uint64_t admitted = 0;  //!< entered the service
    uint64_t rejectedBusy = 0;
    uint64_t rejectedUnknown = 0;
    uint64_t responses = 0; //!< responses emitted (incl. rejections)
    uint64_t parseErrors = 0; //!< replayed frames that failed to parse
};

} // namespace divot::service

#endif // DIVOT_SERVICE_REQUEST_HH
