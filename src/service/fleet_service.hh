/**
 * @file
 * FleetService — the request front end of a store-backed fleet.
 *
 * External traffic consults the authentication authority through a
 * typed request stream (service/request.hh). Admission is bounded and
 * synchronous: submit() either admits the request into the fleet
 * reactor or answers immediately with an explicit rejection (Busy on
 * a full global/per-channel queue, Unknown for a name the fleet has
 * never seen). Admitted requests become first-class reactor events —
 * a RequestArrival consumed at the head of the next epoch, before
 * channel ranking, and a RequestComplete when the answer is due — so
 * admission, hydration, probing, and response emission are one
 * deterministic event order, a pure function of (seed, config) at any
 * thread count. A Verify boosts its channel's staleness x risk
 * priority (request pressure IS risk pressure), so the scheduler
 * spends the next instrument slot answering it.
 *
 * Per-request lifecycle:
 *  - Enroll / Reenroll / QuarantineStatus complete at their arrival
 *    instant (store persists happen inside the serial event loop).
 *  - Verify waits for its channel's next observed verdict — a real
 *    probe or a fence demotion — and answers Fenced without burning
 *    an instrument when the channel is already quarantined.
 *  - FleetSummary waits for the epoch's fusion.
 *
 * Every response is folded into a chained FNV digest of its encoded
 * frame; two runs served the same traffic iff digests match, which is
 * what the serial-vs-pooled and lane gates compare.
 */

#ifndef DIVOT_SERVICE_FLEET_SERVICE_HH
#define DIVOT_SERVICE_FLEET_SERVICE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fleet/channel_scheduler.hh"
#include "service/request.hh"

namespace divot::service {

/**
 * Request service over a ChannelScheduler. Borrowing: the fleet must
 * outlive the service; the service detaches its hook on destruction.
 */
class FleetService final : public ServiceHook
{
  public:
    explicit FleetService(ChannelScheduler &fleet);
    ~FleetService() override;

    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    /**
     * Submit one request. Admission is decided here, synchronously:
     * a rejection (Busy, Unknown) emits its response immediately;
     * an admitted request answers during a later tick().
     *
     * @return true when admitted
     */
    bool submit(const ServiceRequest &request);

    /**
     * Replay a framed request stream (e.g. a recorded file): decode
     * frames in order, submitting each. Stops at the first damaged
     * frame — replayed traffic is evidence, not best effort.
     *
     * @return the stream decode outcome (frames before the damage
     *         were submitted; their admission results are in stats())
     */
    StreamDecode submitStream(const std::vector<char> &bytes);

    /** Run one fleet tick: pending arrivals enter the epoch, boosted
     *  channels get probed, due responses are emitted. */
    FleetRound tick();

    /** Move out the responses emitted so far, in emission order. */
    std::vector<ServiceResponse> drainResponses();

    /** @return chained FNV digest over every emitted response frame
     *  (rejections included), regardless of drains. */
    uint64_t responseDigest() const { return digest_; }

    /** @return admitted requests not yet answered. */
    std::size_t pendingRequests() const { return inflight_.size(); }

    /** @return admission/emission totals. */
    const ServiceStats &stats() const { return stats_; }

    /** @return the fleet this service fronts. */
    ChannelScheduler &fleet() { return fleet_; }

    /** @name ServiceHook (called from the fleet's event loop). */
    ///@{
    void onRequestArrival(const ReactorEvent &event) override;
    void onRequestComplete(const ReactorEvent &event) override;
    void onProbeObserved(std::size_t channel,
                         const AuthVerdict &verdict,
                         double vtime) override;
    void onEpochFused(const FleetVerdict &fused, double vtime) override;
    ///@}

  private:
    /** One admitted request waiting for its RequestComplete. */
    struct Pending
    {
        ServiceRequest request;
        std::size_t channel = ChannelScheduler::kNoChannel;
        ServiceResponse response; //!< built by the lifecycle handlers
        SpanScope span;           //!< service.request span
    };

    ChannelScheduler &fleet_;
    std::unordered_map<uint64_t, Pending> inflight_; //!< by ticket
    uint64_t nextTicket_ = 0;
    std::vector<std::size_t> channelLoad_; //!< in-flight per channel
    std::vector<std::vector<uint64_t>> pendingVerify_; //!< tickets
                                                       //!< per channel
    std::vector<uint64_t> pendingSummary_;
    std::vector<ServiceResponse> emitted_;
    uint64_t digest_ = 0;
    ServiceStats stats_;

    Counter tmRequests_[kRequestKinds];    //!< service.requests.<kind>
    Counter tmResponses_[kResponseStatuses]; //!< service.responses.<s>
    Counter tmAdmitted_;                   //!< service.admitted
    Counter tmRejected_;                   //!< service.rejected
    Gauge tmQueuePeak_;                    //!< service.queue.peak

    /** Emit an immediate rejection response at submit time. */
    void reject(const ServiceRequest &request, ResponseStatus status);
    /** Fold + record + store a finished response. */
    void emitResponse(ServiceResponse response);
    /** Snapshot channel lifecycle fields into `response`. */
    void fillChannelState(std::size_t channel,
                          ServiceResponse &response) const;
    Pending &pendingAt(uint64_t ticket);
};

} // namespace divot::service

#endif // DIVOT_SERVICE_FLEET_SERVICE_HH
