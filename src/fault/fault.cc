#include "fault/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "util/logging.hh"

namespace divot {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ComparatorStuckLow: return "comparator-stuck-low";
      case FaultKind::ComparatorStuckHigh: return "comparator-stuck-high";
      case FaultKind::ComparatorOffsetDrift: return "comparator-offset-drift";
      case FaultKind::PllPhaseDropout: return "pll-phase-dropout";
      case FaultKind::CounterBitFlip: return "counter-bit-flip";
      case FaultKind::EmiBurst: return "emi-burst";
      case FaultKind::BudgetOverrun: return "budget-overrun";
      case FaultKind::EpromCorruption: return "eprom-corruption";
      case FaultKind::StorageTornWrite: return "storage-torn-write";
      case FaultKind::StorageCrash: return "storage-crash";
      case FaultKind::StorageBitRot: return "storage-bit-rot";
      case FaultKind::StorageTruncation: return "storage-truncation";
    }
    return "unknown";
}

FaultPlan &
FaultPlan::add(FaultSpec spec)
{
    specs_.push_back(spec);
    return *this;
}

FaultPlan &
FaultPlan::comparatorStuck(uint64_t first, uint64_t n, bool high)
{
    return add({high ? FaultKind::ComparatorStuckHigh
                     : FaultKind::ComparatorStuckLow,
                first, n, 0.0, 0.0});
}

FaultPlan &
FaultPlan::offsetDrift(uint64_t first, uint64_t n, double volts)
{
    return add({FaultKind::ComparatorOffsetDrift, first, n, volts, 0.0});
}

FaultPlan &
FaultPlan::pllDropout(uint64_t first, uint64_t n, double rate)
{
    return add({FaultKind::PllPhaseDropout, first, n, rate, 0.0});
}

FaultPlan &
FaultPlan::counterBitFlip(uint64_t first, uint64_t n, double rate)
{
    return add({FaultKind::CounterBitFlip, first, n, rate, 0.0});
}

FaultPlan &
FaultPlan::emiBurst(uint64_t first, uint64_t n, double volts, double hz)
{
    return add({FaultKind::EmiBurst, first, n, volts, hz});
}

FaultPlan &
FaultPlan::budgetOverrun(uint64_t first, uint64_t n, double factor)
{
    return add({FaultKind::BudgetOverrun, first, n, factor, 0.0});
}

FaultPlan &
FaultPlan::epromCorruption(uint64_t event, double bytes)
{
    return add({FaultKind::EpromCorruption, event, 1, bytes, 0.0});
}

FaultPlan &
FaultPlan::storageTornWrite(uint64_t event, double fraction)
{
    return add({FaultKind::StorageTornWrite, event, 1, fraction, 0.0});
}

FaultPlan &
FaultPlan::storageCrash(uint64_t event, StorageCrashPoint point)
{
    return add({FaultKind::StorageCrash, event, 1,
                static_cast<double>(point), 0.0});
}

FaultPlan &
FaultPlan::storageBitRot(uint64_t event, uint64_t n, double bits)
{
    return add({FaultKind::StorageBitRot, event, n, bits, 0.0});
}

FaultPlan &
FaultPlan::storageTruncation(uint64_t event, double keep_fraction)
{
    return add({FaultKind::StorageTruncation, event, 1, keep_fraction,
                0.0});
}

uint64_t
FaultPlan::defaultSeed()
{
    if (const char *env = std::getenv("DIVOT_FAULT_SEED")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 0);
        if (end && end != env && *end == '\0')
            return static_cast<uint64_t>(v);
        divot_warn("DIVOT_FAULT_SEED='%s' is not an integer; "
                   "using the built-in seed", env);
    }
    return 0xFA017ull;
}

bool
FaultFrame::any() const
{
    return comparatorStuck >= 0 || comparatorOffset != 0.0 ||
           pllDropoutRate > 0.0 || counterFlipRate > 0.0 ||
           emiAmplitude > 0.0 || cycleOverrunFactor != 1.0;
}

namespace {

bool
active(const FaultSpec &spec, uint64_t index)
{
    if (index < spec.firstMeasurement)
        return false;
    if (spec.measurements == 0)
        return true;
    return index - spec.firstMeasurement < spec.measurements;
}

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, Rng rng)
    : plan_(std::move(plan)), base_(rng)
{
}

FaultFrame
FaultInjector::frameFor(uint64_t measurement_index) const
{
    // Everything derives from (base state, index): the frame is a pure
    // function of the measurement index, so campaigns reproduce
    // bit-for-bit regardless of which thread performs the measurement.
    Rng draw = base_.forkStable(measurement_index * 2 + 1);

    FaultFrame frame;
    frame.binRng = base_.forkStable(measurement_index * 2);
    for (const FaultSpec &spec : plan_.specs()) {
        if (!active(spec, measurement_index))
            continue;
        switch (spec.kind) {
          case FaultKind::ComparatorStuckLow:
            frame.comparatorStuck = 0;
            break;
          case FaultKind::ComparatorStuckHigh:
            frame.comparatorStuck = 1;
            break;
          case FaultKind::ComparatorOffsetDrift:
            frame.comparatorOffset += spec.magnitude;
            break;
          case FaultKind::PllPhaseDropout:
            frame.pllDropoutRate =
                std::min(1.0, frame.pllDropoutRate + spec.magnitude);
            break;
          case FaultKind::CounterBitFlip:
            frame.counterFlipRate =
                std::min(1.0, frame.counterFlipRate + spec.magnitude);
            break;
          case FaultKind::EmiBurst:
            frame.emiAmplitude = std::max(frame.emiAmplitude,
                                          spec.magnitude);
            frame.emiFrequency = spec.frequency;
            frame.emiPhase = draw.uniform(0.0, 6.283185307179586);
            break;
          case FaultKind::BudgetOverrun:
            frame.cycleOverrunFactor *= spec.magnitude > 0.0
                ? spec.magnitude : 1.0;
            break;
          case FaultKind::EpromCorruption:
          case FaultKind::StorageTornWrite:
          case FaultKind::StorageCrash:
          case FaultKind::StorageBitRot:
          case FaultKind::StorageTruncation:
            break; // storage faults are applied by corruptFile() /
                   // storageFrameFor(), not per measurement
        }
    }
    return frame;
}

StorageFault
FaultInjector::storageFrameFor(uint64_t event_index) const
{
    // Domain-separated from the measurement frames (odd/even tags of
    // frameFor): storage events use their own tag arithmetic so a
    // plan mixing instrument and storage cells keeps both streams
    // pure functions of their respective indices.
    StorageFault fault;
    fault.rotRng = base_.forkStable(0x570A6E00ULL + event_index * 2);
    Rng draw = base_.forkStable(0x570A6E01ULL + event_index * 2);
    for (const FaultSpec &spec : plan_.specs()) {
        if (!active(spec, event_index))
            continue;
        switch (spec.kind) {
          case FaultKind::StorageTornWrite:
            fault.torn = true;
            fault.tornFraction = spec.magnitude > 0.0 &&
                                 spec.magnitude < 1.0
                ? spec.magnitude : draw.uniform(0.0, 1.0);
            break;
          case FaultKind::StorageCrash:
            fault.crash = true;
            fault.crashPoint = static_cast<StorageCrashPoint>(
                std::min<int>(3, std::max<int>(
                    0, static_cast<int>(spec.magnitude))));
            break;
          case FaultKind::StorageBitRot:
            fault.bitRotBits += spec.magnitude >= 1.0
                ? static_cast<uint64_t>(spec.magnitude) : 1u;
            break;
          case FaultKind::StorageTruncation:
            fault.truncate = true;
            fault.truncateKeep = spec.magnitude >= 0.0 &&
                                 spec.magnitude <= 1.0
                ? spec.magnitude : 0.5;
            break;
          default:
            break; // instrument cells are resolved by frameFor()
        }
    }
    return fault;
}

bool
FaultInjector::hasStorageFaults() const
{
    for (const FaultSpec &spec : plan_.specs()) {
        switch (spec.kind) {
          case FaultKind::StorageTornWrite:
          case FaultKind::StorageCrash:
          case FaultKind::StorageBitRot:
          case FaultKind::StorageTruncation:
            return true;
          default:
            break;
        }
    }
    return false;
}

bool
FaultInjector::epromFaultAt(uint64_t event_index) const
{
    for (const FaultSpec &spec : plan_.specs()) {
        if (spec.kind == FaultKind::EpromCorruption &&
            active(spec, event_index)) {
            return true;
        }
    }
    return false;
}

unsigned
FaultInjector::corruptFile(const std::string &path,
                           uint64_t event_index) const
{
    unsigned total = 0;
    for (const FaultSpec &spec : plan_.specs()) {
        if (spec.kind != FaultKind::EpromCorruption ||
            !active(spec, event_index)) {
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        if (!in)
            return total;
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        if (bytes.empty())
            return total;

        Rng draw = base_.forkStable(0xE9 + event_index * 16 + total);
        unsigned count = spec.magnitude >= 1.0
            ? static_cast<unsigned>(spec.magnitude) : 1u;
        for (unsigned i = 0; i < count; ++i) {
            uint64_t pos = draw.uniformInt(bytes.size());
            unsigned bit = static_cast<unsigned>(draw.uniformInt(8));
            bytes[pos] = static_cast<char>(
                static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
        }

        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            return total;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        total += count;
    }
    return total;
}

} // namespace divot
