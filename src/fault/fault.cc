#include "fault/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "util/logging.hh"

namespace divot {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ComparatorStuckLow: return "comparator-stuck-low";
      case FaultKind::ComparatorStuckHigh: return "comparator-stuck-high";
      case FaultKind::ComparatorOffsetDrift: return "comparator-offset-drift";
      case FaultKind::PllPhaseDropout: return "pll-phase-dropout";
      case FaultKind::CounterBitFlip: return "counter-bit-flip";
      case FaultKind::EmiBurst: return "emi-burst";
      case FaultKind::BudgetOverrun: return "budget-overrun";
      case FaultKind::EpromCorruption: return "eprom-corruption";
    }
    return "unknown";
}

FaultPlan &
FaultPlan::add(FaultSpec spec)
{
    specs_.push_back(spec);
    return *this;
}

FaultPlan &
FaultPlan::comparatorStuck(uint64_t first, uint64_t n, bool high)
{
    return add({high ? FaultKind::ComparatorStuckHigh
                     : FaultKind::ComparatorStuckLow,
                first, n, 0.0, 0.0});
}

FaultPlan &
FaultPlan::offsetDrift(uint64_t first, uint64_t n, double volts)
{
    return add({FaultKind::ComparatorOffsetDrift, first, n, volts, 0.0});
}

FaultPlan &
FaultPlan::pllDropout(uint64_t first, uint64_t n, double rate)
{
    return add({FaultKind::PllPhaseDropout, first, n, rate, 0.0});
}

FaultPlan &
FaultPlan::counterBitFlip(uint64_t first, uint64_t n, double rate)
{
    return add({FaultKind::CounterBitFlip, first, n, rate, 0.0});
}

FaultPlan &
FaultPlan::emiBurst(uint64_t first, uint64_t n, double volts, double hz)
{
    return add({FaultKind::EmiBurst, first, n, volts, hz});
}

FaultPlan &
FaultPlan::budgetOverrun(uint64_t first, uint64_t n, double factor)
{
    return add({FaultKind::BudgetOverrun, first, n, factor, 0.0});
}

FaultPlan &
FaultPlan::epromCorruption(uint64_t event, double bytes)
{
    return add({FaultKind::EpromCorruption, event, 1, bytes, 0.0});
}

uint64_t
FaultPlan::defaultSeed()
{
    if (const char *env = std::getenv("DIVOT_FAULT_SEED")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 0);
        if (end && end != env && *end == '\0')
            return static_cast<uint64_t>(v);
        divot_warn("DIVOT_FAULT_SEED='%s' is not an integer; "
                   "using the built-in seed", env);
    }
    return 0xFA017ull;
}

bool
FaultFrame::any() const
{
    return comparatorStuck >= 0 || comparatorOffset != 0.0 ||
           pllDropoutRate > 0.0 || counterFlipRate > 0.0 ||
           emiAmplitude > 0.0 || cycleOverrunFactor != 1.0;
}

namespace {

bool
active(const FaultSpec &spec, uint64_t index)
{
    if (index < spec.firstMeasurement)
        return false;
    if (spec.measurements == 0)
        return true;
    return index - spec.firstMeasurement < spec.measurements;
}

} // namespace

FaultInjector::FaultInjector(FaultPlan plan, Rng rng)
    : plan_(std::move(plan)), base_(rng)
{
}

FaultFrame
FaultInjector::frameFor(uint64_t measurement_index) const
{
    // Everything derives from (base state, index): the frame is a pure
    // function of the measurement index, so campaigns reproduce
    // bit-for-bit regardless of which thread performs the measurement.
    Rng draw = base_.forkStable(measurement_index * 2 + 1);

    FaultFrame frame;
    frame.binRng = base_.forkStable(measurement_index * 2);
    for (const FaultSpec &spec : plan_.specs()) {
        if (!active(spec, measurement_index))
            continue;
        switch (spec.kind) {
          case FaultKind::ComparatorStuckLow:
            frame.comparatorStuck = 0;
            break;
          case FaultKind::ComparatorStuckHigh:
            frame.comparatorStuck = 1;
            break;
          case FaultKind::ComparatorOffsetDrift:
            frame.comparatorOffset += spec.magnitude;
            break;
          case FaultKind::PllPhaseDropout:
            frame.pllDropoutRate =
                std::min(1.0, frame.pllDropoutRate + spec.magnitude);
            break;
          case FaultKind::CounterBitFlip:
            frame.counterFlipRate =
                std::min(1.0, frame.counterFlipRate + spec.magnitude);
            break;
          case FaultKind::EmiBurst:
            frame.emiAmplitude = std::max(frame.emiAmplitude,
                                          spec.magnitude);
            frame.emiFrequency = spec.frequency;
            frame.emiPhase = draw.uniform(0.0, 6.283185307179586);
            break;
          case FaultKind::BudgetOverrun:
            frame.cycleOverrunFactor *= spec.magnitude > 0.0
                ? spec.magnitude : 1.0;
            break;
          case FaultKind::EpromCorruption:
            break; // storage faults are applied by corruptFile()
        }
    }
    return frame;
}

bool
FaultInjector::epromFaultAt(uint64_t event_index) const
{
    for (const FaultSpec &spec : plan_.specs()) {
        if (spec.kind == FaultKind::EpromCorruption &&
            active(spec, event_index)) {
            return true;
        }
    }
    return false;
}

unsigned
FaultInjector::corruptFile(const std::string &path,
                           uint64_t event_index) const
{
    unsigned total = 0;
    for (const FaultSpec &spec : plan_.specs()) {
        if (spec.kind != FaultKind::EpromCorruption ||
            !active(spec, event_index)) {
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        if (!in)
            return total;
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        if (bytes.empty())
            return total;

        Rng draw = base_.forkStable(0xE9 + event_index * 16 + total);
        unsigned count = spec.magnitude >= 1.0
            ? static_cast<unsigned>(spec.magnitude) : 1u;
        for (unsigned i = 0; i < count; ++i) {
            uint64_t pos = draw.uniformInt(bytes.size());
            unsigned bit = static_cast<unsigned>(draw.uniformInt(8));
            bytes[pos] = static_cast<char>(
                static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
        }

        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out)
            return total;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        total += count;
    }
    return total;
}

} // namespace divot
