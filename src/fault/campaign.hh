/**
 * @file
 * Fault × attack campaign driver.
 *
 * Runs a matrix of monitoring scenarios — each cell pairs one fault
 * plan (instrument corruption, or none) with one attack (physical
 * tamper, or none) — through a full Authenticator lifecycle and
 * reports detection, false-alarm, and availability statistics per
 * cell. Cells are independent and seeded via `Rng::forkStable(cell
 * index)`, so a campaign parallelizes across the thread pool and
 * reproduces bit-for-bit at any thread count.
 */

#ifndef DIVOT_FAULT_CAMPAIGN_HH
#define DIVOT_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "auth/authenticator.hh"
#include "fault/fault.hh"
#include "fingerprint/fusion.hh"
#include "util/rng.hh"

namespace divot {

/** Physical attacks a campaign cell can stage. */
enum class CampaignAttack
{
    None,           //!< benign run (false-alarm / availability cell)
    MagneticProbe,  //!< near-field probe at mid-bus
    WireTap,        //!< soldered tap stub
    ColdBoot,       //!< module swapped for a foreign line
};

/** @return printable attack name. */
const char *campaignAttackName(CampaignAttack attack);

/** One named fault plan for the matrix. */
struct FaultScenario
{
    std::string name;  //!< row label ("none", "emi-burst", ...)
    FaultPlan plan;    //!< the injected schedule
};

/** Per-cell outcome statistics. */
struct FaultCell
{
    std::string fault;            //!< fault-scenario name
    std::string attack;           //!< attack name
    unsigned rounds = 0;          //!< monitoring rounds run
    bool attackStaged = false;    //!< an attack was present at all
    bool detected = false;        //!< attack flagged while present
    uint64_t detectionRound = 0;  //!< first flagged round (1-based)
    unsigned detectionLatency = 0; //!< rounds from attack to detection
    unsigned falseAlarms = 0;     //!< tamper alarms with no attack
    unsigned suppressedAlarms = 0; //!< candidates voted down
    unsigned unhealthyRounds = 0; //!< rounds failing health screens
    unsigned retries = 0;         //!< unhealthy re-measure attempts
    unsigned degradedRounds = 0;  //!< rounds ending in Degraded
    unsigned quarantineRounds = 0; //!< rounds ending in Quarantine
    unsigned authenticatedRounds = 0; //!< rounds with trust upheld
    double availability = 0.0;    //!< authenticatedRounds / rounds
    AuthState finalState = AuthState::Unenrolled;
    std::size_t wires = 1;        //!< bus width the cell ran with
};

/** Campaign configuration. */
struct FaultCampaignConfig
{
    AuthConfig auth;              //!< authenticator tuning per cell
    ItdrConfig itdr;              //!< instrument configuration
    unsigned rounds = 24;         //!< monitoring rounds per cell
    unsigned attackRound = 8;     //!< attack staged from this round
                                  //!< (0-based) to the end of the run
    std::size_t enrollReps = 8;   //!< enrollment measurements
    double lineLength = 0.15;     //!< fabricated bus length, meters
    double segmentLength = 0.5e-3; //!< spatial discretization
    unsigned threads = 0;         //!< 0 = DIVOT_THREADS / hardware

    /** @name Fleet cells (wires > 1 runs each cell through a
     *  ChannelScheduler and judges the *fused* bus verdict; wires == 1
     *  keeps the original single-authenticator path bit-for-bit). */
    ///@{
    std::size_t wires = 1;        //!< bus width per cell
    std::size_t faultWire = 0;    //!< channel carrying the fault plan
    std::size_t attackWire = 0;   //!< channel carrying the attack
    std::size_t fleetInstruments = 0; //!< iTDR pool size (0 = wires)
    FusionConfig fusion;          //!< similarity fusion rule
    ///@}

    /**
     * Optional shared telemetry sink: cells attach their
     * authenticators/instruments under cell-unique channel names and
     * the campaign accounts cells run and faults armed. Cell names
     * are unique per (fault, attack, wire), so concurrent cells write
     * disjoint metrics and the export stays deterministic. Not owned;
     * must outlive the campaign run.
     */
    Telemetry *telemetry = nullptr;
};

/**
 * Runs the fault × attack matrix.
 */
class FaultCampaign
{
  public:
    /**
     * @param config shared cell configuration
     * @param rng    master stream; every cell forks stably from it
     */
    FaultCampaign(FaultCampaignConfig config, Rng rng);

    /**
     * Run every fault × attack cell and return the matrix flattened
     * row-major (faults outer, attacks inner). Deterministic at any
     * thread count.
     */
    std::vector<FaultCell> run(const std::vector<FaultScenario> &faults,
                               const std::vector<CampaignAttack> &attacks);

    /** The default fault rows exercised by bench_fault_matrix. */
    static std::vector<FaultScenario> standardFaults(unsigned attackRound);

  private:
    FaultCampaignConfig config_;
    Rng rng_;

    FaultCell runCell(const FaultScenario &fault, CampaignAttack attack,
                      std::size_t index) const;
    FaultCell runFleetCell(const FaultScenario &fault,
                           CampaignAttack attack,
                           std::size_t index) const;
};

} // namespace divot

#endif // DIVOT_FAULT_CAMPAIGN_HH
