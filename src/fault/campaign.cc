#include "fault/campaign.hh"

#include <utility>

#include "fleet/channel_scheduler.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace divot {

const char *
campaignAttackName(CampaignAttack attack)
{
    switch (attack) {
      case CampaignAttack::None: return "none";
      case CampaignAttack::MagneticProbe: return "mag-probe";
      case CampaignAttack::WireTap: return "wire-tap";
      case CampaignAttack::ColdBoot: return "cold-boot";
    }
    return "?";
}

FaultCampaign::FaultCampaign(FaultCampaignConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng)
{
    if (config_.rounds == 0)
        divot_fatal("FaultCampaign needs at least one round");
    if (config_.attackRound >= config_.rounds)
        divot_fatal("attackRound %u outside the %u-round run",
                    config_.attackRound, config_.rounds);
    if (config_.wires == 0)
        divot_fatal("campaign needs at least one wire per cell");
    if (config_.faultWire >= config_.wires ||
        config_.attackWire >= config_.wires)
        divot_fatal("fault wire %zu / attack wire %zu outside the "
                    "%zu-wire bus",
                    config_.faultWire, config_.attackWire,
                    config_.wires);
    if (config_.fleetInstruments > config_.wires)
        divot_fatal("instrument pool %zu larger than the %zu-wire "
                    "fleet",
                    config_.fleetInstruments, config_.wires);
}

std::vector<FaultScenario>
FaultCampaign::standardFaults(unsigned attackRound)
{
    // Transients are single-measurement events before the attack
    // round, so the vote-confirmation's fresh re-measurements really
    // do re-sample clean conditions (a multi-measurement burst would
    // corrupt the votes too and confirm its own false alarm).
    // Persistent faults cover the whole run to exercise retries and
    // the degradation ladder under attack as well. Indices are
    // measurement counts: one round consumes one measurement plus any
    // retries and confirmation votes.
    const uint64_t atk = attackRound;
    std::vector<FaultScenario> rows;
    rows.push_back({"none", FaultPlan{}});
    rows.push_back({"emi-burst",
                    FaultPlan{}.emiBurst(2, 1, 2.5e-3, 25e6)
                               .emiBurst(atk * 4, 1, 2.5e-3, 40e6)});
    rows.push_back({"cmp-stuck",
                    FaultPlan{}.comparatorStuck(3, 2, true)});
    rows.push_back({"offset-drift",
                    FaultPlan{}.offsetDrift(0, 0, 1.5e-4)});
    rows.push_back({"pll-dropout",
                    FaultPlan{}.pllDropout(2, 1, 0.15)});
    rows.push_back({"counter-flip",
                    FaultPlan{}.counterBitFlip(2, 1, 0.35)});
    // 18 measurements of overrun = 5 monitoring rounds of exhausted
    // retries (descending to Quarantine) plus one failed quarantine
    // probe; the instrument then proves itself clean and climbs back
    // in time to catch the attack.
    rows.push_back({"budget-overrun",
                    FaultPlan{}.budgetOverrun(0, 18, 2.0)});
    return rows;
}

FaultCell
FaultCampaign::runFleetCell(const FaultScenario &fault,
                            CampaignAttack attack,
                            std::size_t index) const
{
    // Same cell-isolation contract as runCell: every draw forks
    // stably from the cell lane (the scheduler in turn forks each
    // channel stably from its seed), so fleet cells reproduce
    // bit-for-bit at any campaign thread count. The scheduler runs
    // single-threaded inside the cell — the campaign already
    // parallelizes across cells.
    const Rng lane = rng_.forkStable(0xCE110000ull + index);

    FleetConfig fleet_config;
    fleet_config.instruments = config_.fleetInstruments == 0
        ? config_.wires
        : config_.fleetInstruments;
    fleet_config.policy = SchedulerPolicy::RoundRobin;
    fleet_config.threads = 1;
    fleet_config.fusion = config_.fusion;
    fleet_config.similarityThreshold = config_.auth.similarityThreshold;
    // The cell-local fleet telemetry would die with the cell; campaign
    // observability goes through the shared sink instead (below).
    fleet_config.telemetry.enabled = false;
    ChannelScheduler fleet(fleet_config, lane.forkStable(3));

    BusChannelConfig channel_config;
    channel_config.lineLength = config_.lineLength;
    channel_config.segmentLength = config_.segmentLength;
    channel_config.itdr = config_.itdr;
    channel_config.auth = config_.auth;
    channel_config.enrollReps = config_.enrollReps;
    for (std::size_t w = 0; w < config_.wires; ++w) {
        channel_config.name = fault.name + "x" +
            campaignAttackName(attack) + "w" + std::to_string(w);
        const std::size_t idx = fleet.addChannel(channel_config);
        // Re-point the channel at the shared campaign sink: the
        // (fault, attack, wire) name makes its metric prefix unique
        // across the whole matrix.
        fleet.channel(idx).attachTelemetry(config_.telemetry);
    }
    fleet.calibrateAll();

    FaultInjector injector(fault.plan, lane.forkStable(4));
    fleet.channel(config_.faultWire).attachFaultInjector(&injector);

    FaultCell cell;
    cell.fault = fault.name;
    cell.attack = campaignAttackName(attack);
    cell.rounds = config_.rounds;
    cell.attackStaged = attack != CampaignAttack::None;
    cell.wires = config_.wires;

    bool staged = false;
    for (unsigned r = 0; r < config_.rounds; ++r) {
        const bool attackOn =
            cell.attackStaged && r >= config_.attackRound;
        if (attackOn && !staged) {
            BusChannel &target = fleet.channel(config_.attackWire);
            switch (attack) {
              case CampaignAttack::None:
                break;
              case CampaignAttack::MagneticProbe:
                target.stageAttack(MagneticProbe(0.5));
                break;
              case CampaignAttack::WireTap:
                target.stageAttack(WireTap(0.4, 50.0));
                break;
              case CampaignAttack::ColdBoot: {
                // Module swap: a foreign line on the attacked wire.
                ProcessParams params;
                ManufacturingProcess foreign_fab(params,
                                                 lane.forkStable(2));
                auto zf = foreign_fab.drawImpedanceProfile(
                    config_.lineLength, config_.segmentLength);
                target.replaceLine(TransmissionLine(
                    std::move(zf), config_.segmentLength,
                    params.velocity, 50.0, 50.25,
                    params.lossNeperPerMeter,
                    fault.name + "-foreign"));
                break;
              }
            }
            staged = true;
        }

        const FleetRound round = fleet.tick();
        for (const ChannelProbe &probe : round.probes) {
            if (!probe.verdict.instrumentHealthy)
                ++cell.unhealthyRounds;
            cell.retries += probe.verdict.retries;
            if (probe.verdict.alarmSuppressed)
                ++cell.suppressedAlarms;
        }
        const FleetVerdict &fused = round.fused;
        if (fused.busTrusted)
            ++cell.authenticatedRounds;
        if (fused.degradedWires > 0)
            ++cell.degradedRounds;
        if (fused.quarantinedWires > 0)
            ++cell.quarantineRounds;

        // The fused verdict is the bus-level judgment: a module swap
        // shows up as a failed fused authentication, a tamper as the
        // M-of-N wire vote tripping.
        const bool flagged = fused.tamperAlarm ||
            (attack == CampaignAttack::ColdBoot &&
             fused.contributingWires > 0 && !fused.busAuthenticated);
        if (attackOn) {
            if (flagged && !cell.detected) {
                cell.detected = true;
                cell.detectionRound = r + 1;
                cell.detectionLatency = r - config_.attackRound + 1;
            }
        } else if (fused.tamperAlarm) {
            ++cell.falseAlarms;
        }
    }

    cell.availability =
        static_cast<double>(cell.authenticatedRounds) / cell.rounds;
    cell.finalState = fleet.channel(config_.faultWire).state();
    return cell;
}

FaultCell
FaultCampaign::runCell(const FaultScenario &fault, CampaignAttack attack,
                       std::size_t index) const
{
    if (config_.wires > 1)
        return runFleetCell(fault, attack, index);

    // Everything in the cell — line fabrication, instrument noise,
    // fault sampling — forks stably from the master stream by cell
    // index, never from draw order, so the matrix reproduces
    // bit-for-bit regardless of which worker runs which cell.
    const Rng lane = rng_.forkStable(0xCE110000ull + index);

    ProcessParams params;
    ManufacturingProcess fab(params, lane.forkStable(1));
    auto z = fab.drawImpedanceProfile(config_.lineLength,
                                      config_.segmentLength);
    const TransmissionLine line(std::move(z), config_.segmentLength,
                                params.velocity, 50.0, 50.25,
                                params.lossNeperPerMeter,
                                fault.name + "-line");

    TransmissionLine attacked = line;
    switch (attack) {
      case CampaignAttack::None:
        break;
      case CampaignAttack::MagneticProbe:
        attacked = MagneticProbe(0.5).apply(line);
        break;
      case CampaignAttack::WireTap:
        attacked = WireTap(0.4, 50.0).apply(line);
        break;
      case CampaignAttack::ColdBoot: {
        // Module swap: a different physical line entirely.
        ManufacturingProcess foreignFab(params, lane.forkStable(2));
        auto zf = foreignFab.drawImpedanceProfile(config_.lineLength,
                                                  config_.segmentLength);
        attacked = TransmissionLine(std::move(zf), config_.segmentLength,
                                    params.velocity, 50.0, 50.25,
                                    params.lossNeperPerMeter,
                                    fault.name + "-foreign");
        break;
      }
    }

    Authenticator auth(config_.auth, config_.itdr, lane.forkStable(3),
                       fault.name + "x" + campaignAttackName(attack));
    auth.attachTelemetry(config_.telemetry);
    auth.enroll(line, config_.enrollReps);

    FaultInjector injector(fault.plan, lane.forkStable(4));
    auth.attachFaultInjector(&injector);

    FaultCell cell;
    cell.fault = fault.name;
    cell.attack = campaignAttackName(attack);
    cell.rounds = config_.rounds;
    cell.attackStaged = attack != CampaignAttack::None;

    for (unsigned r = 0; r < config_.rounds; ++r) {
        const bool attackOn =
            cell.attackStaged && r >= config_.attackRound;
        const AuthVerdict v =
            auth.checkRound(attackOn ? attacked : line);

        if (v.authenticated)
            ++cell.authenticatedRounds;
        if (!v.instrumentHealthy)
            ++cell.unhealthyRounds;
        cell.retries += v.retries;
        if (v.alarmSuppressed)
            ++cell.suppressedAlarms;
        if (v.stateAfter == AuthState::Degraded)
            ++cell.degradedRounds;
        if (v.stateAfter == AuthState::Quarantine)
            ++cell.quarantineRounds;

        // A module swap announces itself through the similarity check
        // (Mismatch), not necessarily the tamper alarm; count either
        // as detection, but only from a healthy instrument.
        const bool flagged = v.tamperAlarm ||
            (attack == CampaignAttack::ColdBoot && v.instrumentHealthy &&
             !v.authenticated);
        if (attackOn) {
            if (flagged && !cell.detected) {
                cell.detected = true;
                cell.detectionRound = r + 1;
                cell.detectionLatency = r - config_.attackRound + 1;
            }
        } else if (v.tamperAlarm) {
            ++cell.falseAlarms;
        }
    }

    cell.availability =
        static_cast<double>(cell.authenticatedRounds) / cell.rounds;
    cell.finalState = auth.state();
    return cell;
}

std::vector<FaultCell>
FaultCampaign::run(const std::vector<FaultScenario> &faults,
                   const std::vector<CampaignAttack> &attacks)
{
    if (faults.empty() || attacks.empty())
        divot_fatal("fault campaign needs at least one fault and "
                    "one attack column");
    const std::size_t n = faults.size() * attacks.size();
    std::vector<FaultCell> cells(n);
    ThreadPool pool(config_.threads);
    pool.attachTelemetry(config_.telemetry, "campaign.pool");
    Counter cells_run;
    Counter faults_armed;
    if (config_.telemetry != nullptr && config_.telemetry->enabled()) {
        Registry &reg = config_.telemetry->registry();
        cells_run = reg.counter("campaign.cells");
        faults_armed = reg.counter("campaign.faults.armed");
    }
    pool.parallelFor(n, [&](std::size_t i) {
        const FaultScenario &fault = faults[i / attacks.size()];
        cells[i] = runCell(fault, attacks[i % attacks.size()], i);
        cells_run.add();
        faults_armed.add(fault.plan.specs().size());
    });
    return cells;
}

} // namespace divot
