/**
 * @file
 * Deterministic fault-injection plans for instrument and storage
 * components.
 *
 * The monitoring loop's value is that it keeps authenticating while
 * the system runs, which means it must survive the faults real
 * deployments throw at it — comparator drift, PLL glitches, counter
 * bit flips, corrupted EPROM calibration, EMI bursts — without either
 * crashing the memory system or screaming false tamper alarms. This
 * module provides the *attacker-free* half of that story: a schedule
 * of instrument faults (`FaultPlan`) and a deterministic sampler
 * (`FaultInjector`) that resolves, for each measurement the iTDR
 * performs, exactly which corruptions apply.
 *
 * Determinism contract: every random decision derives from
 * `Rng::forkStable(measurement index)` — a pure function of the
 * injector's seed stream and the index, never of draw order or thread
 * timing — so fault campaigns reproduce bit-for-bit at any thread
 * count, riding the same parallel engine as the clean studies.
 */

#ifndef DIVOT_FAULT_FAULT_HH
#define DIVOT_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace divot {

/** The fault taxonomy (see DESIGN.md §9 for the full table). */
enum class FaultKind
{
    ComparatorStuckLow,   //!< comparator output wedged at 0
    ComparatorStuckHigh,  //!< comparator output wedged at 1
    ComparatorOffsetDrift, //!< static offset added to the signal input
    PllPhaseDropout,      //!< ETS phase step randomly fails to advance
    CounterBitFlip,       //!< hit-counter register bit flips
    EmiBurst,             //!< transient sinusoidal interference burst
    BudgetOverrun,        //!< measurement consumes extra bus cycles
    EpromCorruption,      //!< calibration-store byte corruption

    /** @name Storage fault cells (enrollment-database IO events). */
    ///@{
    StorageTornWrite,     //!< power cut mid-write: only a prefix lands
    StorageCrash,         //!< power cut at a chosen commit point
    StorageBitRot,        //!< stuck-at bit rot in a written file
    StorageTruncation,    //!< shard/journal file loses its tail
    ///@}
};

/**
 * Where a StorageCrash power cut lands relative to one store IO
 * operation (see DESIGN.md §14.4 for the crash matrix).
 */
enum class StorageCrashPoint
{
    BeforeWrite = 0,  //!< nothing of this operation reaches the medium
    AfterJournal = 1, //!< journal entry durable, commit never ran
    BeforeCommit = 2, //!< temp image written, rename never ran
    AfterCommit = 3,  //!< operation durable; process dies right after
};

/** @return printable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::EmiBurst;
    uint64_t firstMeasurement = 0; //!< first affected measurement index
    uint64_t measurements = 1;     //!< affected count; 0 => forever
    double magnitude = 0.0;        //!< kind-specific strength:
                                   //!< volts (offset/EMI), probability
                                   //!< per bin (dropout/bit flip),
                                   //!< cycle factor (overrun), bytes
                                   //!< to flip (EPROM)
    double frequency = 25e6;       //!< EMI burst frequency, Hz
};

/**
 * A reproducible schedule of faults, indexed by the owning
 * instrument's measurement counter (each `ITdr::measure` call is one
 * index; `EpromCorruption` events are indexed by the caller's own
 * event counter instead).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Append an arbitrary spec. */
    FaultPlan &add(FaultSpec spec);

    /** @name Convenience builders (all return *this for chaining). */
    ///@{
    FaultPlan &comparatorStuck(uint64_t first, uint64_t n, bool high);
    FaultPlan &offsetDrift(uint64_t first, uint64_t n, double volts);
    FaultPlan &pllDropout(uint64_t first, uint64_t n, double rate);
    FaultPlan &counterBitFlip(uint64_t first, uint64_t n, double rate);
    FaultPlan &emiBurst(uint64_t first, uint64_t n, double volts,
                        double hz = 25e6);
    FaultPlan &budgetOverrun(uint64_t first, uint64_t n, double factor);
    FaultPlan &epromCorruption(uint64_t event, double bytes = 1.0);

    /** @name Storage cells, indexed by the store's IO-event counter. */
    ///@{
    /** Power cut mid-write at IO event `event`: only `fraction` of the
     *  payload reaches the medium. */
    FaultPlan &storageTornWrite(uint64_t event, double fraction = 0.5);
    /** Power cut at `point` of IO event `event`. */
    FaultPlan &storageCrash(uint64_t event,
                            StorageCrashPoint point =
                                StorageCrashPoint::AfterJournal);
    /** Stuck-at bit rot: force `bits` deterministic bits of the file
     *  written at IO event `event` (n events from `event` on). */
    FaultPlan &storageBitRot(uint64_t event, uint64_t n, double bits);
    /** Truncate the file written at IO event `event` to keep the
     *  leading `keepFraction` of its bytes. */
    FaultPlan &storageTruncation(uint64_t event,
                                 double keepFraction = 0.5);
    ///@}

    /** @return all scheduled specs. */
    const std::vector<FaultSpec> &specs() const { return specs_; }

    /** @return true when nothing is scheduled. */
    bool empty() const { return specs_.empty(); }

    /**
     * Seed for fault campaigns: the DIVOT_FAULT_SEED environment
     * variable when set to an integer, otherwise a fixed constant.
     */
    static uint64_t defaultSeed();

  private:
    std::vector<FaultSpec> specs_;
};

/**
 * The fault effects resolved for one measurement. The iTDR applies
 * these during its ETS sweep; `binRng` carries the dedicated stream
 * for per-bin decisions (dropouts, bit flips) so in-measurement
 * randomness is a pure function of the measurement index.
 */
struct FaultFrame
{
    int comparatorStuck = -1;      //!< -1 none, 0/1 forced output
    double comparatorOffset = 0.0; //!< volts added to the signal input
    double pllDropoutRate = 0.0;   //!< per-bin phase-step failure prob
    double counterFlipRate = 0.0;  //!< per-bin register-flip prob
    double emiAmplitude = 0.0;     //!< burst amplitude, volts
    double emiFrequency = 0.0;     //!< burst frequency, Hz
    double emiPhase = 0.0;         //!< burst phase, radians
    double cycleOverrunFactor = 1.0; //!< multiplies consumed cycles
    Rng binRng{0};                 //!< per-bin decision stream

    /** @return true when any instrument fault is active. */
    bool any() const;
};

/**
 * The storage-fault effects resolved for one enrollment-database IO
 * event (journal append, shard commit, checkpoint). Like FaultFrame,
 * a pure function of (injector seed, event index): campaigns hit the
 * same byte of the same file no matter the thread count or how many
 * unrelated draws happened in between.
 */
struct StorageFault
{
    bool torn = false;        //!< write only a prefix, then power cut
    double tornFraction = 1.0; //!< fraction of bytes that land
    bool crash = false;       //!< power cut at `crashPoint`
    StorageCrashPoint crashPoint = StorageCrashPoint::AfterJournal;
    uint64_t bitRotBits = 0;  //!< stuck-at bits to force post-write
    bool truncate = false;    //!< chop the written file's tail
    double truncateKeep = 1.0; //!< fraction of bytes kept
    Rng rotRng{0};            //!< stream for bit positions / levels

    /** @return true when any storage fault applies to this event. */
    bool any() const
    {
        return torn || crash || bitRotBits > 0 || truncate;
    }
};

/**
 * Samples a FaultPlan deterministically per measurement.
 */
class FaultInjector
{
  public:
    /**
     * @param plan fault schedule
     * @param rng  dedicated stream; frames derive from forkStable so
     *             the injector itself never advances it
     */
    FaultInjector(FaultPlan plan, Rng rng);

    /** Resolve the frame for an explicit measurement index. */
    FaultFrame frameFor(uint64_t measurement_index) const;

    /** Resolve the frame for the next measurement (iTDR hook). */
    FaultFrame nextFrame() { return frameFor(index_++); }

    /** @return measurements the injector has issued frames for. */
    uint64_t measurementIndex() const { return index_; }

    /** Rewind / fast-forward the measurement counter. */
    void resetIndex(uint64_t index = 0) { index_ = index; }

    /** @return the plan being sampled. */
    const FaultPlan &plan() const { return plan_; }

    /** @return true when an EPROM fault is scheduled at this event. */
    bool epromFaultAt(uint64_t event_index) const;

    /**
     * Resolve the storage-fault effects for one enrollment-database IO
     * event (the store's own event counter, not the measurement
     * index). Deterministic per (seed, event index).
     */
    StorageFault storageFrameFor(uint64_t event_index) const;

    /** @return true when any storage cell is scheduled at all. */
    bool hasStorageFaults() const;

    /**
     * Apply any EPROM corruption scheduled at `event_index` to a
     * saved calibration file: flips `magnitude` seeded random bytes.
     *
     * @return number of bytes corrupted (0 when no fault is due or
     *         the file cannot be rewritten)
     */
    unsigned corruptFile(const std::string &path,
                         uint64_t event_index) const;

  private:
    FaultPlan plan_;
    Rng base_;
    uint64_t index_ = 0;
};

} // namespace divot

#endif // DIVOT_FAULT_FAULT_HH
