/**
 * @file
 * Deterministic fault-injection plans for instrument and storage
 * components.
 *
 * The monitoring loop's value is that it keeps authenticating while
 * the system runs, which means it must survive the faults real
 * deployments throw at it — comparator drift, PLL glitches, counter
 * bit flips, corrupted EPROM calibration, EMI bursts — without either
 * crashing the memory system or screaming false tamper alarms. This
 * module provides the *attacker-free* half of that story: a schedule
 * of instrument faults (`FaultPlan`) and a deterministic sampler
 * (`FaultInjector`) that resolves, for each measurement the iTDR
 * performs, exactly which corruptions apply.
 *
 * Determinism contract: every random decision derives from
 * `Rng::forkStable(measurement index)` — a pure function of the
 * injector's seed stream and the index, never of draw order or thread
 * timing — so fault campaigns reproduce bit-for-bit at any thread
 * count, riding the same parallel engine as the clean studies.
 */

#ifndef DIVOT_FAULT_FAULT_HH
#define DIVOT_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace divot {

/** The fault taxonomy (see DESIGN.md §9 for the full table). */
enum class FaultKind
{
    ComparatorStuckLow,   //!< comparator output wedged at 0
    ComparatorStuckHigh,  //!< comparator output wedged at 1
    ComparatorOffsetDrift, //!< static offset added to the signal input
    PllPhaseDropout,      //!< ETS phase step randomly fails to advance
    CounterBitFlip,       //!< hit-counter register bit flips
    EmiBurst,             //!< transient sinusoidal interference burst
    BudgetOverrun,        //!< measurement consumes extra bus cycles
    EpromCorruption,      //!< calibration-store byte corruption
};

/** @return printable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::EmiBurst;
    uint64_t firstMeasurement = 0; //!< first affected measurement index
    uint64_t measurements = 1;     //!< affected count; 0 => forever
    double magnitude = 0.0;        //!< kind-specific strength:
                                   //!< volts (offset/EMI), probability
                                   //!< per bin (dropout/bit flip),
                                   //!< cycle factor (overrun), bytes
                                   //!< to flip (EPROM)
    double frequency = 25e6;       //!< EMI burst frequency, Hz
};

/**
 * A reproducible schedule of faults, indexed by the owning
 * instrument's measurement counter (each `ITdr::measure` call is one
 * index; `EpromCorruption` events are indexed by the caller's own
 * event counter instead).
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Append an arbitrary spec. */
    FaultPlan &add(FaultSpec spec);

    /** @name Convenience builders (all return *this for chaining). */
    ///@{
    FaultPlan &comparatorStuck(uint64_t first, uint64_t n, bool high);
    FaultPlan &offsetDrift(uint64_t first, uint64_t n, double volts);
    FaultPlan &pllDropout(uint64_t first, uint64_t n, double rate);
    FaultPlan &counterBitFlip(uint64_t first, uint64_t n, double rate);
    FaultPlan &emiBurst(uint64_t first, uint64_t n, double volts,
                        double hz = 25e6);
    FaultPlan &budgetOverrun(uint64_t first, uint64_t n, double factor);
    FaultPlan &epromCorruption(uint64_t event, double bytes = 1.0);
    ///@}

    /** @return all scheduled specs. */
    const std::vector<FaultSpec> &specs() const { return specs_; }

    /** @return true when nothing is scheduled. */
    bool empty() const { return specs_.empty(); }

    /**
     * Seed for fault campaigns: the DIVOT_FAULT_SEED environment
     * variable when set to an integer, otherwise a fixed constant.
     */
    static uint64_t defaultSeed();

  private:
    std::vector<FaultSpec> specs_;
};

/**
 * The fault effects resolved for one measurement. The iTDR applies
 * these during its ETS sweep; `binRng` carries the dedicated stream
 * for per-bin decisions (dropouts, bit flips) so in-measurement
 * randomness is a pure function of the measurement index.
 */
struct FaultFrame
{
    int comparatorStuck = -1;      //!< -1 none, 0/1 forced output
    double comparatorOffset = 0.0; //!< volts added to the signal input
    double pllDropoutRate = 0.0;   //!< per-bin phase-step failure prob
    double counterFlipRate = 0.0;  //!< per-bin register-flip prob
    double emiAmplitude = 0.0;     //!< burst amplitude, volts
    double emiFrequency = 0.0;     //!< burst frequency, Hz
    double emiPhase = 0.0;         //!< burst phase, radians
    double cycleOverrunFactor = 1.0; //!< multiplies consumed cycles
    Rng binRng{0};                 //!< per-bin decision stream

    /** @return true when any instrument fault is active. */
    bool any() const;
};

/**
 * Samples a FaultPlan deterministically per measurement.
 */
class FaultInjector
{
  public:
    /**
     * @param plan fault schedule
     * @param rng  dedicated stream; frames derive from forkStable so
     *             the injector itself never advances it
     */
    FaultInjector(FaultPlan plan, Rng rng);

    /** Resolve the frame for an explicit measurement index. */
    FaultFrame frameFor(uint64_t measurement_index) const;

    /** Resolve the frame for the next measurement (iTDR hook). */
    FaultFrame nextFrame() { return frameFor(index_++); }

    /** @return measurements the injector has issued frames for. */
    uint64_t measurementIndex() const { return index_; }

    /** Rewind / fast-forward the measurement counter. */
    void resetIndex(uint64_t index = 0) { index_ = index; }

    /** @return the plan being sampled. */
    const FaultPlan &plan() const { return plan_; }

    /** @return true when an EPROM fault is scheduled at this event. */
    bool epromFaultAt(uint64_t event_index) const;

    /**
     * Apply any EPROM corruption scheduled at `event_index` to a
     * saved calibration file: flips `magnitude` seeded random bytes.
     *
     * @return number of bytes corrupted (0 when no fault is due or
     *         the file cannot be rewritten)
     */
    unsigned corruptFile(const std::string &path,
                         uint64_t event_index) const;

  private:
    FaultPlan plan_;
    Rng base_;
    uint64_t index_ = 0;
};

} // namespace divot

#endif // DIVOT_FAULT_FAULT_HH
