#include "analog/comparator.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

Comparator::Comparator(ComparatorParams params, Rng rng)
    : params_(params), rng_(rng)
{
    if (params.noiseSigma < 0.0)
        divot_fatal("comparator noise sigma must be >= 0 (got %g)",
                    params.noiseSigma);
    if (params.metastableBand < 0.0)
        divot_fatal("metastable band must be >= 0 (got %g)",
                    params.metastableBand);
}

bool
Comparator::strobe(double v_sig, double v_ref)
{
    const double dv = v_sig + params_.inputOffset - v_ref;
    if (params_.metastableBand > 0.0 &&
        std::fabs(dv) < params_.metastableBand) {
        return rng_.bernoulli(0.5);
    }
    const double noise =
        params_.noiseSigma > 0.0 ? rng_.gaussian(0.0, params_.noiseSigma)
                                 : 0.0;
    return dv + noise > 0.0;
}

double
Comparator::probabilityHigh(double v_sig, double v_ref) const
{
    const double dv = v_sig + params_.inputOffset - v_ref;
    if (params_.noiseSigma == 0.0)
        return dv > 0.0 ? 1.0 : 0.0;
    return normalCdf(dv / params_.noiseSigma);
}

} // namespace divot
