#include "analog/comparator.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

Comparator::Comparator(ComparatorParams params, Rng rng)
    : params_(params), rng_(rng)
{
    if (params.noiseSigma < 0.0)
        divot_fatal("comparator noise sigma must be >= 0 (got %g)",
                    params.noiseSigma);
    if (params.metastableBand < 0.0)
        divot_fatal("metastable band must be >= 0 (got %g)",
                    params.metastableBand);
}

bool
Comparator::strobe(double v_sig, double v_ref)
{
    const double dv = v_sig + params_.inputOffset - v_ref;
    if (params_.metastableBand > 0.0 &&
        std::fabs(dv) < params_.metastableBand) {
        return rng_.bernoulli(0.5);
    }
    const double noise =
        params_.noiseSigma > 0.0 ? rng_.gaussian(0.0, params_.noiseSigma)
                                 : 0.0;
    return dv + noise > 0.0;
}

unsigned
Comparator::strobeBatch(double v_sig, const double *v_ref, std::size_t n)
{
    if (params_.metastableBand > 0.0) {
        // Metastable strobes consume a different draw (a coin flip),
        // so the block-drawn fast path would desynchronize the
        // stream; evaluate strobe-by-strobe instead.
        unsigned hits = 0;
        for (std::size_t i = 0; i < n; ++i)
            hits += strobe(v_sig, v_ref[i]) ? 1u : 0u;
        return hits;
    }
    const double base = v_sig + params_.inputOffset;
    unsigned hits = 0;
    if (params_.noiseSigma == 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            hits += (base - v_ref[i] > 0.0) ? 1u : 0u;
        return hits;
    }
    noiseScratch_.resize(n);
    rng_.gaussianVector(noiseScratch_);
    const double sigma = params_.noiseSigma;
    for (std::size_t i = 0; i < n; ++i)
        hits += (base - v_ref[i] + sigma * noiseScratch_[i] > 0.0) ? 1u : 0u;
    return hits;
}

unsigned
Comparator::strobeAnalytic(double v_sig, const double *ref_levels,
                           std::size_t levels,
                           unsigned per_level_trials)
{
    const double base = v_sig + params_.inputOffset;
    const double sigma = params_.noiseSigma;
    const double inv_sigma = sigma > 0.0 ? 1.0 / sigma : 0.0;
    unsigned hits = 0;
    for (std::size_t j = 0; j < levels; ++j) {
        const double dv = base - ref_levels[j];
        double p;
        if (params_.metastableBand > 0.0 &&
            std::fabs(dv) < params_.metastableBand) {
            p = 0.5;
        } else if (sigma == 0.0) {
            p = dv > 0.0 ? 1.0 : 0.0;
        } else {
            // Saturate past +-8 sigma: the tail mass (< 1e-15) is
            // unobservable at any realistic trial count and skipping
            // the CDF keeps flat trace regions nearly free.
            p = normalCdfSaturated(dv * inv_sigma);
        }
        hits += static_cast<unsigned>(
            rng_.binomial(per_level_trials, p));
    }
    return hits;
}

void
Comparator::strobeAnalyticSoA(const StrobeKernels &kernels,
                              const double *ref_levels,
                              std::size_t bins, std::size_t levels,
                              unsigned per_level_trials, StrobeSoA &soa)
{
    if (params_.metastableBand > 0.0)
        divot_fatal("strobeAnalyticSoA requires a zero metastable band "
                    "(got %g); use per-bin strobeAnalytic",
                    params_.metastableBand);
    const double sigma = params_.noiseSigma;
    const double inv_sigma = sigma > 0.0 ? 1.0 / sigma : 0.0;
    soa.resize(bins, levels);
    kernels.apcProbabilityGrid(soa.vSig.data(), params_.inputOffset,
                               inv_sigma, ref_levels, soa.prob.data(),
                               bins, levels);
    kernels.binomialLane(rng_, soa.prob.data(), per_level_trials,
                         soa.laneHits.data(), bins * levels);
    const unsigned *lane = soa.laneHits.data();
    for (std::size_t i = 0; i < bins; ++i) {
        unsigned sum = 0;
        for (std::size_t j = 0; j < levels; ++j)
            sum += lane[j];
        soa.hits[i] = sum;
        lane += levels;
    }
}

double
Comparator::probabilityHigh(double v_sig, double v_ref) const
{
    const double dv = v_sig + params_.inputOffset - v_ref;
    if (params_.noiseSigma == 0.0)
        return dv > 0.0 ? 1.0 : 0.0;
    return normalCdf(dv / params_.noiseSigma);
}

} // namespace divot
