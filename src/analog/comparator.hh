/**
 * @file
 * 1-bit comparator model — the entire analog front-end of the iTDR.
 *
 * The paper's key observation (Section II-B) is that a comparator
 * with Gaussian input-referred noise is not a defect but a feature:
 * the probability of output 1,
 *
 *     p{Y=1} = p{V_sig - V_ref > V_noise} = Phi((V_sig - V_ref)/sigma),
 *
 * is a smooth, invertible function of the analog input, so counting
 * 1s over repeated trials *is* an analog-to-digital conversion (APC)
 * with resolution set by the trial count rather than by a flash-ADC
 * ladder. The model includes input offset and a finite-bandwidth
 * metastability band to keep it honest about real silicon.
 */

#ifndef DIVOT_ANALOG_COMPARATOR_HH
#define DIVOT_ANALOG_COMPARATOR_HH

#include <cstddef>
#include <vector>

#include "itdr/kernels/kernels.hh"
#include "itdr/kernels/soa.hh"
#include "util/rng.hh"

namespace divot {

/** Static electrical parameters of the comparator. */
struct ComparatorParams
{
    double noiseSigma = 0.5e-3;    //!< input-referred noise, volts RMS
    double inputOffset = 0.0;      //!< static offset voltage, volts
    double metastableBand = 0.0;   //!< |dV| below which output is a
                                   //!< coin flip (metastability), volts
};

/**
 * Sampled comparator: evaluates sign(V+ - V- + noise) at a trigger.
 */
class Comparator
{
  public:
    /**
     * @param params electrical parameters
     * @param rng    dedicated random stream (noise + metastability)
     */
    Comparator(ComparatorParams params, Rng rng);

    /**
     * One strobed comparison.
     *
     * @param v_sig voltage on the positive input
     * @param v_ref voltage on the negative (reference) input
     * @return true when the noisy difference is positive
     */
    bool strobe(double v_sig, double v_ref);

    /**
     * A batch of strobes of one signal voltage against a reference
     * sequence — the APC inner loop of a full ETS bin. Noise is drawn
     * in one block and the comparisons run in a tight pass, consuming
     * exactly the same random draws as n scalar strobe() calls (so a
     * batch and a scalar sweep leave the comparator in the same
     * state). With a nonzero metastable band the batch falls back to
     * per-strobe evaluation to preserve the draw order.
     *
     * @param v_sig voltage on the positive input (common to the batch)
     * @param v_ref n reference voltages, one per strobe
     * @param n     number of strobes
     * @return number of strobes that produced output 1
     */
    unsigned strobeBatch(double v_sig, const double *v_ref,
                         std::size_t n);

    /**
     * Analytic strobe aggregate — the exact-binomial shortcut of the
     * APC sum (paper Eq. 1): each distinct Vernier reference level j
     * sees `per_level_trials` i.i.d. strobes whose hit count is
     * Binomial(per_level_trials, p_j) with p_j the analytic output-1
     * probability at that level, so the whole bin is sampled with
     * `levels` binomial draws instead of `levels * per_level_trials`
     * Gaussians. Statistically equivalent to strobeBatch but NOT
     * draw-compatible: it consumes a different (shorter) slice of the
     * comparator's stream, which is the point. A nonzero metastable
     * band is folded in analytically (p_j = 1/2 inside the band).
     *
     * @param v_sig            voltage on the positive input
     * @param ref_levels       the bin's distinct reference voltages
     * @param levels           number of distinct levels
     * @param per_level_trials strobes per level
     * @return number of strobes (out of levels * per_level_trials)
     *         that produced output 1
     */
    unsigned strobeAnalytic(double v_sig, const double *ref_levels,
                            std::size_t levels,
                            unsigned per_level_trials);

    /**
     * Whole-sweep analytic strobe in structure-of-arrays form: one
     * kernel call per stage instead of one strobeAnalytic call per
     * bin. `soa.vSig` carries the per-bin signal voltages on entry;
     * `ref_levels` is the bins x levels reference grid (row-major);
     * `soa.hits` carries the per-bin hit counts on return (the other
     * arenas are scratch, fully overwritten).
     *
     * With the scalar kernel set this performs exactly the libm calls
     * and Rng draws of `bins` sequential strobeAnalytic calls, in the
     * same order — bit-identical results and final comparator state.
     * Vector kernel sets keep the draw *schedule* (which lanes
     * consume a uniform, in what order) but may round interior
     * probabilities differently; see DESIGN.md §13.
     *
     * Requires a zero metastable band: the analytic band fold
     * (p_j = 1/2 inside the band) is a per-lane branch the grid
     * kernels do not model, so callers with a band keep the per-bin
     * strobeAnalytic loop.
     */
    void strobeAnalyticSoA(const StrobeKernels &kernels,
                           const double *ref_levels, std::size_t bins,
                           std::size_t levels,
                           unsigned per_level_trials, StrobeSoA &soa);

    /**
     * Exact analytic probability of output 1 for given inputs — the
     * ground truth the Monte-Carlo strobes converge to; used by
     * reconstruction math and tests.
     */
    double probabilityHigh(double v_sig, double v_ref) const;

    /** @return input-referred noise sigma in volts. */
    double noiseSigma() const { return params_.noiseSigma; }

    /** @return comparator parameter set. */
    const ComparatorParams &params() const { return params_; }

  private:
    ComparatorParams params_;
    Rng rng_;
    std::vector<double> noiseScratch_;  //!< batch noise block
};

} // namespace divot

#endif // DIVOT_ANALOG_COMPARATOR_HH
