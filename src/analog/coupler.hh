/**
 * @file
 * Directional coupler model (CPL in Fig. 1).
 *
 * The coupler separates the weak backward-travelling reflection from
 * the strong forward-travelling data signal so the comparator sees
 * mostly the IIP echo. Real couplers have finite directivity: a small
 * fraction of the incident wave leaks into the detector port. The
 * leak is deterministic per edge, so it appears as a fixed pedestal
 * in every IIP and cancels in differential comparisons — but it is
 * modelled so experiments see realistic traces.
 */

#ifndef DIVOT_ANALOG_COUPLER_HH
#define DIVOT_ANALOG_COUPLER_HH

#include "signal/waveform.hh"

namespace divot {

/** Coupler electrical parameters. */
struct CouplerParams
{
    double couplingFactor = 0.5;    //!< reflected-path gain to detector
    double directivityLeak = 0.002; //!< incident-path leak to detector
    double highpassTau = 150e-12;   //!< AC-coupling time constant; a
                                    //!< step-probe trace is a running
                                    //!< sum of rho and wanders far
                                    //!< beyond the PDM range without
                                    //!< it. 0 disables.
};

/**
 * Combines reflection and incident traces into the detector-port
 * waveform.
 */
class Coupler
{
  public:
    /** @param params electrical parameters. */
    explicit Coupler(CouplerParams params);

    /**
     * Detector-port waveform for one probe.
     *
     * @param reflection backward wave at the line input
     * @param incident   forward wave launched into the line
     */
    Waveform detectorOutput(const Waveform &reflection,
                            const Waveform &incident) const;

    /** @return reflected-path gain. */
    double couplingFactor() const { return params_.couplingFactor; }

    /** @return incident-path leak. */
    double directivityLeak() const { return params_.directivityLeak; }

  private:
    CouplerParams params_;
};

} // namespace divot

#endif // DIVOT_ANALOG_COUPLER_HH
