#include "analog/pll.hh"

#include <cmath>

#include "util/logging.hh"

namespace divot {

PhaseLockedLoop::PhaseLockedLoop(PllParams params, Rng rng)
    : params_(params), rng_(rng)
{
    if (params.clockFrequency <= 0.0)
        divot_fatal("PLL clock frequency must be positive (got %g)",
                    params.clockFrequency);
    if (params.phaseStep <= 0.0)
        divot_fatal("PLL phase step must be positive (got %g)",
                    params.phaseStep);
    if (params.phaseStep >= clockPeriod())
        divot_fatal("phase step %g >= clock period %g: ETS would skip",
                    params.phaseStep, clockPeriod());
}

unsigned
PhaseLockedLoop::stepsPerPeriod() const
{
    return static_cast<unsigned>(
        std::ceil(clockPeriod() / params_.phaseStep));
}

void
PhaseLockedLoop::stepPhase()
{
    ++phaseIndex_;
}

void
PhaseLockedLoop::resetPhase()
{
    phaseIndex_ = 0;
}

double
PhaseLockedLoop::nominalStrobeTime(uint64_t k) const
{
    return static_cast<double>(k) * clockPeriod() +
        static_cast<double>(phaseIndex_) * params_.phaseStep;
}

double
PhaseLockedLoop::strobeTime(uint64_t k)
{
    double t = nominalStrobeTime(k);
    if (params_.jitterRms > 0.0)
        t += rng_.gaussian(0.0, params_.jitterRms);
    return t;
}

} // namespace divot
