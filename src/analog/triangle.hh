/**
 * @file
 * Quasi-triangle modulation source for PDM (Section II-C).
 *
 * The paper generates the probability-density-modulation reference
 * from a digital output toggling at f_m through an RC
 * charge/discharge network — a cheap "quasi-triangle". When f_m and
 * the sampling clock f_s are relatively prime (in their rational
 * relation p*f_m = q*f_s), the Vernier effect presents the comparator
 * with p distinct reference levels at any fixed waveform time point,
 * turning the single-sigma Gaussian CDF into a much wider mixture CDF
 * (Fig. 3-4).
 */

#ifndef DIVOT_ANALOG_TRIANGLE_HH
#define DIVOT_ANALOG_TRIANGLE_HH

#include <vector>

#include "signal/waveform.hh"

namespace divot {

/**
 * The PDM reference-voltage source: an ideal or RC-shaped triangle
 * wave centered on `center` with peak deviation `amplitude`.
 */
class TriangleWave
{
  public:
    /**
     * @param amplitude  peak deviation from center, volts
     * @param frequency  modulation frequency f_m, Hz
     * @param center     mid-level, volts
     * @param rc_shaping 0 for an ideal triangle; otherwise the RC time
     *                   constant as a fraction of the half-period,
     *                   producing the exponential "quasi-triangle"
     */
    TriangleWave(double amplitude, double frequency, double center = 0.0,
                 double rc_shaping = 0.0);

    /** Instantaneous reference voltage at absolute time t. */
    double valueAt(double t) const;

    /** @return modulation frequency f_m in Hz. */
    double frequency() const { return frequency_; }

    /** @return peak deviation in volts. */
    double amplitude() const { return amplitude_; }

    /** @return mid-level in volts. */
    double center() const { return center_; }

    /** Sample one full period at the given dt. */
    Waveform sampledPeriod(double dt) const;

  private:
    double amplitude_;
    double frequency_;
    double center_;
    double rcShaping_;

    /** Ideal triangle in [-1, 1] at phase u in [0, 1). */
    double idealShape(double u) const;
};

/**
 * The discrete Vernier reference schedule: with p * f_m = q * f_s and
 * gcd(p, q) = 1, the reference voltage seen at a fixed waveform time
 * across successive repetitions cycles through exactly p distinct
 * levels. This helper enumerates them (Fig. 3's V_ref0..V_ref4 for
 * p=5, q=6).
 *
 * @param wave triangle source
 * @param p    modulation-period count in the common period
 * @param q    sample-period count in the common period
 * @param t0   waveform-relative time point being sampled
 * @return the p reference voltages in repetition order
 */
std::vector<double> vernierReferenceLevels(const TriangleWave &wave,
                                           unsigned p, unsigned q,
                                           double t0);

} // namespace divot

#endif // DIVOT_ANALOG_TRIANGLE_HH
