#include "analog/coupler.hh"

#include "signal/filter.hh"
#include "util/logging.hh"

namespace divot {

Coupler::Coupler(CouplerParams params)
    : params_(params)
{
    if (params.couplingFactor <= 0.0 || params.couplingFactor > 1.0)
        divot_fatal("coupling factor %g outside (0,1]",
                    params.couplingFactor);
    if (params.directivityLeak < 0.0 || params.directivityLeak > 0.5)
        divot_fatal("directivity leak %g outside [0,0.5]",
                    params.directivityLeak);
    if (params.highpassTau < 0.0)
        divot_fatal("highpass tau must be >= 0 (got %g)",
                    params.highpassTau);
}

Waveform
Coupler::detectorOutput(const Waveform &reflection,
                        const Waveform &incident) const
{
    if (reflection.size() != incident.size())
        divot_panic("coupler input size mismatch (%zu vs %zu)",
                    reflection.size(), incident.size());
    Waveform out = reflection;
    out *= params_.couplingFactor;
    if (params_.directivityLeak > 0.0) {
        Waveform leak = incident;
        leak *= params_.directivityLeak;
        out += leak;
    }
    if (params_.highpassTau > 0.0)
        out = rcHighpass(out, params_.highpassTau);
    return out;
}

} // namespace divot
