#include "analog/triangle.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace divot {

TriangleWave::TriangleWave(double amplitude, double frequency,
                           double center, double rc_shaping)
    : amplitude_(amplitude), frequency_(frequency), center_(center),
      rcShaping_(rc_shaping)
{
    if (amplitude < 0.0)
        divot_fatal("triangle amplitude must be >= 0 (got %g)", amplitude);
    if (frequency <= 0.0)
        divot_fatal("triangle frequency must be positive (got %g)",
                    frequency);
    if (rc_shaping < 0.0 || rc_shaping > 2.0)
        divot_fatal("rc_shaping %g outside [0,2]", rc_shaping);
}

double
TriangleWave::idealShape(double u) const
{
    // u in [0,1): rise over the first half, fall over the second.
    if (u < 0.5)
        return 4.0 * u - 1.0;
    return 3.0 - 4.0 * u;
}

double
TriangleWave::valueAt(double t) const
{
    double u = std::fmod(t * frequency_, 1.0);
    if (u < 0.0)
        u += 1.0;
    double shape;
    if (rcShaping_ == 0.0) {
        shape = idealShape(u);
    } else {
        // RC charge/discharge toward the rails, normalized so the
        // quasi-triangle still spans [-1, 1] in steady state.
        const double k = 1.0 / rcShaping_;  // half-periods per tau
        const double span = 1.0 - std::exp(-k);
        const double lo = -1.0;
        const double peak = lo + 2.0 * span / (1.0 + std::exp(-k));
        (void)peak;
        // Steady-state bounds v_lo, v_hi satisfy symmetry around 0.
        const double v_hi = (1.0 - std::exp(-k)) / (1.0 + std::exp(-k));
        const double v_lo = -v_hi;
        double v;
        if (u < 0.5) {
            const double x = u / 0.5;  // 0..1 over charge phase
            v = 1.0 + (v_lo - 1.0) * std::exp(-k * x);
        } else {
            const double x = (u - 0.5) / 0.5;
            v = -1.0 + (v_hi + 1.0) * std::exp(-k * x);
        }
        // Renormalize to span [-1, 1].
        shape = v / v_hi;
    }
    return center_ + amplitude_ * shape;
}

Waveform
TriangleWave::sampledPeriod(double dt) const
{
    const double period = 1.0 / frequency_;
    const std::size_t n =
        static_cast<std::size_t>(std::ceil(period / dt));
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = valueAt(static_cast<double>(i) * dt);
    return Waveform(dt, std::move(s), 0.0);
}

std::vector<double>
vernierReferenceLevels(const TriangleWave &wave, unsigned p, unsigned q,
                       double t0)
{
    if (p == 0 || q == 0)
        divot_fatal("Vernier ratio must be positive (p=%u q=%u)", p, q);
    if (!coprime(p, q))
        divot_fatal("Vernier ratio p=%u q=%u not coprime: the reference "
                    "pattern would repeat early and PDM degenerates", p, q);
    // p * f_m = q * f_s  =>  T_s = (q/p) * T_m, and the common period
    // is p * T_s = q * T_m: over p successive waveform repetitions the
    // modulation completes exactly q periods, so the phase at a fixed
    // waveform-relative time t0 steps through p distinct values
    // (gcd(p, q) = 1 guarantees no early repeat).
    const double t_m = 1.0 / wave.frequency();
    const double t_s =
        t_m * static_cast<double>(q) / static_cast<double>(p);
    std::vector<double> levels(p);
    for (unsigned r = 0; r < p; ++r)
        levels[r] = wave.valueAt(static_cast<double>(r) * t_s + t0);
    return levels;
}

} // namespace divot
