/**
 * @file
 * Phase-locked loop with dynamic phase stepping — the clock machinery
 * behind equivalent-time sampling (Section II-D).
 *
 * The iTDR never samples fast: it strobes its comparator once per
 * data-clock period, then advances the strobe phase by a tiny
 * increment tau (11.16 ps on the Xilinx Ultrascale+ prototype)
 * between measurement passes. After M passes with M * tau = T_clk,
 * the concatenated samples cover the waveform on a tau-spaced grid —
 * an equivalent rate of 1/tau (> 80 GSa/s) from hardware that only
 * ever toggles at the bus clock. One PLL serves every iTDR on the
 * chip because all bus interfaces share the transmission clock.
 */

#ifndef DIVOT_ANALOG_PLL_HH
#define DIVOT_ANALOG_PLL_HH

#include <cstdint>

#include "util/rng.hh"

namespace divot {

/** PLL configuration. */
struct PllParams
{
    double clockFrequency = 156.25e6;  //!< data/sampling clock, Hz
    double phaseStep = 11.16e-12;      //!< dynamic phase increment, s
    double jitterRms = 0.0;            //!< random strobe jitter, s RMS
};

/**
 * Phase-stepping PLL model.
 */
class PhaseLockedLoop
{
  public:
    /**
     * @param params clock parameters
     * @param rng    stream for strobe jitter
     */
    PhaseLockedLoop(PllParams params, Rng rng);

    /** @return data clock period in seconds. */
    double clockPeriod() const { return 1.0 / params_.clockFrequency; }

    /** @return configured phase step tau in seconds. */
    double phaseStep() const { return params_.phaseStep; }

    /**
     * @return number of phase steps needed to sweep one full clock
     * period (M in the paper; ceil(T / tau)).
     */
    unsigned stepsPerPeriod() const;

    /** @return equivalent sampling rate 1/tau in Sa/s. */
    double equivalentSampleRate() const { return 1.0 / params_.phaseStep; }

    /** Advance the strobe phase by one step. */
    void stepPhase();

    /** Reset the phase offset to zero (new measurement sweep). */
    void resetPhase();

    /** @return current phase offset index. */
    unsigned phaseIndex() const { return phaseIndex_; }

    /**
     * Absolute strobe time of trigger k at the current phase offset,
     * including jitter when configured.
     *
     * @param k trigger (clock cycle) index
     */
    double strobeTime(uint64_t k);

    /** Deterministic strobe time (no jitter draw) for analysis. */
    double nominalStrobeTime(uint64_t k) const;

  private:
    PllParams params_;
    Rng rng_;
    unsigned phaseIndex_ = 0;
};

} // namespace divot

#endif // DIVOT_ANALOG_PLL_HH
