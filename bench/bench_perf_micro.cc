/**
 * @file
 * PERF — google-benchmark microbenchmarks of the simulator's hot
 * paths: lattice and Born reflection rendering, a full iTDR
 * measurement, fingerprint similarity, the APC inverse table, and
 * ROC analysis. These bound how fast the paper-scale experiments can
 * run and quantify the Born-vs-lattice ablation speed side.
 */

#include <benchmark/benchmark.h>

#include "analog/comparator.hh"
#include "fingerprint/fingerprint.hh"
#include "itdr/apc.hh"
#include "itdr/itdr.hh"
#include "itdr/kernels/kernels.hh"
#include "telemetry/telemetry.hh"
#include "txline/born.hh"
#include "txline/lattice.hh"
#include "txline/manufacturing.hh"
#include "util/roc.hh"
#include "util/thread_pool.hh"

namespace divot {
namespace {

TransmissionLine
benchLine(double length = 0.25)
{
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(7));
    auto z = fab.drawImpedanceProfile(length, 0.5e-3);
    return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                            50.0, 50.3, params.lossNeperPerMeter,
                            "bench");
}

void
BM_LatticeProbe(benchmark::State &state)
{
    const auto line = benchLine(
        static_cast<double>(state.range(0)) / 100.0);
    LatticeSimulator sim(line);
    const EdgeShape edge(0.8, 25e-12);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.probe(edge).reflection);
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LatticeProbe)->Arg(10)->Arg(25)->Arg(50)->Complexity();

void
BM_BornProbe(benchmark::State &state)
{
    const auto line = benchLine(
        static_cast<double>(state.range(0)) / 100.0);
    BornTdrModel born(line);
    const EdgeShape edge(0.8, 25e-12);
    for (auto _ : state)
        benchmark::DoNotOptimize(born.probe(edge));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BornProbe)->Arg(10)->Arg(25)->Arg(50)->Complexity();

void
BM_ItdrMeasure(benchmark::State &state)
{
    const auto line = benchLine();
    ItdrConfig cfg;
    cfg.trialsPerPhase = static_cast<unsigned>(state.range(0));
    ITdr itdr(cfg, Rng(11));
    for (auto _ : state)
        benchmark::DoNotOptimize(itdr.measure(line));
}
BENCHMARK(BM_ItdrMeasure)->Arg(17)->Arg(170);

// Telemetry overhead on the hottest call. telemetry:0 is the
// detached baseline, telemetry:1 attaches a disabled Telemetry (the
// handles stay inert — the acceptance bar is ~0% over detached) and
// telemetry:2 attaches an enabled one (bar: < 3% over detached).
void
BM_ItdrMeasureTelemetry(benchmark::State &state)
{
    const auto line = benchLine();
    ItdrConfig cfg;
    cfg.trialsPerPhase = 170;
    ITdr itdr(cfg, Rng(11));
    TelemetryConfig tc;
    tc.enabled = state.range(0) == 2;
    Telemetry telemetry(tc);
    if (state.range(0) != 0)
        itdr.attachTelemetry(&telemetry, "itdr.bench");
    for (auto _ : state)
        benchmark::DoNotOptimize(itdr.measure(line));
}
BENCHMARK(BM_ItdrMeasureTelemetry)
    ->ArgNames({"telemetry"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// The perf-engine matrix: batched strobes on/off crossed with the
// reflection-trace cache on/off. {0,0} is the pre-optimization
// baseline; {1,8} is the default configuration.
void
BM_ItdrMeasureEngine(benchmark::State &state)
{
    const auto line = benchLine();
    ItdrConfig cfg;
    cfg.trialsPerPhase = 170;
    cfg.batchedStrobes = state.range(0) != 0;
    cfg.traceCacheCapacity = static_cast<std::size_t>(state.range(1));
    ITdr itdr(cfg, Rng(11));
    for (auto _ : state)
        benchmark::DoNotOptimize(itdr.measure(line));
}
BENCHMARK(BM_ItdrMeasureEngine)
    ->ArgNames({"batch", "cache"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 8})
    ->Args({1, 8});

// The analytic strobe engine against the sampled batch engine at the
// default trials/levels configuration — the headline O(levels) vs
// O(trials) comparison. Compare model:1 against
// BM_ItdrMeasureEngine/batch:1 at the same cache setting; the
// acceptance bar is >= 10x at cache:8.
void
BM_ItdrMeasureStrobeModel(benchmark::State &state)
{
    const auto line = benchLine();
    ItdrConfig cfg;
    cfg.trialsPerPhase = 170;
    cfg.strobeModel = state.range(0) != 0 ? StrobeModel::Binomial
                                          : StrobeModel::Sampled;
    cfg.traceCacheCapacity = static_cast<std::size_t>(state.range(1));
    ITdr itdr(cfg, Rng(11));
    for (auto _ : state)
        benchmark::DoNotOptimize(itdr.measure(line));
}
BENCHMARK(BM_ItdrMeasureStrobeModel)
    ->ArgNames({"model", "cache"})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({1, 0});

SimdTarget
benchSimdArg(long arg)
{
    switch (arg) {
      case 1: return SimdTarget::Avx2;
      case 2: return SimdTarget::Neon;
      default: return SimdTarget::Scalar;
    }
}

// The analytic measurement per dispatch target — the headline SIMD
// number. Compare simd:1 (or simd:2 on aarch64) against simd:0; the
// acceptance bar is >= 3x with AVX2. Unsupported targets skip rather
// than silently benchmark the scalar fallback.
void
BM_ItdrMeasureSimd(benchmark::State &state)
{
    const SimdTarget target = benchSimdArg(state.range(0));
    if (!simdTargetSupported(target)) {
        state.SkipWithError("simd target not supported on this host");
        return;
    }
    const auto line = benchLine();
    ItdrConfig cfg;
    cfg.trialsPerPhase = 170;
    cfg.strobeModel = StrobeModel::Binomial;
    cfg.simd = target;
    ITdr itdr(cfg, Rng(11));
    for (auto _ : state)
        benchmark::DoNotOptimize(itdr.measure(line));
}
BENCHMARK(BM_ItdrMeasureSimd)
    ->ArgNames({"simd"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// The batched Phi kernel alone, at the instrument's real grid shape
// (340 bins x 17 levels): probabilities per second per target.
void
BM_KernelApcProbability(benchmark::State &state)
{
    const SimdTarget target = benchSimdArg(state.range(0));
    if (!simdTargetSupported(target)) {
        state.SkipWithError("simd target not supported on this host");
        return;
    }
    const StrobeKernels &k = strobeKernels(target);
    const std::size_t bins = 340, levels = 17;
    Rng rng(3);
    std::vector<double> v_sig(bins), ref(bins * levels),
        p(bins * levels);
    for (std::size_t i = 0; i < bins; ++i) {
        v_sig[i] = rng.uniform(-4e-3, 4e-3);
        for (std::size_t j = 0; j < levels; ++j)
            ref[i * levels + j] =
                -8e-3 + 1e-3 * static_cast<double>(j);
    }
    for (auto _ : state) {
        k.apcProbabilityGrid(v_sig.data(), 0.0, 1.0 / 0.5e-3,
                             ref.data(), p.data(), bins, levels);
        benchmark::DoNotOptimize(p.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * bins * levels));
}
BENCHMARK(BM_KernelApcProbability)
    ->ArgNames({"simd"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// The per-lane binomial kernel alone, on a realistic probability mix
// (mostly saturated lanes, an interior transition band): draws per
// second per target. Bit-identical output across targets by contract.
void
BM_KernelBinomialLane(benchmark::State &state)
{
    const SimdTarget target = benchSimdArg(state.range(0));
    if (!simdTargetSupported(target)) {
        state.SkipWithError("simd target not supported on this host");
        return;
    }
    const StrobeKernels &k = strobeKernels(target);
    const std::size_t bins = 340, levels = 17;
    Rng grid_rng(3);
    std::vector<double> v_sig(bins), ref(bins * levels),
        p(bins * levels);
    for (std::size_t i = 0; i < bins; ++i) {
        v_sig[i] = grid_rng.uniform(-4e-3, 4e-3);
        for (std::size_t j = 0; j < levels; ++j)
            ref[i * levels + j] =
                -8e-3 + 1e-3 * static_cast<double>(j);
    }
    scalarStrobeKernels()->apcProbabilityGrid(
        v_sig.data(), 0.0, 1.0 / 0.5e-3, ref.data(), p.data(), bins,
        levels);
    Rng rng(29);
    std::vector<unsigned> kk(bins * levels);
    for (auto _ : state) {
        k.binomialLane(rng, p.data(), 10, kk.data(), kk.size());
        benchmark::DoNotOptimize(kk.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kk.size()));
}
BENCHMARK(BM_KernelBinomialLane)
    ->ArgNames({"simd"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

void
BM_ComparatorStrobeAnalytic(benchmark::State &state)
{
    // One bin's worth of APC work: 17 Vernier levels x n/17 trials
    // each, drawn as 17 binomials instead of n Gaussians (contrast
    // with BM_ComparatorStrobeBatch at the same n).
    Comparator cmp(ComparatorParams{}, Rng(21));
    const unsigned levels = 17;
    const unsigned per_level =
        static_cast<unsigned>(state.range(0)) / levels;
    std::vector<double> refs(levels);
    for (std::size_t i = 0; i < refs.size(); ++i)
        refs[i] = (static_cast<double>(i) - 8.0) * 1e-3;
    for (auto _ : state)
        benchmark::DoNotOptimize(cmp.strobeAnalytic(
            1e-3, refs.data(), refs.size(), per_level));
}
BENCHMARK(BM_ComparatorStrobeAnalytic)->Arg(170)->Arg(1700);

void
BM_RngBinomial(benchmark::State &state)
{
    // Both sides of the inversion/normal-cutoff seam.
    Rng rng(23);
    const uint64_t n = static_cast<uint64_t>(state.range(0));
    double p = 0.02;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.binomial(n, p));
        p += 0.013;
        if (p >= 0.99)
            p = 0.02;
    }
}
BENCHMARK(BM_RngBinomial)->Arg(10)->Arg(64)->Arg(65)->Arg(1000);

void
BM_ComparatorStrobeScalar(benchmark::State &state)
{
    Comparator cmp(ComparatorParams{}, Rng(21));
    std::vector<double> refs(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < refs.size(); ++i)
        refs[i] = (static_cast<double>(i % 17) - 8.0) * 1e-3;
    for (auto _ : state) {
        unsigned hits = 0;
        for (double r : refs)
            hits += cmp.strobe(1e-3, r);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_ComparatorStrobeScalar)->Arg(170)->Arg(1700);

void
BM_ComparatorStrobeBatch(benchmark::State &state)
{
    Comparator cmp(ComparatorParams{}, Rng(21));
    std::vector<double> refs(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < refs.size(); ++i)
        refs[i] = (static_cast<double>(i % 17) - 8.0) * 1e-3;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cmp.strobeBatch(1e-3, refs.data(), refs.size()));
}
BENCHMARK(BM_ComparatorStrobeBatch)->Arg(170)->Arg(1700);

void
BM_ThreadPoolParallelFor(benchmark::State &state)
{
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    std::vector<double> out(4096);
    for (auto _ : state) {
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 1.5;
        });
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(4);

void
BM_Similarity(benchmark::State &state)
{
    const auto line = benchLine();
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(13));
    const Waveform empty;
    const Fingerprint a =
        Fingerprint::fromMeasurement(itdr.measure(line), empty);
    const Fingerprint b =
        Fingerprint::fromMeasurement(itdr.measure(line), empty);
    for (auto _ : state)
        benchmark::DoNotOptimize(similarity(a, b));
}
BENCHMARK(BM_Similarity);

void
BM_ErrorFunction(benchmark::State &state)
{
    const auto line = benchLine();
    ItdrConfig cfg;
    ITdr itdr(cfg, Rng(17));
    const Waveform empty;
    const Fingerprint a =
        Fingerprint::fromMeasurement(itdr.measure(line), empty);
    const Fingerprint b =
        Fingerprint::fromMeasurement(itdr.measure(line), empty);
    for (auto _ : state)
        benchmark::DoNotOptimize(errorFunction(a, b));
}
BENCHMARK(BM_ErrorFunction);

void
BM_ApcInverseTableBuild(benchmark::State &state)
{
    std::vector<double> levels;
    for (int i = 0; i < 17; ++i)
        levels.push_back((i - 8) * 1e-3);
    for (auto _ : state)
        benchmark::DoNotOptimize(ApcInverseTable(levels, 0.5e-3));
}
BENCHMARK(BM_ApcInverseTableBuild);

void
BM_ApcInverseTableLookup(benchmark::State &state)
{
    std::vector<double> levels;
    for (int i = 0; i < 17; ++i)
        levels.push_back((i - 8) * 1e-3);
    const ApcInverseTable table(levels, 0.5e-3);
    double p = 0.001;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.reconstruct(p));
        p += 0.001;
        if (p >= 0.999)
            p = 0.001;
    }
}
BENCHMARK(BM_ApcInverseTableLookup);

void
BM_RocAnalysis(benchmark::State &state)
{
    Rng rng(19);
    std::vector<double> genuine, impostor;
    for (long i = 0; i < state.range(0); ++i) {
        genuine.push_back(rng.gaussian(0.8, 0.05));
        impostor.push_back(rng.gaussian(0.1, 0.05));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzeRoc(genuine, impostor));
}
BENCHMARK(BM_RocAnalysis)->Arg(1024)->Arg(8192);

} // namespace
} // namespace divot

BENCHMARK_MAIN();
