/**
 * @file
 * FIG5 — equivalent-time sampling (paper Fig. 5, Section II-D).
 *
 * Regenerates: the real-time vs equivalent sampling-rate table (the
 * 11.16 ps Ultrascale+ phase step => >80 GSa/s, 0.837 mm resolution),
 * and a two-discontinuity resolution experiment: a pair of closely
 * spaced impedance steps that the raw clock rate cannot separate but
 * the ETS grid resolves.
 */

#include <vector>

#include "bench_common.hh"
#include "itdr/itdr.hh"
#include "txline/txline.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace divot;

namespace {

/** Two bumps `gap` meters apart on an otherwise uniform line. */
TransmissionLine
twoBumpLine(double gap)
{
    const double seg = 0.5e-3;
    const std::size_t n = 400;  // 20 cm
    std::vector<double> z(n, 50.0);
    const std::size_t first = 150;
    const std::size_t second =
        first + static_cast<std::size_t>(gap / seg);
    for (std::size_t i = 0; i < 4; ++i) {
        z[first + i] = 53.0;
        z[second + i] = 53.0;
    }
    return TransmissionLine(z, seg, units::pcbVelocity, 50.0, 50.0,
                            0.0, "twobump");
}

/** Count local maxima above a floor in a waveform segment. */
unsigned
countPeaks(const Waveform &w, double floor_frac)
{
    const double floor_v = floor_frac * w.peakAbs();
    unsigned peaks = 0;
    for (std::size_t i = 1; i + 1 < w.size(); ++i) {
        if (std::fabs(w[i]) > floor_v &&
            std::fabs(w[i]) >= std::fabs(w[i - 1]) &&
            std::fabs(w[i]) > std::fabs(w[i + 1])) {
            ++peaks;
        }
    }
    return peaks;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG5", "equivalent-time sampling rates & resolution",
                  opt);

    // --- The paper's headline numbers ---
    PllParams pll;
    Table rates("Sampling rates (Ultrascale+ PLL, 156.25 MHz clock)");
    rates.setHeader({"scheme", "sample interval", "rate (GSa/s)",
                     "spatial res (mm)"});
    const double v = units::pcbVelocity;
    const double t_clk = 1.0 / pll.clockFrequency;
    rates.addRow({"real-time (clock)",
                  Table::num(t_clk * 1e9, 4) + " ns",
                  Table::num(1e-9 / t_clk, 4),
                  Table::num(v * t_clk / 2.0 * 1e3, 4)});
    rates.addRow({"ETS (tau=11.16 ps)",
                  Table::num(pll.phaseStep * 1e12, 4) + " ps",
                  Table::num(1e-9 / pll.phaseStep, 4),
                  Table::num(v * pll.phaseStep / 2.0 * 1e3, 4)});
    rates.print(std::cout);
    std::printf("\npaper claim: >80 GSa/s equivalent, ~0.837 mm "
                "resolution; M = %u phase steps per clock period\n\n",
                PhaseLockedLoop(pll, Rng(1)).stepsPerPeriod());

    // --- Resolution experiment: separate two bumps 5 mm apart ---
    Table res("Two-discontinuity resolution (bumps 5 mm apart)");
    res.setHeader({"sampling", "grid (ps)", "resolved peaks"});
    const TransmissionLine line = twoBumpLine(5e-3);

    ItdrConfig fine;
    fine.trialsPerPhase = opt.full ? 340 : 170;
    ITdr itdr_fine(fine, Rng(opt.seed));
    const Waveform ideal_fine = itdr_fine.idealIip(line);
    res.addRow({"ETS tau=11.16ps",
                Table::num(fine.pll.phaseStep * 1e12, 4),
                std::to_string(countPeaks(ideal_fine, 0.5))});

    // Simulate "no ETS": decimate the ideal trace to the clock rate.
    const Waveform coarse = ideal_fine.resampled(t_clk);
    res.addRow({"clock-rate only", Table::num(t_clk * 1e12, 4),
                std::to_string(countPeaks(coarse, 0.5))});
    res.print(std::cout);

    printSeries(std::cout, "fig5.ets_trace (t, V)",
                ideal_fine.slice(1.8e-9, 2.6e-9).series());
    return 0;
}
