/**
 * @file
 * Shared driver for the Fig. 9 tamper benches: fabricate the 25 cm
 * prototype line, enroll it, apply an attack, and emit the paper's
 * three artifacts — the IIP traces before/after, the error function
 * E_xy, and the detection/localization row.
 */

#ifndef DIVOT_BENCH_TAMPER_COMMON_HH
#define DIVOT_BENCH_TAMPER_COMMON_HH

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "fingerprint/fingerprint.hh"
#include "fingerprint/localize.hh"
#include "itdr/itdr.hh"
#include "txline/manufacturing.hh"
#include "txline/tamper.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace divot {
namespace bench {

/** The fabricated line plus its enrolled fingerprint and instrument. */
struct TamperRig
{
    /**
     * Fixed worker-lane count for averaged measurement campaigns.
     * Repetition i always runs on lane i % kWorkerLanes, in increasing
     * order within a lane, so the result is bit-identical for any
     * thread count (including 1 — the pool runs lanes inline then).
     */
    static constexpr std::size_t kWorkerLanes = 8;

    TransmissionLine line;
    ItdrConfig cfg;
    ITdr itdr;
    Waveform nominal;
    Fingerprint enrolled;

    TamperRig(const Options &opt, double load_impedance = 50.2)
        : line(fabricate(opt, load_impedance)), itdr(cfg, Rng(opt.seed))
    {
        const Rng master(opt.seed ^ 0x51abULL);
        workers_.resize(kWorkerLanes);
        pool_.parallelFor(kWorkerLanes, [&](std::size_t k) {
            workers_[k] = std::make_unique<ITdr>(
                cfg, master.forkStable(0x7a00ULL + k));
        });
        TransmissionLine uniform(
            std::vector<double>(line.segments(), 50.0),
            line.segmentLength(), line.velocity(), 50.0, 50.0,
            line.lossNeperPerMeter(), "nominal");
        nominal = itdr.idealIip(uniform);
        enrolled = average(line, opt.full ? 32 : 16);
    }

    static TransmissionLine
    fabricate(const Options &opt, double load_impedance)
    {
        ProcessParams params;
        ManufacturingProcess fab(params, Rng(opt.seed ^ 0xf19));
        auto z = fab.drawImpedanceProfile(0.25, 0.5e-3);
        return TransmissionLine(std::move(z), 0.5e-3, params.velocity,
                                50.0, load_impedance,
                                params.lossNeperPerMeter, "proto25cm");
    }

    /**
     * Averaged fingerprint of a (possibly tampered) line state. The
     * repetitions fan out across the worker lanes; each lane keeps a
     * persistent ITdr so the APC inverse tables are built once, and
     * lane streams advance in a fixed order across calls.
     */
    Fingerprint
    average(const TransmissionLine &l, std::size_t reps)
    {
        std::vector<IipMeasurement> ms(reps);
        pool_.parallelFor(kWorkerLanes, [&](std::size_t k) {
            for (std::size_t i = k; i < reps; i += kWorkerLanes)
                ms[i] = workers_[k]->measure(l);
        });
        return Fingerprint::enroll(ms, nominal, l.name());
    }

    /**
     * Run the full Fig. 9-style comparison for one attack and print
     * the series plus the detection table.
     */
    void
    report(const Options &opt, const char *tag,
           const TransmissionLine &attacked)
    {
        const std::size_t reps = opt.full ? 32 : 16;
        const Fingerprint benign = average(line, reps);
        const Fingerprint hit = average(attacked, reps);

        // IIP traces (paper plots V vs round-trip time 0..3.8 ns).
        printSeries(std::cout,
                    std::string(tag) + ".iip.before (t, V)",
                    decimate(enrolled.raw()));
        printSeries(std::cout,
                    std::string(tag) + ".iip.after  (t, V)",
                    decimate(hit.raw()));

        // Error functions: ambient (dotted in the paper) vs attack.
        const Waveform e_ambient = errorFunction(enrolled, benign);
        const Waveform e_attack = errorFunction(enrolled, hit);
        printSeries(std::cout,
                    std::string(tag) + ".exy.ambient (t, V^2)",
                    decimate(e_ambient));
        printSeries(std::cout,
                    std::string(tag) + ".exy.attack  (t, V^2)",
                    decimate(e_attack));

        // Detection / localization row at the paper's threshold.
        TamperLocalizer localizer(5e-7);
        const TamperReport amb =
            localizer.inspect(enrolled, benign, line);
        const TamperReport att =
            localizer.inspect(enrolled, hit, line);

        Table table(std::string(tag) + " detection at threshold 5e-7");
        table.setHeader({"condition", "peak E_xy", "peak t (ns)",
                         "location (cm)", "detected"});
        table.addRow({"ambient", Table::sci(amb.peakError, 3),
                      Table::num(amb.peakTime * 1e9, 3),
                      Table::num(amb.location * 100.0, 2),
                      amb.detected ? "YES (false+)" : "no"});
        table.addRow({"attack", Table::sci(att.peakError, 3),
                      Table::num(att.peakTime * 1e9, 3),
                      Table::num(att.location * 100.0, 2),
                      att.detected ? "yes" : "MISSED"});
        if (opt.csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        std::printf("\ncontrast (attack/ambient peak): %.1fx\n",
                    att.peakError / std::max(amb.peakError, 1e-300));
    }

    /** Thin a waveform to ~200 printable points. */
    static std::vector<std::pair<double, double>>
    decimate(const Waveform &w)
    {
        std::vector<std::pair<double, double>> out;
        const std::size_t stride =
            std::max<std::size_t>(1, w.size() / 200);
        for (std::size_t i = 0; i < w.size(); i += stride)
            out.emplace_back(w.timeAt(i) * 1e9, w[i]);
        return out;
    }

  private:
    ThreadPool pool_;
    std::vector<std::unique_ptr<ITdr>> workers_;
};

} // namespace bench
} // namespace divot

#endif // DIVOT_BENCH_TAMPER_COMMON_HH
