/**
 * @file
 * FIG9EF — wire-tapping (paper Fig. 9e/9f): a scope lead soldered to
 * the trace mid-line. The most invasive attack: a massive local
 * impedance drop, and the solder scar makes the IIP damage permanent
 * (Section IV-E) — removal does not restore the fingerprint.
 */

#include "bench_tamper_common.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG9EF", "wire-tapping (soldered stub)", opt);

    bench::TamperRig rig(opt);
    WireTap attack(0.55, 50.0);
    std::printf("attack: %s\n\n", attack.describe().c_str());
    rig.report(opt, "fig9ef", attack.apply(rig.line));

    // --- Permanence check: the paper found the IIP non-reversible ---
    const Fingerprint scarred =
        rig.average(attack.applyRemoved(rig.line), opt.full ? 32 : 16);
    TamperLocalizer localizer(5e-7);
    const TamperReport rep =
        localizer.inspect(rig.enrolled, scarred, rig.line);
    std::printf("\nafter removing the tap wire (solder scar remains):"
                "\n  peak E_xy = %s at %.2f cm -> %s\n",
                Table::sci(rep.peakError, 3).c_str(),
                rep.location * 100.0,
                rep.detected ? "still detected (permanent damage, "
                               "matches Section IV-E)"
                             : "NOT detected (contradicts the paper)");
    return 0;
}
