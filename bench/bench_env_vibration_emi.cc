/**
 * @file
 * ENV — vibration and EMI robustness (paper Section IV-C text):
 * a 1-50 Hz chirped piezo knock raises the EER to ~0.27 %, while
 * asynchronous EMI from a nearby high-speed circuit is suppressed by
 * the synchronized APC averaging and leaves the EER at ~0.06 %.
 */

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace divot;

namespace {

StudyResult
runCondition(const bench::Options &opt, double vibration, double emi)
{
    StudyConfig cfg;
    cfg.lines = 6;
    cfg.lineLength = 0.25;
    cfg.enrollReps = 16;
    cfg.genuinePerLine = opt.full ? 1366 : 170;
    cfg.impostorPerPair = opt.full ? 273 : 34;
    cfg.environment.vibrationStrain = vibration;
    cfg.environment.emiAmplitude = emi;
    return GenuineImpostorStudy(cfg, Rng(opt.seed)).run();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("ENV", "vibration chirp + EMI robustness", opt);

    struct Condition
    {
        const char *name;
        double vibration;
        double emi;
        const char *paper;
    };
    const Condition conditions[] = {
        {"quiet bench", 0.0, 0.0, "EER < 0.0006"},
        {"vibration 1-50Hz chirp", 1.1e-2, 0.0, "EER -> 0.0027"},
        {"EMI (nearby digital ckt)", 0.0, 0.5e-3, "EER stays 0.0006"},
        {"vibration + EMI", 1.1e-2, 0.5e-3, "(not reported)"},
    };

    Table table("EER under environmental stress");
    table.setHeader({"condition", "genuine mean", "genuine min",
                     "impostor max", "EER", "EER(fit)", "d'",
                     "paper"});
    double quiet_eer = 0.0, vib_eer = 0.0, emi_eer = 0.0;
    for (const auto &c : conditions) {
        const StudyResult res =
            runCondition(opt, c.vibration, c.emi);
        RunningStats g, im;
        g.addAll(res.genuine);
        im.addAll(res.impostor);
        table.addRow({c.name, Table::num(g.mean(), 4),
                      Table::num(g.min(), 4),
                      Table::num(im.max(), 4),
                      Table::num(res.roc.eer, 6),
                      Table::sci(res.fittedEer, 2),
                      Table::num(res.decidability, 2), c.paper});
        if (c.vibration == 0.0 && c.emi == 0.0)
            quiet_eer = res.fittedEer;
        else if (c.vibration > 0.0 && c.emi == 0.0)
            vib_eer = res.fittedEer;
        else if (c.vibration == 0.0 && c.emi > 0.0)
            emi_eer = res.fittedEer;
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nshape checks (fitted EER):\n");
    std::printf("  vibration degrades EER:        %s (%.2e -> %.2e)\n",
                vib_eer >= quiet_eer ? "yes" : "NO", quiet_eer,
                vib_eer);
    std::printf("  EMI leaves EER ~unchanged:     %s (%.2e -> %.2e)\n",
                emi_eer <= std::max(quiet_eer * 30.0, 5e-4) ? "yes"
                                                            : "NO",
                quiet_eer, emi_eer);
    std::printf("  (synchronous APC averaging rejects the "
                "asynchronous interferer)\n");
    return 0;
}
