/**
 * @file
 * MEMBUS — the Section III example design end to end: an SDRAM
 * behind a DIVOT-guarded bus running live traffic while attacks are
 * injected. Reports throughput overhead (zero: monitoring rides the
 * clock edges), detection latency, and the gating behaviour.
 */

#include "bench_common.hh"
#include "memsys/system.hh"
#include "util/table.hh"

using namespace divot;

namespace {

MemorySystemConfig
baseConfig()
{
    MemorySystemConfig cfg;
    cfg.busLength = 0.08;  // CPU-to-DIMM scale
    cfg.enrollReps = 16;
    cfg.requestsPerKcycle = 40.0;
    cfg.workload = WorkloadKind::HotCold;
    return cfg;
}

struct ScenarioResult
{
    MemorySystemReport report;
    const char *name;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("MEMBUS", "protected SDRAM system under attack",
                  opt);

    const uint64_t horizon = opt.full ? 8000000 : 2000000;
    const uint64_t attack_at = horizon / 8;

    std::vector<ScenarioResult> results;

    {
        ProtectedMemorySystem sys(baseConfig(), Rng(opt.seed));
        sys.run(horizon);
        results.push_back({sys.report(), "benign"});
    }
    {
        ProtectedMemorySystem sys(baseConfig(), Rng(opt.seed));
        sys.scheduleColdBootSwap(attack_at);
        sys.run(horizon);
        results.push_back({sys.report(), "cold-boot swap"});
    }
    {
        ProtectedMemorySystem sys(baseConfig(), Rng(opt.seed));
        sys.scheduleProbeAttach(attack_at, 0.5);
        sys.run(horizon);
        results.push_back({sys.report(), "magnetic probe"});
    }

    Table table("Protected memory system: scenarios over " +
                std::to_string(horizon) + " bus cycles");
    table.setHeader({"scenario", "injected", "completed", "row-hit%",
                     "stall cyc", "gate rej", "rounds",
                     "detect (us)"});
    for (const auto &r : results) {
        std::string latency = "-";
        if (!r.report.detections.empty()) {
            latency = Table::num(
                r.report.detections.front().latencySeconds * 1e6, 4);
        }
        table.addRow({r.name, std::to_string(r.report.injected),
                      std::to_string(r.report.completed),
                      Table::num(r.report.controller.rowHitRate() *
                                     100.0, 3),
                      std::to_string(r.report.controller.stalledCycles),
                      std::to_string(r.report.gateRejections),
                      std::to_string(r.report.monitoringRounds),
                      latency});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const auto &benign = results[0].report;
    const auto &swap = results[1].report;
    std::printf("\nshape checks (Section III):\n");
    std::printf("  benign run unaffected by monitoring: %s "
                "(0 stalls, 0 gate rejections)\n",
                benign.controller.stalledCycles == 0 &&
                        benign.gateRejections == 0
                    ? "yes" : "NO");
    std::printf("  cold boot detected: %s",
                swap.detections.empty() ? "NO\n" : "yes");
    if (!swap.detections.empty()) {
        std::printf(" in %.1f us (paper: within the memory-operation "
                    "time frame)\n",
                    swap.detections.front().latencySeconds * 1e6);
    }
    std::printf("  post-attack traffic blocked: %s "
                "(stalls=%llu)\n",
                swap.controller.stalledCycles > 0 ? "yes" : "NO",
                static_cast<unsigned long long>(
                    swap.controller.stalledCycles));
    std::printf("  mean read latency (benign): %.1f cycles over %zu "
                "requests\n",
                benign.controller.latency.mean(),
                benign.controller.latency.count());
    return 0;
}
