/**
 * @file
 * ABL — design-choice ablations from DESIGN.md:
 *
 *  1. PDM on vs off (fixed reference): without modulation the
 *     reflection clips at ~2 sigma. Rank-order similarity survives
 *     clipping, but voltage fidelity and the E_xy tamper contrast —
 *     which the 5e-7 threshold depends on — degrade badly.
 *  2. Trigger policy: clock lane vs data lane (1->0 FIFO trigger) —
 *     ~4x measurement time plus Vernier-sampling noise from random
 *     per-bin level weights.
 *  3. Reflection backend: Born vs exact lattice — fidelity vs speed.
 *  4. Trials per bin K: accuracy/latency trade-off.
 */

#include <chrono>

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "itdr/budget.hh"
#include "fingerprint/fingerprint.hh"
#include "txline/born.hh"
#include "txline/lattice.hh"
#include "txline/tamper.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace divot;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

StudyResult
runStudy(const bench::Options &opt, ItdrConfig itdr)
{
    StudyConfig cfg;
    cfg.lines = 4;
    cfg.lineLength = 0.25;
    cfg.enrollReps = 8;
    cfg.genuinePerLine = opt.full ? 128 : 48;
    cfg.impostorPerPair = opt.full ? 32 : 12;
    cfg.itdr = itdr;
    return GenuineImpostorStudy(cfg, Rng(opt.seed)).run();
}

void
studyRow(Table &table, const char *name, const StudyResult &res)
{
    RunningStats g, im;
    g.addAll(res.genuine);
    im.addAll(res.impostor);
    table.addRow({name, Table::num(g.mean(), 4),
                  Table::num(im.mean(), 4),
                  Table::num(res.roc.eer, 5),
                  Table::num(res.decidability, 2),
                  std::to_string(res.totalBusCycles)});
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("ABL", "design-choice ablations", opt);

    // --- 1 + 2: PDM and trigger policy ---
    Table study_table("Ablation: PDM and trigger policy");
    study_table.setHeader({"variant", "genuine mean", "impostor mean",
                           "EER", "d'", "bus cycles"});

    ItdrConfig base;
    studyRow(study_table, "default (PDM on, clock lane)",
             runStudy(opt, base));

    ItdrConfig no_pdm = base;
    no_pdm.pdm.enabled = false;
    no_pdm.pdm.fixedReference = 0.0;
    studyRow(study_table, "PDM off (fixed Vref)",
             runStudy(opt, no_pdm));

    ItdrConfig data_lane = base;
    data_lane.triggerMode = TriggerMode::DataLane;
    studyRow(study_table, "data-lane trigger (1->0)",
             runStudy(opt, data_lane));

    ItdrConfig encoded = base;
    encoded.triggerMode = TriggerMode::Encoded8b10b;
    studyRow(study_table, "8b/10b-encoded data lane",
             runStudy(opt, encoded));
    study_table.print(std::cout);
    std::printf("\nnote: similarity scoring is clip-tolerant, so "
                "PDM-off can still rank-order lines;\nthe fidelity "
                "table below shows what modulation actually buys. The "
                "data lane pays\n~4x cycles plus Vernier-sampling "
                "noise (random level weights per bin).\n\n");

    // --- IIP fidelity + tamper contrast per variant ---
    {
        ProcessParams fparams;
        ManufacturingProcess ffab(fparams, Rng(opt.seed ^ 0xf1de));
        auto fz = ffab.drawImpedanceProfile(0.25, 0.5e-3);
        TransmissionLine fline(std::move(fz), 0.5e-3,
                               fparams.velocity, 50.0, 50.2,
                               fparams.lossNeperPerMeter, "fid");
        LoadModification swap(55.0);
        const TransmissionLine attacked = swap.apply(fline);

        Table fid("Ablation: IIP fidelity and tamper contrast");
        fid.setHeader({"variant", "corr(meas, ideal)",
                       "rms err (mV)", "load-mod E contrast"});
        struct Variant
        {
            const char *name;
            ItdrConfig cfg;
        };
        const Variant variants[] = {
            {"default (PDM on)", base},
            {"PDM off (fixed Vref)", no_pdm},
            {"data-lane trigger", data_lane},
        };
        for (const auto &v : variants) {
            ITdr itdr(v.cfg, Rng(opt.seed ^ 0xfe));
            const Waveform ideal = itdr.idealIip(fline);
            const IipMeasurement m = itdr.measure(fline);
            double err = 0.0;
            for (std::size_t i = 0; i < ideal.size(); ++i)
                err += (m.iip[i] - ideal[i]) * (m.iip[i] - ideal[i]);
            err = std::sqrt(err / static_cast<double>(ideal.size()));

            // Tamper contrast: averaged E peak attack vs ambient.
            auto avg = [&](const TransmissionLine &l) {
                std::vector<IipMeasurement> reps;
                for (int r = 0; r < 8; ++r)
                    reps.push_back(itdr.measure(l));
                const Waveform none;
                return Fingerprint::enroll(reps, none, "x");
            };
            const Fingerprint enr = avg(fline);
            const Fingerprint benign = avg(fline);
            const Fingerprint hit = avg(attacked);
            const double contrast = peakError(enr, hit) /
                std::max(peakError(enr, benign), 1e-300);
            fid.addRow({v.name,
                        Table::num(normalizedInnerProduct(m.iip,
                                                          ideal), 4),
                        Table::num(err * 1e3, 3),
                        Table::num(contrast, 3) + "x"});
        }
        fid.print(std::cout);
        std::printf("\nexpected: PDM off clips the trace (usable "
                    "range ~2 sigma), destroying voltage\nfidelity "
                    "and compressing the tamper contrast the E_xy "
                    "threshold depends on.\n\n");
    }

    // --- 3: Born vs lattice backend ---
    ProcessParams params;
    ManufacturingProcess fab(params, Rng(opt.seed ^ 0xab1));
    auto z = fab.drawImpedanceProfile(0.25, 0.5e-3);
    TransmissionLine line(std::move(z), 0.5e-3, params.velocity, 50.0,
                          50.4, params.lossNeperPerMeter, "abl");
    const EdgeShape edge(0.8, 25e-12);

    const int reps = opt.full ? 200 : 40;
    LatticeSimulator lattice(line);
    BornTdrModel born(line);
    double t0 = nowSeconds();
    Waveform exact;
    for (int i = 0; i < reps; ++i)
        exact = lattice.probe(edge).reflection;
    const double t_lattice = (nowSeconds() - t0) / reps;
    t0 = nowSeconds();
    Waveform approx;
    for (int i = 0; i < reps; ++i)
        approx = born.probe(edge);
    const double t_born = (nowSeconds() - t0) / reps;

    double dot = 0.0, ee = 0.0, aa = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double a = approx.valueAt(exact.timeAt(i));
        dot += exact[i] * a;
        ee += exact[i] * exact[i];
        aa += a * a;
    }
    Table backend("Ablation: reflection backend (25 cm line)");
    backend.setHeader({"backend", "time per probe (ms)", "fidelity"});
    backend.addRow({"lattice (exact)", Table::num(t_lattice * 1e3, 4),
                    "reference"});
    backend.addRow({"Born (first order)", Table::num(t_born * 1e3, 4),
                    "corr=" + Table::num(dot / std::sqrt(ee * aa), 6)});
    backend.print(std::cout);
    std::printf("speedup: %.1fx\n\n", t_lattice / t_born);

    // --- 4: trials per bin ---
    Table ktable("Ablation: trials per bin (accuracy vs latency)");
    ktable.setHeader({"K", "EER", "d'", "meas. duration (us)"});
    for (unsigned k : {17u, 51u, 170u, 510u}) {
        ItdrConfig c = base;
        c.trialsPerPhase = k;
        const StudyResult res = runStudy(opt, c);
        const MeasurementBudget b =
            predictBudget(c, line.roundTripDelay());
        ktable.addRow({std::to_string(k), Table::num(res.roc.eer, 5),
                       Table::num(res.decidability, 2),
                       Table::num(b.expectedDuration * 1e6, 4)});
    }
    ktable.print(std::cout);
    std::printf("\nexpected: d' grows with K; the 50 us envelope "
                "bounds K near 17-22 on a 25 cm line.\n");
    return 0;
}
