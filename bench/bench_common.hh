/**
 * @file
 * Shared plumbing for the figure-regeneration benches: flag parsing
 * (--full for paper-scale runs, --seed N, --csv) and a banner helper.
 * Every bench prints the series/rows of the paper artifact it
 * regenerates; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef DIVOT_BENCH_COMMON_HH
#define DIVOT_BENCH_COMMON_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace divot {
namespace bench {

/** Parsed command-line options common to all benches. */
struct Options
{
    bool full = false;     //!< paper-scale population sizes
    bool smoke = false;    //!< CI-scale quick pass (subset + short)
    bool quick = false;    //!< smallest meaningful sizes (CI gates)
    bool million = false;  //!< capacity leg: 10^6-channel mega-fleet
                           //!< (benches that support it)
    bool csv = false;      //!< CSV instead of aligned tables
    bool json = false;     //!< also write a machine-readable
                           //!< BENCH_<name>.json (benches that
                           //!< support it)
    bool gate = false;     //!< compare against the last committed
                           //!< BENCH_<name>.json record and fail on
                           //!< regression (benches that support it)
    uint64_t seed = 2020;  //!< master seed (ISCA 2020 vintage)
};

/** Parse argv; unknown flags abort with a usage message. */
inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opt.full = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--million") == 0) {
            opt.million = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csv = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else if (std::strcmp(argv[i], "--gate") == 0) {
            opt.gate = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--smoke] [--quick] "
                         "[--million] [--csv] [--json] [--gate] "
                         "[--seed N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    // Keep bench stdout clean: suppress info chatter.
    setLogQuiet(true);
    return opt;
}

/**
 * Re-indent a standalone Telemetry::exportJson() document so it nests
 * cleanly as a value inside a hand-written BENCH_<name>.json report.
 */
inline void
writeEmbeddedJson(std::FILE *f, const std::string &json,
                  const char *indent)
{
    std::fputs(indent, f);
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (ch != '\n') {
            std::fputc(ch, f);
        } else if (i + 1 < json.size()) {
            std::fputc('\n', f);
            std::fputs(indent, f);
        }
    }
    std::fputc('\n', f);
}

/**
 * Last record in a committed BENCH_*.json trajectory whose text
 * contains every `shape` needle — the bench name plus the scale and
 * config fields that make two runs comparable. Records are the
 * depth-1 `{...}` blocks of the top-level array, found with a
 * string-aware brace scan (records embed nested objects and quoted
 * JSON), so the gate baseline is the last record of the SAME bench
 * at the SAME shape — not whatever record happens to sit last in the
 * shared trajectory file.
 *
 * @return the matching record's text, or "" when none matches
 */
inline std::string
lastMatchingRecord(const std::string &content,
                   const std::vector<std::string> &shape)
{
    std::string last;
    std::size_t depth = 0;
    std::size_t start = 0;
    bool in_string = false;
    bool escaped = false;
    for (std::size_t i = 0; i < content.size(); ++i) {
        const char ch = content[i];
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (ch == '\\')
                escaped = true;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"') {
            in_string = true;
        } else if (ch == '{') {
            if (depth++ == 0)
                start = i;
        } else if (ch == '}' && depth > 0 && --depth == 0) {
            const std::string record =
                content.substr(start, i + 1 - start);
            bool match = true;
            for (const std::string &needle : shape) {
                if (record.find(needle) == std::string::npos) {
                    match = false;
                    break;
                }
            }
            if (match)
                last = record;
        }
    }
    return last;
}

/** Extract top-level `"key": <number>` fields from a record. */
inline std::map<std::string, double>
recordRates(const std::string &record,
            const std::vector<const char *> &keys)
{
    std::map<std::string, double> rates;
    for (const char *key : keys) {
        const std::string needle = std::string("\"") + key + "\": ";
        const std::size_t at = record.find(needle);
        if (at != std::string::npos)
            rates[key] = std::strtod(
                record.c_str() + at + needle.size(), nullptr);
    }
    return rates;
}

/** Print the experiment banner. */
inline void
banner(const char *id, const char *what, const Options &opt)
{
    std::printf("### %s — %s\n", id, what);
    std::printf("### scale=%s seed=%llu\n\n",
                opt.full ? "paper(--full)" : "default",
                static_cast<unsigned long long>(opt.seed));
}

} // namespace bench
} // namespace divot

#endif // DIVOT_BENCH_COMMON_HH
