/**
 * @file
 * Shared plumbing for the figure-regeneration benches: flag parsing
 * (--full for paper-scale runs, --seed N, --csv) and a banner helper.
 * Every bench prints the series/rows of the paper artifact it
 * regenerates; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef DIVOT_BENCH_COMMON_HH
#define DIVOT_BENCH_COMMON_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "util/logging.hh"

namespace divot {
namespace bench {

/** Parsed command-line options common to all benches. */
struct Options
{
    bool full = false;     //!< paper-scale population sizes
    bool smoke = false;    //!< CI-scale quick pass (subset + short)
    bool quick = false;    //!< smallest meaningful sizes (CI gates)
    bool csv = false;      //!< CSV instead of aligned tables
    bool json = false;     //!< also write a machine-readable
                           //!< BENCH_<name>.json (benches that
                           //!< support it)
    bool gate = false;     //!< compare against the last committed
                           //!< BENCH_<name>.json record and fail on
                           //!< regression (benches that support it)
    uint64_t seed = 2020;  //!< master seed (ISCA 2020 vintage)
};

/** Parse argv; unknown flags abort with a usage message. */
inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opt.full = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csv = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json = true;
        } else if (std::strcmp(argv[i], "--gate") == 0) {
            opt.gate = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--smoke] [--quick] "
                         "[--csv] [--json] [--gate] [--seed N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    // Keep bench stdout clean: suppress info chatter.
    setLogQuiet(true);
    return opt;
}

/**
 * Re-indent a standalone Telemetry::exportJson() document so it nests
 * cleanly as a value inside a hand-written BENCH_<name>.json report.
 */
inline void
writeEmbeddedJson(std::FILE *f, const std::string &json,
                  const char *indent)
{
    std::fputs(indent, f);
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (ch != '\n') {
            std::fputc(ch, f);
        } else if (i + 1 < json.size()) {
            std::fputc('\n', f);
            std::fputs(indent, f);
        }
    }
    std::fputc('\n', f);
}

/** Print the experiment banner. */
inline void
banner(const char *id, const char *what, const Options &opt)
{
    std::printf("### %s — %s\n", id, what);
    std::printf("### scale=%s seed=%llu\n\n",
                opt.full ? "paper(--full)" : "default",
                static_cast<unsigned long long>(opt.seed));
}

} // namespace bench
} // namespace divot

#endif // DIVOT_BENCH_COMMON_HH
