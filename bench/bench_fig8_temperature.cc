/**
 * @file
 * FIG8 — temperature swing 23->75 C (paper Fig. 8): the genuine
 * similarity distribution shifts left while the impostor distribution
 * stays put, raising the EER from ~0.06 % to ~0.14 %.
 */

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace divot;

namespace {

StudyResult
runAt(const bench::Options &opt, bool swing)
{
    StudyConfig cfg;
    cfg.lines = 6;
    cfg.lineLength = 0.25;
    cfg.enrollReps = 16;
    cfg.genuinePerLine = opt.full ? 1366 : 170;
    cfg.impostorPerPair = opt.full ? 273 : 34;
    if (swing) {
        cfg.environment.temperatureC = 23.0;
        cfg.environment.temperatureSwingHiC = 75.0;
    }
    return GenuineImpostorStudy(cfg, Rng(opt.seed)).run();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG8", "temperature swing 23->75C vs room temp",
                  opt);

    const StudyResult room = runAt(opt, false);
    const StudyResult oven = runAt(opt, true);

    RunningStats g_room, g_oven, i_room, i_oven;
    g_room.addAll(room.genuine);
    g_oven.addAll(oven.genuine);
    i_room.addAll(room.impostor);
    i_oven.addAll(oven.impostor);

    Table table("Fig. 8: genuine/impostor statistics vs temperature");
    table.setHeader({"condition", "genuine mean", "genuine min",
                     "impostor mean", "impostor max", "EER",
                     "EER(fit)", "d'"});
    table.addRow({"23C (room)", Table::num(g_room.mean(), 4),
                  Table::num(g_room.min(), 4),
                  Table::num(i_room.mean(), 4),
                  Table::num(i_room.max(), 4),
                  Table::num(room.roc.eer, 6),
                  Table::sci(room.fittedEer, 2),
                  Table::num(room.decidability, 2)});
    table.addRow({"23->75C swing", Table::num(g_oven.mean(), 4),
                  Table::num(g_oven.min(), 4),
                  Table::num(i_oven.mean(), 4),
                  Table::num(i_oven.max(), 4),
                  Table::num(oven.roc.eer, 6),
                  Table::sci(oven.fittedEer, 2),
                  Table::num(oven.decidability, 2)});
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nshape checks (paper Section IV-C):\n");
    std::printf("  genuine shifted left:   %s (%.4f -> %.4f)\n",
                g_oven.mean() < g_room.mean() ? "yes" : "NO",
                g_room.mean(), g_oven.mean());
    std::printf("  impostor ~unchanged:    %s (%.4f -> %.4f)\n",
                std::fabs(i_oven.mean() - i_room.mean()) < 0.1
                    ? "yes" : "NO",
                i_room.mean(), i_oven.mean());
    std::printf("  EER degrades (paper 0.0006 -> 0.0014): %s "
                "(fitted %.2e -> %.2e)\n",
                oven.fittedEer >= room.fittedEer ? "yes" : "NO",
                room.fittedEer, oven.fittedEer);

    Histogram g_room_h(0.0, 1.0, 50), g_oven_h(0.0, 1.0, 50);
    g_room_h.addAll(room.genuine);
    g_oven_h.addAll(oven.genuine);
    std::printf("\n");
    printSeries(std::cout, "fig8.genuine.room  (S_xy, density)",
                g_room_h.series());
    printSeries(std::cout, "fig8.genuine.swing (S_xy, density)",
                g_oven_h.series());
    return 0;
}
