/**
 * @file
 * FIG7 — genuine/impostor similarity distributions and the ROC
 * (paper Fig. 7a/7b): six 25 cm Tx-lines, thousands of measurements,
 * EER < 0.06 % at room temperature.
 *
 * Default scale keeps the run to a few seconds; --full runs the
 * paper's ~8192-comparison scale.
 */

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG7", "authentication: similarity dists + ROC/EER",
                  opt);

    StudyConfig cfg;
    cfg.lines = 6;               // the paper's six PCB lines
    cfg.lineLength = 0.25;       // 25 cm
    cfg.enrollReps = 16;
    if (opt.full) {
        cfg.genuinePerLine = 1366;   // ~8196 genuine scores
        cfg.impostorPerPair = 273;   // ~8190 impostor scores
    } else {
        cfg.genuinePerLine = 170;    // ~1020 scores
        cfg.impostorPerPair = 34;    // ~1020 scores
    }

    GenuineImpostorStudy study(cfg, Rng(opt.seed));
    const StudyResult res = study.run();

    RunningStats g, im;
    g.addAll(res.genuine);
    im.addAll(res.impostor);

    Table summary("Fig. 7 summary");
    summary.setHeader({"metric", "genuine", "impostor"});
    summary.addRow({"count", std::to_string(res.genuine.size()),
                    std::to_string(res.impostor.size())});
    summary.addRow({"mean S_xy", Table::num(g.mean(), 4),
                    Table::num(im.mean(), 4)});
    summary.addRow({"std dev", Table::num(g.stddev(), 4),
                    Table::num(im.stddev(), 4)});
    summary.addRow({"min", Table::num(g.min(), 4),
                    Table::num(im.min(), 4)});
    summary.addRow({"max", Table::num(g.max(), 4),
                    Table::num(im.max(), 4)});
    if (opt.csv)
        summary.printCsv(std::cout);
    else
        summary.print(std::cout);

    const double floor_eer =
        1.0 / static_cast<double>(
                  std::min(res.genuine.size(), res.impostor.size()));
    std::printf("\nEER = %.6f  (resolution floor 1/N = %.6f)\n",
                res.roc.eer, floor_eer);
    std::printf("EER (Gaussian fit, sub-floor estimate) = %.3e\n",
                res.fittedEer);
    std::printf("EER threshold = %.4f, AUC = %.6f, d' = %.2f\n",
                res.roc.eerThreshold, res.roc.auc, res.decidability);
    std::printf("paper: EER < 0.0006 over 8192 measurements; our "
                "measured EER %s the same floor\n",
                res.roc.eer <= std::max(6e-4, floor_eer) ? "meets"
                                                         : "MISSES");
    std::printf("bus cycles consumed: %llu (concurrent with data)\n\n",
                static_cast<unsigned long long>(res.totalBusCycles));

    // --- Fig. 7(a): score histograms ---
    Histogram gh(0.0, 1.0, 50), ih(0.0, 1.0, 50);
    gh.addAll(res.genuine);
    ih.addAll(res.impostor);
    printSeries(std::cout, "fig7a.genuine  (S_xy, density)",
                gh.series());
    printSeries(std::cout, "fig7a.impostor (S_xy, density)",
                ih.series());

    // --- Fig. 7(b): ROC curve (FPR, TPR), decimated for print ---
    std::vector<std::pair<double, double>> roc_pts;
    const std::size_t stride =
        std::max<std::size_t>(1, res.roc.curve.size() / 64);
    for (std::size_t i = 0; i < res.roc.curve.size(); i += stride) {
        roc_pts.emplace_back(res.roc.curve[i].falsePositiveRate,
                             res.roc.curve[i].truePositiveRate);
    }
    printSeries(std::cout, "fig7b.roc (FPR, TPR)", roc_pts);
    return 0;
}
