/**
 * @file
 * FIG9HI — magnetic probing (paper Fig. 9h/9i): a non-contact EM
 * probe perturbs the field, adding mutual inductance and a small
 * local impedance rise. The subtlest attack — it sets the detection
 * threshold (5e-7) — and DIVOT also *locates* the probe.
 */

#include "bench_tamper_common.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG9HI", "magnetic probing (non-contact)", opt);

    bench::TamperRig rig(opt);
    MagneticProbe attack(0.5);
    std::printf("attack: %s\n\n", attack.describe().c_str());
    rig.report(opt, "fig9hi", attack.apply(rig.line));

    // --- Localization sweep: DIVOT reveals the probe position ---
    std::printf("\nlocalization sweep (probe moved along the bus):\n");
    Table table("probe localization");
    table.setHeader({"true pos (cm)", "estimated (cm)", "error (mm)",
                     "detected"});
    TamperLocalizer localizer(5e-7);
    for (double pos : {0.2, 0.35, 0.5, 0.65, 0.8}) {
        MagneticProbe probe(pos);
        const Fingerprint hit =
            rig.average(probe.apply(rig.line), opt.full ? 32 : 16);
        const TamperReport rep =
            localizer.inspect(rig.enrolled, hit, rig.line);
        table.addRow({Table::num(pos * 25.0, 3),
                      Table::num(rep.location * 100.0, 3),
                      Table::num(std::fabs(rep.location -
                                           pos * 0.25) * 1e3, 2),
                      rep.detected ? "yes" : "MISSED"});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
