/**
 * @file
 * BASE — Section V head-to-head: DIVOT vs PAD (ring oscillator), the
 * DC-resistance monitor, the board-impedance PUF, and the VNA IIP
 * reader. Regenerates the qualitative capability matrix with measured
 * detection probabilities per attack class.
 */

#include <memory>
#include <vector>

#include "baselines/board_puf.hh"
#include "baselines/dc_resistance.hh"
#include "baselines/pad.hh"
#include "baselines/vna.hh"
#include "bench_common.hh"
#include "core/divot_baseline.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("BASE", "DIVOT vs related-work countermeasures",
                  opt);

    std::vector<std::unique_ptr<ProtectionBaseline>> baselines;
    DivotSystemConfig divot_cfg;
    divot_cfg.lineLength = 0.1;
    divot_cfg.enrollReps = 8;
    baselines.push_back(std::make_unique<DivotBaseline>(divot_cfg));
    baselines.push_back(std::make_unique<ProbeAttemptDetector>());
    baselines.push_back(std::make_unique<DcResistanceMonitor>());
    baselines.push_back(std::make_unique<BoardImpedancePuf>());
    baselines.push_back(std::make_unique<VnaIipReference>());

    // --- Capability matrix (Section V narrative) ---
    Table caps("Capability / constraint matrix");
    caps.setHeader({"technique", "concurrent", "integrable",
                    "locates", "bus overhead", "ident. EER"});
    for (const auto &b : baselines) {
        const BaselineTraits t = b->traits();
        const double eer = b->identificationEer();
        caps.addRow({t.name, t.runtimeConcurrent ? "yes" : "no",
                     t.integrable ? "yes" : "no",
                     t.locatesAttack ? "yes" : "no",
                     Table::num(t.busTimeOverhead * 100.0, 3) + "%",
                     eer < 0.0 ? "n/a" : Table::sci(eer, 2)});
    }
    caps.print(std::cout);

    // --- Detection probability per attack class ---
    // DIVOT episodes run the full simulated pipeline, so keep its
    // trial count modest; the statistical models are cheap.
    const std::size_t divot_trials = opt.full ? 16 : 6;
    const std::size_t stat_trials = opt.full ? 40000 : 8000;

    std::printf("\n");
    Table det("Detection probability per attack episode "
              "(severity 1.0)");
    det.setHeader({"technique", "contact-probe", "em-probe",
                   "wire-tap", "module-swap"});
    Rng rng(opt.seed);
    for (const auto &b : baselines) {
        const bool is_divot =
            b->traits().name.find("DIVOT") != std::string::npos;
        const std::size_t trials =
            is_divot ? divot_trials : stat_trials;
        std::vector<std::string> row{b->traits().name};
        for (AttackKind kind : {AttackKind::ContactProbe,
                                AttackKind::EmProbe,
                                AttackKind::WireTap,
                                AttackKind::ModuleSwap}) {
            row.push_back(Table::num(
                b->detectProbability(kind, 1.0, trials, rng), 3));
        }
        det.addRow(std::move(row));
    }
    if (opt.csv)
        det.printCsv(std::cout);
    else
        det.print(std::cout);

    std::printf("\nexpected shape (Section V): only DIVOT detects the "
                "EM probe, runs concurrently\nwith data, integrates "
                "into interface logic, and locates the attack — at "
                "zero\nbus-time overhead.\n");
    return 0;
}
