/**
 * @file
 * FIG4 — mixture PDF/CDF under PDM and the widened dynamic range
 * (paper Fig. 4), plus the PDM-level-count ablation from DESIGN.md.
 *
 * Regenerates: the equivalent PDF/CDF with multiple reference levels
 * versus the single-reference case, and a table of linear-region
 * width versus level count (the crossover where PDM pays for itself).
 */

#include <vector>

#include "bench_common.hh"
#include "itdr/apc.hh"
#include "itdr/pdm.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG4", "PDM mixture PDF/CDF and dynamic range",
                  opt);

    const double sigma = 1e-3;

    // Five reference levels spaced 2 sigma apart, as Fig. 4 sketches.
    std::vector<double> five;
    for (int i = -2; i <= 2; ++i)
        five.push_back(i * 2.0 * sigma);
    const std::vector<double> one{0.0};

    std::vector<std::pair<double, double>> pdf1, cdf1, pdf5, cdf5;
    for (double x = -8.0; x <= 8.0; x += 0.1) {
        const double v = x * sigma;
        pdf1.emplace_back(x, apcMixturePdf(v, one, sigma) * sigma);
        cdf1.emplace_back(x, apcMixtureCdf(v, one, sigma));
        pdf5.emplace_back(x, apcMixturePdf(v, five, sigma) * sigma);
        cdf5.emplace_back(x, apcMixtureCdf(v, five, sigma));
    }
    printSeries(std::cout, "fig4.pdf.single (x=V/sigma)", pdf1);
    printSeries(std::cout, "fig4.pdf.pdm5   (x=V/sigma)", pdf5);
    printSeries(std::cout, "fig4.cdf.single (x=V/sigma)", cdf1);
    printSeries(std::cout, "fig4.cdf.pdm5   (x=V/sigma)", cdf5);

    // --- Ablation: linear-region width vs level count ---
    Table table("Linear dynamic range vs PDM level count "
                "(spacing 2 sigma, floor 0.5x peak)");
    table.setHeader({"levels", "width (V)", "width/sigma",
                     "vs single"});
    const double w1 = apcLinearRegionWidth(one, sigma, 0.5);
    for (int n : {1, 3, 5, 9, 17, 33}) {
        std::vector<double> levels;
        for (int i = 0; i < n; ++i)
            levels.push_back((i - (n - 1) / 2.0) * 2.0 * sigma);
        const double w = apcLinearRegionWidth(levels, sigma, 0.5);
        table.addRow({std::to_string(n), Table::sci(w, 3),
                      Table::num(w / sigma, 3),
                      Table::num(w / w1, 2) + "x"});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // The production default used by the library.
    PdmConfig def;
    std::printf("\nLibrary default: p=%u levels, amplitude %.1f mV "
                "=> usable span ~%.1f mV with sigma %.1f mV\n",
                def.p, def.amplitude * 1e3,
                2.0 * (def.amplitude + 2.0 * sigma) * 1e3, sigma * 1e3);
    return 0;
}
