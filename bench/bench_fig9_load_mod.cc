/**
 * @file
 * FIG9BC — load modification: Trojan chip / cold-boot module swap
 * (paper Fig. 9b/9c). The receiver chip at the line end is replaced;
 * the IIP changes abruptly near the 3.5 ns round-trip epoch and E_xy
 * grows a large terminal peak.
 */

#include "bench_tamper_common.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG9BC",
                  "load modification (Trojan chip / cold boot)", opt);

    bench::TamperRig rig(opt);
    std::printf("line: 25 cm, round trip %.3f ns (paper window "
                "0..3.8 ns, echo near 3.5 ns)\n\n",
                rig.line.roundTripDelay() * 1e9);

    // Replace the receiver with a same-model but different chip:
    // its input impedance differs by a few ohms.
    LoadModification attack(55.0);
    std::printf("attack: %s\n\n", attack.describe().c_str());
    rig.report(opt, "fig9bc", attack.apply(rig.line));

    std::printf("\nexpected shape: E_xy peak at the line end (~%.1f "
                "ns round trip), far above ambient\n",
                rig.line.roundTripDelay() * 1e9);
    return 0;
}
