/**
 * @file
 * FIG2 — Gaussian noise PDF/CDF and the APC transfer characteristic
 * (paper Fig. 2, Section II-B).
 *
 * Regenerates: the noise PDF and CDF around V_ref, the analytic
 * p{Y=1}(V_sig) curve, a Monte-Carlo comparator sweep that must sit
 * on the analytic curve (Eq. 1), and the "effective within 2 sigma"
 * linear-region claim (Eq. 3).
 */

#include <cstdio>
#include <vector>

#include "analog/comparator.hh"
#include "bench_common.hh"
#include "itdr/apc.hh"
#include "util/math.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG2", "noise PDF/CDF and APC transfer (Eq. 1-3)",
                  opt);

    const double sigma = 1e-3;
    const std::size_t trials = opt.full ? 200000 : 20000;

    ComparatorParams cp;
    cp.noiseSigma = sigma;
    Comparator comparator(cp, Rng(opt.seed));

    // --- Fig. 2 series: PDF and CDF of the noise around V_ref = 0 ---
    std::vector<std::pair<double, double>> pdf, cdf, mc;
    const std::vector<double> ref{0.0};
    for (double x = -4.0; x <= 4.0; x += 0.1) {
        const double v = x * sigma;
        pdf.emplace_back(x, apcMixturePdf(v, ref, sigma) * sigma);
        cdf.emplace_back(x, apcMixtureCdf(v, ref, sigma));
    }
    printSeries(std::cout, "fig2.pdf  (x = Vsig/sigma, y = pdf*sigma)",
                pdf);
    printSeries(std::cout, "fig2.cdf  (x = Vsig/sigma, y = p{Y=1})",
                cdf);

    // --- Monte-Carlo comparator vs the analytic CDF ---
    Table table("APC transfer: Monte-Carlo comparator vs Eq. (1)");
    table.setHeader({"Vsig/sigma", "p_analytic", "p_measured",
                     "abs_err"});
    for (double x = -3.0; x <= 3.0; x += 0.5) {
        const double v = x * sigma;
        std::size_t hits = 0;
        for (std::size_t t = 0; t < trials; ++t)
            hits += comparator.strobe(v, 0.0);
        const double p_meas =
            static_cast<double>(hits) / static_cast<double>(trials);
        const double p_true = comparator.probabilityHigh(v, 0.0);
        table.addRow({Table::num(x, 3), Table::num(p_true, 5),
                      Table::num(p_meas, 5),
                      Table::sci(std::abs(p_meas - p_true), 2)});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // --- Sensitivity / linear region (the "2 sigma" claim) ---
    Table region("APC sensitivity and linear region");
    region.setHeader({"metric", "value"});
    region.addRow({"peak sensitivity (1/V)",
                   Table::num(apcMixturePdf(0.0, ref, sigma), 5)});
    const double width = apcLinearRegionWidth(ref, sigma, 0.6);
    region.addRow({"linear region width", Table::sci(width, 3)});
    region.addRow({"linear region / sigma",
                   Table::num(width / sigma, 3)});
    region.addRow({"paper claim", "~2 sigma (Section II-B)"});
    std::printf("\n");
    if (opt.csv)
        region.printCsv(std::cout);
    else
        region.print(std::cout);
    return 0;
}
