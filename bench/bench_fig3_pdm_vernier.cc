/**
 * @file
 * FIG3 — the PDM Vernier reference schedule (paper Fig. 3).
 *
 * With 5 f_m = 6 f_s the triangle reference presents five discrete
 * voltages V_ref0..V_ref4 at any fixed waveform time point across
 * five successive waveform repetitions. Regenerates: the reference
 * sequence at several waveform offsets, the repetition period, and
 * the coprimality requirement.
 */

#include <vector>

#include "bench_common.hh"
#include "itdr/pdm.hh"
#include "util/table.hh"

using namespace divot;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("FIG3", "PDM Vernier reference schedule (5fm=6fs)",
                  opt);

    const double fs = 156.25e6;
    PdmConfig cfg;
    cfg.p = 5;
    cfg.q = 6;
    cfg.amplitude = 1.0;  // volts, normalized display
    cfg.rcShaping = 0.0;  // ideal triangle, as the figure draws it
    PdmSchedule pdm(cfg, fs);

    Table table("V_ref seen at fixed waveform offset t0 across "
                "repetitions");
    table.setHeader({"t0 (ns)", "Vref0", "Vref1", "Vref2", "Vref3",
                     "Vref4", "distinct"});
    for (double t0_ns : {0.4, 1.2, 2.0, 2.8}) {
        const auto levels = pdm.levelsAt(t0_ns * 1e-9);
        std::vector<std::string> row{Table::num(t0_ns, 3)};
        for (double v : levels)
            row.push_back(Table::num(v, 4));
        // Count distinct to 1e-9 V.
        std::vector<long> keys;
        for (double v : levels)
            keys.push_back(std::lround(v * 1e9));
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        row.push_back(std::to_string(keys.size()));
        table.addRow(std::move(row));
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Periodicity demonstration: repetition p wraps to repetition 0.
    std::printf("\n");
    Table period("Schedule periodicity");
    period.setHeader({"property", "value"});
    period.addRow({"modulation periods p", std::to_string(cfg.p)});
    period.addRow({"sampling periods q", std::to_string(cfg.q)});
    period.addRow({"f_m (MHz)",
                   Table::num(pdm.modulationFrequency() / 1e6, 6)});
    period.addRow({"f_s (MHz)", Table::num(fs / 1e6, 6)});
    const double t_s = 1.0 / fs;
    const double v0 = pdm.referenceAt(0.7e-9);
    const double v_wrap = pdm.referenceAt(cfg.p * t_s + 0.7e-9);
    period.addRow({"|Vref(rep 0) - Vref(rep p)| (V)",
                   Table::sci(std::fabs(v0 - v_wrap), 2)});
    if (opt.csv)
        period.printCsv(std::cout);
    else
        period.print(std::cout);

    std::printf("\nNote: a non-coprime ratio (e.g. 4 f_m = 6 f_s) is "
                "rejected by construction;\nsee "
                "PdmSchedule.NonCoprimeConfigRejected in the test "
                "suite.\n");
    return 0;
}
