/**
 * @file
 * MULTI — multi-wire monitoring (paper Section IV-C / future work):
 * "Theoretical analysis suggests that monitoring multiple wires on a
 * bus can exponentially increase authentication accuracy." Fused
 * geometric-mean scores across independently fingerprinted wires
 * drive the impostor distribution down multiplicatively.
 *
 * Two gates run after the table (both fail the process):
 *  - the fused EER must be monotonically non-increasing in wire
 *    count — the paper's central multi-wire claim;
 *  - a 6-channel fleet round through the ChannelScheduler must be
 *    bit-identical at 1 and 8 worker threads under both scheduling
 *    policies — both the probe/verdict trace and the telemetry
 *    snapshot, byte for byte.
 *
 * --json additionally writes BENCH_multiwire.json with the EER table,
 * the gate results, and the single-threaded risk-weighted fleet's
 * telemetry snapshot embedded.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fingerprint/study.hh"
#include "fleet/channel_scheduler.hh"
#include "telemetry/telemetry.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace divot;

namespace {

/** Build the vibration-stressed fleet used by the determinism gate. */
ChannelScheduler
makeFleet(unsigned threads, SchedulerPolicy policy, uint64_t seed,
          std::size_t measure_batch = 0)
{
    FleetConfig cfg;
    cfg.instruments = 3;
    cfg.policy = policy;
    cfg.threads = threads;
    cfg.measureBatch = measure_batch;
    ChannelScheduler fleet(cfg, Rng(seed));
    for (std::size_t c = 0; c < 6; ++c) {
        BusChannelConfig channel;
        channel.lineLength = 0.1;
        channel.enrollReps = 8;
        channel.environment.vibrationStrain = 1.5e-2;
        channel.name = "wire" + std::to_string(c);
        fleet.addChannel(channel);
    }
    fleet.calibrateAll();
    return fleet;
}

/** Run `ticks` fleet rounds and flatten every observable number. */
std::vector<double>
fleetTrace(ChannelScheduler &fleet, std::size_t ticks)
{
    std::vector<double> trace;
    for (std::size_t t = 0; t < ticks; ++t) {
        const FleetRound round = fleet.tick();
        for (const ChannelProbe &probe : round.probes) {
            trace.push_back(static_cast<double>(probe.channel));
            trace.push_back(probe.verdict.similarity);
            trace.push_back(probe.verdict.peakError);
        }
        trace.push_back(round.fused.fusedSimilarity);
        trace.push_back(round.fused.busTrusted ? 1.0 : 0.0);
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("MULTI", "EER vs number of monitored wires", opt);

    // Stress the environment so the single-wire EER is measurably
    // non-zero and the multi-wire improvement has room to show.
    Table table("Accuracy vs monitored wires (vibration-stressed "
                "campaign)");
    table.setHeader({"wires", "genuine mean", "impostor mean",
                     "impostor max", "EER", "EER(fit)", "d'"});

    const std::vector<std::size_t> wire_counts =
        opt.quick ? std::vector<std::size_t>{1, 2, 4}
                  : std::vector<std::size_t>{1, 2, 3, 4, 6};
    std::vector<double> eers;
    for (std::size_t wires : wire_counts) {
        StudyConfig cfg;
        cfg.lines = 4;
        cfg.lineLength = 0.25;
        cfg.wires = wires;
        cfg.enrollReps = 8;
        cfg.genuinePerLine = opt.full ? 256 : (opt.quick ? 24 : 64);
        cfg.impostorPerPair = opt.full ? 64 : (opt.quick ? 8 : 16);
        cfg.environment.vibrationStrain = 1.5e-2;
        const StudyResult res =
            GenuineImpostorStudy(cfg, Rng(opt.seed)).run();
        eers.push_back(res.roc.eer);
        RunningStats g, im;
        g.addAll(res.genuine);
        im.addAll(res.impostor);
        table.addRow({std::to_string(wires), Table::num(g.mean(), 4),
                      Table::num(im.mean(), 4),
                      Table::num(im.max(), 4),
                      Table::num(res.roc.eer, 6),
                      Table::sci(res.fittedEer, 2),
                      Table::num(res.decidability, 2)});
    }
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::printf("\nexpected shape: impostor mean decays roughly "
                "geometrically with wire count\n(geometric-mean "
                "fusion multiplies per-wire impostor scores), driving "
                "EER toward zero.\n");

    // Gate 1: the central multi-wire claim — adding wires never makes
    // the fused EER worse.
    bool monotone = true;
    for (std::size_t i = 1; i < eers.size(); ++i)
        monotone = monotone && eers[i] <= eers[i - 1] + 1e-12;
    std::printf("\nfused EER monotone non-increasing in wires: %s\n",
                monotone ? "yes" : "NO — MULTI-WIRE CLAIM VIOLATION");

    // Gate 2: fleet determinism — a 6-channel scheduler round must
    // not depend on the worker thread count under either policy.
    // That covers the telemetry layer too: the stable snapshot the
    // fleet exports must serialize to the same bytes at 1 and 8
    // workers.
    bool identical = true;
    std::string snapshot;
    const std::size_t ticks = opt.quick ? 6 : 12;
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::RoundRobin, SchedulerPolicy::RiskWeighted}) {
        ChannelScheduler f1 = makeFleet(1, policy, opt.seed);
        ChannelScheduler f8 = makeFleet(8, policy, opt.seed);
        const std::vector<double> t1 = fleetTrace(f1, ticks);
        const std::vector<double> t8 = fleetTrace(f8, ticks);
        const bool same = t1 == t8;
        snapshot = f1.telemetry().exportJson();
        const bool same_snapshot =
            snapshot == f8.telemetry().exportJson();
        identical = identical && same && same_snapshot;
        std::printf("fleet 6ch/%s: 8 threads == 1 thread "
                    "(bit-identical): trace %s, telemetry %s\n",
                    schedulerPolicyName(policy),
                    same ? "yes" : "NO — DETERMINISM VIOLATION",
                    same_snapshot ? "yes"
                                  : "NO — DETERMINISM VIOLATION");
    }

    // Gate 3: cross-channel kernel batching — grouping probes onto a
    // shared SoA arena (FleetConfig::measureBatch) must reproduce the
    // per-channel fleet bit for bit, trace and telemetry alike,
    // including a width that does not divide the probe count.
    for (const std::size_t batch : {std::size_t{2}, std::size_t{3}}) {
        ChannelScheduler base =
            makeFleet(1, SchedulerPolicy::RoundRobin, opt.seed);
        ChannelScheduler batched = makeFleet(
            4, SchedulerPolicy::RoundRobin, opt.seed, batch);
        const std::vector<double> tb = fleetTrace(base, ticks);
        const std::vector<double> tg = fleetTrace(batched, ticks);
        const bool same = tb == tg;
        const bool same_snapshot = base.telemetry().exportJson() ==
            batched.telemetry().exportJson();
        identical = identical && same && same_snapshot;
        std::printf("fleet 6ch batched(batch=%zu, 4 threads) == "
                    "per-channel (bit-identical): trace %s, "
                    "telemetry %s\n",
                    batch, same ? "yes" : "NO — BATCHING VIOLATION",
                    same_snapshot ? "yes" : "NO — BATCHING VIOLATION");
    }

    if (opt.json) {
        const char *path = "BENCH_multiwire.json";
        std::FILE *f = std::fopen(path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path);
            return 1;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"multiwire\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(opt.seed));
        std::fprintf(f, "  \"wires\": [");
        for (std::size_t i = 0; i < wire_counts.size(); ++i)
            std::fprintf(f, "%s%zu", i == 0 ? "" : ", ",
                         wire_counts[i]);
        std::fprintf(f, "],\n");
        std::fprintf(f, "  \"eer\": [");
        for (std::size_t i = 0; i < eers.size(); ++i)
            std::fprintf(f, "%s%.6f", i == 0 ? "" : ", ", eers[i]);
        std::fprintf(f, "],\n");
        std::fprintf(f, "  \"monotonePass\": %s,\n",
                     monotone ? "true" : "false");
        std::fprintf(f, "  \"determinismPass\": %s,\n",
                     identical ? "true" : "false");
        // The risk-weighted single-thread fleet's structural metrics.
        std::fprintf(f, "  \"telemetry\":\n");
        bench::writeEmbeddedJson(f, snapshot, "    ");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path);
    }

    return monotone && identical ? 0 : 1;
}
